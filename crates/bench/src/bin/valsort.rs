//! `valsort` — validate a file of SortBenchmark records: sortedness,
//! record count, and an order-independent fingerprint (compare the
//! fingerprints of input and output to prove the sort is a
//! permutation).
//!
//! ```text
//! valsort FILE
//! ```
//!
//! Exit status 0 iff the file is sorted. The fingerprint is printed
//! either way.

use demsort_core::validate::{hash_record, Fingerprint};
use demsort_types::{Key10, Record as _, Record100};
use std::io::Read;

fn main() {
    let Some(file) = std::env::args().nth(1) else {
        eprintln!("usage: valsort FILE");
        std::process::exit(2);
    };
    let f = std::fs::File::open(&file).expect("open input");
    let mut r = std::io::BufReader::new(f);
    let mut buf = vec![0u8; Record100::BYTES];
    let mut fp = Fingerprint::default();
    let mut violations = 0u64;
    let mut last: Option<Key10> = None;
    loop {
        match r.read_exact(&mut buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => panic!("read {file}: {e}"),
        }
        let rec = Record100::decode(&buf);
        if let Some(prev) = &last {
            if *prev > rec.key {
                violations += 1;
            }
        }
        last = Some(rec.key);
        fp.count += 1;
        fp.sum = fp.sum.wrapping_add(hash_record(&rec));
    }
    println!("records:      {}", fp.count);
    println!("violations:   {violations}");
    println!("fingerprint:  {:016x}:{:016x}", fp.count, fp.sum);
    if violations == 0 {
        println!("SUCCESS - the file is sorted");
    } else {
        println!("FAILURE - {violations} out-of-order record pairs");
        std::process::exit(1);
    }
}
