//! Pipelined sorting feeding Kruskal's algorithm — the paper's own
//! example of a postprocessor "that requires its input in sorted order
//! (e.g., variants of Kruskal's algorithm [22])".
//!
//! Graph edges are *generated* on each PE (never written to disk as
//! input), sorted by weight through the pipelined CANONICALMERGESORT,
//! and consumed in weight order by a union-find — the consumer stops
//! early once the MST is complete, so the tail of the sorted stream is
//! never materialized anywhere.
//!
//! ```sh
//! cargo run --release --example pipelined_kruskal
//! ```

use demsort::core::ctx::ClusterStorage;
use demsort::core::pipeline::pipelined_sort;
use demsort::net::run_cluster;
use demsort::prelude::*;
use demsort::workloads::splitmix64;

/// Pack an edge (u, v, weight) as a 16-byte element sorted by weight.
fn edge(u: u32, v: u32, w: u32, tiebreak: u32) -> Element16 {
    Element16::new(((w as u64) << 32) | tiebreak as u64, ((u as u64) << 32) | v as u64)
}

fn unpack(e: &Element16) -> (u32, u32, u32) {
    ((e.payload >> 32) as u32, e.payload as u32, (e.key >> 32) as u32)
}

/// Union-find with path halving.
struct Dsu(Vec<u32>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n as u32).collect())
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.0[x as usize] != x {
            self.0[x as usize] = self.0[self.0[x as usize] as usize];
            x = self.0[x as usize];
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.0[ra as usize] = rb;
        true
    }
}

fn main() {
    let pes = 4;
    let vertices = 50_000u32;
    let edges_per_pe = 150_000usize;
    let machine = MachineConfig {
        pes,
        disks_per_pe: 2,
        block_bytes: 4 << 10,
        mem_bytes_per_pe: (4 << 10) * 128,
        cores_per_pe: 1,
    };
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid config");
    println!(
        "MST of a {vertices}-vertex graph with {} generated edges, via pipelined sort...",
        pes * edges_per_pe
    );

    // Pipeline: generate → sort by weight → collect per-PE slices.
    let storage = ClusterStorage::new_mem(&cfg.machine);
    let storage_ref = &storage;
    let cfg2 = cfg.clone();
    let slices: Vec<Vec<Element16>> = run_cluster(pes, move |c| {
        let pe = c.rank() as u64;
        let mut i = 0u64;
        let source = move || {
            (i < edges_per_pe as u64).then(|| {
                let id = pe * edges_per_pe as u64 + i;
                i += 1;
                let r = splitmix64(id);
                // A guaranteed spanning chain (edge id < vertices-1
                // connects id → id+1) plus random edges.
                if id < (vertices - 1) as u64 {
                    edge(id as u32, id as u32 + 1, (splitmix64(r) % 1_000_000) as u32, id as u32)
                } else {
                    let u = (r % vertices as u64) as u32;
                    let v = (splitmix64(r) % vertices as u64) as u32;
                    edge(u, v, (splitmix64(r ^ 1) % 1_000_000) as u32, id as u32)
                }
            })
        };
        let mut got = Vec::new();
        pipelined_sort::<Element16, _, _>(
            &c,
            storage_ref,
            &cfg2,
            source,
            |e| {
                got.push(e);
                Ok(())
            },
            1,
        )
        .expect("pipeline");
        got
    });

    // Kruskal over the weight-ordered stream (PE slices in rank order),
    // stopping as soon as the tree is complete.
    let mut dsu = Dsu::new(vertices as usize);
    let mut mst_weight = 0u64;
    let mut mst_edges = 0u32;
    let mut consumed = 0usize;
    'outer: for slice in &slices {
        for e in slice {
            consumed += 1;
            let (u, v, w) = unpack(e);
            if dsu.union(u, v) {
                mst_weight += w as u64;
                mst_edges += 1;
                if mst_edges == vertices - 1 {
                    break 'outer;
                }
            }
        }
    }
    println!(
        "MST: {mst_edges} edges, total weight {mst_weight}, after consuming {consumed} of {} edges \
         ({:.0}% early exit)",
        pes * edges_per_pe,
        100.0 * (1.0 - consumed as f64 / (pes * edges_per_pe) as f64),
    );

    // Reference: in-memory Kruskal over all edges.
    let mut all: Vec<Element16> = slices.concat();
    all.sort_unstable();
    let mut dsu2 = Dsu::new(vertices as usize);
    let mut ref_weight = 0u64;
    for e in &all {
        let (u, v, w) = unpack(e);
        if dsu2.union(u, v) {
            ref_weight += w as u64;
        }
    }
    assert_eq!(mst_weight, ref_weight, "pipelined MST must match the reference");
    println!("reference check: OK (weights match)");
}
