//! `demsort-verify` — run the repo-invariant lints (L1–L5) over the
//! workspace and emit machine-readable reports.
//!
//! ```text
//! demsort-verify [--root DIR] [--json FILE] [--unsafe-inventory FILE]
//!                [--warnings] [--list-lints]
//! ```
//!
//! Exits 0 when no deny-severity finding is active, 1 when at least
//! one is, 2 on usage or I/O errors.

use demsort_analyze::{analyze_root, lints};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: PathBuf,
    json: Option<PathBuf>,
    unsafe_inventory: Option<PathBuf>,
    warnings: bool,
    list_lints: bool,
}

fn usage() -> &'static str {
    "usage: demsort-verify [--root DIR] [--json FILE] [--unsafe-inventory FILE] [--warnings] [--list-lints]"
}

fn parse_cli(mut args: std::env::Args) -> Result<Cli, String> {
    let _argv0 = args.next();
    let mut cli = Cli {
        root: PathBuf::from("."),
        json: None,
        unsafe_inventory: None,
        warnings: false,
        list_lints: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => cli.root = args.next().ok_or("--root needs a value")?.into(),
            "--json" => cli.json = Some(args.next().ok_or("--json needs a value")?.into()),
            "--unsafe-inventory" => {
                cli.unsafe_inventory =
                    Some(args.next().ok_or("--unsafe-inventory needs a value")?.into());
            }
            "--warnings" => cli.warnings = true,
            "--list-lints" => cli.list_lints = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(cli)
}

fn write_json(path: &PathBuf, json: &demsort_types::json::Json) -> Result<(), String> {
    let mut text = String::new();
    json.write_into(&mut text);
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let cli = match parse_cli(std::env::args()) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if cli.list_lints {
        for (id, name, desc) in lints::LINTS {
            println!("{id} {name}: {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let report = match analyze_root(&cli.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("demsort-verify: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text(cli.warnings));
    if let Some(path) = &cli.json {
        if let Err(msg) = write_json(path, &report.to_json()) {
            eprintln!("demsort-verify: {msg}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &cli.unsafe_inventory {
        if let Err(msg) = write_json(path, &report.unsafe_inventory_json()) {
            eprintln!("demsort-verify: {msg}");
            return ExitCode::from(2);
        }
    }
    if report.deny_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
