//! Block allocation with free-list recycling.
//!
//! (Nearly) in-place operation — Section IV-E of the paper — hinges on
//! recycling: "blocks that are read to internal buffers are deallocated
//! from disk immediately, so there are always blocks available for
//! writing the output." The allocator tracks per-disk free lists and a
//! high-water mark so tests can assert the paper's extra-space bounds.

use crate::block::BlockId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

struct DiskAlloc {
    next: u32,
    free: Vec<u32>,
}

/// Per-PE block allocator over `disks` local disks.
pub struct BlockAllocator {
    disks: Vec<Mutex<DiskAlloc>>,
    rr: AtomicUsize,
    in_use: AtomicUsize,
    high_water: AtomicUsize,
}

impl BlockAllocator {
    /// New allocator for `disks` empty disks.
    pub fn new(disks: usize) -> Self {
        assert!(disks > 0, "need at least one disk");
        Self {
            disks: (0..disks)
                .map(|_| Mutex::new(DiskAlloc { next: 0, free: Vec::new() }))
                .collect(),
            rr: AtomicUsize::new(0),
            in_use: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    fn bump_usage(&self) {
        let now = self.in_use.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Allocate a block on a specific disk (reuses freed slots first).
    pub fn alloc_on(&self, disk: usize) -> BlockId {
        let mut d = self.disks[disk].lock();
        let slot = d.free.pop().unwrap_or_else(|| {
            let s = d.next;
            d.next = d.next.checked_add(1).expect("disk slot space exhausted");
            s
        });
        drop(d);
        self.bump_usage();
        BlockId::new(disk as u32, slot)
    }

    /// Allocate round-robin over disks — this is RAID-0 striping
    /// ("the blocks on a PE are striped over the local disks").
    pub fn alloc_striped(&self) -> BlockId {
        let disk = self.rr.fetch_add(1, Ordering::Relaxed) % self.disks.len();
        self.alloc_on(disk)
    }

    /// Return a block to its disk's free list.
    pub fn free(&self, id: BlockId) {
        let mut d = self.disks[id.disk as usize].lock();
        debug_assert!(id.slot < d.next, "freeing never-allocated block {id}");
        debug_assert!(!d.free.contains(&id.slot), "double free of {id}");
        d.free.push(id.slot);
        drop(d);
        self.in_use.fetch_sub(1, Ordering::Relaxed);
    }

    /// Blocks currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Maximum simultaneous allocation ever observed (for space-bound
    /// assertions).
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.disks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn striped_allocation_round_robins() {
        let a = BlockAllocator::new(4);
        let ids: Vec<BlockId> = (0..8).map(|_| a.alloc_striped()).collect();
        let disks: Vec<u32> = ids.iter().map(|b| b.disk).collect();
        assert_eq!(disks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(ids.iter().collect::<HashSet<_>>().len() == 8, "ids unique");
    }

    #[test]
    fn free_list_recycles_slots() {
        let a = BlockAllocator::new(1);
        let b0 = a.alloc_on(0);
        let b1 = a.alloc_on(0);
        assert_eq!((b0.slot, b1.slot), (0, 1));
        a.free(b0);
        let b2 = a.alloc_on(0);
        assert_eq!(b2.slot, 0, "freed slot reused before fresh ones");
        assert_eq!(a.in_use(), 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let a = BlockAllocator::new(2);
        let ids: Vec<BlockId> = (0..10).map(|_| a.alloc_striped()).collect();
        assert_eq!(a.high_water(), 10);
        for id in ids {
            a.free(id);
        }
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.high_water(), 10, "high water survives frees");
        let _keep = a.alloc_striped();
        assert_eq!(a.high_water(), 10);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught() {
        let a = BlockAllocator::new(1);
        let b = a.alloc_on(0);
        a.free(b);
        a.free(b);
    }
}
