//! Distributed output validation (valsort-style, but collective).
//!
//! A distributed sort is correct iff
//!
//! 1. every PE's output is locally key-sorted,
//! 2. the last key of PE `i` ≤ the first key of PE `i+1` (canonical
//!    output format), and
//! 3. the multiset of records is a permutation of the input — checked
//!    with an order-independent fingerprint (count + wrapping sum of
//!    per-record hashes), which detects loss, duplication, and
//!    mutation with probability `1 − 2^-64`-ish.
//!
//! Validation streams the output from disk (it never needs the whole
//! output in memory) and is itself a collective operation.

use crate::recio::{FinishedRun, RecordRunReader};
use demsort_net::Communicator;
use demsort_storage::PeStorage;
use demsort_types::{Record, Result};

/// Order-independent record-stream fingerprint.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Fingerprint {
    /// Records absorbed.
    pub count: u64,
    /// Wrapping sum of record hashes.
    pub sum: u64,
}

impl Fingerprint {
    /// Absorb one record.
    pub fn add<R: Record>(&mut self, rec: &R) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(hash_record(rec));
    }

    /// Fingerprint of a record slice.
    pub fn of_slice<R: Record>(recs: &[R]) -> Self {
        let mut f = Self::default();
        for r in recs {
            f.add(r);
        }
        f
    }
}

/// Hash a record by its encoded bytes (stable across phases and PEs).
pub fn hash_record<R: Record>(rec: &R) -> u64 {
    let mut buf = [0u8; 128];
    debug_assert!(R::BYTES <= 128, "record larger than the hash buffer");
    rec.encode(&mut buf[..R::BYTES]);
    let mut h = 0x243F_6A88_85A3_08D3u64; // pi digits, arbitrary seed
    for chunk in buf[..R::BYTES].chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(b));
    }
    h
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Result of a collective validation (identical on every PE).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ValidationReport {
    /// Global element count.
    pub elements: u64,
    /// Every PE's output was locally sorted.
    pub locally_sorted: bool,
    /// All cross-PE boundaries were ordered.
    pub boundaries_ordered: bool,
    /// Global output fingerprint (compare with the input's).
    pub fingerprint: Fingerprint,
}

impl ValidationReport {
    /// `true` iff the output is a correct canonical sort of an input
    /// with fingerprint `input`.
    pub fn is_valid_sort_of(&self, input: Fingerprint) -> bool {
        self.locally_sorted && self.boundaries_ordered && self.fingerprint == input
    }
}

/// Validate this PE's output run collectively. Streams from disk.
pub fn validate_output<R: Record + Ord>(
    comm: &Communicator,
    st: &PeStorage,
    output: &FinishedRun<R>,
) -> Result<ValidationReport> {
    let mut reader = RecordRunReader::<R>::new(st, output.run.clone(), output.elems);
    let mut fp = Fingerprint::default();
    let mut sorted = true;
    let mut first: Option<R> = None;
    let mut last: Option<R> = None;
    while let Some(rec) = reader.next_rec()? {
        if let Some(prev) = &last {
            if prev.key() > rec.key() {
                sorted = false;
            }
        }
        if first.is_none() {
            first = Some(rec);
        }
        fp.add(&rec);
        last = Some(rec);
    }

    // Exchange (nonempty, first, last) and check boundary order over
    // the nonempty PEs in rank order.
    let mut msg = vec![0u8; 1 + 2 * R::BYTES];
    if let (Some(f), Some(l)) = (&first, &last) {
        msg[0] = 1;
        f.encode(&mut msg[1..1 + R::BYTES]);
        l.encode(&mut msg[1 + R::BYTES..]);
    }
    let gathered = comm.allgather(msg)?;
    let mut boundaries_ordered = true;
    let mut prev_last: Option<R::Key> = None;
    for buf in &gathered {
        if buf[0] == 0 {
            continue;
        }
        let f = R::decode(&buf[1..1 + R::BYTES]).key();
        let l = R::decode(&buf[1 + R::BYTES..]).key();
        if let Some(pl) = prev_last {
            if pl > f {
                boundaries_ordered = false;
            }
        }
        prev_last = Some(l);
    }

    Ok(ValidationReport {
        elements: comm.allreduce_sum(fp.count)?,
        locally_sorted: comm.allreduce_and(sorted)?,
        boundaries_ordered,
        fingerprint: Fingerprint {
            count: comm.allreduce_sum(fp.count)?,
            sum: comm.allreduce_u64(fp.sum, |a, b| a.wrapping_add(b))?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::sort_cluster;
    use crate::recio::write_records;
    use demsort_net::run_cluster;
    use demsort_storage::{DiskModel, MemBackend};
    use demsort_types::{AlgoConfig, Element16, MachineConfig, SortConfig};
    use demsort_workloads::{generate_pe_input, InputSpec};
    use std::sync::Arc;

    #[test]
    fn fingerprint_is_order_independent_and_sensitive() {
        let a: Vec<Element16> = (0..100).map(|i| Element16::new(i * 7, i)).collect();
        let mut b = a.clone();
        b.reverse();
        assert_eq!(Fingerprint::of_slice(&a), Fingerprint::of_slice(&b));
        let mut c = a.clone();
        c[5].payload ^= 1;
        assert_ne!(Fingerprint::of_slice(&a), Fingerprint::of_slice(&c));
        assert_ne!(Fingerprint::of_slice(&a), Fingerprint::of_slice(&a[..99]));
    }

    #[test]
    fn validates_a_correct_sort() {
        let p = 3;
        let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid");
        let outcome = sort_cluster::<Element16, _>(&cfg, |pe, p| {
            generate_pe_input(InputSpec::Uniform, 5, pe, p, 500)
        })
        .expect("sort");
        let input_fp = {
            let mut f = Fingerprint::default();
            for pe in 0..p {
                for r in generate_pe_input(InputSpec::Uniform, 5, pe, p, 500) {
                    f.add(&r);
                }
            }
            f
        };
        let storage = &outcome.storage;
        let outputs: Vec<_> = outcome.per_pe.iter().map(|o| o.output.clone()).collect();
        let outputs = &outputs;
        let reports = run_cluster(p, move |c| {
            validate_output::<Element16>(&c, storage.pe(c.rank()), &outputs[c.rank()])
                .expect("validate")
        });
        for r in &reports {
            assert_eq!(*r, reports[0], "all PEs agree");
            assert!(r.is_valid_sort_of(input_fp));
            assert_eq!(r.elements, 1500);
        }
    }

    #[test]
    fn detects_unsorted_output() {
        let p = 2;
        let cfg = MachineConfig::tiny(p);
        let storages: Vec<_> = (0..p)
            .map(|_| {
                demsort_storage::PeStorage::with_backend(
                    cfg.disks_per_pe,
                    cfg.block_bytes,
                    DiskModel::paper(),
                    Arc::new(MemBackend::new(cfg.disks_per_pe)),
                )
            })
            .collect();
        let storages = &storages;
        let reports = run_cluster(p, move |c| {
            let recs: Vec<Element16> = if c.rank() == 0 {
                vec![Element16::new(5, 0), Element16::new(3, 1)] // unsorted!
            } else {
                vec![Element16::new(9, 2)]
            };
            let fr = write_records(&storages[c.rank()], &recs).expect("write");
            validate_output::<Element16>(&c, &storages[c.rank()], &fr).expect("validate")
        });
        assert!(!reports[0].locally_sorted);
    }

    #[test]
    fn detects_misordered_boundaries() {
        let p = 2;
        let cfg = MachineConfig::tiny(p);
        let storages: Vec<_> = (0..p)
            .map(|_| {
                demsort_storage::PeStorage::with_backend(
                    cfg.disks_per_pe,
                    cfg.block_bytes,
                    DiskModel::paper(),
                    Arc::new(MemBackend::new(cfg.disks_per_pe)),
                )
            })
            .collect();
        let storages = &storages;
        let reports = run_cluster(p, move |c| {
            // PE 0 holds keys {10, 20}; PE 1 holds {15} → boundary
            // violation although both are locally sorted.
            let recs: Vec<Element16> = if c.rank() == 0 {
                vec![Element16::new(10, 0), Element16::new(20, 1)]
            } else {
                vec![Element16::new(15, 2)]
            };
            let fr = write_records(&storages[c.rank()], &recs).expect("write");
            validate_output::<Element16>(&c, &storages[c.rank()], &fr).expect("validate")
        });
        assert!(reports[0].locally_sorted);
        assert!(!reports[0].boundaries_ordered);
    }

    #[test]
    fn empty_pes_are_skipped_in_boundary_check() {
        let p = 3;
        let cfg = MachineConfig::tiny(p);
        let storages: Vec<_> = (0..p)
            .map(|_| {
                demsort_storage::PeStorage::with_backend(
                    cfg.disks_per_pe,
                    cfg.block_bytes,
                    DiskModel::paper(),
                    Arc::new(MemBackend::new(cfg.disks_per_pe)),
                )
            })
            .collect();
        let storages = &storages;
        let reports = run_cluster(p, move |c| {
            // PE 1 is empty; 0 and 2 are ordered.
            let recs: Vec<Element16> = match c.rank() {
                0 => vec![Element16::new(1, 0)],
                2 => vec![Element16::new(2, 1)],
                _ => Vec::new(),
            };
            let fr = write_records(&storages[c.rank()], &recs).expect("write");
            validate_output::<Element16>(&c, &storages[c.rank()], &fr).expect("validate")
        });
        assert!(reports[0].locally_sorted && reports[0].boundaries_ordered);
        assert_eq!(reports[0].elements, 2);
    }
}
