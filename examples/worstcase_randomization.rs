//! The randomization story (Figures 4/5/6): a worst-case input where
//! every PE's block `b` carries keys from the same narrow band, so
//! without randomized run formation nearly all data must move in the
//! all-to-all — and with it, almost none does.
//!
//! ```sh
//! cargo run --release --example worstcase_randomization
//! ```

use demsort::prelude::*;
use demsort::types::fmtsize::fmt_bytes;

fn main() {
    let pes = 4;
    let machine = MachineConfig {
        pes,
        disks_per_pe: 4,
        block_bytes: 1 << 10,
        mem_bytes_per_pe: (1 << 10) * 256,
        cores_per_pe: 1,
    };
    let local_n = 4 * 256 * (machine.block_bytes / Element16::BYTES); // ~4 runs
    let band = machine.block_bytes / Element16::BYTES;
    let spec = InputSpec::Banded { block_elems: band };

    println!("worst-case banded input, {} per PE, {} PEs\n", fmt_bytes((local_n * 16) as u64), pes);
    println!(
        "{:<16} {:>14} {:>14} {:>10} {:>8}",
        "run formation", "a2a I/O", "a2a network", "a2a I/O/N", "subops"
    );
    for randomize in [false, true] {
        let algo = AlgoConfig { randomize, ..AlgoConfig::default() };
        let cfg = SortConfig::new(machine.clone(), algo).expect("valid config");
        let outcome = demsort::core::canonical::sort_cluster::<Element16, _>(&cfg, move |pe, p| {
            demsort::workloads::generate_pe_input(spec, 3, pe, p, local_n)
        })
        .expect("sort");
        let io = outcome.report.phase_total(Phase::AllToAll, |s| s.io.bytes_total());
        let net = outcome.report.phase_total(Phase::AllToAll, |s| s.comm.bytes_sent);
        let ratio = io as f64 / outcome.report.total_bytes() as f64;
        println!(
            "{:<16} {:>14} {:>14} {:>10.4} {:>8}",
            if randomize { "randomized" } else { "deterministic" },
            fmt_bytes(io),
            fmt_bytes(net),
            ratio,
            outcome.per_pe[0].alltoall_subops,
        );
    }
    println!(
        "\nrandomly shuffling the local input-block ids before grouping them into runs\n\
         (one line of preprocessing, Section IV) is what turns the worst case into the\n\
         average case: each run becomes a random sample, so its canonical slices already\n\
         sit on the right PEs and the redistribution has (almost) nothing to move."
    );
}
