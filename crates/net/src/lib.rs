//! # demsort-net
//!
//! The cluster substrate of the demsort suite: an in-process,
//! MPI-flavoured message-passing layer. The paper ran on a 200-node
//! InfiniBand cluster with MVAPICH; here each PE is an OS thread and
//! each PE pair has a dedicated FIFO channel, so algorithms are written
//! exactly as SPMD MPI programs (rank/size, point-to-point, barriers,
//! reductions, allgather, alltoallv) and all remote traffic is metered
//! for the cost model.
//!
//! * [`Communicator`] — one PE's endpoint with collectives.
//! * [`run_cluster`] — spawn P PE threads and run an SPMD closure.
//! * [`chunked_alltoallv`] — the paper's reimplementation of
//!   `MPI_Alltoallv` lifting the 2 GiB (`i32`) volume limit.

pub mod chunked;
pub mod cluster;
pub mod comm;

pub use chunked::{chunked_alltoallv, MPI_VOLUME_LIMIT};
pub use cluster::{build_mesh, run_cluster};
pub use comm::{decode_u64s, encode_u64s, Communicator};
