//! Storage backends: where block bytes actually live.
//!
//! * [`MemBackend`] — blocks live in RAM; fast, deterministic, the
//!   default for experiments (the *timing* of a disk comes from the
//!   [`DiskModel`](crate::disk::DiskModel), not the backend).
//! * [`FileBackend`] — one file per simulated disk; real external
//!   memory for runs larger than RAM.
//! * [`FaultInjectingBackend`] — wraps another backend and fails the
//!   n-th operation; used by failure-injection tests.

use demsort_types::{Error, Result};
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Abstract block store addressed by `(disk, slot)`.
///
/// Implementations must be safe for concurrent access from one worker
/// thread per disk (different disks in parallel, one op at a time per
/// disk).
pub trait Backend: Send + Sync + 'static {
    /// Read the block at `(disk, slot)` into `buf` (whose length is the
    /// block size).
    fn read(&self, disk: usize, slot: u64, buf: &mut [u8]) -> Result<()>;

    /// Write `data` (block size bytes) to `(disk, slot)`.
    fn write(&self, disk: usize, slot: u64, data: &[u8]) -> Result<()>;

    /// Drop any stored data for `(disk, slot)` (in-place recycling).
    /// Reading a discarded slot is an error until it is rewritten.
    fn discard(&self, disk: usize, slot: u64);
}

/// One disk's slot table: present blocks by slot index.
type SlotTable = Vec<Option<Box<[u8]>>>;

/// In-memory backend: per disk, a growable slot table.
pub struct MemBackend {
    disks: Vec<RwLock<SlotTable>>,
}

impl MemBackend {
    /// Create a backend with `disks` empty disks.
    pub fn new(disks: usize) -> Self {
        Self { disks: (0..disks).map(|_| RwLock::new(Vec::new())).collect() }
    }

    /// Bytes currently resident (for space-bound tests).
    pub fn resident_bytes(&self) -> u64 {
        self.disks
            .iter()
            .map(|d| d.read().iter().map(|s| s.as_ref().map_or(0, |b| b.len() as u64)).sum::<u64>())
            .sum()
    }

    /// Number of occupied slots across all disks.
    pub fn resident_blocks(&self) -> u64 {
        self.disks.iter().map(|d| d.read().iter().filter(|s| s.is_some()).count() as u64).sum()
    }
}

impl Backend for MemBackend {
    fn read(&self, disk: usize, slot: u64, buf: &mut [u8]) -> Result<()> {
        let disk_tbl =
            self.disks.get(disk).ok_or_else(|| Error::io(format!("no such disk {disk}")))?.read();
        let data = disk_tbl
            .get(slot as usize)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| Error::io(format!("read of unwritten block d{disk}:{slot}")))?;
        if data.len() != buf.len() {
            return Err(Error::io(format!(
                "block size mismatch at d{disk}:{slot}: stored {} read {}",
                data.len(),
                buf.len()
            )));
        }
        buf.copy_from_slice(data);
        Ok(())
    }

    fn write(&self, disk: usize, slot: u64, data: &[u8]) -> Result<()> {
        let mut disk_tbl =
            self.disks.get(disk).ok_or_else(|| Error::io(format!("no such disk {disk}")))?.write();
        let slot = slot as usize;
        if disk_tbl.len() <= slot {
            disk_tbl.resize_with(slot + 1, || None);
        }
        // Reuse the old allocation when possible.
        match &mut disk_tbl[slot] {
            Some(old) if old.len() == data.len() => old.copy_from_slice(data),
            entry => *entry = Some(data.to_vec().into_boxed_slice()),
        }
        Ok(())
    }

    fn discard(&self, disk: usize, slot: u64) {
        if let Some(d) = self.disks.get(disk) {
            let mut tbl = d.write();
            if let Some(entry) = tbl.get_mut(slot as usize) {
                *entry = None;
            }
        }
    }
}

/// File-based backend: disk `i` is the file `disk_<i>.bin` in a
/// directory; slot `s` occupies bytes `[s·B, (s+1)·B)`.
pub struct FileBackend {
    files: Vec<File>,
    block_bytes: usize,
}

impl FileBackend {
    /// Create (or truncate) `disks` backing files in `dir`.
    pub fn create(dir: &Path, disks: usize, block_bytes: usize) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(disks);
        for i in 0..disks {
            let path = dir.join(format!("disk_{i}.bin"));
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            files.push(f);
        }
        Ok(Self { files, block_bytes })
    }
}

impl Backend for FileBackend {
    fn read(&self, disk: usize, slot: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let f = self.files.get(disk).ok_or_else(|| Error::io(format!("no such disk {disk}")))?;
        f.read_exact_at(buf, slot * self.block_bytes as u64)
            .map_err(|e| Error::io(format!("read d{disk}:{slot}: {e}")))
    }

    fn write(&self, disk: usize, slot: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let f = self.files.get(disk).ok_or_else(|| Error::io(format!("no such disk {disk}")))?;
        f.write_all_at(data, slot * self.block_bytes as u64)
            .map_err(|e| Error::io(format!("write d{disk}:{slot}: {e}")))
    }

    fn discard(&self, _disk: usize, _slot: u64) {
        // Files keep their extents; a production system would punch a
        // hole. Space accounting is handled by the allocator.
    }
}

/// Test helper: delegates to an inner backend but fails a chosen
/// operation, to verify error propagation through the async engine.
pub struct FaultInjectingBackend<B> {
    inner: B,
    fail_at_op: u64,
    ops: AtomicU64,
}

impl<B: Backend> FaultInjectingBackend<B> {
    /// Fail the `fail_at_op`-th operation (0-based) with an I/O error.
    pub fn new(inner: B, fail_at_op: u64) -> Self {
        Self { inner, fail_at_op, ops: AtomicU64::new(0) }
    }

    fn tick(&self) -> Result<()> {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n == self.fail_at_op {
            Err(Error::io(format!("injected fault at operation {n}")))
        } else {
            Ok(())
        }
    }
}

impl<B: Backend> Backend for FaultInjectingBackend<B> {
    fn read(&self, disk: usize, slot: u64, buf: &mut [u8]) -> Result<()> {
        self.tick()?;
        self.inner.read(disk, slot, buf)
    }

    fn write(&self, disk: usize, slot: u64, data: &[u8]) -> Result<()> {
        self.tick()?;
        self.inner.write(disk, slot, data)
    }

    fn discard(&self, disk: usize, slot: u64) {
        self.inner.discard(disk, slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(b: &dyn Backend) {
        let data = vec![7u8; 64].into_boxed_slice();
        b.write(0, 3, &data).expect("write");
        let mut out = vec![0u8; 64];
        b.read(0, 3, &mut out).expect("read");
        assert_eq!(&out[..], &data[..]);
    }

    #[test]
    fn mem_roundtrip() {
        let b = MemBackend::new(2);
        roundtrip(&b);
    }

    #[test]
    fn mem_read_unwritten_errors() {
        let b = MemBackend::new(1);
        let mut buf = vec![0u8; 16];
        assert!(b.read(0, 0, &mut buf).is_err());
        assert!(b.read(0, 99, &mut buf).is_err());
    }

    #[test]
    fn mem_bad_disk_errors() {
        let b = MemBackend::new(1);
        let mut buf = vec![0u8; 16];
        assert!(b.read(5, 0, &mut buf).is_err());
        assert!(b.write(5, 0, &buf).is_err());
    }

    #[test]
    fn mem_discard_frees_and_read_fails() {
        let b = MemBackend::new(1);
        b.write(0, 0, &[1u8; 32]).expect("write");
        assert_eq!(b.resident_blocks(), 1);
        assert_eq!(b.resident_bytes(), 32);
        b.discard(0, 0);
        assert_eq!(b.resident_blocks(), 0);
        let mut buf = vec![0u8; 32];
        assert!(b.read(0, 0, &mut buf).is_err());
    }

    #[test]
    fn file_roundtrip_and_sparse_slots() {
        let dir = std::env::temp_dir().join(format!("demsort-fb-{}", std::process::id()));
        let b = FileBackend::create(&dir, 2, 64).expect("create");
        roundtrip(&b);
        // non-contiguous slots work
        b.write(1, 10, &[9u8; 64]).expect("write");
        let mut out = vec![0u8; 64];
        b.read(1, 10, &mut out).expect("read");
        assert_eq!(out, vec![9u8; 64]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_injection_fails_once() {
        let b = FaultInjectingBackend::new(MemBackend::new(1), 1);
        let data = vec![1u8; 16];
        b.write(0, 0, &data).expect("op 0 fine");
        assert!(b.write(0, 1, &data).is_err(), "op 1 injected");
        b.write(0, 1, &data).expect("op 2 fine");
    }
}
