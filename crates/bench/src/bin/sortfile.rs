//! `sortfile` — externally sort a file of SortBenchmark records with
//! CANONICALMERGESORT.
//!
//! ```text
//! sortfile [--pes P] [--mem-mib M] [--transport local|tcp]
//!          [--ranks P] [--worker-bin PATH] INPUT OUTPUT
//! ```
//!
//! The file is split evenly over `P` PEs, sorted, and the canonical
//! per-PE outputs are concatenated into OUTPUT (which is therefore
//! globally sorted). `--mem-mib` bounds each PE's memory, so files
//! much larger than `P × M` are sorted genuinely externally.
//!
//! `--transport` selects the cluster substrate:
//!
//! * `local` (default) — the in-process cluster: one thread per PE
//!   over the channel mesh.
//! * `tcp` — the multi-process cluster: one `demsort-worker` process
//!   per rank over the loopback TCP mesh (`--ranks` is an alias for
//!   `--pes` in this mode). Identical SPMD code path, identical
//!   counters, real process isolation.

use demsort_bench::procs::{launch, sibling_worker_bin};
use demsort_core::canonical::sort_cluster;
use demsort_core::recio::read_records;
use demsort_types::{AlgoConfig, JobConfig, MachineConfig, Record as _, Record100, SortConfig};
use std::io::{Read, Seek, SeekFrom, Write};

fn main() {
    let mut pes = 4usize;
    let mut mem_mib = 8usize;
    let mut transport = "local".to_string();
    let mut timeout_ms = 30_000u64;
    let mut worker_bin: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pes" | "--ranks" => pes = args.next().expect("--pes P").parse().expect("pes"),
            "--mem-mib" => mem_mib = args.next().expect("--mem-mib M").parse().expect("mem"),
            "--transport" => transport = args.next().expect("--transport local|tcp"),
            "--timeout-ms" => {
                timeout_ms = args.next().expect("--timeout-ms T").parse().expect("timeout")
            }
            "--worker-bin" => worker_bin = Some(args.next().expect("--worker-bin PATH")),
            "--help" | "-h" => {
                println!(
                    "sortfile [--pes P] [--mem-mib M] [--transport local|tcp] \
                     [--timeout-ms T] [--worker-bin PATH] INPUT OUTPUT"
                );
                return;
            }
            other => positional.push(other.to_string()),
        }
    }
    let [input, output] = positional.as_slice() else {
        eprintln!("usage: sortfile [--pes P] [--mem-mib M] [--transport local|tcp] INPUT OUTPUT");
        std::process::exit(2);
    };

    let meta = std::fs::metadata(input).expect("stat input");
    let total_records = (meta.len() / Record100::BYTES as u64) as usize;
    assert_eq!(meta.len() % Record100::BYTES as u64, 0, "input must be whole 100-byte records");

    let machine = MachineConfig {
        pes,
        disks_per_pe: 4,
        block_bytes: 64 << 10,
        mem_bytes_per_pe: mem_mib << 20,
        cores_per_pe: std::thread::available_parallelism()
            .map_or(1, |c| c.get() / pes.max(1))
            .max(1),
    };

    match transport.as_str() {
        "local" => sort_local(machine, total_records, input, output),
        "tcp" => sort_tcp(machine, input, output, timeout_ms, worker_bin),
        other => {
            eprintln!("unknown transport {other} (expected local or tcp)");
            std::process::exit(2);
        }
    }
}

/// The in-process cluster: one thread per PE over the channel mesh.
fn sort_local(machine: MachineConfig, total_records: usize, input: &str, output: &str) {
    let pes = machine.pes;
    eprintln!(
        "sorting {total_records} records on {pes} in-process PEs ({} each)",
        demsort_types::fmtsize::fmt_bytes(machine.mem_bytes_per_pe as u64)
    );
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid config");

    // Each PE loads its contiguous shard of the file (the same
    // ⌊i·n/p⌋ boundaries the TCP workers use).
    let input_path = input.to_string();
    let outcome = sort_cluster::<Record100, _>(&cfg, move |pe, p| {
        let shard = demsort_types::ranks::owned_range(pe, p, total_records as u64);
        let mut f = std::fs::File::open(&input_path).expect("open input");
        f.seek(SeekFrom::Start(shard.start * Record100::BYTES as u64)).expect("seek");
        let mut bytes = vec![0u8; (shard.end - shard.start) as usize * Record100::BYTES];
        f.read_exact(&mut bytes).expect("read shard");
        let mut recs = Vec::with_capacity((shard.end - shard.start) as usize);
        Record100::decode_slice(&bytes, &mut recs);
        recs
    })
    .expect("sort");

    // Concatenate the canonical outputs: globally sorted by key.
    let out = std::fs::File::create(output).expect("create output");
    let mut out = std::io::BufWriter::new(out);
    let mut buf = vec![0u8; Record100::BYTES];
    for (pe, o) in outcome.per_pe.iter().enumerate() {
        let recs = read_records::<Record100>(outcome.storage.pe(pe), &o.output.run, o.output.elems)
            .expect("read output");
        for rec in recs {
            rec.encode(&mut buf);
            out.write_all(&buf).expect("write");
        }
    }
    out.flush().expect("flush");
    eprintln!(
        "done: {} runs, I/O volume {:.2} N, communication {:.2} N",
        outcome.per_pe[0].runs,
        outcome.report.io_volume_over_n(),
        outcome.report.comm_volume_over_n(),
    );
}

/// The multi-process cluster: one `demsort-worker` process per rank
/// over the loopback TCP mesh — identical SPMD code path.
fn sort_tcp(
    machine: MachineConfig,
    input: &str,
    output: &str,
    timeout_ms: u64,
    worker_bin: Option<String>,
) {
    let pes = machine.pes;
    eprintln!(
        "sorting via {pes} worker processes over loopback TCP ({} each)",
        demsort_types::fmtsize::fmt_bytes(machine.mem_bytes_per_pe as u64)
    );
    let job = JobConfig {
        input: input.to_string(),
        output: output.to_string(),
        machine,
        algo: AlgoConfig::default(),
        read_timeout_ms: timeout_ms,
    };
    let worker = match worker_bin {
        Some(p) => std::path::PathBuf::from(p),
        None => sibling_worker_bin().unwrap_or_else(|e| {
            eprintln!("sortfile: {e}");
            std::process::exit(2);
        }),
    };
    match launch(&job, &worker) {
        Ok(outcome) => eprintln!(
            "done: {} runs, I/O volume {:.2} N, communication {:.2} N",
            outcome.report.runs,
            outcome.report.io_volume_over_n(),
            outcome.report.comm_volume_over_n(),
        ),
        Err(e) => {
            eprintln!("sortfile: {e}");
            std::process::exit(1);
        }
    }
}
