//! Trace invariants on a real traced 4-process TCP run: launch
//! `demsort-launch`'s code path with `trace_dir` set, then check the
//! per-rank journals the workers wrote — every span closed exactly
//! once, per-rank timestamps monotone, phase spans in algorithm order,
//! and the merge pipelining invariant (`Issued(b+1)` precedes
//! `Emitted(b)`) re-pinned from the journal instead of the old
//! in-memory `merge_events`. The merged timeline must be
//! cluster-chronological and the Chrome export valid JSON.

use demsort_bench::procs::launch;
use demsort_types::json::Json;
use demsort_types::trace::{
    chrome_trace, merge_journals, read_journal, validate_rank_journal, TraceEv, TraceOp,
};
use demsort_types::{
    AlgoConfig, JobConfig, MachineConfig, Phase, Record as _, Record100, SortAlgo,
};
use demsort_workloads::gensort_records;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

const RECORDS: usize = 3_000;
const RANKS: usize = 4;

fn test_machine() -> MachineConfig {
    // Tiny blocks and memory force several runs and several merge
    // batches per rank, so the pipelining invariant has something to
    // bite on.
    MachineConfig {
        pes: RANKS,
        disks_per_pe: 2,
        block_bytes: 1 << 10,
        mem_bytes_per_pe: 16 << 10,
        cores_per_pe: 1,
    }
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demsort-trace-tcp-{}-{name}", std::process::id()))
}

fn write_gensort_input(path: &Path) {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create input"));
    let mut buf = vec![0u8; Record100::BYTES];
    for rec in gensort_records(11, 0, RECORDS) {
        rec.encode(&mut buf);
        f.write_all(&buf).expect("write record");
    }
    f.flush().expect("flush");
}

#[test]
fn four_rank_traced_run_produces_valid_journals() {
    let input = tmp_path("input.dat");
    let output = tmp_path("out.dat");
    let trace_dir = tmp_path("trace");
    write_gensort_input(&input);
    let _ = std::fs::remove_dir_all(&trace_dir);

    let job = JobConfig {
        input: input.to_string_lossy().into_owned(),
        output: output.to_string_lossy().into_owned(),
        machine: test_machine(),
        algo: AlgoConfig::default(),
        algorithm: SortAlgo::Striped,
        read_timeout_ms: 60_000,
        trace_dir: trace_dir.to_string_lossy().into_owned(),
    };
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_demsort-worker"));
    let outcome = launch(&job, &worker).expect("traced striped tcp launch");
    assert_eq!(outcome.per_rank.len(), RANKS);
    assert!(outcome.report.runs > 1, "test must exercise the merge phase (R > 1)");

    let mut per_rank = Vec::new();
    for rank in 0..RANKS {
        let path = trace_dir.join(format!("rank{rank}.jsonl"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("rank {rank} journal missing: {e}"));
        let records = read_journal(&text).expect("journal parses through the shared reader");
        assert!(!records.is_empty(), "rank {rank} journal is empty");
        assert!(records.iter().all(|r| r.rank == rank), "rank {rank}: wrong rank stamp");

        // The shared validator (what `demsort-trace` runs): single
        // rank, monotone timestamps, spans closed exactly once, phase
        // spans in algorithm order.
        validate_rank_journal(&records)
            .unwrap_or_else(|e| panic!("rank {rank}: invariant violated: {e}"));

        // Re-pin the headline invariants explicitly, independent of
        // the validator's implementation.
        assert!(
            records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "rank {rank}: timestamps not monotone"
        );
        let begins: Vec<u64> = records
            .iter()
            .filter_map(|r| match r.op {
                TraceOp::Begin(id) => Some(id),
                _ => None,
            })
            .collect();
        let ends: Vec<u64> = records
            .iter()
            .filter_map(|r| match r.op {
                TraceOp::End(id) => Some(id),
                _ => None,
            })
            .collect();
        let mut sb = begins.clone();
        sb.sort_unstable();
        sb.dedup();
        assert_eq!(sb.len(), begins.len(), "rank {rank}: duplicate span open");
        let mut se = ends.clone();
        se.sort_unstable();
        se.dedup();
        assert_eq!(se.len(), ends.len(), "rank {rank}: span closed twice");
        assert_eq!(sb, se, "rank {rank}: spans must close exactly once");

        // Phase spans in algorithm order; the striped sort opens run
        // formation first and the merge last.
        let phases: Vec<Phase> = records
            .iter()
            .filter_map(|r| match (&r.op, &r.ev) {
                (TraceOp::Begin(_), TraceEv::Phase { phase }) => Some(*phase),
                _ => None,
            })
            .collect();
        assert!(!phases.is_empty(), "rank {rank}: no phase spans");
        assert!(
            phases.windows(2).all(|w| w[0].index() <= w[1].index()),
            "rank {rank}: phases out of order: {phases:?}"
        );
        assert_eq!(phases.first(), Some(&Phase::RunFormation), "rank {rank}");
        assert_eq!(phases.last(), Some(&Phase::FinalMerge), "rank {rank}");

        // Collectives rode the same journal.
        assert!(
            records.iter().any(|r| matches!(r.ev, TraceEv::Collective { .. })),
            "rank {rank}: no collective spans"
        );

        // Merge pipelining, from the journal: within every (pass,
        // group), batch b+1's fetches are issued before batch b's
        // records are emitted.
        let mut issued: BTreeMap<(usize, usize, usize), usize> = BTreeMap::new();
        let mut emitted: BTreeMap<(usize, usize, usize), usize> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            match r.ev {
                TraceEv::MergeIssued { pass, group, batch, .. } => {
                    issued.entry((pass, group, batch)).or_insert(i);
                }
                TraceEv::MergeEmitted { pass, group, batch, .. } => {
                    emitted.insert((pass, group, batch), i);
                }
                _ => {}
            }
        }
        assert!(
            issued.keys().any(|&(_, _, b)| b > 0),
            "rank {rank}: merge must span multiple batches to exercise pipelining"
        );
        for (&(pass, group, b), &epos) in &emitted {
            if let Some(&ipos) = issued.get(&(pass, group, b + 1)) {
                assert!(
                    ipos < epos,
                    "rank {rank}: batch {} issued after batch {b} emitted (pass {pass}, \
                     group {group})",
                    b + 1
                );
            }
        }
        per_rank.push(records);
    }

    // The merged timeline is cluster-chronological.
    let merged = merge_journals(per_rank);
    assert!(
        merged.windows(2).all(|w| (w[0].ts_ns, w[0].rank) <= (w[1].ts_ns, w[1].rank)),
        "merged timeline must be sorted by (ts, rank)"
    );

    // The Chrome export is valid JSON with one event per record.
    let chrome = chrome_trace(&merged);
    let doc = Json::parse(&chrome).expect("chrome trace parses");
    assert_eq!(doc.as_arr().map(<[Json]>::len), Some(merged.len()));

    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&output);
    let _ = std::fs::remove_dir_all(&trace_dir);
}
