//! # demsort
//!
//! A reproduction of *"Scalable Distributed-Memory External Sorting"*
//! (Rahn, Sanders, Singler; ICDE 2010) — the DEMSort system that led the
//! Indy GraySort and MinuteSort categories of the SortBenchmark in 2009.
//!
//! This facade crate re-exports the whole suite:
//!
//! * [`types`] — records, keys, configuration, counters;
//! * [`storage`] — the asynchronous multi-disk block engine (STXXL-style);
//! * [`net`] — the in-process MPI-style cluster runtime;
//! * [`core`] — the algorithms: CANONICALMERGESORT, globally striped
//!   mergesort, the NOW-Sort baseline, and all their building blocks;
//! * [`workloads`] — input generators and validators;
//! * [`simcost`] — the hardware cost model that reports paper-scale
//!   times from measured volumes.
//!
//! ## Quickstart
//!
//! ```
//! use demsort::prelude::*;
//!
//! // A 4-PE simulated cluster with tiny blocks (tests/demos).
//! let cfg = SortConfig::new(MachineConfig::tiny(4), AlgoConfig::default()).unwrap();
//!
//! // Sort 4 × 2000 uniformly random 16-byte elements.
//! let outcome = demsort::core::canonical::sort_cluster::<Element16, _>(&cfg, |pe, p| {
//!     demsort::workloads::generate_pe_input(InputSpec::Uniform, 42, pe, p, 2000)
//! })
//! .unwrap();
//!
//! // PE i now holds the elements of global ranks ⌊i·N/P⌋..⌊(i+1)·N/P⌋,
//! // sorted and striped over its local disks.
//! assert_eq!(outcome.per_pe.len(), 4);
//! let n: u64 = outcome.per_pe.iter().map(|o| o.output.elems).sum();
//! assert_eq!(n, 8000);
//!
//! // Measured volumes: an external sort reads and writes the data
//! // about twice (4N of disk traffic), communicating it about once.
//! assert!(outcome.report.io_volume_over_n() < 7.0);
//! ```

pub use demsort_core as core;
pub use demsort_net as net;
pub use demsort_simcost as simcost;
pub use demsort_storage as storage;
pub use demsort_types as types;
pub use demsort_workloads as workloads;

/// Commonly used items for application code.
pub mod prelude {
    pub use demsort_core::canonical::{
        canonical_mergesort, sort_cluster, ClusterOutcome, PeOutcome,
    };
    pub use demsort_core::ctx::ClusterStorage;
    pub use demsort_core::recio::read_records;
    pub use demsort_core::validate::{validate_output, Fingerprint, ValidationReport};
    pub use demsort_simcost::{CostModel, HardwareProfile};
    pub use demsort_types::{
        AlgoConfig, Element16, Key, Key10, MachineConfig, Phase, Record, Record100, SortConfig,
        SortReport,
    };
    pub use demsort_workloads::InputSpec;
}
