//! Mergesort with global striping (Section III).
//!
//! The I/O-optimal sibling of CANONICALMERGESORT: runs and output are
//! striped over *all* `D` disks of the cluster ("subsequent blocks are
//! allocated on subsequent disks"), which makes every read and write
//! perfectly parallel but costs a communication for each of them —
//! "we need 4–5 communications for two passes of sorting".
//!
//! * **Run formation**: like phase 1 of the canonical algorithm, but
//!   the sorted run is written striped: block `g` of a run goes to disk
//!   `g mod D` (on PE `(g mod D) / disks_per_pe`), so the run's data is
//!   exchanged once more after the internal sort.
//! * **Merging**: up to `k_max` runs are merged per pass. The global
//!   *prediction sequence* — the smallest key of every block, recorded
//!   at write time — gives the exact order in which blocks are needed
//!   \[11\]\[14\]. A batch of the next `Θ(M/B)` blocks is fetched (each PE
//!   reads the blocks on its own disks) and **merged, not re-sorted**:
//!   the fetched blocks come from already sorted runs, so each PE
//!   feeds its per-run sorted sequences (plus the per-run carry tails
//!   of the previous batch) into a loser tree, and the merged prefix
//!   that is provably complete — smaller than every not-yet-merged
//!   block's first key — is redistributed canonically with one
//!   splitter-based exchange ([`parallel_sort_presorted`]: exact
//!   splitters, one all-to-all, a `P`-way merge) and written out
//!   striped. The rest stays buffered per run for the next batch (at
//!   most `B` elements per run remain unmerged, so carry-over is
//!   bounded). Merging costs `O(n log R)` comparisons per pass instead
//!   of the `O(n log n)` per batch that full batch sorting would pay —
//!   the internal-work bound that dominates throughput at scale.
//!
//! The result is a globally striped sorted sequence: block `g` of the
//! output holds elements `g·rpb ..`, on disk `g mod D` — emitted
//! pieces continue the round-robin striping where the previous piece
//! left off, so the per-disk block counts of the stitched output
//! differ by at most one.
//!
//! All block reads go through the location-transparent
//! [`ClusterStorage`] block service: the merge phase issues its batch
//! fetches asynchronously in the duality-optimal prefetch order
//! ([`duality_issue_order`], Appendix A), and the fetches for batch
//! `k+1` are issued **before** batch `k` is merged (double-buffered
//! prefetch — the communicator's [`Tracer`] journals the
//! interleaving as [`TraceEv::MergeIssued`] /
//! [`TraceEv::MergeEmitted`] events), so the reads overlap the merge and the exchange.
//! [`read_striped`] reconstructs the output from *any single rank* —
//! blocks owned by peers are fetched over the wire in pipelined
//! per-owner batches.

use crate::ctx::{assemble_report, BlockFetch, ClusterStorage, PhaseRecorder};
use crate::merge::{merge_cpu, par_merge_k_below_traced_with_min, par_merge_k_traced_with_min};
use crate::psort::{parallel_sort, parallel_sort_presorted};
use crate::recio::records_per_block;
use crate::runform::{ingest_input, LocalInput};
use demsort_net::{chunked_alltoallv, run_cluster, Communicator, MPI_VOLUME_LIMIT};
use demsort_storage::{duality_issue_order, BlockId, PeStorage};
use demsort_types::{
    CommCounters, CpuCounters, Error, Phase, PhaseStats, Record, Result, SortConfig, SortReport,
    TraceEv, Tracer,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A globally striped sorted sequence: block `g` lives on PE
/// `owners[g]` at `blocks[g]`, holding records
/// `[g·rpb, min((g+1)·rpb, elems))`; `first_keys[g]` is its smallest
/// key (the prediction sequence).
#[derive(Clone, Debug)]
pub struct StripedRun<K> {
    /// Owning PE per global block (**global** rank — stable across
    /// survivor renumbering during rank-failure recovery).
    pub owners: Vec<u32>,
    /// Local block id per global block.
    pub blocks: Vec<BlockId>,
    /// Prediction sequence: first key per global block.
    pub first_keys: Vec<K>,
    /// Valid records per block (interior blocks of stitched merge
    /// output can be partial, so counts are explicit).
    pub counts: Vec<u32>,
    /// Replica directory per global block: `(replica rank, block id)`
    /// pairs in buddy order (replica `i` of a block owned by `o`
    /// lives on rank `(o + i) mod P`). Empty unless the run was
    /// replicated ([`AlgoConfig::replication`] ` > 0`) — merged
    /// intermediate runs are never replicated; recovery re-derives
    /// them from the initial runs.
    ///
    /// [`AlgoConfig::replication`]: demsort_types::AlgoConfig::replication
    pub replicas: Vec<Vec<(u32, BlockId)>>,
    /// Total records.
    pub elems: u64,
}

impl<K> StripedRun<K> {
    /// A run with no blocks and no records.
    pub fn empty() -> Self {
        Self {
            owners: Vec::new(),
            blocks: Vec::new(),
            first_keys: Vec::new(),
            counts: Vec::new(),
            replicas: Vec::new(),
            elems: 0,
        }
    }
}

/// Outcome of the striped sort on one PE.
pub struct StripedOutcome<R: Record> {
    /// The globally striped sorted output (identical on every PE).
    pub output: StripedRun<R::Key>,
    /// Number of initial runs.
    pub runs: usize,
    /// Number of merge passes (0 if a single run sufficed).
    pub passes: usize,
    /// CPU counters for this PE.
    pub cpu: CpuCounters,
    /// Per-phase measured counters: run formation (striped writes
    /// included), then — when merging happened — the merge passes
    /// under [`Phase::FinalMerge`].
    ///
    /// The fetch/merge interleaving of the merge passes is journalled
    /// through the communicator's [`Tracer`] as
    /// [`TraceEv::MergeIssued`] / [`TraceEv::MergeEmitted`]
    /// events: overlap means `Issued(b+1)` precedes `Emitted(b)` (the
    /// next batch's reads are in flight while the current batch
    /// merges).
    pub phases: Vec<(Phase, PhaseStats)>,
    /// Cumulative buffer-pool counters of this PE's data plane at the
    /// end of the sort. Diagnostics only: the hit/miss split depends on
    /// worker timing, so it is never part of the pinned identity
    /// surface (unlike `cpu` and `phases`).
    pub pool: demsort_types::PoolCounters,
}

/// The rank mapping a merge runs under. In the common case it is the
/// identity (`globals[i] == i`); after a rank failure the survivors
/// re-run the merge over a renumbered subgroup communicator, and this
/// view translates between the subgroup's dense ranks (what `comm`
/// speaks) and the global ranks recorded in run directories and used
/// to address [`ClusterStorage`].
struct RankView {
    /// This rank's global rank (`storage.pe(my_global)` is ours).
    my_global: usize,
    /// Global rank of each communicator rank, strictly increasing.
    globals: Vec<usize>,
}

impl RankView {
    fn identity(me: usize, p: usize) -> Self {
        Self { my_global: me, globals: (0..p).collect() }
    }
}

/// Factory for a survivor communicator over the given (strictly
/// increasing, global) member ranks — the `subgroup` hook of
/// [`ResilientHooks`].
pub type SubgroupFn<'a> = Box<dyn FnMut(&[usize]) -> Result<Communicator> + 'a>;

/// Failure-recovery callbacks for
/// [`striped_mergesort_resilient`]. The sort itself is
/// transport-agnostic; these hooks supply the three things only the
/// harness knows: who died, how the survivors regroup, and (for
/// tests) a seam to abandon a rank at a deterministic point.
pub struct ResilientHooks<'a> {
    /// Failure-detector snapshot: `dead[r]` is true once rank `r` is
    /// known dead (e.g. [`Transport::dead_peers`]). Polled after a
    /// merge attempt fails with [`Error::Comm`].
    ///
    /// [`Transport::dead_peers`]: demsort_net::Transport::dead_peers
    pub dead_set: Box<dyn Fn() -> Vec<bool> + 'a>,
    /// Build a communicator over the given **global** ranks (strictly
    /// increasing, containing this rank). The harness is responsible
    /// for the epoch cut that makes the new group's channels clean
    /// (e.g. [`Transport::advance_epoch`] + drain, then
    /// [`SubTransport`]).
    ///
    /// [`Transport::advance_epoch`]: demsort_net::Transport::advance_epoch
    /// [`SubTransport`]: demsort_net::SubTransport
    pub subgroup: SubgroupFn<'a>,
    /// Test seam, called with this rank's global rank when run
    /// formation (and replication) is complete and merging is about
    /// to start. Returning `false` makes this rank abandon the sort
    /// with [`Error::Comm`] — the in-process stand-in for a killed
    /// process (its transport endpoint drops, so peers see it dead).
    pub on_merge_start: Option<Box<dyn Fn(usize) -> bool + 'a>>,
}

/// How long recovery waits for the failure detector to name a dead
/// rank after a merge attempt dies with a communication error.
const DEAD_SET_TIMEOUT: Duration = Duration::from_secs(10);
/// Poll interval while waiting on the failure detector.
const DEAD_SET_POLL: Duration = Duration::from_millis(20);

/// Sort `input` into a globally striped output (Section III).
/// Collective. `k_max` bounds the merge fan-in (`None` = `M/B`).
///
/// `input` must reside on this rank's own storage
/// (`storage.pe(comm.rank())`); cross-rank block access — none during
/// the sort itself, all of it in [`read_striped`] — goes through
/// `storage`'s block service, so the identical call works on the
/// in-process cluster and on a multi-process single-rank view.
///
/// Equivalent to [`striped_mergesort_resilient`] with no hooks: a
/// rank failure surfaces as [`Error::Comm`] instead of triggering
/// recovery.
pub fn striped_mergesort<R: Record + Ord>(
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    input: LocalInput,
    cores: usize,
    k_max: Option<usize>,
) -> Result<StripedOutcome<R>> {
    striped_mergesort_resilient::<R>(comm, storage, cfg, input, cores, k_max, None)
}

/// [`striped_mergesort`] with rank-failure recovery.
///
/// With [`AlgoConfig::replication`]` = f > 0`, run formation stores
/// `f` replicas of every formed run block on the owner's buddy ranks
/// (replica `i` on rank `(owner + i) mod P`) through the write side
/// of the block service, and the merge retains consumed initial-run
/// blocks instead of freeing them. If a merge attempt then fails with
/// [`Error::Comm`] and `hooks` are provided, the survivors: (1) poll
/// `hooks.dead_set` until it names the dead rank(s); (2) regroup via
/// `hooks.subgroup` and verify by an allgather that they agree on the
/// membership; (3) re-route every dead rank's blocks to the first
/// live replica; and (4) re-run the merge from the
/// initial runs over the survivor communicator, completing degraded.
/// The failover is recorded in the [`Phase::FinalMerge`] counters:
/// each replica rank charges one message and one block of send volume
/// per block it re-serves, and the survivor communicator's traffic is
/// folded into the same phase. One recovery attempt is made; a second
/// failure surfaces as the error it is.
///
/// With `f = 0` (the default) the data path is byte-for-byte the
/// non-resilient sort: no stores, no retained blocks, no extra
/// collectives, identical counters.
///
/// Degraded completion trades space for survival: blocks retained for
/// a recovery that did happen are not reclaimed afterwards (the
/// allocator high-water mark reflects that), and the output directory
/// names only surviving ranks.
///
/// [`AlgoConfig::replication`]: demsort_types::AlgoConfig::replication
#[allow(clippy::too_many_arguments)]
pub fn striped_mergesort_resilient<R: Record + Ord>(
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    input: LocalInput,
    cores: usize,
    k_max: Option<usize>,
    mut hooks: Option<ResilientHooks<'_>>,
) -> Result<StripedOutcome<R>> {
    let me = comm.rank();
    let p = comm.size();
    let st = storage.pe(me);
    let rpb = records_per_block::<R>(st.block_bytes());
    let bpr = cfg.machine.mem_blocks_per_pe().max(1);
    let k_max = k_max.unwrap_or(cfg.machine.mem_blocks_per_pe() * cfg.machine.pes).max(2);
    let f = cfg.algo.replication;
    let mut cpu = CpuCounters::default();
    let mut rec = PhaseRecorder::new(me, st.counters(), comm.counters());
    let view = RankView::identity(me, p);
    // Phase spans delimit the same intervals the recorder attributes
    // counters to; the merge loop journals its fetch/merge
    // interleaving through the same tracer.
    let tr = comm.tracer().clone();
    let pev = |ph: Phase| TraceEv::Phase { phase: ph };

    // ---- Run formation with striped writes ----
    tr.progress(Phase::RunFormation, 0, 1);
    let span = tr.begin(pev(Phase::RunFormation));
    let full_blocks = (input.elems / rpb as u64) as usize;
    let tail = (input.elems % rpb as u64) as usize;
    let local_groups = full_blocks.div_ceil(bpr).max(usize::from(tail > 0));
    let num_runs = comm.allreduce_max(local_groups as u64)?.max(1) as usize;

    let mut runs: Vec<StripedRun<R::Key>> = Vec::with_capacity(num_runs);
    for j in 0..num_runs {
        tr.progress(Phase::RunFormation, j as u64, num_runs as u64);
        let lo = (j * bpr).min(full_blocks);
        let hi = ((j + 1) * bpr).min(full_blocks);
        let mut data: Vec<R> = Vec::with_capacity((hi - lo + 1) * rpb);
        let mut handles = Vec::new();
        for b in lo..hi {
            handles.push((st.engine().read(input.run.blocks[b]), rpb));
            st.alloc().free(input.run.blocks[b]);
        }
        if tail > 0 && hi == full_blocks && j * bpr <= full_blocks && (lo < hi || full_blocks == 0)
        {
            let id = *input.run.blocks.last().expect("tail block");
            handles.push((st.engine().read(id), tail));
            st.alloc().free(id);
        }
        for (h, valid) in handles {
            let buf = h.wait()?;
            R::decode_slice(&buf[..valid * R::BYTES], &mut data);
            st.pool().add_copied((valid * R::BYTES) as u64);
            st.pool().put(buf);
        }
        let (sorted, sort_cpu) = parallel_sort(comm, data, cores)?;
        cpu = cpu.merge(&sort_cpu);
        rec.add_cpu(sort_cpu);
        // The run is canonically distributed in memory; write it
        // striped over all disks (one more communication).
        runs.push(write_striped::<R>(comm, st, cfg, &view, &sorted, 0)?);
    }
    // ---- Run replication (replication factor f > 0) ----
    if f > 0 {
        for run in &mut runs {
            replicate_run::<R::Key>(comm, storage, f, run, &mut rec)?;
        }
    }
    rec.finish_phase(Phase::RunFormation, st.counters(), comm.counters());
    tr.end(span, pev(Phase::RunFormation));

    if let Some(hook) = hooks.as_ref().and_then(|h| h.on_merge_start.as_ref()) {
        if !hook(me) {
            return Err(Error::comm(format!(
                "rank {me}: abandoning sort at merge start (failure harness)"
            )));
        }
    }

    // ---- Merge passes (one recovery attempt on rank death) ----
    // With replication on, keep the initial run directories: they are
    // what a recovery re-merges (with dead owners remapped to their
    // replicas).
    let recoverable = f > 0 && hooks.is_some();
    let merge_span = if num_runs > 1 {
        tr.progress(Phase::FinalMerge, 0, 1);
        tr.begin(pev(Phase::FinalMerge))
    } else {
        0
    };
    let attempt_runs = if recoverable { runs.clone() } else { std::mem::take(&mut runs) };
    let attempt =
        run_merge_passes::<R>(comm, storage, cfg, &view, attempt_runs, k_max, cores, f == 0, &tr);
    let (output, passes, merge_cpu_total) = match attempt {
        Ok(done) => done,
        Err(err) if recoverable && matches!(err, Error::Comm(_)) => {
            let hooks = hooks.as_mut().expect("recoverable implies hooks");
            // (1) Wait for the failure detector to name the dead.
            let deadline = Instant::now() + DEAD_SET_TIMEOUT;
            let dead = loop {
                let dead = (hooks.dead_set)();
                if dead.iter().any(|&d| d) {
                    break dead;
                }
                if Instant::now() >= deadline {
                    return Err(Error::comm(format!(
                        "merge failed ({err}) but the failure detector names no dead rank"
                    )));
                }
                std::thread::sleep(DEAD_SET_POLL);
            };
            let members: Vec<usize> =
                (0..p).filter(|&r| !dead.get(r).copied().unwrap_or(false)).collect();
            if members.len() < 2 || !members.contains(&me) {
                return Err(err);
            }
            // (2) Regroup the survivors.
            let sub = (hooks.subgroup)(&members)?;
            // (3) Agreement: every survivor must see the same
            // membership, or the re-merge would deadlock on mismatched
            // collectives. (Membership bitmask fits u64: P ≤ 64 holds
            // for every configuration this crate drives; larger
            // clusters would gather the member list itself.)
            if p <= 64 {
                let mask = members.iter().fold(0u64, |m, &r| m | (1u64 << r));
                let masks = sub.allgather_u64(mask)?;
                if masks.iter().any(|&m| m != mask) {
                    return Err(Error::comm(format!(
                        "survivors disagree on the dead set (masks {masks:x?})"
                    )));
                }
            }
            // (4) Re-route the dead ranks' blocks to their replicas
            // and record the failover: each block this rank now
            // re-serves is one message and one block of send volume.
            let (remapped, served) = remap_runs(&runs, &dead, me)?;
            if served > 0 {
                rec.add_comm(CommCounters {
                    messages: served,
                    bytes_sent: served * st.block_bytes() as u64,
                    ..CommCounters::default()
                });
            }
            // (5) Re-merge from the initial runs over the survivors.
            // The journal keeps the aborted attempt's events — the
            // peer-death instant separates the attempts, so the trace
            // shows the failover rather than hiding it.
            let sub_view = RankView { my_global: me, globals: members };
            let done = run_merge_passes::<R>(
                &sub, storage, cfg, &sub_view, remapped, k_max, cores, false, &tr,
            )?;
            rec.add_comm(sub.counters());
            done
        }
        Err(err) => return Err(err),
    };
    cpu = cpu.merge(&merge_cpu_total);
    rec.add_cpu(merge_cpu_total);
    if passes > 0 {
        // `num_runs` is a collective maximum, so every rank records the
        // same phase set (the report shapes stay comparable).
        rec.finish_phase(Phase::FinalMerge, st.counters(), comm.counters());
    }
    tr.end(merge_span, pev(Phase::FinalMerge));

    // Checkpoint the buffer-pool counters: in steady state the journal
    // shows hits climbing while misses stay flat (diagnostics only —
    // hit/miss splits are timing-dependent, never an identity surface).
    let pc = st.pool().counters();
    tr.instant(TraceEv::PoolStats {
        hits: pc.hits,
        misses: pc.misses,
        recycled: pc.recycled,
        discarded: pc.discarded,
        copied_bytes: pc.copied_bytes,
    });

    Ok(StripedOutcome { output, runs: num_runs, passes, cpu, phases: rec.into_stats(), pool: pc })
}

/// Run the merge passes over `runs` until one run remains. Collective
/// over `comm`; `view` maps its ranks to global ranks. Returns the
/// final run, the pass count, and the merge CPU counters.
#[allow(clippy::too_many_arguments)]
fn run_merge_passes<R: Record + Ord>(
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    view: &RankView,
    mut runs: Vec<StripedRun<R::Key>>,
    k_max: usize,
    cores: usize,
    free_consumed: bool,
    tracer: &Tracer,
) -> Result<(StripedRun<R::Key>, usize, CpuCounters)> {
    let mut passes = 0;
    let mut cpu = CpuCounters::default();
    while runs.len() > 1 {
        let pass = passes;
        passes += 1;
        let mut next: Vec<StripedRun<R::Key>> = Vec::new();
        for (group_idx, group) in runs.chunks(k_max).enumerate() {
            let (merged, pass_cpu) = merge_striped_group::<R>(
                comm,
                storage,
                cfg,
                view,
                group,
                pass,
                group_idx,
                cores,
                free_consumed,
                tracer,
            )?;
            cpu = cpu.merge(&pass_cpu);
            next.push(merged);
        }
        runs = next;
    }
    Ok((runs.into_iter().next().unwrap_or_else(StripedRun::empty), passes, cpu))
}

/// Store `f` replicas of every block of `run` this rank owns on its
/// buddy ranks — replica `i` of a block owned by `o` goes to rank
/// `(o + i) mod P` — through the write side of the block service,
/// then allgather the replica directory so every rank can fail over
/// without communication. Charges the stores to `rec` as
/// communication (one message and one block of send volume per stored
/// replica on the sender; the mirror receive volume on the buddy).
fn replicate_run<K>(
    comm: &Communicator,
    storage: &ClusterStorage,
    f: usize,
    run: &mut StripedRun<K>,
    rec: &mut PhaseRecorder,
) -> Result<()> {
    let me = comm.rank();
    let p = comm.size();
    let block_bytes = storage.pe(me).block_bytes();

    // Fetch this rank's blocks of the run once; fan the bytes out to
    // each buddy.
    let mine: Vec<usize> =
        (0..run.blocks.len()).filter(|&g| run.owners[g] as usize == me).collect();
    let ids: Vec<BlockId> = mine.iter().map(|&g| run.blocks[g]).collect();
    let mut data: Vec<Box<[u8]>> = Vec::with_capacity(ids.len());
    for fetch in storage.fetch_blocks(me, &ids)? {
        data.push(fetch.wait()?);
    }

    // Directory entries this rank contributes: (g, replica index i,
    // disk, slot) — the owner is already in the run directory and the
    // replica rank is derived as (owner + i) mod P.
    let mut entries: Vec<(u64, u32, BlockId)> = Vec::with_capacity(mine.len() * f);
    for i in 1..=f {
        let buddy = (me + i) % p;
        let blocks: Vec<(u32, &[u8])> =
            mine.iter().zip(&data).map(|(&g, d)| (run.blocks[g].disk, d.as_ref())).collect();
        let (stores, _target) = storage.store_blocks(me, buddy, &blocks)?;
        for (&g, store) in mine.iter().zip(stores) {
            entries.push((g as u64, i as u32, store.wait()?));
        }
    }
    let stored = (mine.len() * f) as u64;
    let received = (1..=f)
        .map(|i| {
            let giver = (me + p - i) % p;
            run.owners.iter().filter(|&&o| o as usize == giver).count() as u64
        })
        .sum::<u64>();
    rec.add_comm(CommCounters {
        messages: stored,
        bytes_sent: stored * block_bytes as u64,
        bytes_recv: received * block_bytes as u64,
    });

    // Allgather the replica directory.
    let mut msg = Vec::with_capacity(entries.len() * 20);
    for (g, i, id) in &entries {
        msg.extend_from_slice(&g.to_le_bytes());
        msg.extend_from_slice(&i.to_le_bytes());
        msg.extend_from_slice(&id.disk.to_le_bytes());
        msg.extend_from_slice(&id.slot.to_le_bytes());
    }
    let gathered = comm.allgather(msg)?;
    run.replicas = vec![Vec::new(); run.blocks.len()];
    let mut per_block: Vec<Vec<(u32, u32, BlockId)>> = vec![Vec::new(); run.blocks.len()];
    for buf in &gathered {
        let mut at = 0;
        while at < buf.len() {
            let g = u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes")) as usize;
            let i = u32::from_le_bytes(buf[at + 8..at + 12].try_into().expect("4 bytes"));
            let disk = u32::from_le_bytes(buf[at + 12..at + 16].try_into().expect("4 bytes"));
            let slot = u32::from_le_bytes(buf[at + 16..at + 20].try_into().expect("4 bytes"));
            let rank = ((run.owners[g] as usize + i as usize) % p) as u32;
            per_block[g].push((i, rank, BlockId::new(disk, slot)));
            at += 20;
        }
    }
    for (g, mut reps) in per_block.into_iter().enumerate() {
        reps.sort_unstable_by_key(|&(i, _, _)| i);
        run.replicas[g] = reps.into_iter().map(|(_, rank, id)| (rank, id)).collect();
    }
    Ok(())
}

/// Re-route every block owned by a dead rank to its first live
/// replica: the returned runs have `owners[g]`/`blocks[g]` rewritten
/// to the replica's rank and block id. Also returns how many blocks
/// rank `me` re-serves after the remap (the failover volume it
/// records). Fails with [`Error::Comm`] if any dead-owned block has
/// no live replica (every buddy also died).
fn remap_runs<K: Clone>(
    runs: &[StripedRun<K>],
    dead: &[bool],
    me: usize,
) -> Result<(Vec<StripedRun<K>>, u64)> {
    let mut served = 0u64;
    let mut out = Vec::with_capacity(runs.len());
    for (ri, run) in runs.iter().enumerate() {
        let mut run = run.clone();
        for g in 0..run.blocks.len() {
            let owner = run.owners[g] as usize;
            if !dead.get(owner).copied().unwrap_or(false) {
                continue;
            }
            let Some(&(rank, id)) = run.replicas.get(g).and_then(|reps| {
                reps.iter().find(|&&(r, _)| !dead.get(r as usize).copied().unwrap_or(false))
            }) else {
                return Err(Error::comm(format!(
                    "run {ri} block {g}: owner rank {owner} is dead and no live replica exists"
                )));
            };
            run.owners[g] = rank;
            run.blocks[g] = id;
            if rank as usize == me {
                served += 1;
            }
        }
        out.push(run);
    }
    Ok((out, served))
}

/// Write a canonically distributed sorted sequence (each PE holds its
/// `⌊i·n/P⌋..⌊(i+1)·n/P⌋` slice in memory) as a globally striped run.
///
/// `stripe_offset` (in blocks) rotates the round-robin disk
/// assignment: block `g` of this sequence goes to disk
/// `(stripe_offset + g) mod D`. The merge loop passes the running
/// block count of the pieces emitted so far, so a stitched multi-piece
/// run continues the striping where the previous piece left off
/// instead of every piece resetting to disk 0 (which would skew the
/// per-disk block counts).
///
/// `D` is the disk count of the *participating* ranks
/// (`view.globals`): a degraded re-merge stripes over the survivors'
/// disks only, and the directory records their global ranks.
fn write_striped<R: Record>(
    comm: &Communicator,
    st: &PeStorage,
    cfg: &SortConfig,
    view: &RankView,
    local: &[R],
    stripe_offset: u64,
) -> Result<StripedRun<R::Key>> {
    let p = comm.size();
    let me = comm.rank();
    let dpp = cfg.machine.disks_per_pe;
    let d = dpp * view.globals.len();
    let rpb = records_per_block::<R>(st.block_bytes()) as u64;

    let n = comm.allreduce_sum(local.len() as u64)?;
    let my_off = comm.exscan_sum(local.len() as u64)?;
    let total_blocks = n.div_ceil(rpb);

    // Ship each overlapped piece of each global block to the block's
    // owner: block g → disk ((off + g) mod D) → PE ((off + g) mod D)/dpp.
    // Message format per piece: (g: u64, offset_in_block: u32,
    // count: u32, records...).
    let mut msgs: Vec<Vec<u8>> = vec![Vec::new(); p];
    let mut pos = 0usize;
    while pos < local.len() {
        let g = (my_off + pos as u64) / rpb;
        let within = (my_off + pos as u64) % rpb;
        let take = ((rpb - within) as usize).min(local.len() - pos);
        let owner = (((stripe_offset + g) % d as u64) as usize) / dpp;
        let msg = &mut msgs[owner];
        msg.extend_from_slice(&g.to_le_bytes());
        msg.extend_from_slice(&(within as u32).to_le_bytes());
        msg.extend_from_slice(&(take as u32).to_le_bytes());
        let start = msg.len();
        msg.resize(start + take * R::BYTES, 0);
        R::encode_slice(&local[pos..pos + take], &mut msg[start..]);
        pos += take;
    }
    let received = chunked_alltoallv(comm, msgs, MPI_VOLUME_LIMIT)?;

    // Assemble my blocks (pieces of one block can come from two PEs).
    let mut mine: std::collections::BTreeMap<u64, (Vec<u8>, usize)> =
        std::collections::BTreeMap::new();
    let block_bytes = st.block_bytes();
    let mut assembled_bytes = 0u64;
    for buf in &received {
        let mut at = 0usize;
        while at < buf.len() {
            let g = u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
            let within =
                u32::from_le_bytes(buf[at + 8..at + 12].try_into().expect("4 bytes")) as usize;
            let count =
                u32::from_le_bytes(buf[at + 12..at + 16].try_into().expect("4 bytes")) as usize;
            let bytes = count * R::BYTES;
            // Assemble into a pooled block: `get_vec` hands back an
            // empty vec with one block of capacity, and resizing from
            // zero zero-fills it, so partially covered tails stay
            // deterministically padded.
            let entry = mine.entry(g).or_insert_with(|| {
                let mut v = st.pool().get_vec();
                v.resize(block_bytes, 0);
                (v, 0)
            });
            entry.0[within * R::BYTES..within * R::BYTES + bytes]
                .copy_from_slice(&buf[at + 16..at + 16 + bytes]);
            entry.1 += count;
            assembled_bytes += bytes as u64;
            at += 16 + bytes;
        }
    }
    st.pool().add_copied(assembled_bytes);

    // Write assembled blocks to the designated local disk and collect
    // (g, block id, first key) for the directory.
    let mut triples: Vec<(u64, BlockId, R::Key, u32)> = Vec::with_capacity(mine.len());
    let mut pending = Vec::with_capacity(mine.len());
    for (g, (data, count)) in mine {
        let expect = (n.min((g + 1) * rpb) - g * rpb) as usize;
        debug_assert_eq!(count, expect, "block {g} incomplete");
        let disk = (((stripe_offset + g) % d as u64) as usize) % dpp;
        let id = st.alloc().alloc_on(disk);
        let first = R::decode(&data[..R::BYTES]).key();
        pending.push(st.engine().write(id, data.into_boxed_slice()));
        triples.push((g, id, first, expect as u32));
    }
    for h in pending {
        // The write worker hands the staged buffer back; recycle it.
        st.pool().put(h.wait()?);
    }

    // Allgather the directory (every PE learns the whole striped run).
    let mut msg = Vec::with_capacity(triples.len() * (20 + R::BYTES));
    let mut key_buf = vec![0u8; R::BYTES];
    for (g, id, key, count) in &triples {
        msg.extend_from_slice(&g.to_le_bytes());
        msg.extend_from_slice(&id.disk.to_le_bytes());
        msg.extend_from_slice(&id.slot.to_le_bytes());
        msg.extend_from_slice(&count.to_le_bytes());
        R::with_key(*key).encode(&mut key_buf);
        msg.extend_from_slice(&key_buf);
    }
    let gathered = comm.allgather(msg)?;
    let tb = total_blocks as usize;
    let mut run = StripedRun {
        owners: vec![0; tb],
        blocks: vec![BlockId::new(0, 0); tb],
        first_keys: Vec::with_capacity(tb),
        counts: vec![0; tb],
        replicas: Vec::new(),
        elems: n,
    };
    let mut keys: Vec<Option<R::Key>> = vec![None; tb];
    for (pe, buf) in gathered.iter().enumerate() {
        let mut at = 0;
        while at < buf.len() {
            let g = u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes")) as usize;
            let disk = u32::from_le_bytes(buf[at + 8..at + 12].try_into().expect("4 bytes"));
            let slot = u32::from_le_bytes(buf[at + 12..at + 16].try_into().expect("4 bytes"));
            let count = u32::from_le_bytes(buf[at + 16..at + 20].try_into().expect("4 bytes"));
            run.owners[g] = view.globals[pe] as u32;
            run.blocks[g] = BlockId::new(disk, slot);
            run.counts[g] = count;
            keys[g] = Some(R::decode(&buf[at + 20..at + 20 + R::BYTES]).key());
            at += 20 + R::BYTES;
        }
    }
    run.first_keys =
        keys.into_iter().map(|k| k.expect("every global block written by someone")).collect();
    let _ = me;
    Ok(run)
}

/// Merge one group of striped runs into a new striped run.
///
/// Streaming multiway batch merge: the fetched blocks come from
/// already sorted runs, so each batch is *merged* (per-run sources +
/// per-run carry tails through a loser tree, `O(n log R)` comparisons)
/// instead of re-sorted, and the emitted prefix is redistributed with
/// one exact-splitter exchange. Batch `b+1`'s fetches are issued
/// before batch `b` is merged, so the reads overlap the merge and the
/// exchange (journalled through `tracer` as [`TraceEv::MergeIssued`] /
/// [`TraceEv::MergeEmitted`] events tagged with `pass` and
/// `group_idx`).
///
/// `free_consumed` controls whether fetched input blocks are released
/// after consumption: the replicated sort keeps its initial runs on
/// disk so a recovery can re-merge them.
#[allow(clippy::too_many_arguments)]
fn merge_striped_group<R: Record + Ord>(
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    view: &RankView,
    group: &[StripedRun<R::Key>],
    pass: usize,
    group_idx: usize,
    cores: usize,
    free_consumed: bool,
    tracer: &Tracer,
) -> Result<(StripedRun<R::Key>, CpuCounters)> {
    let me = view.my_global;
    let st = storage.pe(me);
    let p = comm.size();
    let k = group.len();
    let rpb = records_per_block::<R>(st.block_bytes());

    let mut cpu = CpuCounters::default();

    // Global consumption order: all blocks of the group sorted by
    // (first key, run, block) — the prediction sequence.
    let mut order: Vec<(usize, usize)> = Vec::new(); // (run-in-group, g)
    for (r, run) in group.iter().enumerate() {
        for g in 0..run.blocks.len() {
            order.push((r, g));
        }
    }
    order.sort_by(|&(ra, ga), &(rb, gb)| {
        (&group[ra].first_keys[ga], ra, ga).cmp(&(&group[rb].first_keys[gb], rb, gb))
    });

    // Batch size: Θ(M/B) blocks globally. The batch count is derived
    // from the (identical) group directories, so every PE walks the
    // same batches without a collective loop condition.
    let batch_blocks = (cfg.machine.mem_blocks_per_pe() * p / 2).max(1);
    let total_batches = order.len().div_ceil(batch_blocks);

    // Each PE reads the batch blocks that live on its disks, through
    // the location-transparent block service: all fetches are issued
    // asynchronously — in the duality-optimal prefetch order
    // (Appendix A), which the engine's per-disk FIFO queues realize —
    // and only waited on when the batch is merged, one loop iteration
    // later.
    let issue_batch = |b: usize| -> Result<Vec<(usize, BlockId, usize, BlockFetch)>> {
        let lo = b * batch_blocks;
        let hi = ((b + 1) * batch_blocks).min(order.len());
        let mine: Vec<(usize, BlockId, usize)> = order[lo..hi]
            .iter()
            .filter_map(|&(r, g)| {
                let run = &group[r];
                (run.owners[g] as usize == me).then(|| (r, run.blocks[g], run.counts[g] as usize))
            })
            .collect();
        let ids: Vec<BlockId> = mine.iter().map(|&(_, id, _)| id).collect();
        let schedule = duality_issue_order(&ids, batch_blocks.div_ceil(p).max(st.disks()));
        let fetches = storage.fetch_blocks_scheduled(me, &ids, &schedule)?;
        Ok(mine.into_iter().zip(fetches).map(|((r, id, v), f)| (r, id, v, f)).collect())
    };

    // sources[r]: this PE's buffered sorted slice of run r — the carry
    // tail of previous batches plus the blocks fetched this batch.
    // Within a run, blocks in increasing g hold increasing key ranges
    // (the run is globally sorted), so appending fetched blocks in
    // prediction order keeps each source sorted.
    let mut sources: Vec<Vec<R>> = vec![Vec::new(); k];
    let mut out_pieces: Vec<StripedRun<R::Key>> = Vec::new();
    let mut stripe_off = 0u64;
    let ev_issued = |batch: usize| TraceEv::MergeIssued {
        pass,
        group: group_idx,
        batch,
        batches: total_batches,
    };
    let mut pending = if total_batches > 0 {
        tracer.instant(ev_issued(0));
        Some(issue_batch(0)?)
    } else {
        None
    };
    for b in 0..total_batches {
        let current = pending.take().expect("batch issued one iteration ahead");
        // Overlap: hand batch b+1's reads to the block service before
        // merging batch b, so the disks prefetch while the CPUs merge
        // and the network exchanges.
        pending = if b + 1 < total_batches {
            tracer.instant(ev_issued(b + 1));
            Some(issue_batch(b + 1)?)
        } else {
            None
        };

        if cores > 1 {
            // Batch block decode, parallelized like the merge: wait the
            // fetches in issue order (the transport requires it), then
            // decode each run's blocks on its own thread. A run's
            // blocks append in prediction order either way, so every
            // source stays sorted and byte-identical to `cores = 1`.
            let mut per_run: Vec<Vec<(Box<[u8]>, usize)>> = vec![Vec::new(); k];
            for (r, id, valid, fetch) in current {
                per_run[r].push((fetch.wait()?, valid));
                if free_consumed {
                    st.alloc().free(id);
                }
            }
            std::thread::scope(|s| {
                for (src, bufs) in sources.iter_mut().zip(per_run) {
                    if !bufs.is_empty() {
                        s.spawn(move || {
                            for (buf, valid) in bufs {
                                R::decode_slice(&buf[..valid * R::BYTES], src);
                                st.pool().add_copied((valid * R::BYTES) as u64);
                                st.pool().put(buf);
                            }
                        });
                    }
                }
            });
        } else {
            for (r, id, valid, fetch) in current {
                let buf = fetch.wait()?;
                R::decode_slice(&buf[..valid * R::BYTES], &mut sources[r]);
                st.pool().add_copied((valid * R::BYTES) as u64);
                st.pool().put(buf);
                // In-place: the slot is reusable once consumed; the
                // backing bytes are only released on overwrite — unless
                // the run is an initial run of a replicated sort, which
                // a recovery may need to re-read.
                if free_consumed {
                    st.alloc().free(id);
                }
            }
        }

        // Threshold: smallest first key among not-yet-merged blocks.
        // `order` is sorted by first key, so the next batch's first
        // entry *is* the global minimum over every block that has not
        // entered the merge — its blocks may already be in flight, but
        // none of their elements are in the sources yet. All PEs share
        // the same batch index, so the threshold is globally
        // consistent without communication.
        let threshold: Option<R::Key> =
            order.get((b + 1) * batch_blocks).map(|&(r, g)| group[r].first_keys[g]);

        // Merge (don't sort) the per-run prefixes below the threshold;
        // the suffixes stay buffered as the next batch's carry tails.
        // The batch merge runs on up to `cores` threads (exact-split
        // ranges into disjoint slices of the emit buffer), each range
        // journalled as a `merge_par` span; output and cuts are
        // byte-identical to `cores = 1`.
        let mut emit: Vec<R> = Vec::new();
        let views: Vec<&[R]> = sources.iter().map(|s| s.as_slice()).collect();
        let span_begin = |thread, threads, len, total| {
            tracer.begin(TraceEv::MergePar {
                pass,
                group: group_idx,
                batch: b,
                thread,
                threads,
                len,
                total,
            })
        };
        let span_end = |id, thread, threads, len, total| {
            tracer.end(
                id,
                TraceEv::MergePar { pass, group: group_idx, batch: b, thread, threads, len, total },
            )
        };
        // 0 = the engine's auto policy (per-thread floor + host cap);
        // an explicit knob value forces that floor on any host.
        let min_per_thread = cfg.algo.par_merge_min_per_thread;
        let pm = match &threshold {
            Some(t) => par_merge_k_below_traced_with_min(
                &views,
                |x| x.key() < *t,
                cores,
                min_per_thread,
                &mut emit,
                span_begin,
                span_end,
            ),
            None => par_merge_k_traced_with_min(
                &views,
                cores,
                min_per_thread,
                &mut emit,
                span_begin,
                span_end,
            ),
        };
        drop(views);
        for (s, cut) in sources.iter_mut().zip(pm.cuts) {
            // verify: allow(L2, Vec::drain removing the merged prefix — not the fallible IoEngine::drain)
            s.drain(..cut);
        }
        if let Some(t) = &threshold {
            // Carry bound (Section III): once block B_{i+1} of a run
            // has been fetched, every element of B_i is ≤ B_{i+1}'s
            // first key ≤ threshold — so only a run's last fetched
            // block can hold elements *above* the threshold, and the
            // carry beyond it is at most one block per run. Elements
            // *equal* to the threshold legitimately accumulate (the
            // cut is strict, so ties wait until the threshold moves
            // past them — constant-key input carries them all).
            for (r, s) in sources.iter().enumerate() {
                let above = s.len() - s.partition_point(|x| x.key() <= *t);
                assert!(
                    above <= rpb,
                    "run {r} of group {group_idx} (pass {pass}): {above} carried records \
                     above the batch threshold exceed one block ({rpb})"
                );
            }
        }
        cpu = cpu.merge(&merge_cpu(emit.len() as u64, k));
        cpu.split_probes += pm.split_probes;

        // The emitted set is locally sorted; one exact-splitter
        // exchange (selection + all-to-all + P-way merge — no local
        // sort) makes it canonically distributed for the striped
        // write.
        let (canon, exchange_cpu) =
            parallel_sort_presorted(comm, emit, cores, CpuCounters::default())?;
        cpu = cpu.merge(&exchange_cpu);

        let piece = write_striped::<R>(comm, st, cfg, view, &canon, stripe_off)?;
        stripe_off += piece.blocks.len() as u64;
        tracer.instant(TraceEv::MergeEmitted {
            pass,
            group: group_idx,
            batch: b,
            batches: total_batches,
        });
        tracer.progress(Phase::FinalMerge, (b + 1) as u64, total_batches as u64);
        out_pieces.push(piece);
    }
    debug_assert!(
        sources.iter().all(Vec::is_empty),
        "the final batch has no threshold and must drain every carry tail"
    );

    // Stitch the emitted pieces into one striped run. Pieces were
    // emitted in globally increasing key order, so their concatenation
    // is the merged run, and each piece continued the round-robin
    // striping at `stripe_off`, so block t of the stitched run is on
    // disk t mod D exactly as if it had been written in one piece.
    let mut merged = StripedRun::<R::Key>::empty();
    for piece in out_pieces {
        merged.owners.extend(piece.owners);
        merged.blocks.extend(piece.blocks);
        merged.first_keys.extend(piece.first_keys);
        merged.counts.extend(piece.counts);
        merged.elems += piece.elems;
    }
    Ok((merged, cpu))
}

/// How many blocks the striped streaming readers keep
/// issued-but-unconsumed: deep enough to pipeline fetches across every
/// owner's disks, shallow enough that in-flight response buffers stay
/// O(window), not O(run).
const READ_STRIPED_WINDOW: usize = 64;

/// Stream a striped run's blocks in global order into `sink`, **from
/// any single rank**: every block goes through the [`ClusterStorage`]
/// block service, so blocks owned by peers are fetched over the
/// transport. Reads are issued ahead of consumption as pipelined
/// per-owner batches, bounded by a fixed in-flight window — memory
/// stays O(window · B) regardless of the run size. Each callback
/// receives one block's valid bytes (`counts[g] · record_bytes` of raw
/// encoded records). The shared engine under [`read_striped`] and the
/// file write-back of `sortfile --algo striped`.
pub fn read_striped_blocks<K>(
    storage: &ClusterStorage,
    run: &StripedRun<K>,
    record_bytes: usize,
    mut sink: impl FnMut(&[u8]) -> Result<()>,
) -> Result<()> {
    let n = run.blocks.len();
    let mut pending: Vec<Option<BlockFetch>> = run.blocks.iter().map(|_| None).collect();
    let mut issued = 0usize;
    // Issue the next slice of global blocks as one batch per owner —
    // remote owners see a handful of pipelined request frames behind
    // one flush each, and all owners' fetches are in flight at once.
    let issue_chunk = |from: usize, pending: &mut Vec<Option<BlockFetch>>| -> Result<usize> {
        let to = (from + READ_STRIPED_WINDOW / 2).max(from + 1).min(n);
        let mut by_owner: std::collections::BTreeMap<u32, Vec<usize>> =
            std::collections::BTreeMap::new();
        for g in from..to {
            by_owner.entry(run.owners[g]).or_default().push(g);
        }
        for (owner, gs) in &by_owner {
            let ids: Vec<BlockId> = gs.iter().map(|&g| run.blocks[g]).collect();
            let fetches = storage.fetch_blocks(*owner as usize, &ids)?;
            for (&g, f) in gs.iter().zip(fetches) {
                pending[g] = Some(f);
            }
        }
        Ok(to)
    };
    for g in 0..n {
        while issued < n && issued - g < READ_STRIPED_WINDOW {
            issued = issue_chunk(issued, &mut pending)?;
        }
        let data = pending[g].take().expect("every block issued before consumption").wait()?;
        sink(&data[..run.counts[g] as usize * record_bytes])?;
    }
    Ok(())
}

/// Read a striped run back as one vector — [`read_striped_blocks`]
/// decoded into records (test/validation convenience; callers that
/// stream to a file should use the block form directly to keep memory
/// bounded).
pub fn read_striped<R: Record>(
    storage: &ClusterStorage,
    run: &StripedRun<R::Key>,
) -> Result<Vec<R>> {
    let mut out = Vec::with_capacity(run.elems as usize);
    read_striped_blocks(storage, run, R::BYTES, |bytes| {
        R::decode_slice(bytes, &mut out);
        Ok(())
    })?;
    Ok(out)
}

/// Whole-cluster result of [`striped_sort_cluster`].
pub struct StripedClusterOutcome<R: Record> {
    /// Per-PE outcomes, indexed by rank.
    pub per_pe: Vec<StripedOutcome<R>>,
    /// The aggregated measured report.
    pub report: SortReport,
    /// The cluster storage (the striped output remains readable
    /// through it via [`read_striped`]).
    pub storage: Arc<ClusterStorage>,
}

/// Convenience driver for the in-process cluster: spin up
/// `cfg.machine.pes` PE threads, generate and ingest each PE's input
/// via `gen(pe, p)`, run the striped mergesort, and aggregate the
/// report — the striped sibling of
/// [`sort_cluster`](crate::canonical::sort_cluster).
pub fn striped_sort_cluster<R, G>(
    cfg: &SortConfig,
    gen: G,
    k_max: Option<usize>,
) -> Result<StripedClusterOutcome<R>>
where
    R: Record + Ord,
    G: Fn(usize, usize) -> Vec<R> + Send + Sync,
{
    let p = cfg.machine.pes;
    let storage =
        ClusterStorage::new_mem_sized(&cfg.machine, cfg.algo.effective_pool_blocks(&cfg.machine));
    let storage_ref = &storage;
    let gen = &gen;
    let results: Vec<Result<StripedOutcome<R>>> = run_cluster(p, move |comm| {
        let st = storage_ref.pe(comm.rank());
        let recs = gen(comm.rank(), p);
        let input = ingest_input(st, &recs)?;
        striped_mergesort::<R>(&comm, storage_ref, cfg, input, cfg.machine.cores_per_pe, k_max)
    });
    let mut per_pe = Vec::with_capacity(p);
    for r in results {
        per_pe.push(r?);
    }
    // The striped output is global, so the element count is any PE's
    // view of it (identical everywhere), not a per-PE sum.
    let elements = per_pe.first().map_or(0, |o| o.output.elems);
    let runs = per_pe.first().map_or(0, |o| o.runs);
    let report = assemble_report(
        cfg,
        elements,
        R::BYTES,
        runs,
        per_pe.iter().map(|o| o.phases.clone()).collect(),
    );
    Ok(StripedClusterOutcome { per_pe, report, storage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_types::{AlgoConfig, Element16, MachineConfig};
    use demsort_workloads::{checksum_elements, generate_all, generate_pe_input, InputSpec};

    fn sort_striped(
        p: usize,
        local_n: usize,
        spec: InputSpec,
        k_max: Option<usize>,
    ) -> (Vec<Element16>, Vec<StripedOutcome<Element16>>, std::sync::Arc<ClusterStorage>) {
        let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid");
        let outcome = striped_sort_cluster::<Element16, _>(
            &cfg,
            |pe, p| generate_pe_input(spec, 21, pe, p, local_n),
            k_max,
        )
        .expect("sort");
        let got =
            read_striped::<Element16>(&outcome.storage, &outcome.per_pe[0].output).expect("read");
        (got, outcome.per_pe, outcome.storage)
    }

    /// [`sort_striped`] with a per-rank buffer tracer on the
    /// communicator: returns each rank's outcome alongside its drained
    /// journal, so tests pin the merge interleaving from the trace.
    fn sort_striped_traced(
        p: usize,
        local_n: usize,
        spec: InputSpec,
        k_max: Option<usize>,
    ) -> Vec<(StripedOutcome<Element16>, Vec<demsort_types::TraceRecord>)> {
        let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid");
        let storage = ClusterStorage::new_mem(&cfg.machine);
        let storage_ref = &storage;
        let results: Vec<Result<(StripedOutcome<Element16>, Vec<demsort_types::TraceRecord>)>> =
            run_cluster(p, move |mut comm| {
                let tracer = Tracer::to_buffer(comm.rank());
                comm.set_tracer(tracer.clone());
                let st = storage_ref.pe(comm.rank());
                let input =
                    ingest_input(st, &generate_pe_input(spec, 21, comm.rank(), p, local_n))?;
                let o = striped_mergesort::<Element16>(
                    &comm,
                    storage_ref,
                    &cfg,
                    input,
                    cfg.machine.cores_per_pe,
                    k_max,
                )?;
                Ok((o, tracer.drain()))
            });
        results.into_iter().map(|r| r.expect("traced sort")).collect()
    }

    fn check(p: usize, local_n: usize, spec: InputSpec, k_max: Option<usize>) {
        let (got, outcomes, _storage) = sort_striped(p, local_n, spec, k_max);
        let mut reference = generate_all(spec, 21, p, local_n);
        let checksum_in = checksum_elements(&reference);
        reference.sort_unstable();
        let keys: Vec<u64> = got.iter().map(|e| e.key).collect();
        let ref_keys: Vec<u64> = reference.iter().map(|e| e.key).collect();
        assert_eq!(keys, ref_keys, "striped output keys ({spec:?}, P={p})");
        assert_eq!(checksum_elements(&got), checksum_in, "permutation");
        // Output directory identical on all PEs.
        for o in &outcomes {
            assert_eq!(o.output.elems, outcomes[0].output.elems);
            assert_eq!(o.output.blocks.len(), outcomes[0].output.blocks.len());
        }
    }

    #[test]
    fn sorts_single_run_case() {
        check(2, 200, InputSpec::Uniform, None);
    }

    #[test]
    fn sorts_multi_run_single_pass() {
        check(3, 700, InputSpec::Uniform, None);
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check(2, 600, InputSpec::ReverseSorted, None);
        check(2, 600, InputSpec::Constant, None);
        check(2, 600, InputSpec::Banded { block_elems: 16 }, None);
    }

    #[test]
    fn multi_pass_merging_with_tiny_fanin() {
        let (_, outcomes, _) = sort_striped(2, 1200, InputSpec::Uniform, Some(2));
        assert!(outcomes[0].passes >= 2, "fan-in 2 over ≥3 runs needs ≥2 passes");
        check(2, 1200, InputSpec::Uniform, Some(2));
    }

    #[test]
    fn blocks_stripe_over_all_pes() {
        let (_, outcomes, _) = sort_striped(3, 900, InputSpec::Uniform, None);
        let owners = &outcomes[0].output.owners;
        for pe in 0..3u32 {
            assert!(owners.contains(&pe), "every PE owns output blocks");
        }
    }

    #[test]
    fn phases_cover_run_formation_and_merging() {
        // External case: both phases recorded, counters attributed.
        let (_, outcomes, _) = sort_striped(2, 700, InputSpec::Uniform, None);
        for o in &outcomes {
            assert!(o.passes >= 1, "external case must merge");
            let phases: Vec<Phase> = o.phases.iter().map(|(p, _)| *p).collect();
            assert_eq!(phases, vec![Phase::RunFormation, Phase::FinalMerge]);
            assert!(o.phases[0].1.io.bytes_written > 0, "runs written in phase 1");
            assert!(o.phases[1].1.io.bytes_read > 0, "merge reads in phase 2");
        }
        // Single-run case: only run formation.
        let (_, outcomes, _) = sort_striped(2, 200, InputSpec::Uniform, None);
        for o in &outcomes {
            assert_eq!(o.passes, 0);
            let phases: Vec<Phase> = o.phases.iter().map(|(p, _)| *p).collect();
            assert_eq!(phases, vec![Phase::RunFormation]);
        }
    }

    #[test]
    fn merge_phase_merges_instead_of_sorting() {
        // Single merge pass: the merge phase must charge *merge* work
        // only — n·⌈log2 R⌉ for the batch loser trees plus n·⌈log2 P⌉
        // for the exchange merges — and no sort comparisons at all
        // (the seed re-sorted every batch: ~n·log n per batch).
        let p = 2;
        let local_n = 700;
        let (_, outcomes, _) = sort_striped(p, local_n, InputSpec::Uniform, None);
        assert_eq!(outcomes[0].passes, 1, "config must give a single merge pass");
        let runs = outcomes[0].runs;
        let n = (p * local_n) as u64;
        let mut sort_work = 0u64;
        let mut merge_work_total = 0u64;
        let mut merged = 0u64;
        for o in &outcomes {
            let (_, stats) = o
                .phases
                .iter()
                .find(|(ph, _)| *ph == Phase::FinalMerge)
                .expect("merge phase recorded");
            sort_work += stats.cpu.sort_work;
            merge_work_total += stats.cpu.merge_work;
            merged += stats.cpu.elements_merged;
        }
        assert_eq!(sort_work, 0, "batches are merged, never re-sorted");
        assert_eq!(merged, 2 * n, "each element merges once locally, once in the exchange");
        assert_eq!(
            merge_work_total,
            crate::merge::merge_work(n, runs) + crate::merge::merge_work(n, p),
            "merge comparisons are n·(⌈log2 R⌉ + ⌈log2 P⌉), R = {runs}"
        );
    }

    #[test]
    fn next_batch_fetches_issued_before_current_batch_emits() {
        // Multi-batch single-pass merge: the trace must show batch
        // b+1's fetches handed to the block service before batch b's
        // piece is written — the fetch/merge overlap of Section IV-E.
        for (o, recs) in &sort_striped_traced(2, 1200, InputSpec::Uniform, None) {
            assert_eq!(o.passes, 1);
            let evs: Vec<TraceEv> = recs.iter().map(|r| r.ev.clone()).collect();
            let batches = evs.iter().filter(|e| matches!(e, TraceEv::MergeEmitted { .. })).count();
            assert!(batches >= 2, "config must force multiple merge batches, got {batches}");
            let pos = |want: TraceEv| evs.iter().position(|e| *e == want).expect("event");
            for b in 0..batches - 1 {
                assert!(
                    pos(TraceEv::MergeIssued { pass: 0, group: 0, batch: b + 1, batches })
                        < pos(TraceEv::MergeEmitted { pass: 0, group: 0, batch: b, batches }),
                    "batch {}'s fetches must be in flight before batch {b} emits: {evs:?}",
                    b + 1
                );
            }
        }
    }

    #[test]
    fn multi_piece_output_stripes_evenly_over_disks() {
        // The merged output is stitched from several emitted pieces;
        // each piece continues the round-robin striping where the
        // previous left off, so per-disk block counts differ by ≤ 1.
        let p = 2;
        let traced = sort_striped_traced(p, 1200, InputSpec::Uniform, None);
        let (o, recs) = &traced[0];
        let pieces = recs.iter().filter(|r| matches!(r.ev, TraceEv::MergeEmitted { .. })).count();
        assert!(pieces >= 2, "test must cover a multi-piece run, got {pieces} piece(s)");
        let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid");
        let dpp = cfg.machine.disks_per_pe;
        let mut per_disk = vec![0u64; cfg.machine.total_disks()];
        for (g, id) in o.output.blocks.iter().enumerate() {
            per_disk[o.output.owners[g] as usize * dpp + id.disk as usize] += 1;
        }
        let (min, max) =
            (per_disk.iter().min().expect("disks"), per_disk.iter().max().expect("disks"));
        assert!(max - min <= 1, "stitched run must stripe evenly over all disks, got {per_disk:?}");
    }

    #[test]
    fn merge_events_carry_pass_and_group_context() {
        // Fan-in 2 over ≥3 runs: several merge groups and passes emit
        // batches whose local indices restart at 0. The pass/group
        // tags must keep the trace unambiguous — batch 0 of every
        // (pass, group) appears exactly once.
        let traced = sort_striped_traced(2, 1200, InputSpec::Uniform, Some(2));
        let (o, recs) = &traced[0];
        assert!(o.passes >= 2, "fan-in 2 over ≥3 runs needs ≥2 passes");
        let passes_seen: std::collections::BTreeSet<usize> = recs
            .iter()
            .filter_map(|r| match &r.ev {
                TraceEv::MergeIssued { pass, .. } | TraceEv::MergeEmitted { pass, .. } => {
                    Some(*pass)
                }
                _ => None,
            })
            .collect();
        assert_eq!(passes_seen.len(), o.passes, "every pass appears in the trace");
        let mut zero_batches: std::collections::BTreeMap<(usize, usize), usize> =
            std::collections::BTreeMap::new();
        for r in recs {
            if let TraceEv::MergeIssued { pass, group, batch: 0, .. } = &r.ev {
                *zero_batches.entry((*pass, *group)).or_insert(0) += 1;
            }
        }
        assert!(zero_batches.len() >= 2, "trace must span several merge groups or passes");
        assert!(
            zero_batches.values().all(|&c| c == 1),
            "batch 0 of each (pass, group) must be unique, got {zero_batches:?}"
        );
    }

    #[test]
    fn parallel_batch_merge_is_byte_identical_and_journals_thread_ranges() {
        // The same input sorted with cores = 1 and cores = 4: records,
        // merge comparisons, and split-selection determinism must all
        // match, and the cores = 4 journal must carry valid `merge_par`
        // thread-range spans (complete per-batch sets summing to the
        // batch size — validate_rank_journal enforces both).
        let p = 2;
        let local_n = 1200;
        let run = |cores: usize| {
            // Tiny inputs sit below the engagement threshold; force the
            // fan-out so the byte-identity and journal pins stay
            // meaningful at test scale.
            let algo = AlgoConfig { par_merge_min_per_thread: 1, ..AlgoConfig::default() };
            let cfg = SortConfig::new(MachineConfig::tiny(p), algo).expect("valid");
            let storage = ClusterStorage::new_mem(&cfg.machine);
            let storage_ref = &storage;
            let cfg_ref = &cfg;
            let results: Vec<Result<(StripedOutcome<Element16>, Vec<demsort_types::TraceRecord>)>> =
                run_cluster(p, move |mut comm| {
                    let tracer = Tracer::to_buffer(comm.rank());
                    comm.set_tracer(tracer.clone());
                    let st = storage_ref.pe(comm.rank());
                    let input = ingest_input(
                        st,
                        &generate_pe_input(InputSpec::Uniform, 21, comm.rank(), p, local_n),
                    )?;
                    let o = striped_mergesort::<Element16>(
                        &comm,
                        storage_ref,
                        cfg_ref,
                        input,
                        cores,
                        None,
                    )?;
                    Ok((o, tracer.drain()))
                });
            let per_pe: Vec<_> = results.into_iter().map(|r| r.expect("sort")).collect();
            let got = read_striped::<Element16>(&storage, &per_pe[0].0.output).expect("read");
            (got, per_pe)
        };
        let (seq, seq_pe) = run(1);
        let (par, par_pe) = run(4);
        assert_eq!(par, seq, "cores = 4 output must be byte-identical to cores = 1");
        let merge_phase = |o: &StripedOutcome<Element16>| {
            o.phases
                .iter()
                .find(|(ph, _)| *ph == Phase::FinalMerge)
                .map(|(_, s)| s.cpu)
                .expect("merge phase recorded")
        };
        for ((so, _), (po, precs)) in seq_pe.iter().zip(&par_pe) {
            let (sm, pm) = (merge_phase(so), merge_phase(po));
            assert_eq!(
                pm.merge_work, sm.merge_work,
                "per-thread merge comparisons must sum to the single-thread bound"
            );
            assert_eq!(pm.sort_work, 0, "parallel batches are merged, never re-sorted");
            assert_eq!(pm.elements_merged, sm.elements_merged);
            assert!(pm.split_probes > 0, "parallel merge must account split probes");
            assert_eq!(sm.split_probes, 0, "cores = 1 never splits");
            demsort_types::trace::validate_rank_journal(precs).expect("valid journal");
            let spans: Vec<(usize, usize)> = precs
                .iter()
                .filter_map(|r| match (&r.op, &r.ev) {
                    (
                        demsort_types::trace::TraceOp::Begin(_),
                        TraceEv::MergePar { thread, threads, .. },
                    ) => Some((*thread, *threads)),
                    _ => None,
                })
                .collect();
            assert!(!spans.is_empty(), "cores = 4 merge must journal merge_par spans");
            assert!(
                spans.iter().any(|&(_, threads)| threads > 1),
                "at least one batch must actually fan out, got {spans:?}"
            );
        }
        // Split selection is deterministic: both ranks of the parallel
        // run charge probes, and identical runs charge identically.
        let (_, par_pe2) = run(4);
        for ((a, _), (b, _)) in par_pe.iter().zip(&par_pe2) {
            assert_eq!(
                merge_phase(a).split_probes,
                merge_phase(b).split_probes,
                "split probes deterministic"
            );
        }
    }

    #[test]
    fn remap_reroutes_dead_owner_blocks_to_first_live_replica() {
        let run = StripedRun::<u64> {
            owners: vec![0, 1, 2],
            blocks: vec![BlockId::new(0, 0), BlockId::new(0, 1), BlockId::new(0, 2)],
            first_keys: vec![0, 10, 20],
            counts: vec![5, 5, 5],
            replicas: vec![
                vec![(1, BlockId::new(1, 0))],
                vec![(2, BlockId::new(1, 1))],
                vec![(3, BlockId::new(1, 2))],
            ],
            elems: 15,
        };
        let dead = vec![false, true, false, false];
        let (remapped, served) = remap_runs(std::slice::from_ref(&run), &dead, 2).expect("remap");
        assert_eq!(remapped[0].owners, vec![0, 2, 2], "dead owner replaced by its replica");
        assert_eq!(remapped[0].blocks[1], BlockId::new(1, 1), "replica's block id substituted");
        assert_eq!(remapped[0].blocks[0], BlockId::new(0, 0), "live owners untouched");
        assert_eq!(served, 1, "rank 2 re-serves exactly the dead rank's block");
        // Owner and its only replica both dead → unrecoverable.
        let dead = vec![false, true, true, false];
        assert!(remap_runs(&[run], &dead, 0).is_err(), "no live replica must fail");
    }

    #[test]
    fn replication_off_and_on_produce_identical_output() {
        let p = 3;
        let gen = |pe: usize, p: usize| generate_pe_input(InputSpec::Uniform, 21, pe, p, 700);
        let plain_cfg =
            SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid");
        let plain = striped_sort_cluster::<Element16, _>(&plain_cfg, gen, None).expect("sort");
        let algo = AlgoConfig { replication: 1, ..AlgoConfig::default() };
        let repl_cfg = SortConfig::new(MachineConfig::tiny(p), algo).expect("valid");
        let repl = striped_sort_cluster::<Element16, _>(&repl_cfg, gen, None).expect("sort");
        let a = read_striped::<Element16>(&plain.storage, &plain.per_pe[0].output).expect("read");
        let b = read_striped::<Element16>(&repl.storage, &repl.per_pe[0].output).expect("read");
        assert_eq!(a, b, "replication must not perturb the sorted output");
        // The replica stores are charged as run-formation communication.
        let sent = |o: &StripedClusterOutcome<Element16>| {
            o.per_pe.iter().map(|o| o.phases[0].1.comm.bytes_sent).sum::<u64>()
        };
        assert!(
            sent(&repl) > sent(&plain),
            "replica stores must show up in the run-formation comm counters"
        );
    }

    #[test]
    fn replicated_sort_survives_a_rank_death_at_merge_start() {
        use demsort_net::{build_mesh, run_cluster_over, LocalTransport};
        use std::sync::Mutex;
        let p = 4;
        let victim = 2usize;
        let gen = |pe: usize, p: usize| generate_pe_input(InputSpec::Uniform, 21, pe, p, 700);

        // Reference: the same input sorted undisturbed.
        let plain_cfg =
            SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid");
        let plain = striped_sort_cluster::<Element16, _>(&plain_cfg, gen, None).expect("sort");
        let want =
            read_striped::<Element16>(&plain.storage, &plain.per_pe[0].output).expect("read");

        let algo = AlgoConfig { replication: 1, ..AlgoConfig::default() };
        let cfg = SortConfig::new(MachineConfig::tiny(p), algo).expect("valid");
        let storage = ClusterStorage::new_mem(&cfg.machine);
        // Pre-built survivor endpoints: the in-process stand-in for
        // the epoch cut + subgroup regroup the TCP harness performs
        // (rank `victim` dies, so {0, 1, 3} renumber as {0, 1, 2}).
        let spare: Mutex<Vec<Option<Communicator>>> =
            Mutex::new(build_mesh(p - 1).into_iter().map(Some).collect());

        // The main mesh carries a receive timeout: a survivor that
        // abandons a collective mid-round keeps its channels alive, so
        // without a timeout its ring neighbour would block forever
        // (the TCP transport's read timeout plays this role on the
        // real cluster).
        let comms: Vec<Communicator> =
            LocalTransport::mesh_with_timeout(p, std::time::Duration::from_secs(2))
                .into_iter()
                .map(|t| Communicator::new(Box::new(t)))
                .collect();
        let (storage_ref, cfg_ref, spare_ref) = (&storage, &cfg, &spare);
        let results: Vec<Result<StripedOutcome<Element16>>> =
            run_cluster_over(comms, move |comm| {
                let me = comm.rank();
                let input = ingest_input(storage_ref.pe(me), &gen(me, p))?;
                let hooks = ResilientHooks {
                    dead_set: Box::new(move || {
                        let mut dead = vec![false; p];
                        dead[victim] = true;
                        dead
                    }),
                    subgroup: Box::new(move |members: &[usize]| {
                        assert_eq!(members, [0, 1, 3], "survivor membership");
                        let idx = members.iter().position(|&r| r == me).expect("survivor");
                        Ok(spare_ref.lock().expect("spare mesh")[idx]
                            .take()
                            .expect("subgroup built once per survivor"))
                    }),
                    on_merge_start: Some(Box::new(move |rank| rank != victim)),
                };
                striped_mergesort_resilient::<Element16>(
                    &comm,
                    storage_ref,
                    cfg_ref,
                    input,
                    cfg_ref.machine.cores_per_pe,
                    None,
                    Some(hooks),
                )
            });

        // The victim abandoned; every survivor finished degraded.
        assert!(results[victim].is_err(), "victim must abandon at merge start");
        let mut survivors = Vec::new();
        for (r, res) in results.into_iter().enumerate() {
            if r == victim {
                continue;
            }
            let o = res.unwrap_or_else(|e| panic!("survivor {r} must finish degraded: {e}"));
            assert!(
                o.output.owners.iter().all(|&own| own as usize != victim),
                "no output block may live on the dead rank"
            );
            survivors.push(o);
        }
        for o in &survivors {
            assert_eq!(o.output.blocks.len(), survivors[0].output.blocks.len());
            assert_eq!(o.output.elems, survivors[0].output.elems);
        }
        // Degraded output: byte-identical record stream to the
        // undisturbed sort.
        let got = read_striped::<Element16>(&storage, &survivors[0].output).expect("read");
        assert_eq!(got, want, "degraded completion must reproduce the undisturbed output");
    }

    #[test]
    fn cluster_driver_report_aggregates_striped_phases() {
        let cfg = SortConfig::new(MachineConfig::tiny(2), AlgoConfig::default()).expect("valid");
        let outcome = striped_sort_cluster::<Element16, _>(
            &cfg,
            |pe, p| generate_pe_input(InputSpec::Uniform, 21, pe, p, 700),
            None,
        )
        .expect("sort");
        assert_eq!(outcome.report.elements, 2 * 700);
        assert_eq!(outcome.report.pes, 2);
        assert!(outcome.report.runs > 1, "external case");
        // Striped I/O: 2 passes = ~4N plus the re-striping writes.
        let io_over_n = outcome.report.io_volume_over_n();
        assert!(io_over_n > 3.0, "two-pass external I/O, got {io_over_n}");
        // Striping costs communication on every pass ("4-5
        // communications for two passes").
        assert!(outcome.report.comm_volume_over_n() > 1.0);
    }
}
