//! Structural view of one lexed source file.
//!
//! The lints need four facts the raw token stream does not carry:
//!
//! 1. **Test scoping** — which tokens live under `#[cfg(test)]` (or in
//!    a `mod tests`) and are therefore exempt from the production-code
//!    lints. Unlike the old CI `awk` guard, which stopped scanning a
//!    file at its first `#[cfg(test)]`, scoping here is per-item: code
//!    *after* a test module is still scanned.
//! 2. **Function attribution** — which named `fn` a token belongs to
//!    (innermost wins; closure bodies belong to their enclosing `fn`),
//!    so per-function lints like span pairing have a unit to check.
//! 3. **Escape hatches** — `// verify: allow(L2, reason)` comments
//!    that suppress a finding on the same or the following line while
//!    keeping it (with its reason) in the machine-readable report.
//! 4. **`SAFETY:` comments** — where they end, so the unsafe audit can
//!    tie an `unsafe` token to its justification.

use crate::lexer::{lex, Tok, TokKind};

/// A named function found in the file.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// The function's name (identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True if the function is inside test-scoped code.
    pub is_test: bool,
}

/// One `// verify: allow(<lint>, <reason>)` escape hatch.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Lint id the hatch names (e.g. `"L2"`).
    pub lint: String,
    /// Free-form justification from the comment.
    pub reason: String,
    /// Line the comment starts on; it suppresses findings on this line
    /// and the next.
    pub line: u32,
    /// Set by the lint pass when a finding actually used this hatch —
    /// hatches that suppress nothing are reported as stale.
    pub used: std::cell::Cell<bool>,
}

/// A lexed file plus the structure the lints consume.
pub struct SourceFile {
    /// Repo-relative path with `/` separators (lint scoping keys on
    /// path prefixes).
    pub path: String,
    /// All tokens, comments included.
    pub toks: Vec<Tok>,
    /// `is_test[i]` — token `i` is inside test-scoped code.
    pub is_test: Vec<bool>,
    /// `fn_of[i]` — index into [`SourceFile::fns`] of the innermost
    /// named function containing token `i`.
    pub fn_of: Vec<Option<usize>>,
    /// Named functions in source order.
    pub fns: Vec<FnInfo>,
    /// Escape hatches found in comments.
    pub allows: Vec<Allow>,
    /// End line of every comment containing `SAFETY:`.
    pub safety_lines: Vec<u32>,
}

impl SourceFile {
    /// Lex and structure `src` under the given repo-relative path.
    pub fn parse(path: impl Into<String>, src: &str) -> SourceFile {
        let toks = lex(src);
        let mut f = SourceFile {
            path: path.into(),
            is_test: vec![false; toks.len()],
            fn_of: vec![None; toks.len()],
            fns: Vec::new(),
            allows: Vec::new(),
            safety_lines: Vec::new(),
            toks,
        };
        f.scan_comments();
        f.mark_test_regions();
        f.attribute_functions();
        f
    }

    /// Indices of non-comment tokens.
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.toks.len()).filter(|&i| !self.toks[i].is_comment()).collect()
    }

    /// The first [`Allow`] for `lint` covering `line` (the hatch's own
    /// line or the line after it), marking it used.
    pub fn allow_for(&self, lint: &str, line: u32) -> Option<&Allow> {
        let a = self
            .allows
            .iter()
            .find(|a| a.lint == lint && (a.line == line || a.line + 1 == line))?;
        a.used.set(true);
        Some(a)
    }

    /// True if a `SAFETY:` comment ends within `window` lines above
    /// (or on) `line`.
    pub fn has_safety_comment(&self, line: u32, window: u32) -> bool {
        self.safety_lines.iter().any(|&s| s <= line && line - s <= window)
    }

    fn scan_comments(&mut self) {
        for t in &self.toks {
            if !t.is_comment() {
                continue;
            }
            let end_line = t.line + t.text.matches('\n').count() as u32;
            if t.text.contains("SAFETY:") {
                self.safety_lines.push(end_line);
            }
            if let Some(allow) = parse_allow(&t.text, t.line) {
                self.allows.push(allow);
            }
        }
    }

    /// Mark tokens under `#[cfg(test)]`-gated items and `mod test*`
    /// bodies. A gated item extends to its closing `}` (or a `;` for
    /// body-less items); nesting is handled by brace depth.
    fn mark_test_regions(&mut self) {
        let code = self.code_indices();
        let mut depth: i64 = 0; // brace depth
        let mut pb: i64 = 0; // paren + bracket depth
                             // Stack of brace depths at which a test region ends.
        let mut test_ends: Vec<i64> = Vec::new();
        // A test gate was seen; the next item body/terminator closes it.
        let mut pending = false;
        let mut k = 0usize;
        while k < code.len() {
            let i = code[k];
            let t = &self.toks[i];
            let in_test = !test_ends.is_empty() || pending;
            self.is_test[i] = in_test;

            if t.is_punct('{') {
                if pending && pb == 0 {
                    pending = false;
                    test_ends.push(depth);
                    // Re-mark: the body belongs to the region.
                    self.is_test[i] = true;
                }
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if test_ends.last().is_some_and(|&d| depth == d) {
                    test_ends.pop();
                    self.is_test[i] = true;
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                pb += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                pb -= 1;
            } else if t.is_punct(';') && pending && pb == 0 {
                // `#[cfg(test)] use …;` — item without a body.
                pending = false;
            } else if t.is_punct('#') && !in_test {
                // Attribute: scan the bracketed group for a cfg gate
                // naming `test`.
                if let Some((end_k, gates_test)) = scan_attr(&self.toks, &code, k) {
                    if gates_test {
                        pending = true;
                        for &j in &code[k..=end_k] {
                            self.is_test[j] = true;
                        }
                    }
                    // Do not skip the group: depth/pb tracking above
                    // already handles its brackets on the next
                    // iterations, and attrs contain no braces.
                }
            } else if t.is_ident("mod") && !in_test {
                // `mod tests { … }` (belt and braces with the cfg
                // attribute, and covers uncfg'd test modules).
                if let Some(&next) = code.get(k + 1) {
                    let n = &self.toks[next];
                    if n.kind == TokKind::Ident
                        && (n.text == "tests" || n.text.starts_with("test_"))
                    {
                        pending = true;
                        self.is_test[i] = true;
                    }
                }
            }
            k += 1;
        }
    }

    /// Attribute every token to the innermost named `fn` whose body
    /// contains it.
    fn attribute_functions(&mut self) {
        let code = self.code_indices();
        let mut depth: i64 = 0;
        let mut pb: i64 = 0;
        // (fn index, brace depth before its body opened)
        let mut stack: Vec<(usize, i64)> = Vec::new();
        // A `fn name` seen, body brace not yet reached.
        let mut pending: Option<usize> = None;
        for (k, &i) in code.iter().enumerate() {
            let t = &self.toks[i];
            if t.is_punct('{') {
                if let Some(f) = pending.take() {
                    if pb == 0 {
                        stack.push((f, depth));
                    }
                }
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if stack.last().is_some_and(|&(_, d)| depth == d) {
                    stack.pop();
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                pb += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                pb -= 1;
            } else if t.is_punct(';') && pb == 0 {
                // Body-less declaration (trait method signature).
                pending = None;
            } else if t.is_ident("fn") {
                if let Some(&next) = code.get(k + 1) {
                    let n = &self.toks[next];
                    if n.kind == TokKind::Ident {
                        self.fns.push(FnInfo {
                            name: n.text.clone(),
                            line: t.line,
                            is_test: self.is_test[i],
                        });
                        pending = Some(self.fns.len() - 1);
                    }
                }
            }
            self.fn_of[i] = stack.last().map(|&(f, _)| f);
        }
    }
}

/// Parse `verify: allow(<lint>, <reason>)` out of a comment's text.
fn parse_allow(text: &str, line: u32) -> Option<Allow> {
    // Doc comments describe the hatch syntax without enacting it —
    // rustdoc prose must never suppress a finding (or count as stale).
    if ["///", "//!", "/**", "/*!"].iter().any(|p| text.starts_with(p)) {
        return None;
    }
    let rest = text.split("verify:").nth(1)?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (lint, reason) = match inner.split_once(',') {
        Some((l, r)) => (l.trim().to_string(), r.trim().to_string()),
        None => (inner.trim().to_string(), String::new()),
    };
    if lint.is_empty() {
        return None;
    }
    Some(Allow { lint, reason, line, used: std::cell::Cell::new(false) })
}

/// If `code[k]` starts an attribute (`#` `[` …), return the code index
/// of its closing `]` and whether it is a `cfg`/`cfg_attr` gate that
/// names `test`.
fn scan_attr(toks: &[Tok], code: &[usize], k: usize) -> Option<(usize, bool)> {
    let open = *code.get(k + 1)?;
    if !toks[open].is_punct('[') {
        return None;
    }
    let mut depth = 0i64;
    let mut saw_cfg = false;
    let mut saw_test = false;
    for (off, &i) in code.iter().enumerate().skip(k + 1) {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((off, saw_cfg && saw_test));
            }
        } else if t.is_ident("cfg") || t.is_ident("cfg_attr") {
            saw_cfg = true;
        } else if t.is_ident("test") {
            // `#[cfg(not(test))]` gates *production* code — only a
            // `test` not directly under `not(` marks a test item.
            let negated = off >= 2
                && toks[code[off - 1]].is_punct('(')
                && toks[code[off - 2]].is_ident("not");
            if !negated {
                saw_test = true;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src)
    }

    fn test_idents(f: &SourceFile) -> Vec<(String, bool)> {
        f.toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokKind::Ident)
            .map(|(i, t)| (t.text.clone(), f.is_test[i]))
            .collect()
    }

    #[test]
    fn cfg_test_scopes_one_item_not_the_rest_of_the_file() {
        let f = parse(
            "fn prod_before() {}\n\
             #[cfg(test)]\nmod tests {\n    fn in_tests() { helper(); }\n}\n\
             fn prod_after() {}\n",
        );
        let ids = test_idents(&f);
        let flag = |name: &str| ids.iter().find(|(n, _)| n == name).map(|(_, t)| *t);
        assert_eq!(flag("prod_before"), Some(false));
        assert_eq!(flag("in_tests"), Some(true));
        assert_eq!(flag("helper"), Some(true));
        assert_eq!(flag("prod_after"), Some(false), "scan must continue past the test mod");
    }

    #[test]
    fn cfg_test_on_single_fn_and_use() {
        let f = parse(
            "#[cfg(test)]\nuse std::fmt;\n\
             #[cfg(test)]\nfn only_for_tests() {}\n\
             fn prod() {}\n",
        );
        let ids = test_idents(&f);
        let flag = |name: &str| ids.iter().find(|(n, _)| n == name).map(|(_, t)| *t);
        assert_eq!(flag("fmt"), Some(true));
        assert_eq!(flag("only_for_tests"), Some(true));
        assert_eq!(flag("prod"), Some(false));
    }

    #[test]
    fn functions_attributed_innermost() {
        let f = parse(
            "fn outer() {\n    let c = |x: u32| { inner_call(); };\n    c(1);\n}\n\
             fn second() { other(); }\n",
        );
        assert_eq!(f.fns.len(), 2);
        let of = |name: &str| {
            let i = f.toks.iter().position(|t| t.is_ident(name)).expect("token");
            f.fn_of[i].map(|fi| f.fns[fi].name.clone())
        };
        assert_eq!(of("inner_call"), Some("outer".into()));
        assert_eq!(of("other"), Some("second".into()));
    }

    #[test]
    fn allows_and_safety_comments() {
        let f = parse(
            "// verify: allow(L2, shutdown path is best-effort)\n\
             fn x() {}\n\
             // SAFETY: fully initialized above\n\
             fn y() {}\n",
        );
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].lint, "L2");
        assert_eq!(f.allows[0].reason, "shutdown path is best-effort");
        assert!(f.allow_for("L2", 2).is_some(), "covers the following line");
        assert!(f.allow_for("L2", 3).is_none());
        assert!(f.has_safety_comment(4, 8));
        assert!(!f.has_safety_comment(2, 8));
    }

    #[test]
    fn trait_method_signatures_have_no_body() {
        let f = parse("trait T { fn sig(&self) -> u32; }\nfn real() { work(); }\n");
        let i = f.toks.iter().position(|t| t.is_ident("work")).expect("token");
        assert_eq!(f.fn_of[i].map(|fi| f.fns[fi].name.as_str()), Some("real"));
    }
}
