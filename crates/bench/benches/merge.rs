//! Loser-tree k-way merge throughput across fan-ins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demsort_core::merge::merge_k;
use demsort_types::Element16;
use demsort_workloads::splitmix64;
use std::hint::black_box;

fn sorted_runs(k: usize, total: usize) -> Vec<Vec<Element16>> {
    (0..k)
        .map(|r| {
            let n = total / k;
            let mut v: Vec<Element16> =
                (0..n).map(|i| Element16::new(splitmix64((r * n + i) as u64), i as u64)).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let total = 1 << 18;
    let mut g = c.benchmark_group("merge_k");
    g.throughput(Throughput::Elements(total as u64));
    for k in [2usize, 4, 8, 16, 64] {
        let runs = sorted_runs(k, total);
        let views: Vec<&[Element16]> = runs.iter().map(|r| r.as_slice()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(k), &views, |b, views| {
            b.iter(|| black_box(merge_k(views)));
        });
    }
    // Baseline: sorting the concatenation from scratch.
    let runs = sorted_runs(8, total);
    let concat: Vec<Element16> = runs.concat();
    g.bench_function("resort_baseline", |b| {
        b.iter(|| {
            let mut v = concat.clone();
            v.sort_unstable();
            black_box(v)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
