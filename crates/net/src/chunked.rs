//! Chunked all-to-all: the paper's `MPI_Alltoallv` re-implementation.
//!
//! "Unfortunately, in MPI, data volumes are specified using 32-bit
//! signed integers. This means that no data volume greater than 2 GiB
//! can be passed to MPI routines. We have re-implemented
//! `MPI_Alltoallv` to break this barrier." (Section V)
//!
//! [`chunked_alltoallv`] splits every pairwise message into chunks of
//! at most `limit` bytes, runs one plain alltoallv per chunk round, and
//! reassembles on the receiver. The default limit is the real MPI
//! `i32` barrier; tests use tiny limits to exercise multi-round
//! reassembly.

use crate::comm::Communicator;

/// The 2 GiB (`i32::MAX`) volume limit of classic MPI interfaces.
pub const MPI_VOLUME_LIMIT: usize = i32::MAX as usize;

/// All-to-all of arbitrarily large messages by splitting into rounds of
/// at most `limit` bytes per pairwise message.
pub fn chunked_alltoallv(comm: &Communicator, msgs: Vec<Vec<u8>>, limit: usize) -> Vec<Vec<u8>> {
    assert!(limit > 0, "chunk limit must be positive");
    let p = comm.size();
    assert_eq!(msgs.len(), p);

    // Everyone must agree on the number of rounds: the global maximum
    // pairwise message decides.
    let local_max = msgs.iter().map(Vec::len).max().unwrap_or(0) as u64;
    let global_max = comm.allreduce_max(local_max) as usize;
    let rounds = global_max.div_ceil(limit).max(1);

    let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
    let mut offsets = vec![0usize; p];
    for _ in 0..rounds {
        let round_msgs: Vec<Vec<u8>> = msgs
            .iter()
            .enumerate()
            .map(|(j, m)| {
                let start = offsets[j].min(m.len());
                let end = (start + limit).min(m.len());
                m[start..end].to_vec()
            })
            .collect();
        for (j, m) in round_msgs.iter().enumerate() {
            offsets[j] += m.len();
        }
        let received = comm.alltoallv(round_msgs);
        for (src, part) in received.into_iter().enumerate() {
            out[src].extend_from_slice(&part);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;

    fn payload(src: usize, dst: usize, len: usize) -> Vec<u8> {
        (0..len).map(|i| (src * 31 + dst * 7 + i) as u8).collect()
    }

    #[test]
    fn reassembles_across_many_rounds() {
        let p = 4;
        for limit in [1usize, 3, 16, 1000] {
            let results = run_cluster(p, move |c| {
                let msgs: Vec<Vec<u8>> =
                    (0..p).map(|j| payload(c.rank(), j, 10 + 13 * j)).collect();
                chunked_alltoallv(&c, msgs, limit)
            });
            for (me, r) in results.into_iter().enumerate() {
                for (src, m) in r.into_iter().enumerate() {
                    assert_eq!(m, payload(src, me, 10 + 13 * me), "limit {limit}");
                }
            }
        }
    }

    #[test]
    fn empty_and_skewed_messages() {
        let p = 3;
        let results = run_cluster(p, move |c| {
            // only rank 0 sends anything, and only to rank 2
            let mut msgs = vec![Vec::new(); p];
            if c.rank() == 0 {
                msgs[2] = vec![5u8; 100];
            }
            chunked_alltoallv(&c, msgs, 7)
        });
        assert!(results[0].iter().all(|m| m.is_empty()));
        assert!(results[1].iter().all(|m| m.is_empty()));
        assert_eq!(results[2][0], vec![5u8; 100]);
        assert!(results[2][1].is_empty());
        assert!(results[2][2].is_empty());
    }

    #[test]
    fn all_empty_still_one_round() {
        let results = run_cluster(2, |c| chunked_alltoallv(&c, vec![Vec::new(); 2], 8));
        for r in results {
            assert!(r.iter().all(|m| m.is_empty()));
        }
    }
}
