//! Property tests for the analyzer's lexer and test-scope tracking.
//!
//! The vendored proptest has no string strategies, so inputs are
//! assembled from drawn indices into fragment alphabets — including
//! the forms the lexer exists to get right: raw strings with arbitrary
//! hash counts, nested block comments, escapes, and unterminated
//! tails.

use demsort_analyze::lexer::{lex, TokKind};
use demsort_analyze::scan::SourceFile;
use proptest::prelude::*;

/// Self-contained source fragments, several deliberately hostile.
/// Every fragment spelling `panic`/`unwrap`/`unsafe` hides it inside
/// a balanced string or comment, so any whitespace-joined sequence
/// keeps those spellings out of code.
const FRAGMENTS: &[&str] = &[
    "fn f() {",
    "}",
    "let x = 1;",
    "\"panic! inside \\\" a string\"",
    "r#\"unwrap() in a raw string\"#",
    "r###\"hash \"# count \"## stress\"###",
    "b\"byte panic!\"",
    "// line comment .unwrap()",
    "/* block /* nested unsafe { } */ comment */",
    "'x'",
    "'\\n'",
    "&'a str",
    "0..n",
    "1_000u64",
    "marker_ident",
    "\\",
    "\u{1F980}", // non-ASCII punct path
];

/// Unterminated forms: only appended at the very end, where they
/// swallow nothing but the tail (an unterminated string mid-soup would
/// legitimately re-open code at the next fragment's quote).
const TAILS: &[&str] = &["", "\"unterminated", "/* never closed", "r##\"open", "b\"half \\"];

fn assemble(picks: &[usize], sep: &str, tail: usize) -> String {
    let mut s = picks.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect::<Vec<_>>().join(sep);
    s.push_str(sep);
    s.push_str(TAILS[tail % TAILS.len()]);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn lexing_fragment_soup_is_total_and_line_monotone(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40),
        sep in 0usize..3,
        tail in 0usize..TAILS.len(),
    ) {
        let sep = [" ", "\n", "\n\n"][sep];
        let src = assemble(&picks, sep, tail);
        let toks = lex(&src);
        // Lines are 1-based, nondecreasing, and within the file.
        let total_lines = src.lines().count().max(1) as u32;
        let mut prev = 1u32;
        for t in &toks {
            prop_assert!(t.line >= prev, "line went backwards in {src:?}");
            prop_assert!(t.line <= total_lines);
            prev = t.line;
        }
        // Hostile spellings never surface as identifier tokens.
        for t in &toks {
            if t.kind == TokKind::Ident {
                prop_assert!(
                    !["panic", "unwrap", "unsafe"].contains(&t.text.as_str()),
                    "{:?} leaked from a non-code fragment of {src:?}",
                    t.text
                );
            }
        }
        // Lexing is deterministic.
        prop_assert_eq!(toks.len(), lex(&src).len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn raw_strings_with_any_hash_count_stay_opaque(
        hashes in 1usize..6,
        inner_hashes in 0usize..5,
    ) {
        // Body contains a quote followed by *fewer* hashes than the
        // delimiter, which must not terminate the literal.
        let inner = inner_hashes.min(hashes - 1);
        let h = "#".repeat(hashes);
        let src = format!("before r{h}\"unsafe \"{} unwrap\"{h} after", "#".repeat(inner));
        let toks = lex(&src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["before", "after"], "src: {src:?}");
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        prop_assert_eq!(strs.len(), 1);
    }

    #[test]
    fn nested_block_comments_stay_opaque(depth in 1usize..6) {
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let src = format!("{open} panic! .unwrap() unsafe {{ }} {close}\nafter");
        let toks = lex(&src);
        prop_assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::BlockComment).count(),
            1
        );
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["after"]);
        prop_assert_eq!(toks.iter().find(|t| t.is_ident("after")).map(|t| t.line), Some(2));
    }

    #[test]
    fn cfg_test_scoping_survives_surrounding_noise(
        before in 0usize..4,
        after in 0usize..4,
    ) {
        // Production items around a `#[cfg(test)]` module: the module
        // body is test-scoped, everything else is not, regardless of
        // how many items surround it.
        let mut src = String::new();
        for k in 0..before {
            src.push_str(&format!("fn prod_before_{k}() {{ let v = {k}; }}\n"));
        }
        src.push_str("#[cfg(test)]\nmod tests {\n    fn only_in_tests() { test_marker(); }\n}\n");
        for k in 0..after {
            src.push_str(&format!("fn prod_after_{k}() {{ let w = {k}; }}\n"));
        }
        let file = SourceFile::parse("crates/net/src/gen.rs", &src);
        for (j, t) in file.toks.iter().enumerate() {
            if t.is_ident("test_marker") {
                prop_assert!(file.is_test[j], "marker outside test scope");
            }
            if t.text.starts_with("prod_") {
                prop_assert!(!file.is_test[j], "{} marked as test", t.text);
            }
        }
    }
}
