//! The TCP cluster transport: one PE per OS process, a full `P × P`
//! socket mesh.
//!
//! This is the deployment shape of the paper's experiments — MVAPICH
//! over InfiniBand on 200 nodes — with TCP standing in for the
//! interconnect and this module for the MPI runtime:
//!
//! * **Wire framing** — every message is a length-prefixed frame
//!   `[kind: u8][len: u32 LE][payload]`; the connection identifies the
//!   source rank, so frames carry no addressing.
//! * **Mesh bootstrap** — every rank binds a listener, then rank `i`
//!   dials every `j < i` (with retry while the peer is still coming
//!   up) and accepts from every `j > i`. The first bytes on a fresh
//!   connection are a **rank handshake** (`magic, version, rank`), so
//!   connections may arrive in any order — the handshake, not arrival
//!   order, assigns the connection its peer slot.
//! * **Buffered writers** — sends copy into a per-peer `BufWriter`;
//!   [`Communicator`](crate::Communicator) flushes at collective
//!   boundaries (before every blocking receive), so batching can never
//!   deadlock a peer on bytes parked locally.
//! * **Reader threads** — one per peer socket, demultiplexing frames
//!   into per-source FIFO queues (preserving MPI's per-source
//!   ordering) and serving the **block service** out of band: remote
//!   block reads ("they have to request data from remote disks",
//!   Section IV-A) become request/reply frames served from the owning
//!   rank's storage by its reader thread — the remote PE's CPU never
//!   leaves its own phase, exactly like an RDMA get. Requests carry
//!   ids, so any number can be in flight per peer and responses are
//!   matched by id, not arrival order ([`TcpTransport::fetch_blocks`]
//!   pipelines a whole batch behind one flush).
//! * **Failure detection** — sockets carry read timeouts and queue
//!   receives are bounded by [`TcpOptions::read_timeout`], so a peer
//!   dying mid-collective surfaces as a clean
//!   [`Error::Comm`](demsort_types::Error), never a hang.

use crate::transport::Transport;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use demsort_types::trace::TraceEv;
use demsort_types::{wire, BufferPool, Error, Result, Tracer};
use std::collections::HashMap;
use std::io::{BufWriter, ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Handshake magic: `"DEMS"`.
const MAGIC: u32 = 0x4445_4D53;
/// Wire protocol version.
const VERSION: u8 = 1;
/// Upper bound on a single frame: the full reach of the `u32` length
/// field, so any message `chunked_alltoallv` produces under the 2 GiB
/// `MPI_VOLUME_LIMIT` (plus submessage headers) fits in one frame.
/// Senders reject larger payloads explicitly; receivers treat larger
/// prefixes as corruption.
const MAX_FRAME: usize = u32::MAX as usize;
/// Socket-level read timeout: the tick at which blocked reads re-check
/// the shutdown flag (liveness of teardown, not of peers — peer
/// liveness is [`TcpOptions::read_timeout`] at the queue level).
const READ_TICK: Duration = Duration::from_millis(100);

/// Frame kinds on the wire.
const KIND_DATA: u8 = 0;
const KIND_BLOCK_REQ: u8 = 1;
const KIND_BLOCK_RESP: u8 = 2;
const KIND_STORE_REQ: u8 = 3;
const KIND_STORE_RESP: u8 = 4;
const KIND_EPOCH: u8 = 5;

/// Serves remote block-service requests from this rank's local
/// storage: `(disk, slot) -> block bytes` (or a message for the
/// requester). Runs on the reader thread of the requesting peer's
/// connection, so serving never interrupts this rank's own phase.
pub type BlockHandler = Arc<dyn Fn(u32, u32) -> std::result::Result<Vec<u8>, String> + Send + Sync>;

/// Serves remote block-*store* requests into this rank's local
/// storage: `(disk_hint, data) -> assigned (disk, slot)` (or a message
/// for the requester). The serving rank allocates the slot itself —
/// its allocator stays the single authority over its disks — and
/// returns the assigned address, which the requester records (e.g. in
/// a replica directory). Runs on the requesting peer's reader thread,
/// like [`BlockHandler`].
pub type StoreHandler =
    Arc<dyn Fn(u32, &[u8]) -> std::result::Result<(u32, u32), String> + Send + Sync>;

/// Tunables of the TCP transport.
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// How long a blocking receive (or probe) waits for a peer before
    /// reporting it dead.
    pub read_timeout: Duration,
    /// How long mesh bootstrap keeps re-dialing a peer that is not
    /// listening yet.
    pub connect_timeout: Duration,
    /// Capacity of each per-peer write buffer.
    pub write_buffer: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(10),
            write_buffer: 256 << 10,
        }
    }
}

/// One established peer connection: buffered writer plus wire-level
/// per-peer traffic meters (headers included — the payload-level
/// counters live in the transport-independent `Communicator`).
///
/// The link knows its peer's rank so every failure it reports names
/// the dead peer and the direction (`send to rank j` / `flush to rank
/// j`) — launch diagnostics point at a rank, not at "connection
/// reset".
struct PeerLink {
    /// Rank of the peer this link connects to.
    peer: usize,
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
    /// Set inside the writer lock on every send, cleared inside the
    /// lock on flush — `flush_all` skips peers with nothing pending.
    dirty: AtomicBool,
    wire_sent: AtomicU64,
    wire_recv: AtomicU64,
}

impl PeerLink {
    fn write_frame(&self, kind: u8, payload: &[u8]) -> Result<()> {
        self.write_frame_parts(kind, &[payload])
    }

    /// Write one frame whose payload is the concatenation of `parts`,
    /// gather-style: header and parts go through `write_vectored`
    /// straight into the buffered writer — the frame is never glued
    /// into an intermediate buffer. Wire metering is identical to
    /// [`write_frame`](Self::write_frame) of the concatenated payload.
    fn write_frame_parts(&self, kind: u8, parts: &[&[u8]]) -> Result<()> {
        let len: usize = parts.iter().map(|p| p.len()).sum();
        if len > MAX_FRAME {
            return Err(Error::comm(format!(
                "send to rank {}: frame of {len} bytes exceeds the wire limit ({MAX_FRAME}); \
                 split the message (chunked_alltoallv) before sending",
                self.peer
            )));
        }
        let mut w = self.writer.lock().expect("writer lock");
        let header = frame_header(kind, len);
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(parts.len() + 1);
        slices.push(IoSlice::new(&header));
        // Zero-length slices are skipped: a fully-written vectored call
        // must leave the slice list empty, and `advance_slices` only
        // drops slices it advances *through*.
        slices.extend(parts.iter().filter(|p| !p.is_empty()).map(|p| IoSlice::new(p)));
        let mut slices = &mut slices[..];
        while !slices.is_empty() {
            match w.write_vectored(slices) {
                Ok(0) => {
                    return Err(Error::comm(format!(
                        "send to rank {}: connection closed mid-frame",
                        self.peer
                    )));
                }
                Ok(n) => IoSlice::advance_slices(&mut slices, n),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(Error::comm(format!(
                        "send to rank {}: write failed: {e}",
                        self.peer
                    )));
                }
            }
        }
        self.dirty.store(true, Ordering::Release);
        self.wire_sent.fetch_add((header.len() + len) as u64, Ordering::Relaxed);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        if self.dirty.load(Ordering::Acquire) {
            let mut w = self.writer.lock().expect("writer lock");
            w.flush().map_err(|e| Error::comm(format!("flush to rank {}: {e}", self.peer)))?;
            self.dirty.store(false, Ordering::Release);
        }
        Ok(())
    }
}

fn frame_header(kind: u8, len: usize) -> [u8; 5] {
    let mut h = [0u8; 5];
    h[0] = kind;
    h[1..5].copy_from_slice(&(len as u32).to_le_bytes());
    h
}

/// Pack an assigned `(disk, slot)` store address into the 8-byte LE
/// acknowledgement payload a [`WireStore`] decodes.
fn encode_store_ack((disk, slot): (u32, u32)) -> Vec<u8> {
    let mut ack = Vec::with_capacity(8);
    ack.extend_from_slice(&disk.to_le_bytes());
    ack.extend_from_slice(&slot.to_le_bytes());
    ack
}

/// Completion slot of one in-flight block request: the reader thread
/// that receives the matching response fills it and wakes the waiter.
struct FetchSlot {
    result: Mutex<Option<Result<Vec<u8>>>>,
    cv: Condvar,
}

impl FetchSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self { result: Mutex::new(None), cv: Condvar::new() })
    }

    fn complete(&self, r: Result<Vec<u8>>) {
        let mut guard = self.result.lock().expect("fetch slot lock");
        *guard = Some(r);
        self.cv.notify_all();
    }
}

/// Which half of the block service an in-flight request belongs to —
/// only the direction in its error messages differs (fetches read
/// *from* the peer, stores write *to* it).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum BlockOp {
    Fetch,
    Store,
}

impl BlockOp {
    /// `"block fetch from rank 3"` / `"block store to rank 3"`.
    fn describe(self, peer: usize) -> String {
        match self {
            BlockOp::Fetch => format!("block fetch from rank {peer}"),
            BlockOp::Store => format!("block store to rank {peer}"),
        }
    }
}

/// The in-flight block requests of one endpoint (fetches and stores
/// share one id space and one table), plus per-peer reader liveness.
/// One lock covers both so a reader thread's exit sweep and new
/// registrations serialize: a request is either swept (failed
/// immediately) or refused — never silently stranded to ride out the
/// full read timeout against a peer that can no longer answer.
struct PendingFetches {
    /// Request id → (owning peer, operation, completion slot).
    /// Responses carry the id, so they may arrive on any schedule and
    /// in any order.
    inflight: HashMap<u64, (usize, BlockOp, Arc<FetchSlot>)>,
    /// `true` once the peer's reader thread has exited (socket closed,
    /// protocol violation, teardown) — no response can arrive anymore.
    reader_gone: Vec<bool>,
}

type Pending = Mutex<PendingFetches>;

/// A pending remote block read issued by
/// [`TcpTransport::fetch_blocks`] — the wire-level sibling of the
/// storage engine's `IoHandle`. Dropping it without waiting abandons
/// the request (a late response is discarded by id).
#[must_use = "a WireFetch must be waited on, or the read is abandoned"]
pub struct WireFetch {
    id: u64,
    peer: usize,
    op: BlockOp,
    slot: Arc<FetchSlot>,
    pending: Arc<Pending>,
    read_timeout: Duration,
}

impl WireFetch {
    /// Block until the response arrives; bounded by the transport's
    /// read timeout from the moment of the call.
    ///
    /// # Errors
    /// [`Error::Comm`] if the owning rank disconnects or does not
    /// answer within the timeout; [`Error::Io`] if it answered with a
    /// storage error.
    pub fn wait(self) -> Result<Vec<u8>> {
        let deadline = Instant::now() + self.read_timeout;
        let mut guard = self.slot.result.lock().expect("fetch slot lock");
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(Error::comm(format!(
                    "{}: timed out after {:?}",
                    self.op.describe(self.peer),
                    self.read_timeout
                )));
            }
            let (g, _) = self.slot.cv.wait_timeout(guard, left).expect("fetch slot lock");
            guard = g;
        }
    }

    /// `true` once the response has arrived (success or failure).
    pub fn is_done(&self) -> bool {
        self.slot.result.lock().expect("fetch slot lock").is_some()
    }
}

impl Drop for WireFetch {
    fn drop(&mut self) {
        // Deregister so an abandoned (or completed) request cannot leak
        // its slot; a response arriving later is dropped by id.
        self.pending.lock().expect("pending fetches lock").inflight.remove(&self.id);
    }
}

/// A pending remote block *store* issued by
/// [`TcpTransport::store_blocks`] — the write-side sibling of
/// [`WireFetch`]. Resolves to the `(disk, slot)` address the serving
/// rank assigned. Dropping it without waiting abandons the request
/// (the store may or may not have happened; a late response is
/// discarded by id).
#[must_use = "a WireStore must be waited on, or the write outcome is unknown"]
pub struct WireStore(WireFetch);

impl WireStore {
    /// Block until the serving rank acknowledges the store; returns
    /// the `(disk, slot)` it assigned to the copy.
    ///
    /// # Errors
    /// [`Error::Comm`] if the serving rank disconnects or does not
    /// answer within the timeout; [`Error::Io`] if it answered with a
    /// storage error.
    pub fn wait(self) -> Result<(u32, u32)> {
        let peer = self.0.peer;
        let bytes = self.0.wait()?;
        let arr: [u8; 8] = bytes.as_slice().try_into().map_err(|_| {
            Error::comm(format!(
                "block store to rank {peer}: malformed {}-byte acknowledgement",
                bytes.len()
            ))
        })?;
        let disk = u32::from_le_bytes(arr[..4].try_into().expect("4 bytes"));
        let slot = u32::from_le_bytes(arr[4..].try_into().expect("4 bytes"));
        Ok((disk, slot))
    }

    /// `true` once the acknowledgement has arrived (success or
    /// failure).
    pub fn is_done(&self) -> bool {
        self.0.is_done()
    }
}

/// One entry of a per-source FIFO inbox: either an ordinary data frame
/// or an **epoch marker** — the cut point a peer pushed through its
/// FIFO with [`Transport::advance_epoch`]. Keeping markers inside the
/// same queue preserves their exact position in the per-source order,
/// which is what makes the cut deterministic.
enum InboxMsg {
    Data(Vec<u8>),
    Epoch(u64),
}

struct Inner {
    rank: usize,
    size: usize,
    opts: TcpOptions,
    /// `peers[j]` — `None` at `j == rank`.
    peers: Vec<Option<Arc<PeerLink>>>,
    /// Self-delivery queue feeding `inbox[rank]`.
    self_tx: Sender<InboxMsg>,
    /// Per-source FIFO data queues (mutex: receivers are single-
    /// consumer; contention is nil — one recv call at a time).
    inbox: Vec<Mutex<Receiver<InboxMsg>>>,
    /// Highest epoch marker consumed from each peer's FIFO (by `recv`
    /// or [`Transport::drain_to_epoch`]).
    epoch_seen: Vec<AtomicU64>,
    /// Block-service requests in flight, any number per peer.
    pending: Arc<Pending>,
    fetch_seq: AtomicU64,
    handler: Arc<RwLock<Option<BlockHandler>>>,
    store_handler: Arc<RwLock<Option<StoreHandler>>>,
    shutdown: Arc<AtomicBool>,
    readers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Trace sink shared with the reader threads (they record peer
    /// deaths); `Tracer::off()` until [`TcpTransport::set_tracer`].
    tracer: Arc<Mutex<Tracer>>,
    /// Block-buffer pool shared with reader threads: block-service
    /// responses land in recycled buffers and served blocks are
    /// returned here after their vectored send. `None` until
    /// [`TcpTransport::set_buffer_pool`].
    pool: Arc<RwLock<Option<BufferPool>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // A rank may exit while peers still depend on its last sends
        // (e.g. the final frames of a broadcast tree): push buffered
        // frames onto the wire before closing anything.
        for p in self.peers.iter().flatten() {
            // verify: allow(L2, best-effort flush in Drop — a dead peer's error has nowhere to go)
            let _ = p.flush();
        }
        self.shutdown.store(true, Ordering::Release);
        for p in self.peers.iter().flatten() {
            let _ = p.stream.shutdown(std::net::Shutdown::Both);
        }
        for h in self.readers.lock().expect("reader handles").drain(..) {
            let _ = h.join();
        }
    }
}

/// One rank's endpoint of the TCP socket mesh (cheaply cloneable
/// handle; the last clone tears the connections down).
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<Inner>,
}

impl TcpTransport {
    /// Join the mesh: `addrs[rank]` must be the address `listener` is
    /// bound to; every other entry a peer's listener. Dials lower
    /// ranks (retrying while they come up), accepts higher ranks, and
    /// spawns one reader thread per established connection.
    pub fn connect_mesh(
        rank: usize,
        addrs: &[SocketAddr],
        listener: TcpListener,
        opts: TcpOptions,
    ) -> Result<Self> {
        let size = addrs.len();
        if rank >= size {
            return Err(Error::config(format!("rank {rank} out of range for {size} ranks")));
        }

        // Accept from higher ranks while dialing lower ranks.
        let expect_inbound = size - 1 - rank;
        let deadline = Instant::now() + opts.connect_timeout;
        let acceptor = std::thread::Builder::new()
            .name(format!("demsort-accept-{rank}"))
            .spawn(move || accept_peers(&listener, rank, size, expect_inbound, deadline))
            .map_err(|e| Error::comm(format!("spawn acceptor: {e}")))?;

        let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        for (j, stream_slot) in streams.iter_mut().enumerate().take(rank) {
            let s = dial_peer(addrs[j], rank, deadline)
                .map_err(|e| Error::comm(format!("rank {rank} dialing rank {j}: {e}")))?;
            *stream_slot = Some(s);
        }
        let accepted = acceptor
            .join()
            .map_err(|_| Error::comm("acceptor thread panicked"))?
            .map_err(|e| Error::comm(format!("rank {rank} accepting peers: {e}")))?;
        for (j, s) in accepted {
            streams[j] = Some(s);
        }

        Self::from_streams(rank, size, streams, opts)
    }

    /// Assemble the endpoint from established, handshaken streams
    /// (`streams[j]` connected to rank `j`, `None` at `j == rank`).
    fn from_streams(
        rank: usize,
        size: usize,
        streams: Vec<Option<TcpStream>>,
        opts: TcpOptions,
    ) -> Result<Self> {
        let mut peers: Vec<Option<Arc<PeerLink>>> = Vec::with_capacity(size);
        let mut inbox = Vec::with_capacity(size);
        let (self_tx, self_rx) = unbounded::<InboxMsg>();
        let mut self_rx = Some(self_rx);
        let handler: Arc<RwLock<Option<BlockHandler>>> = Arc::new(RwLock::new(None));
        let store_handler: Arc<RwLock<Option<StoreHandler>>> = Arc::new(RwLock::new(None));
        let pending: Arc<Pending> = Arc::new(Mutex::new(PendingFetches {
            inflight: HashMap::new(),
            reader_gone: vec![false; size],
        }));
        let shutdown = Arc::new(AtomicBool::new(false));
        let tracer: Arc<Mutex<Tracer>> = Arc::new(Mutex::new(Tracer::off()));
        let pool: Arc<RwLock<Option<BufferPool>>> = Arc::new(RwLock::new(None));
        let mut readers = Vec::with_capacity(size.saturating_sub(1));

        for (j, stream) in streams.into_iter().enumerate() {
            if j == rank {
                debug_assert!(stream.is_none(), "no stream to self");
                peers.push(None);
                inbox.push(Mutex::new(self_rx.take().expect("one self slot")));
                continue;
            }
            let stream = stream
                .ok_or_else(|| Error::comm(format!("no connection established to rank {j}")))?;
            stream
                .set_nodelay(true)
                .and_then(|()| stream.set_read_timeout(Some(READ_TICK)))
                .map_err(|e| Error::comm(format!("configure socket to rank {j}: {e}")))?;
            let write_half = stream
                .try_clone()
                .map_err(|e| Error::comm(format!("clone socket to rank {j}: {e}")))?;
            let link = Arc::new(PeerLink {
                peer: j,
                stream: stream.try_clone().map_err(|e| Error::comm(e.to_string()))?,
                writer: Mutex::new(BufWriter::with_capacity(opts.write_buffer, write_half)),
                dirty: AtomicBool::new(false),
                wire_sent: AtomicU64::new(0),
                wire_recv: AtomicU64::new(0),
            });
            let (data_tx, data_rx) = unbounded::<InboxMsg>();
            let reader = ReaderCtx {
                peer: j,
                stream,
                link: Arc::clone(&link),
                data_tx,
                pending: Arc::clone(&pending),
                handler: Arc::clone(&handler),
                store_handler: Arc::clone(&store_handler),
                shutdown: Arc::clone(&shutdown),
                tracer: Arc::clone(&tracer),
                pool: Arc::clone(&pool),
            };
            readers.push(
                std::thread::Builder::new()
                    .name(format!("demsort-rx-{rank}-from-{j}"))
                    .spawn(move || reader.run())
                    .map_err(|e| Error::comm(format!("spawn reader: {e}")))?,
            );
            peers.push(Some(link));
            inbox.push(Mutex::new(data_rx));
        }

        Ok(Self {
            inner: Arc::new(Inner {
                rank,
                size,
                opts,
                peers,
                self_tx,
                inbox,
                epoch_seen: (0..size).map(|_| AtomicU64::new(0)).collect(),
                pending,
                fetch_seq: AtomicU64::new(0),
                handler,
                store_handler,
                shutdown,
                readers: Mutex::new(readers),
                tracer,
                pool,
            }),
        })
    }

    /// Install the block-buffer pool for this endpoint. Reader threads
    /// then receive block-service response payloads of exactly the
    /// pool's buffer size into recycled buffers (zero-copy receive),
    /// and the block server recycles served blocks after their
    /// vectored send.
    pub fn set_buffer_pool(&self, pool: BufferPool) {
        *self.inner.pool.write().expect("pool lock") = Some(pool);
    }

    /// Install the trace sink for this endpoint. Reader threads record
    /// [`TraceEv::PeerDead`] through it when a peer's connection drops,
    /// and [`Transport::advance_epoch`] records the epoch cut. Pass
    /// [`Tracer::off`] to disable again (e.g. before teardown, so the
    /// deliberate close of peer sockets is not journalled as deaths).
    pub fn set_tracer(&self, t: Tracer) {
        *self.inner.tracer.lock().expect("tracer lock") = t;
    }

    /// Register the handler serving this rank's blocks to remote
    /// block-service requests (selection probes, striped reads).
    pub fn set_block_handler(&self, h: BlockHandler) {
        *self.inner.handler.write().expect("handler lock") = Some(h);
    }

    /// Drop the block handler (subsequent requests get an error reply).
    /// Workers clear it once no peer can read remotely anymore,
    /// breaking the handler's reference back to the storage.
    pub fn clear_block_handler(&self) {
        *self.inner.handler.write().expect("handler lock") = None;
    }

    /// Register the handler accepting remote block *stores* into this
    /// rank's storage (run replication).
    pub fn set_store_handler(&self, h: StoreHandler) {
        *self.inner.store_handler.write().expect("store handler lock") = Some(h);
    }

    /// Drop the store handler (subsequent store requests get an error
    /// reply).
    pub fn clear_store_handler(&self) {
        *self.inner.store_handler.write().expect("store handler lock") = None;
    }

    /// Issue a **batched, pipelined** read of `blocks` (as
    /// `(disk, slot)` addresses) from rank `pe`'s storage: every
    /// request goes onto the wire behind a single flush, responses are
    /// matched by request id (so they may arrive out of order relative
    /// to other in-flight batches), and the returned futures are in
    /// request order. Any number of fetches — from any threads — may
    /// be in flight to the same peer concurrently.
    ///
    /// # Errors
    /// [`Error::Comm`] if a request cannot be written to the peer.
    /// Per-block failures (including timeouts) surface from each
    /// [`WireFetch::wait`].
    pub fn fetch_blocks(&self, pe: usize, blocks: &[(u32, u32)]) -> Result<Vec<WireFetch>> {
        let inner = &*self.inner;
        let mut fetches = Vec::with_capacity(blocks.len());
        if pe == inner.rank {
            // Self-service: answer straight from the local handler.
            let handler = inner.handler.read().expect("handler lock").clone();
            for &(disk, slot) in blocks {
                let fetch = self.register_op(pe, BlockOp::Fetch);
                let result = match &handler {
                    Some(h) => h(disk, slot).map_err(Error::io),
                    None => Err(Error::io("no block handler registered")),
                };
                fetch.slot.complete(result);
                fetches.push(fetch);
            }
            return Ok(fetches);
        }
        let link = inner.peers[pe].as_ref().expect("peer link");
        for &(disk, slot) in blocks {
            let fetch = self.register_op(pe, BlockOp::Fetch);
            let mut req = [0u8; 16];
            req[..8].copy_from_slice(&fetch.id.to_le_bytes());
            req[8..12].copy_from_slice(&disk.to_le_bytes());
            req[12..16].copy_from_slice(&slot.to_le_bytes());
            link.write_frame(KIND_BLOCK_REQ, &req)?;
            fetches.push(fetch);
        }
        link.flush()?;
        Ok(fetches)
    }

    /// Fetch one block from rank `pe`'s storage (a one-element
    /// [`TcpTransport::fetch_blocks`] waited immediately).
    pub fn fetch_block(&self, pe: usize, disk: u32, slot: u32) -> Result<Vec<u8>> {
        let mut fetches = self.fetch_blocks(pe, &[(disk, slot)])?;
        fetches.pop().expect("one fetch issued").wait()
    }

    /// Issue a **batched, pipelined** store of `blocks` (as
    /// `(disk_hint, data)` pairs) into rank `pe`'s storage — the write
    /// half of the block service, mirroring
    /// [`fetch_blocks`](Self::fetch_blocks): every request goes onto
    /// the wire behind a single flush, acknowledgements are matched by
    /// request id, and the returned futures are in request order. The
    /// serving rank allocates each copy itself (honouring `disk_hint`)
    /// and answers with the assigned `(disk, slot)`.
    ///
    /// # Errors
    /// [`Error::Comm`] if a request cannot be written to the peer.
    /// Per-block failures (including timeouts) surface from each
    /// [`WireStore::wait`].
    pub fn store_blocks(&self, pe: usize, blocks: &[(u32, &[u8])]) -> Result<Vec<WireStore>> {
        let inner = &*self.inner;
        let mut stores = Vec::with_capacity(blocks.len());
        if pe == inner.rank {
            // Self-service: store straight through the local handler.
            let handler = inner.store_handler.read().expect("store handler lock").clone();
            for &(disk_hint, data) in blocks {
                let store = self.register_op(pe, BlockOp::Store);
                let result = match &handler {
                    Some(h) => h(disk_hint, data).map_err(Error::io).map(encode_store_ack),
                    None => Err(Error::io("no store handler registered")),
                };
                store.slot.complete(result);
                stores.push(WireStore(store));
            }
            return Ok(stores);
        }
        let link = inner.peers[pe].as_ref().expect("peer link");
        for &(disk_hint, data) in blocks {
            let store = self.register_op(pe, BlockOp::Store);
            // Gather-write the request: the 16-byte `[id][hint][len]`
            // prefix (the layout of `wire::encode_store_req`) plus the
            // block itself, never glued into one buffer.
            let mut prefix = [0u8; 16];
            prefix[..8].copy_from_slice(&store.id.to_le_bytes());
            prefix[8..12].copy_from_slice(&disk_hint.to_le_bytes());
            prefix[12..16].copy_from_slice(&(data.len() as u32).to_le_bytes());
            link.write_frame_parts(KIND_STORE_REQ, &[&prefix, data])?;
            stores.push(WireStore(store));
        }
        link.flush()?;
        Ok(stores)
    }

    /// Store one block into rank `pe`'s storage (a one-element
    /// [`TcpTransport::store_blocks`] waited immediately); returns the
    /// `(disk, slot)` the serving rank assigned.
    pub fn store_block(&self, pe: usize, disk_hint: u32, data: &[u8]) -> Result<(u32, u32)> {
        let mut stores = self.store_blocks(pe, &[(disk_hint, data)])?;
        stores.pop().expect("one store issued").wait()
    }

    /// Allocate a request id and register its completion slot. If the
    /// peer's reader thread is already gone (dead peer), the request
    /// comes back pre-failed — registration and the reader's exit
    /// sweep share one lock, so a request can never be stranded
    /// waiting on a peer that will never answer.
    fn register_op(&self, peer: usize, op: BlockOp) -> WireFetch {
        let inner = &*self.inner;
        let id = inner.fetch_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = FetchSlot::new();
        {
            let mut pending = inner.pending.lock().expect("pending fetches lock");
            if peer != inner.rank && pending.reader_gone[peer] {
                slot.complete(Err(Error::comm(format!(
                    "{}: peer disconnected",
                    op.describe(peer)
                ))));
            } else {
                pending.inflight.insert(id, (peer, op, Arc::clone(&slot)));
            }
        }
        WireFetch {
            id,
            peer,
            op,
            slot,
            pending: Arc::clone(&inner.pending),
            read_timeout: inner.opts.read_timeout,
        }
    }

    /// Wire-level traffic to/from rank `j` (frame headers included).
    pub fn wire_peer(&self, j: usize) -> (u64, u64) {
        match &self.inner.peers[j] {
            Some(p) => (p.wire_sent.load(Ordering::Relaxed), p.wire_recv.load(Ordering::Relaxed)),
            None => (0, 0),
        }
    }

    /// Total wire-level traffic `(sent, received)` over all peers.
    pub fn wire_totals(&self) -> (u64, u64) {
        (0..self.inner.size).fold((0, 0), |(s, r), j| {
            let (ps, pr) = self.wire_peer(j);
            (s + ps, r + pr)
        })
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.inner.rank
    }

    fn size(&self) -> usize {
        self.inner.size
    }

    fn send(&self, to: usize, frame: Vec<u8>) -> Result<()> {
        if to == self.inner.rank {
            // Self-delivery moves the owned frame into the loopback
            // queue — no copy.
            return self
                .inner
                .self_tx
                .send(InboxMsg::Data(frame))
                .map_err(|_| Error::comm("send to self: loopback queue closed"));
        }
        self.send_bytes(to, &frame)
    }

    fn send_bytes(&self, to: usize, frame: &[u8]) -> Result<()> {
        if to == self.inner.rank {
            return self
                .inner
                .self_tx
                .send(InboxMsg::Data(frame.to_vec()))
                .map_err(|_| Error::comm("send to self: loopback queue closed"));
        }
        self.inner.peers[to].as_ref().expect("peer link").write_frame(KIND_DATA, frame)
    }

    fn send_vectored(&self, to: usize, parts: &[&[u8]]) -> Result<()> {
        if to == self.inner.rank {
            let mut frame = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
            for p in parts {
                frame.extend_from_slice(p);
            }
            return self
                .inner
                .self_tx
                .send(InboxMsg::Data(frame))
                .map_err(|_| Error::comm("send to self: loopback queue closed"));
        }
        self.inner.peers[to].as_ref().expect("peer link").write_frame_parts(KIND_DATA, parts)
    }

    fn recv(&self, from: usize) -> Result<Vec<u8>> {
        let rx = self.inner.inbox[from].lock().expect("inbox lock");
        match rx.recv_timeout(self.inner.opts.read_timeout) {
            Ok(InboxMsg::Data(frame)) => Ok(frame),
            Ok(InboxMsg::Epoch(e)) => {
                // The peer cut its FIFO for recovery: the collective
                // this recv belongs to is doomed anyway, so surface a
                // clean failure (and record the watermark so a later
                // drain does not wait for a marker already consumed).
                self.inner.epoch_seen[from].fetch_max(e, Ordering::AcqRel);
                Err(Error::comm(format!(
                    "recv from rank {from}: peer advanced to recovery epoch {e}"
                )))
            }
            Err(RecvTimeoutError::Timeout) => Err(Error::comm(format!(
                "recv from rank {from}: timed out after {:?}",
                self.inner.opts.read_timeout
            ))),
            Err(RecvTimeoutError::Disconnected) => Err(Error::comm(format!(
                "recv from rank {from}: peer disconnected (socket closed)"
            ))),
        }
    }

    fn flush(&self) -> Result<()> {
        // A link whose peer the failure detector already declared dead
        // keeps its dirty flag (its last flush failed, and nothing can
        // deliver those bytes anymore) — propagating that error here
        // would poison every later collective, including a survivor
        // sub-group's recovery traffic that never addresses the dead
        // rank. Suppress it; a *live* peer's flush failure still fails
        // the collective (and is how a death is first detected when
        // the write side notices before the reader does).
        let gone = self.inner.pending.lock().expect("pending fetches lock").reader_gone.clone();
        for p in self.inner.peers.iter().flatten() {
            if let Err(e) = p.flush() {
                if !gone.get(p.peer).copied().unwrap_or(false) {
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn dead_peers(&self) -> Vec<bool> {
        self.inner.pending.lock().expect("pending fetches lock").reader_gone.clone()
    }

    fn advance_epoch(&self, epoch: u64) -> Result<()> {
        let inner = &*self.inner;
        inner.tracer.lock().expect("tracer lock").instant(TraceEv::EpochAdvance { epoch });
        let marker = epoch.to_le_bytes();
        for link in inner.peers.iter().flatten() {
            // A write to a dead peer errors — that is exactly the rank
            // the epoch is cutting away; skip it and keep going so one
            // death cannot block the cut reaching the survivors.
            if link.write_frame(KIND_EPOCH, &marker).is_ok() {
                // verify: allow(L2, a flush error marks the peer dead — exactly the rank the epoch cuts away)
                let _ = link.flush();
            }
        }
        inner
            .self_tx
            .send(InboxMsg::Epoch(epoch))
            .map_err(|_| Error::comm("advance epoch: self loopback queue closed"))
    }

    fn drain_to_epoch(&self, from: usize, epoch: u64) -> Result<()> {
        let inner = &*self.inner;
        if inner.epoch_seen[from].load(Ordering::Acquire) >= epoch {
            return Ok(());
        }
        let rx = inner.inbox[from].lock().expect("inbox lock");
        loop {
            // Re-check under the inbox lock: a racing recv may have
            // consumed the marker and recorded the watermark.
            if inner.epoch_seen[from].load(Ordering::Acquire) >= epoch {
                return Ok(());
            }
            match rx.recv_timeout(inner.opts.read_timeout) {
                Ok(InboxMsg::Data(_)) => {} // stale pre-epoch traffic: discard
                Ok(InboxMsg::Epoch(e)) => {
                    inner.epoch_seen[from].fetch_max(e, Ordering::AcqRel);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(Error::comm(format!(
                        "drain to epoch {epoch} from rank {from}: timed out after {:?}",
                        inner.opts.read_timeout
                    )))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(Error::comm(format!(
                        "drain to epoch {epoch} from rank {from}: peer disconnected \
                         before its epoch marker arrived"
                    )))
                }
            }
        }
    }
}

// -------------------------------------------------------------------
// Reader thread: demultiplex one peer's frames.
// -------------------------------------------------------------------

struct ReaderCtx {
    peer: usize,
    stream: TcpStream,
    link: Arc<PeerLink>,
    data_tx: Sender<InboxMsg>,
    pending: Arc<Pending>,
    handler: Arc<RwLock<Option<BlockHandler>>>,
    store_handler: Arc<RwLock<Option<StoreHandler>>>,
    shutdown: Arc<AtomicBool>,
    tracer: Arc<Mutex<Tracer>>,
    pool: Arc<RwLock<Option<BufferPool>>>,
}

impl ReaderCtx {
    fn run(self) {
        let peer = self.peer;
        let pending = Arc::clone(&self.pending);
        let shutdown = Arc::clone(&self.shutdown);
        let tracer = Arc::clone(&self.tracer);
        self.demux();
        // Journal the death first — but only when the connection broke
        // on its own; a deliberate local teardown closes every socket
        // and is not a failure-detector verdict.
        if !shutdown.load(Ordering::Acquire) {
            tracer.lock().expect("tracer lock").instant(TraceEv::PeerDead { peer });
        }
        // This reader is the only path a response from `peer` can
        // take: once it exits (socket closed, protocol violation,
        // teardown), fail every request still in flight to the peer
        // immediately — waiters must not ride out the full read
        // timeout against a rank that can no longer answer — and mark
        // the peer so later registrations come back pre-failed.
        let mut p = pending.lock().expect("pending fetches lock");
        p.reader_gone[peer] = true;
        let gone: Vec<u64> = p
            .inflight
            .iter()
            .filter(|(_, (owner, _, _))| *owner == peer)
            .map(|(id, _)| *id)
            .collect();
        for id in gone {
            if let Some((_, op, slot)) = p.inflight.remove(&id) {
                slot.complete(Err(Error::comm(format!(
                    "{}: peer disconnected",
                    op.describe(peer)
                ))));
            }
        }
    }

    fn demux(mut self) {
        loop {
            let mut header = [0u8; 5];
            match self.read_full(&mut header) {
                ReadOutcome::Ok => {}
                ReadOutcome::Closed | ReadOutcome::Shutdown => return,
            }
            let kind = header[0];
            let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
            if kind == KIND_BLOCK_RESP {
                // Split receive: the 9-byte `[id][status]` prefix lands
                // on the stack, the body straight into its final buffer
                // (a recycled pool buffer when the size matches) — the
                // decode buffer *is* the handed-off buffer, no `to_vec`.
                if len < 9 {
                    return; // malformed response: protocol violation
                }
                let mut prefix = [0u8; 9];
                match self.read_full(&mut prefix) {
                    ReadOutcome::Ok => {}
                    ReadOutcome::Closed | ReadOutcome::Shutdown => return,
                }
                let mut body = self.body_buf(len - 9);
                match self.read_full(&mut body) {
                    ReadOutcome::Ok => {}
                    ReadOutcome::Closed | ReadOutcome::Shutdown => return,
                }
                self.link.wire_recv.fetch_add((5 + len) as u64, Ordering::Relaxed);
                let id = u64::from_le_bytes(prefix[..8].try_into().expect("8 bytes"));
                let resp = if prefix[8] == 0 {
                    Ok(body)
                } else {
                    // The owner answered with a storage error.
                    Err(Error::io(String::from_utf8_lossy(&body).into_owned()))
                };
                self.complete_by_id(id, resp);
                continue;
            }
            let mut payload = vec![0u8; len];
            match self.read_full(&mut payload) {
                ReadOutcome::Ok => {}
                ReadOutcome::Closed | ReadOutcome::Shutdown => return,
            }
            self.link.wire_recv.fetch_add((5 + len) as u64, Ordering::Relaxed);
            match kind {
                KIND_DATA => {
                    if self.data_tx.send(InboxMsg::Data(payload)).is_err() {
                        return; // endpoint dropped
                    }
                }
                KIND_BLOCK_REQ => {
                    if self.serve_block(&payload).is_err() {
                        return;
                    }
                }
                KIND_STORE_REQ => {
                    if self.serve_store(&payload).is_err() {
                        return;
                    }
                }
                KIND_STORE_RESP => {
                    let Ok((id, reply)) = wire::decode_store_resp(&payload) else {
                        return; // malformed acknowledgement: protocol violation
                    };
                    let resp = match reply {
                        Ok(addr) => Ok(encode_store_ack(addr)),
                        // The serving rank answered with a storage error.
                        Err(msg) => Err(Error::io(msg)),
                    };
                    self.complete_by_id(id, resp);
                }
                KIND_EPOCH => {
                    let Ok(bytes) = <[u8; 8]>::try_from(&payload[..]) else {
                        return; // malformed epoch marker: protocol violation
                    };
                    let epoch = u64::from_le_bytes(bytes);
                    if self.data_tx.send(InboxMsg::Epoch(epoch)).is_err() {
                        return; // endpoint dropped
                    }
                }
                _ => return, // unknown frame kind: protocol violation
            }
        }
    }

    /// A buffer of exactly `len` bytes for an incoming response body:
    /// a recycled pool buffer when the transport has a pool of that
    /// size, a fresh allocation otherwise. Contents are garbage; the
    /// caller must fill it completely.
    fn body_buf(&self, len: usize) -> Vec<u8> {
        if let Some(pool) = self.pool.read().expect("pool lock").as_ref() {
            if pool.buf_bytes() == len {
                return pool.get().into_vec();
            }
        }
        vec![0u8; len]
    }

    /// Resolve the in-flight request `id` with `resp`. An unknown id
    /// is a response to an abandoned (dropped or timed-out) request:
    /// discard it.
    fn complete_by_id(&self, id: u64, resp: Result<Vec<u8>>) {
        let slot = self.pending.lock().expect("pending fetches lock").inflight.remove(&id);
        if let Some((_, _, slot)) = slot {
            slot.complete(resp);
        }
    }

    /// Answer one block-service request from this peer out of local
    /// storage.
    fn serve_block(&self, req: &[u8]) -> Result<()> {
        if req.len() != 16 {
            return Err(Error::comm(format!("malformed block request from rank {}", self.peer)));
        }
        let id = u64::from_le_bytes(req[..8].try_into().expect("8 bytes"));
        let disk = u32::from_le_bytes(req[8..12].try_into().expect("4 bytes"));
        let slot = u32::from_le_bytes(req[12..16].try_into().expect("4 bytes"));
        let handler = self.handler.read().expect("handler lock").clone();
        let result = match handler {
            Some(h) => h(disk, slot),
            None => Err("no block handler registered on remote rank".to_string()),
        };
        // Gather-write the `[id][status]` prefix and the body without
        // assembling an intermediate response buffer; the served block
        // is recycled into the pool afterwards.
        let mut prefix = [0u8; 9];
        prefix[..8].copy_from_slice(&id.to_le_bytes());
        match result {
            Ok(data) => {
                prefix[8] = 0;
                self.link.write_frame_parts(KIND_BLOCK_RESP, &[&prefix, &data])?;
                if let Some(pool) = self.pool.read().expect("pool lock").as_ref() {
                    pool.put_vec(data);
                }
            }
            Err(msg) => {
                prefix[8] = 1;
                self.link.write_frame_parts(KIND_BLOCK_RESP, &[&prefix, msg.as_bytes()])?;
            }
        }
        self.link.flush()
    }

    /// Answer one block-*store* request from this peer: allocate a
    /// slot in local storage (this rank's allocator is the single
    /// authority over its disks), write the data, and acknowledge with
    /// the assigned address.
    fn serve_store(&self, req: &[u8]) -> Result<()> {
        let (id, disk_hint, data) = wire::decode_store_req(req).map_err(|e| {
            Error::comm(format!("malformed store request from rank {}: {e}", self.peer))
        })?;
        let handler = self.store_handler.read().expect("store handler lock").clone();
        let reply: wire::StoreReply = match handler {
            Some(h) => h(disk_hint, data),
            None => Err("no store handler registered on remote rank".to_string()),
        };
        let resp = wire::encode_store_resp(id, &reply);
        self.link.write_frame(KIND_STORE_RESP, &resp)?;
        self.link.flush()
    }

    /// Fill `buf`, riding out socket read-timeout ticks (idle peers are
    /// normal; the shutdown flag ends the wait, a closed socket ends
    /// the connection).
    fn read_full(&mut self, buf: &mut [u8]) -> ReadOutcome {
        let mut filled = 0;
        while filled < buf.len() {
            if self.shutdown.load(Ordering::Acquire) {
                return ReadOutcome::Shutdown;
            }
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => filled += n,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Closed,
            }
        }
        ReadOutcome::Ok
    }
}

enum ReadOutcome {
    Ok,
    Closed,
    Shutdown,
}

// -------------------------------------------------------------------
// Mesh bootstrap
// -------------------------------------------------------------------

/// Dial `addr`, retrying while the peer's listener is still coming up,
/// then send the rank handshake.
fn dial_peer(addr: SocketAddr, my_rank: usize, deadline: Instant) -> std::io::Result<TcpStream> {
    loop {
        // Per-attempt timeout generous enough for high-RTT links (the
        // multi-host hostfile mode); the retry loop handles peers that
        // are not listening yet, bounded by the overall deadline.
        let attempt = Duration::from_secs(2).min(
            deadline.saturating_duration_since(Instant::now()).max(Duration::from_millis(250)),
        );
        match TcpStream::connect_timeout(&addr, attempt) {
            Ok(mut s) => {
                let mut hello = [0u8; 9];
                hello[..4].copy_from_slice(&MAGIC.to_le_bytes());
                hello[4] = VERSION;
                hello[5..9].copy_from_slice(&(my_rank as u32).to_le_bytes());
                s.write_all(&hello)?;
                s.flush()?;
                return Ok(s);
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Accept `expect` handshaken connections from ranks above `my_rank`,
/// in any arrival order.
///
/// Connections that fail the handshake — silent probers (a port
/// scanner or health check hitting a well-known hostfile port), bad
/// magic/version, or duplicate/out-of-range ranks — are dropped and
/// accepting continues; only the deadline aborts the bootstrap.
fn accept_peers(
    listener: &TcpListener,
    my_rank: usize,
    size: usize,
    expect: usize,
    deadline: Instant,
) -> std::io::Result<Vec<(usize, TcpStream)>> {
    listener.set_nonblocking(true)?;
    let mut got: Vec<(usize, TcpStream)> = Vec::with_capacity(expect);
    while got.len() < expect {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Some((rank, stream)) = handshake_inbound(stream, my_rank, size, &got) {
                    got.push((rank, stream));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        format!(
                            "rank {my_rank}: only {} of {expect} inbound connections arrived",
                            got.len()
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// Validate one inbound connection's rank handshake; `None` drops it.
fn handshake_inbound(
    mut stream: TcpStream,
    my_rank: usize,
    size: usize,
    got: &[(usize, TcpStream)],
) -> Option<(usize, TcpStream)> {
    stream.set_nonblocking(false).ok()?;
    // A real peer writes its hello immediately on connect, so a short
    // timeout suffices — and bounds how long a silent stray can stall
    // the (single-threaded) accept loop.
    stream.set_read_timeout(Some(Duration::from_millis(1000))).ok()?;
    let mut hello = [0u8; 9];
    stream.read_exact(&mut hello).ok()?;
    let magic = u32::from_le_bytes(hello[..4].try_into().expect("4 bytes"));
    let version = hello[4];
    let rank = u32::from_le_bytes(hello[5..9].try_into().expect("4 bytes")) as usize;
    if magic != MAGIC || version != VERSION {
        return None;
    }
    if rank <= my_rank || rank >= size || got.iter().any(|(r, _)| *r == rank) {
        return None; // out-of-range or duplicate: first connection wins
    }
    Some((rank, stream))
}

/// Bind an ephemeral loopback listener (mesh address to register with
/// the coordinator or hostfile).
pub fn bind_loopback() -> Result<(TcpListener, SocketAddr)> {
    let l = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| Error::comm(format!("bind loopback listener: {e}")))?;
    let addr = l.local_addr().map_err(|e| Error::comm(e.to_string()))?;
    Ok((l, addr))
}

/// Parse a rendezvous host file: one `host:port` per line (rank =
/// line order), blank lines and `#` comments ignored.
///
/// Every line must resolve to a *distinct* address: two ranks sharing
/// one `host:port` would both try to bind it and the mesh handshake
/// would mis-assign their connections, so duplicates are rejected
/// up front with [`Error::Config`] naming both lines.
pub fn parse_hostfile(text: &str) -> Result<Vec<SocketAddr>> {
    let mut addrs: Vec<SocketAddr> = Vec::new();
    let mut lines: Vec<usize> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut resolved = line
            .to_socket_addrs()
            .map_err(|e| Error::config(format!("hostfile line {}: {e}", lineno + 1)))?;
        let addr = resolved.next().ok_or_else(|| {
            Error::config(format!("hostfile line {} resolves to no address", lineno + 1))
        })?;
        if let Some(dup) = addrs.iter().position(|a| *a == addr) {
            return Err(Error::config(format!(
                "hostfile line {} duplicates rank {}'s address {addr} (line {}): \
                 every rank needs its own host:port",
                lineno + 1,
                dup,
                lines[dup] + 1
            )));
        }
        addrs.push(addr);
        lines.push(lineno);
    }
    if addrs.is_empty() {
        return Err(Error::config("hostfile contains no addresses"));
    }
    Ok(addrs)
}

/// Bootstrap a full loopback mesh of `p` endpoints within this process
/// (each rank on its own thread during the handshake). Used by tests
/// and benchmarks to exercise the complete wire path.
pub fn loopback_mesh(p: usize, opts: TcpOptions) -> Result<Vec<TcpTransport>> {
    let mut listeners = Vec::with_capacity(p);
    let mut addrs = Vec::with_capacity(p);
    for _ in 0..p {
        let (l, a) = bind_loopback()?;
        listeners.push(l);
        addrs.push(a);
    }
    let addrs = &addrs;
    let opts = &opts;
    std::thread::scope(|s| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                s.spawn(move || TcpTransport::connect_mesh(rank, addrs, listener, opts.clone()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("mesh thread")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, run_cluster_tcp};
    use crate::comm::Communicator;

    fn fast_opts() -> TcpOptions {
        TcpOptions {
            read_timeout: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(5),
            write_buffer: 4 << 10,
        }
    }

    #[test]
    fn loopback_collectives_match_local_transport() {
        let job = |c: Communicator| {
            c.barrier().expect("barrier");
            let gathered = c.allgather(vec![c.rank() as u8; 3]).expect("allgather");
            let sum = c.allreduce_sum(c.rank() as u64 + 1).expect("allreduce");
            let msgs: Vec<Vec<u8>> = (0..c.size()).map(|j| vec![c.rank() as u8, j as u8]).collect();
            let a2a = c.alltoallv(msgs).expect("alltoallv");
            let bc = c
                .broadcast(1, if c.rank() == 1 { vec![7, 7] } else { Vec::new() })
                .expect("broadcast");
            (gathered, sum, a2a, bc, c.counters())
        };
        let local = run_cluster(4, job);
        let tcp = run_cluster_tcp(4, job);
        for (l, t) in local.iter().zip(&tcp) {
            assert_eq!(l.0, t.0, "allgather");
            assert_eq!(l.1, t.1, "allreduce");
            assert_eq!(l.2, t.2, "alltoallv");
            assert_eq!(l.3, t.3, "broadcast");
            // The headline transport property: metered traffic is
            // byte-for-byte identical across transports.
            assert_eq!(l.4, t.4, "CommCounters parity");
        }
    }

    #[test]
    fn mesh_survives_out_of_order_connects() {
        // Stagger rank start-up in reverse order: high ranks dial
        // before low ranks even listen-accept, so connections arrive
        // out of order and the rank handshake must sort them out.
        let p = 4;
        let mut listeners = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..p {
            let (l, a) = bind_loopback().expect("bind");
            listeners.push(l);
            addrs.push(a);
        }
        let addrs = &addrs;
        let transports: Vec<TcpTransport> = std::thread::scope(|s| {
            let handles: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(rank, listener)| {
                    s.spawn(move || {
                        std::thread::sleep(Duration::from_millis(30 * (p - rank) as u64));
                        TcpTransport::connect_mesh(rank, addrs, listener, fast_opts())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("thread").expect("mesh")).collect()
        });
        // The mesh must be fully usable: run a barrier + alltoall.
        let comms: Vec<Communicator> =
            transports.into_iter().map(|t| Communicator::new(Box::new(t))).collect();
        let results = crate::cluster::run_cluster_over(comms, |c| {
            c.barrier().expect("barrier");
            c.allgather_u64(c.rank() as u64 * 100).expect("allgather")
        });
        for r in results {
            assert_eq!(r, vec![0, 100, 200, 300]);
        }
    }

    #[test]
    fn mesh_tolerates_stray_connections() {
        // A stray client hits rank 0's listener (where rank 1 is also
        // expected) with a garbage handshake: the bootstrap must drop
        // it and still complete the mesh.
        let (l0, a0) = bind_loopback().expect("bind 0");
        let (l1, a1) = bind_loopback().expect("bind 1");
        let addrs = vec![a0, a1];
        let mut stray = std::net::TcpStream::connect(a0).expect("stray connect");
        stray.write_all(&[0xFF; 9]).expect("stray garbage");
        let addrs = &addrs;
        let (t0, t1) = std::thread::scope(|s| {
            let h0 = s.spawn(move || TcpTransport::connect_mesh(0, addrs, l0, fast_opts()));
            let h1 = s.spawn(move || TcpTransport::connect_mesh(1, addrs, l1, fast_opts()));
            (
                h0.join().expect("thread 0").expect("mesh 0"),
                h1.join().expect("thread 1").expect("mesh 1"),
            )
        });
        drop(stray);
        t1.send(0, vec![5]).expect("send");
        t1.flush().expect("flush");
        assert_eq!(t0.recv(1).expect("recv"), vec![5]);
    }

    #[test]
    fn dead_peer_surfaces_error_not_hang() {
        let mut mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        t1.send(0, vec![1, 2]).expect("send");
        t1.flush().expect("flush");
        assert_eq!(t0.recv(1).expect("first frame"), vec![1, 2]);
        // Rank 1 dies mid-collective: its sockets close.
        drop(t1);
        let start = Instant::now();
        let err = t0.recv(1).expect_err("dead peer must error");
        assert!(matches!(err, Error::Comm(_)), "{err}");
        assert!(start.elapsed() < Duration::from_secs(5), "must not hang");
    }

    #[test]
    fn silent_peer_times_out() {
        let mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        // Rank 1 stays alive but sends nothing.
        let start = Instant::now();
        let err = mesh[0].recv(1).expect_err("silence must time out");
        assert!(matches!(err, Error::Comm(ref m) if m.contains("timed out")), "{err}");
        assert!(start.elapsed() >= Duration::from_millis(400));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn block_fetch_round_trip_and_missing_handler() {
        let mut mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        // No handler yet: the requester gets an error reply, not a hang.
        let err = t0.fetch_block(1, 0, 0).expect_err("no handler");
        assert!(err.to_string().contains("no block handler"), "{err}");
        // Register a handler on rank 1 serving synthetic blocks.
        t1.set_block_handler(Arc::new(|disk, slot| {
            if disk > 3 {
                return Err(format!("no such disk {disk}"));
            }
            Ok(vec![disk as u8, slot as u8, 0xAB])
        }));
        assert_eq!(t0.fetch_block(1, 2, 9).expect("fetch"), vec![2, 9, 0xAB]);
        let err = t0.fetch_block(1, 7, 0).expect_err("bad disk");
        assert!(err.to_string().contains("no such disk"), "{err}");
        // The block service is out of band: data frames sent before a
        // fetch do not block it, and per-source FIFO of data survives.
        t1.send(0, vec![42]).expect("send");
        assert_eq!(t0.fetch_block(1, 0, 1).expect("fetch"), vec![0, 1, 0xAB]);
        assert_eq!(t0.recv(1).expect("data"), vec![42]);
    }

    #[test]
    fn batched_fetches_pipeline_and_match_by_id() {
        let mut mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        t1.set_block_handler(Arc::new(|disk, slot| {
            if slot == 13 {
                return Err("slot 13 is cursed".to_string());
            }
            Ok(vec![disk as u8, slot as u8])
        }));
        // One flush puts a whole batch on the wire; futures come back
        // in request order even though they complete independently.
        let blocks: Vec<(u32, u32)> = (0..40u32).map(|i| (i % 4, i)).collect();
        let fetches = t0.fetch_blocks(1, &blocks).expect("issue batch");
        assert_eq!(fetches.len(), blocks.len());
        // Wait in REVERSE order: matching is by id, not arrival order.
        let mut results: Vec<Option<Vec<u8>>> = (0..blocks.len()).map(|_| None).collect();
        for (i, f) in fetches.into_iter().enumerate().rev() {
            if i == 13 {
                let err = f.wait().expect_err("cursed slot");
                assert!(err.to_string().contains("cursed"), "{err}");
                results[i] = Some(Vec::new());
            } else {
                results[i] = Some(f.wait().expect("fetch"));
            }
        }
        for (i, r) in results.iter().enumerate() {
            if i == 13 {
                continue;
            }
            assert_eq!(r.as_deref(), Some(&[(i % 4) as u8, i as u8][..]), "block {i}");
        }
    }

    #[test]
    fn concurrent_fetches_from_many_threads() {
        // No serialization lock: several threads may have fetches in
        // flight to the same peer at once, and each gets its own
        // responses back (routing is by request id).
        let mut mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        t1.set_block_handler(Arc::new(|disk, slot| Ok(vec![disk as u8, slot as u8])));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u32)
                .map(|thread| {
                    let t0 = t0.clone();
                    s.spawn(move || {
                        for slot in 0..25u32 {
                            let got = t0.fetch_block(1, thread, slot).expect("fetch");
                            assert_eq!(got, vec![thread as u8, slot as u8]);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("fetch thread");
            }
        });
    }

    #[test]
    fn dead_peer_fails_fetches_fast_not_after_timeout() {
        // A generous read timeout that a hung fetch would ride out.
        let opts = TcpOptions { read_timeout: Duration::from_secs(30), ..fast_opts() };
        let mut mesh = loopback_mesh(2, opts).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        drop(t1); // peer dies; no response can ever arrive
        let start = Instant::now();
        // Depending on timing the requests are refused up front (the
        // reader already noticed the closed socket), fail at flush, or
        // are swept when the reader exits — every path must resolve
        // far below the read timeout.
        let err = match t0.fetch_blocks(1, &[(0, 0), (1, 1)]) {
            Ok(fetches) => {
                let mut first_err = None;
                for f in fetches {
                    if let Err(e) = f.wait() {
                        first_err = Some(e);
                        break;
                    }
                }
                first_err.expect("dead peer must fail the fetch")
            }
            Err(e) => e,
        };
        assert!(matches!(err, Error::Comm(_)), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "dead peer must fail fetches promptly, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn abandoned_fetch_discards_late_response() {
        let mut mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        t1.set_block_handler(Arc::new(|disk, slot| Ok(vec![disk as u8, slot as u8])));
        // Drop the future without waiting: the request is abandoned and
        // the late response must be discarded, not corrupt a later one.
        let fetches = t0.fetch_blocks(1, &[(0, 1)]).expect("issue");
        drop(fetches);
        // A subsequent fetch still gets exactly its own block.
        assert_eq!(t0.fetch_block(1, 2, 3).expect("fetch"), vec![2, 3]);
    }

    #[test]
    fn wire_meters_count_headers() {
        let mut mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        t0.send(1, vec![0; 100]).expect("send");
        t0.flush().expect("flush");
        assert_eq!(t1.recv(0).expect("recv").len(), 100);
        let (sent, _) = t0.wire_peer(1);
        assert_eq!(sent, 105, "payload + 5-byte frame header");
        let (_, recv) = t1.wire_peer(0);
        assert_eq!(recv, 105);
        assert_eq!(t0.wire_totals().0, 105);
    }

    #[test]
    fn hostfile_parses_and_rejects() {
        let text = "# demsort hosts\n127.0.0.1:9000\n\n127.0.0.1:9001\n";
        let addrs = parse_hostfile(text).expect("parse");
        assert_eq!(addrs.len(), 2);
        assert_eq!(addrs[0].port(), 9000);
        assert_eq!(addrs[1].port(), 9001);
        assert!(parse_hostfile("").is_err(), "empty hostfile");
        assert!(parse_hostfile("not-an-address").is_err(), "garbage line");
    }

    #[test]
    fn hostfile_rejects_duplicate_addresses_and_parses_non_loopback() {
        // Two ranks on one host:port would fight over the bind and the
        // handshake would mis-assign connections: reject up front,
        // naming both offending lines.
        let err = parse_hostfile("10.0.0.1:9000\n10.0.0.2:9000\n\n10.0.0.1:9000\n")
            .expect_err("duplicate address");
        assert!(
            matches!(err, Error::Config(ref m) if m.contains("line 4") && m.contains("line 1")),
            "{err}"
        );
        // Real cluster hostfiles carry non-loopback addresses; rank
        // order and ports must survive parsing unchanged.
        let addrs = parse_hostfile("10.1.2.3:7000\n10.1.2.4:7001\n").expect("parse");
        assert_eq!(addrs.len(), 2);
        assert!(!addrs[0].ip().is_loopback());
        assert_eq!(addrs[0], SocketAddr::from(([10, 1, 2, 3], 7000)));
        assert_eq!(addrs[1], SocketAddr::from(([10, 1, 2, 4], 7001)));
        // Same host on distinct ports is fine (multi-PE per node).
        assert!(parse_hostfile("10.1.2.3:7000\n10.1.2.3:7001\n").is_ok());
    }

    #[test]
    fn mesh_over_non_loopback_addresses() {
        // Find a routable non-loopback local IP (CI/container safe: a
        // connected UDP socket does a route lookup, no packets move).
        let probe = std::net::UdpSocket::bind("0.0.0.0:0").expect("udp bind");
        let ip = match probe.connect("192.0.2.1:9").and_then(|()| probe.local_addr()) {
            Ok(a) if !a.ip().is_loopback() => a.ip(),
            // No non-loopback interface (fully isolated sandbox):
            // nothing beyond the loopback tests to exercise.
            _ => return,
        };
        let mut listeners = Vec::new();
        let mut rendered = String::new();
        for _ in 0..2 {
            let l = TcpListener::bind((ip, 0)).expect("bind non-loopback");
            let a = l.local_addr().expect("addr");
            rendered.push_str(&format!("{a}\n"));
            listeners.push(l);
        }
        // Round-trip through the hostfile path the launcher uses.
        let addrs = parse_hostfile(&rendered).expect("parse");
        assert!(!addrs[0].ip().is_loopback());
        let l1 = listeners.pop().expect("listener 1");
        let l0 = listeners.pop().expect("listener 0");
        let addrs = &addrs;
        let (t0, t1) = std::thread::scope(|s| {
            let h0 = s.spawn(move || TcpTransport::connect_mesh(0, addrs, l0, fast_opts()));
            let h1 = s.spawn(move || TcpTransport::connect_mesh(1, addrs, l1, fast_opts()));
            (
                h0.join().expect("thread 0").expect("mesh 0"),
                h1.join().expect("thread 1").expect("mesh 1"),
            )
        });
        t1.send(0, vec![0xEE]).expect("send");
        t1.flush().expect("flush");
        assert_eq!(t0.recv(1).expect("recv"), vec![0xEE]);
    }

    #[test]
    fn block_store_round_trip_and_missing_handler() {
        let mut mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        // No handler yet: the requester gets an error reply, not a hang.
        let err = t0.store_block(1, 0, &[1, 2, 3]).expect_err("no handler");
        assert!(err.to_string().contains("no store handler"), "{err}");
        // Rank 1 accepts stores: its allocator assigns slots in
        // arrival order on the hinted disk.
        type StoredBlocks = Arc<Mutex<Vec<(u32, Vec<u8>)>>>;
        let stored: StoredBlocks = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&stored);
        t1.set_store_handler(Arc::new(move |hint, data| {
            if hint > 3 {
                return Err(format!("no such disk {hint}"));
            }
            let mut s = sink.lock().expect("sink lock");
            s.push((hint, data.to_vec()));
            Ok((hint, (s.len() - 1) as u32))
        }));
        assert_eq!(t0.store_block(1, 2, &[0xAA, 0xBB]).expect("store"), (2, 0));
        assert_eq!(t0.store_block(1, 1, &[0xCC]).expect("store"), (1, 1));
        let err = t0.store_block(1, 9, &[0]).expect_err("bad disk");
        assert!(matches!(err, Error::Io(ref m) if m.contains("no such disk")), "{err}");
        // Self-stores go through the same handler without the wire.
        assert_eq!(t1.store_block(1, 3, &[0x01]).expect("self store"), (3, 2));
        assert_eq!(
            *stored.lock().expect("sink lock"),
            vec![(2, vec![0xAA, 0xBB]), (1, vec![0xCC]), (3, vec![0x01])]
        );
    }

    #[test]
    fn batched_stores_pipeline_and_match_by_id() {
        let mut mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        t1.set_store_handler(Arc::new(move |hint, data| {
            if data.first() == Some(&13) {
                return Err("payload 13 is cursed".to_string());
            }
            Ok((hint, c.fetch_add(1, Ordering::Relaxed) as u32))
        }));
        // One flush puts the whole batch on the wire; acknowledgements
        // come back in request order even when waited in reverse.
        let payloads: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i, i ^ 0xFF]).collect();
        let blocks: Vec<(u32, &[u8])> =
            payloads.iter().enumerate().map(|(i, p)| ((i % 4) as u32, p.as_slice())).collect();
        let stores = t0.store_blocks(1, &blocks).expect("issue batch");
        assert_eq!(stores.len(), blocks.len());
        let mut addrs: Vec<Option<(u32, u32)>> = (0..blocks.len()).map(|_| None).collect();
        for (i, st) in stores.into_iter().enumerate().rev() {
            if i == 13 {
                let err = st.wait().expect_err("cursed payload");
                assert!(err.to_string().contains("cursed"), "{err}");
                addrs[i] = Some((u32::MAX, u32::MAX));
            } else {
                addrs[i] = Some(st.wait().expect("store"));
            }
        }
        for (i, a) in addrs.iter().enumerate() {
            if i == 13 {
                continue;
            }
            // Requests are served in wire order, so the allocator's
            // slot counter tracks the request index (skipping the
            // failed store).
            let expect_slot = if i < 13 { i } else { i - 1 } as u32;
            assert_eq!(*a, Some(((i % 4) as u32, expect_slot)), "store {i}");
        }
        assert_eq!(count.load(Ordering::Relaxed), 39);
    }

    #[test]
    fn dead_peer_fails_stores_fast_not_after_timeout() {
        let opts = TcpOptions { read_timeout: Duration::from_secs(30), ..fast_opts() };
        let mut mesh = loopback_mesh(2, opts).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        drop(t1); // peer dies; no acknowledgement can ever arrive
        let start = Instant::now();
        let data = [7u8; 4];
        let err = match t0.store_blocks(1, &[(0, &data[..]), (1, &data[..])]) {
            Ok(stores) => {
                let mut first_err = None;
                for st in stores {
                    if let Err(e) = st.wait() {
                        first_err = Some(e);
                        break;
                    }
                }
                first_err.expect("dead peer must fail the store")
            }
            Err(e) => e,
        };
        assert!(matches!(err, Error::Comm(_)), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "dead peer must fail stores promptly, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn dead_peers_snapshot_reports_the_dead_rank() {
        let mut mesh = loopback_mesh(3, fast_opts()).expect("mesh");
        let t2 = mesh.pop().expect("rank 2");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        assert_eq!(t0.dead_peers(), vec![false, false, false]);
        drop(t1);
        // Readers notice the closed sockets within a tick or two; both
        // survivors converge on the same snapshot.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let d0 = t0.dead_peers();
            let d2 = t2.dead_peers();
            if d0 == vec![false, true, false] && d2 == vec![false, true, false] {
                break;
            }
            assert!(Instant::now() < deadline, "rank 1 never reported dead: {d0:?} / {d2:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        // The surviving pair still talks.
        t2.send(0, vec![9]).expect("send");
        t2.flush().expect("flush");
        assert_eq!(t0.recv(2).expect("recv"), vec![9]);
    }

    #[test]
    fn epoch_marker_cuts_stale_traffic_deterministically() {
        let mut mesh = loopback_mesh(2, fast_opts()).expect("mesh");
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        // Rank 1 leaves stale pre-recovery traffic queued at rank 0,
        // then cuts over and sends a recovery frame.
        t1.send(0, vec![1]).expect("stale");
        t1.send(0, vec![2]).expect("stale");
        t1.advance_epoch(1).expect("epoch");
        t1.send(0, vec![3]).expect("post-epoch");
        t1.flush().expect("flush");
        // Draining to the marker discards exactly the stale frames.
        t0.drain_to_epoch(1, 1).expect("drain");
        assert_eq!(t0.recv(1).expect("recv"), vec![3]);
        // A watermark already reached makes the drain a no-op (it must
        // not eat post-epoch data).
        t1.send(0, vec![4]).expect("data");
        t1.flush().expect("flush");
        t0.drain_to_epoch(1, 1).expect("idempotent");
        assert_eq!(t0.recv(1).expect("recv"), vec![4]);
        // A recv that runs into a marker surfaces a clean Comm error
        // and records the watermark for a later drain.
        t1.advance_epoch(2).expect("epoch 2");
        let err = t0.recv(1).expect_err("marker surfaces as Comm");
        assert!(matches!(err, Error::Comm(ref m) if m.contains("epoch")), "{err}");
        t0.drain_to_epoch(1, 2).expect("watermark already recorded");
        // The marker also cuts the sender's own self FIFO.
        t1.send(1, vec![5]).expect("self send");
        t1.advance_epoch(3).expect("epoch 3");
        t1.drain_to_epoch(1, 3).expect("self drain");
        t1.send(1, vec![6]).expect("self send");
        assert_eq!(t1.recv(1).expect("self recv"), vec![6]);
    }

    #[test]
    fn single_rank_mesh_needs_no_sockets() {
        let mesh = loopback_mesh(1, fast_opts()).expect("mesh");
        let c = Communicator::new(Box::new(mesh.into_iter().next().expect("one")));
        c.barrier().expect("barrier");
        assert_eq!(c.allreduce_sum(3).expect("allreduce"), 3);
    }
}
