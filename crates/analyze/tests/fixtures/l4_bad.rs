//! L4 fixture: a trace span opened but never closed.

pub fn lopsided(t: &Tracer) {
    let s = t.begin("merge");
    work(s);
}

pub fn balanced(t: &Tracer) {
    let s = t.begin("merge");
    t.end(s);
}
