//! The multi-process cluster runtime: coordinator, launcher, worker.
//!
//! `demsort-launch` plays the role of `mpirun` on the paper's cluster:
//! it binds a coordinator port, spawns one `demsort-worker` process
//! per rank, rendezvouses them (each worker reports its mesh listener
//! address, the coordinator assigns ranks and broadcasts the address
//! table plus the [`JobConfig`]), and collects per-rank
//! [`RankReport`]s when the sort finishes. The workers build the full
//! `P × P` TCP mesh among themselves and run the *identical* SPMD code
//! path as the in-process cluster — same `canonical_mergesort`, same
//! collectives, same counters.
//!
//! ## Coordinator protocol
//!
//! Length-prefixed messages (`[len: u32 LE][tag: u8][body]`) over the
//! worker's coordinator connection:
//!
//! | tag | direction | body |
//! |---|---|---|
//! | `JOIN`   | worker → launcher | mesh listener address |
//! | `ASSIGN` | launcher → worker | rank, address table, job config |
//! | `REPORT` | worker → launcher | [`RankReport`] |
//! | `FAIL`   | worker → launcher | error message |
//!
//! Workers can alternatively rendezvous without a coordinator from a
//! host file (`demsort-worker --hostfile`), each binding its listed
//! address — the multi-host path, where the job config comes from
//! flags instead of the wire.

use demsort_core::canonical::canonical_mergesort;
use demsort_core::ctx::{assemble_report, ClusterStorage, RemoteBlockFetch};
use demsort_core::recio::read_records;
use demsort_core::runform::ingest_input;
use demsort_net::tcp::{bind_loopback, TcpOptions, TcpTransport};
use demsort_net::Communicator;
use demsort_storage::{BlockId, DiskModel, MemBackend, PeStorage};
use demsort_types::wire::{
    decode_job, decode_rank_report, encode_job, encode_rank_report, RankReport, WireReader,
    WireWriter,
};
use demsort_types::{
    ranks, Error, JobConfig, Record as _, Record100, Result, SortConfig, SortReport,
};
use std::io::{Read, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TAG_JOIN: u8 = 1;
const TAG_ASSIGN: u8 = 2;
const TAG_REPORT: u8 = 3;
const TAG_FAIL: u8 = 4;

/// Upper bound on a coordinator message (reports are tiny).
const MAX_CTRL_MSG: usize = 64 << 20;

fn write_msg(s: &mut TcpStream, tag: u8, body: &[u8]) -> Result<()> {
    let len = (body.len() + 1) as u32;
    s.write_all(&len.to_le_bytes())
        .and_then(|()| s.write_all(&[tag]))
        .and_then(|()| s.write_all(body))
        .and_then(|()| s.flush())
        .map_err(|e| Error::comm(format!("coordinator write: {e}")))
}

/// Fill `buf` from `s`, riding out socket read-timeout ticks until
/// `deadline` (progress across ticks is preserved, so a timeout can
/// never corrupt message framing).
fn read_exact_deadline(s: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match s.read(&mut buf[filled..]) {
            Ok(0) => return Err(Error::comm("connection closed")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                if Instant::now() >= deadline {
                    return Err(Error::comm("timed out"));
                }
            }
            Err(e) => return Err(Error::comm(format!("coordinator read: {e}"))),
        }
    }
    Ok(())
}

/// Read one `[len][tag][body]` control message, bounded by `deadline`
/// (the socket must carry a read timeout so blocked reads tick).
fn read_msg_deadline(s: &mut TcpStream, deadline: Instant) -> Result<(u8, Vec<u8>)> {
    let mut head = [0u8; 5]; // length prefix + tag
    read_exact_deadline(s, &mut head, deadline)?;
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
    if len == 0 || len > MAX_CTRL_MSG {
        return Err(Error::comm(format!("bad coordinator message length {len}")));
    }
    let mut body = vec![0u8; len - 1];
    read_exact_deadline(s, &mut body, deadline)?;
    Ok((head[4], body))
}

// -------------------------------------------------------------------
// Worker
// -------------------------------------------------------------------

/// Remote probe path of a worker: selection's one-block reads of
/// peers' disks ride the transport's out-of-band probe channel.
struct TcpFetch(TcpTransport);

impl RemoteBlockFetch for TcpFetch {
    fn fetch(&self, pe: usize, id: BlockId) -> Result<Box<[u8]>> {
        self.0.probe_block(pe, id.disk, id.slot).map(Vec::into_boxed_slice)
    }
}

/// Join a cluster through the coordinator at `coordinator`, run the
/// assigned rank's share of the job, and report back. The normal body
/// of `demsort-worker`.
pub fn run_worker(coordinator: &str) -> Result<RankReport> {
    let mut ctrl = TcpStream::connect(coordinator)
        .map_err(|e| Error::comm(format!("connect coordinator {coordinator}: {e}")))?;
    ctrl.set_read_timeout(Some(Duration::from_millis(250)))
        .map_err(|e| Error::comm(e.to_string()))?;
    let (listener, mesh_addr) = bind_loopback()?;

    let mut w = WireWriter::new();
    w.string(&mesh_addr.to_string());
    write_msg(&mut ctrl, TAG_JOIN, &w.finish())?;

    // The rendezvous is quick (the launcher itself gives up after
    // 30 s); a wedged launcher must not hang the worker forever.
    let (tag, body) = read_msg_deadline(&mut ctrl, Instant::now() + Duration::from_secs(60))
        .map_err(|e| Error::comm(format!("waiting for rank assignment: {e}")))?;
    if tag != TAG_ASSIGN {
        return Err(Error::comm(format!("expected ASSIGN, got tag {tag}")));
    }
    let mut r = WireReader::new(&body);
    let rank = r.u32()? as usize;
    let p = r.u32()? as usize;
    let mut addrs = Vec::with_capacity(p);
    for _ in 0..p {
        let a = r.string()?;
        addrs.push(
            a.parse::<SocketAddr>()
                .map_err(|e| Error::comm(format!("bad mesh address {a}: {e}")))?,
        );
    }
    let job = decode_job(&r.bytes()?)?;

    // The sort may panic (a communicator aborts on dead peers); turn
    // that into a FAIL message so the launcher reports it cleanly.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_rank(rank, &addrs, listener, &job)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "worker panicked".to_string());
        Err(Error::comm(format!("rank {rank} aborted: {msg}")))
    });

    match result {
        Ok(report) => {
            write_msg(&mut ctrl, TAG_REPORT, &encode_rank_report(&report))?;
            Ok(report)
        }
        Err(e) => {
            let mut w = WireWriter::new();
            w.string(&e.to_string());
            let _ = write_msg(&mut ctrl, TAG_FAIL, &w.finish());
            Err(e)
        }
    }
}

/// Run one rank of `job` over an established rendezvous: build the TCP
/// mesh, sort this rank's shard, write the canonical output slice.
/// Shared by the coordinator and hostfile bootstrap paths.
pub fn run_rank(
    rank: usize,
    addrs: &[SocketAddr],
    listener: TcpListener,
    job: &JobConfig,
) -> Result<RankReport> {
    job.validate()?;
    let p = job.machine.pes;
    if addrs.len() != p {
        return Err(Error::config(format!(
            "address table has {} entries for {} ranks",
            addrs.len(),
            p
        )));
    }

    let opts = TcpOptions {
        read_timeout: Duration::from_millis(job.read_timeout_ms),
        ..TcpOptions::default()
    };
    let tcp = TcpTransport::connect_mesh(rank, addrs, listener, opts)?;

    // One rank's storage: same in-memory multi-disk engine as the
    // in-process cluster, so counters are comparable run-for-run.
    let st = PeStorage::with_backend(
        job.machine.disks_per_pe,
        job.machine.block_bytes,
        DiskModel::paper(),
        Arc::new(MemBackend::new(job.machine.disks_per_pe)),
    );
    let storage = ClusterStorage::single(rank, p, st, Box::new(TcpFetch(tcp.clone())));

    // Serve peers' selection probes out of this rank's storage. The
    // handler closure holds the storage, which holds the transport,
    // whose endpoint holds the handler — a cycle only
    // `clear_probe_handler` breaks, so guard it against every exit
    // path (errors and panics included), or a failed job leaks the
    // reader threads, sockets, and storage for the process lifetime.
    struct HandlerGuard(TcpTransport);
    impl Drop for HandlerGuard {
        fn drop(&mut self) {
            self.0.clear_probe_handler();
        }
    }
    let probe_storage = Arc::clone(&storage);
    tcp.set_probe_handler(Arc::new(move |disk, slot| {
        probe_storage
            .pe(rank)
            .engine()
            .read_sync(BlockId::new(disk, slot))
            .map(|b| b.into_vec())
            .map_err(|e| e.to_string())
    }));
    let _handler_guard = HandlerGuard(tcp.clone());

    // Load this rank's contiguous shard of the input.
    let meta =
        std::fs::metadata(&job.input).map_err(|e| Error::io(format!("stat {}: {e}", job.input)))?;
    if meta.len() % Record100::BYTES as u64 != 0 {
        return Err(Error::config(format!("input {} is not whole 100-byte records", job.input)));
    }
    let total_records = meta.len() / Record100::BYTES as u64;
    let shard = ranks::owned_range(rank, p, total_records);
    let mut f = std::fs::File::open(&job.input)
        .map_err(|e| Error::io(format!("open {}: {e}", job.input)))?;
    f.seek(SeekFrom::Start(shard.start * Record100::BYTES as u64))?;
    let mut bytes = vec![0u8; (shard.end - shard.start) as usize * Record100::BYTES];
    f.read_exact(&mut bytes)?;
    let mut recs = Vec::with_capacity((shard.end - shard.start) as usize);
    Record100::decode_slice(&bytes, &mut recs);
    drop(bytes);

    // The SPMD sort — identical code path to the in-process cluster.
    let comm = Communicator::new(Box::new(tcp.clone()));
    let cfg = SortConfig::new(job.machine.clone(), job.algo.clone())?;
    let input = ingest_input(storage.pe(rank), &recs)?;
    drop(recs);
    let outcome =
        canonical_mergesort::<Record100>(&comm, &storage, &cfg, input, job.machine.cores_per_pe)?;

    // (Everyone is past multiway selection once the sort returns — no
    // peer can probe us anymore; the handler guard clears on return.)

    // Write this rank's canonical slice into the shared output file:
    // ranks own disjoint byte ranges, so the file assembles in place.
    let out_recs =
        read_records::<Record100>(storage.pe(rank), &outcome.output.run, outcome.output.elems)?;
    let own = ranks::owned_range(rank, p, total_records);
    debug_assert_eq!(out_recs.len() as u64, own.end - own.start);
    let mut out = std::fs::OpenOptions::new()
        .write(true)
        .open(&job.output)
        .map_err(|e| Error::io(format!("open {}: {e}", job.output)))?;
    out.seek(SeekFrom::Start(own.start * Record100::BYTES as u64))?;
    let mut writer = std::io::BufWriter::new(&mut out);
    let mut buf = vec![0u8; Record100::BYTES];
    for rec in &out_recs {
        rec.encode(&mut buf);
        writer.write_all(&buf)?;
    }
    writer.flush()?;
    drop(writer);

    // Ranks must not tear the mesh down while a slower peer still
    // depends on it (probes are done, but the final phases interleave).
    comm.barrier();

    Ok(RankReport { rank, elems: outcome.output.elems, runs: outcome.runs, phases: outcome.phases })
}

// -------------------------------------------------------------------
// Launcher
// -------------------------------------------------------------------

/// Result of a multi-process launch.
#[derive(Debug)]
pub struct LaunchOutcome {
    /// Aggregated per-rank, per-phase counters (same shape as the
    /// in-process [`sort_cluster`](demsort_core::canonical::sort_cluster)
    /// report).
    pub report: SortReport,
    /// The raw per-rank reports, in rank order.
    pub per_rank: Vec<RankReport>,
}

/// Exit with a usage error (shared by the CLI bins).
pub fn cli_die(bin: &str, msg: &str) -> ! {
    eprintln!("{bin}: {msg}");
    std::process::exit(2);
}

/// Parse a CLI flag value or exit with a usage error.
pub fn cli_parse<T: std::str::FromStr>(bin: &str, s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| cli_die(bin, &format!("invalid {what}: {s}")))
}

/// `true` if the two paths name the same existing file (same
/// device+inode on unix; path equality elsewhere or when either does
/// not exist yet).
fn same_file(a: &str, b: &str) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        if let (Ok(ma), Ok(mb)) = (std::fs::metadata(a), std::fs::metadata(b)) {
            return ma.dev() == mb.dev() && ma.ino() == mb.ino();
        }
    }
    a == b
}

/// Locate the `demsort-worker` binary next to the running executable.
pub fn sibling_worker_bin() -> Result<PathBuf> {
    let exe = std::env::current_exe().map_err(|e| Error::io(e.to_string()))?;
    let dir = exe.parent().ok_or_else(|| Error::io("executable has no parent dir"))?;
    let candidate = dir.join("demsort-worker");
    if candidate.exists() {
        return Ok(candidate);
    }
    Err(Error::config(format!(
        "demsort-worker not found next to {} — build it (cargo build -p demsort-bench) or pass \
         --worker-bin",
        exe.display()
    )))
}

/// Spawn `job.machine.pes` local worker processes (running
/// `worker_bin`), rendezvous them over a loopback coordinator port,
/// and collect their reports.
pub fn launch(job: &JobConfig, worker_bin: &std::path::Path) -> Result<LaunchOutcome> {
    job.validate()?;
    let p = job.machine.pes;

    // The output is truncated before the workers read the input, so
    // sorting a file onto itself would destroy the data silently —
    // reject it (the in-process driver tolerates in-place use only
    // because it creates the output after the sort).
    if same_file(&job.input, &job.output) {
        return Err(Error::config(format!(
            "output {} is the input file; TCP mode pre-sizes (truncates) the output before \
             the sort reads the input — pick a different output path",
            job.output
        )));
    }

    // Pre-size the output so workers can write disjoint ranges.
    let in_len = std::fs::metadata(&job.input)
        .map_err(|e| Error::io(format!("stat {}: {e}", job.input)))?
        .len();
    let out = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&job.output)
        .map_err(|e| Error::io(format!("create {}: {e}", job.output)))?;
    out.set_len(in_len).map_err(|e| Error::io(format!("size {}: {e}", job.output)))?;
    drop(out);

    let coordinator = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| Error::comm(format!("bind coordinator: {e}")))?;
    let coord_addr = coordinator.local_addr().map_err(|e| Error::comm(e.to_string()))?;
    coordinator.set_nonblocking(true).map_err(|e| Error::comm(e.to_string()))?;

    // Spawn all workers; if any spawn fails, reap the ones already
    // started instead of leaking them (they would otherwise linger
    // waiting for a rank assignment).
    let mut children = Vec::with_capacity(p);
    let mut spawn_err = None;
    for _ in 0..p {
        match std::process::Command::new(worker_bin)
            .arg("--coordinator")
            .arg(coord_addr.to_string())
            .spawn()
        {
            Ok(c) => children.push(c),
            Err(e) => {
                spawn_err = Some(Error::io(format!("spawn {}: {e}", worker_bin.display())));
                break;
            }
        }
    }
    let result = match spawn_err {
        Some(e) => Err(e),
        None => rendezvous_and_collect(job, &coordinator, p),
    };

    // Reap the children regardless of outcome.
    let mut child_failure = None;
    for (i, mut c) in children.into_iter().enumerate() {
        let status = match result {
            Ok(_) => c.wait().ok(),
            Err(_) => {
                let _ = c.kill();
                c.wait().ok()
            }
        };
        if let Some(st) = status {
            if !st.success() && child_failure.is_none() {
                child_failure = Some(format!("worker {i} exited with {st}"));
            }
        }
    }
    let outcome = result?;
    if let Some(msg) = child_failure {
        return Err(Error::comm(msg));
    }
    Ok(outcome)
}

/// Accept `p` JOINs, assign ranks in arrival order, ship the job, and
/// collect every report.
fn rendezvous_and_collect(
    job: &JobConfig,
    coordinator: &TcpListener,
    p: usize,
) -> Result<LaunchOutcome> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut conns: Vec<TcpStream> = Vec::with_capacity(p);
    let mut mesh_addrs: Vec<String> = Vec::with_capacity(p);
    while conns.len() < p {
        match coordinator.accept() {
            Ok((mut stream, _)) => {
                // A connection that is not a prompt, well-formed JOIN
                // (e.g. a stray prober) is dropped; only the overall
                // deadline fails the rendezvous.
                let join = stream
                    .set_nonblocking(false)
                    .and_then(|()| stream.set_read_timeout(Some(Duration::from_millis(250))))
                    .map_err(|e| Error::comm(e.to_string()))
                    .and_then(|()| {
                        read_msg_deadline(&mut stream, Instant::now() + Duration::from_secs(5))
                    });
                match join {
                    Ok((TAG_JOIN, body)) => match WireReader::new(&body).string() {
                        Ok(addr) => {
                            mesh_addrs.push(addr);
                            conns.push(stream);
                        }
                        Err(_) => continue, // garbage JOIN body: drop it too
                    },
                    Ok(_) | Err(_) => continue,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(Error::comm(format!(
                        "only {} of {p} workers joined within 30s",
                        conns.len()
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(Error::comm(format!("coordinator accept: {e}"))),
        }
    }

    let encoded_job = encode_job(job);
    for (rank, conn) in conns.iter_mut().enumerate() {
        let mut w = WireWriter::new();
        w.u32(rank as u32).u32(p as u32);
        for a in &mesh_addrs {
            w.string(a);
        }
        w.bytes(&encoded_job);
        write_msg(conn, TAG_ASSIGN, &w.finish())?;
    }

    // Collect reports. A dying worker closes its socket (read error,
    // not a hang); a wedged-but-alive worker is cut off by a deadline
    // scaled from the job's transport timeout — a legitimately long
    // sort should raise `read_timeout_ms` (it bounds both).
    let collect_deadline = Instant::now()
        + Duration::from_millis(job.read_timeout_ms)
            .saturating_mul(20)
            .max(Duration::from_secs(300));
    let mut per_rank: Vec<Option<RankReport>> = (0..p).map(|_| None).collect();
    for (rank, conn) in conns.iter_mut().enumerate() {
        let (tag, body) = read_msg_deadline(conn, collect_deadline)
            .map_err(|e| Error::comm(format!("rank {rank} vanished before reporting: {e}")))?;
        match tag {
            TAG_REPORT => {
                let rep = decode_rank_report(&body)?;
                if rep.rank != rank {
                    return Err(Error::comm(format!(
                        "rank {rank}'s connection reported rank {}",
                        rep.rank
                    )));
                }
                per_rank[rank] = Some(rep);
            }
            TAG_FAIL => {
                let msg = WireReader::new(&body).string()?;
                return Err(Error::comm(format!("rank {rank} failed: {msg}")));
            }
            t => return Err(Error::comm(format!("unexpected tag {t} from rank {rank}"))),
        }
    }
    let per_rank: Vec<RankReport> =
        per_rank.into_iter().map(|r| r.expect("all reports collected")).collect();

    // Aggregate exactly like the in-process driver.
    let elements: u64 = per_rank.iter().map(|r| r.elems).sum();
    let runs = per_rank.first().map_or(0, |r| r.runs);
    let cfg = SortConfig::new(job.machine.clone(), job.algo.clone())?;
    let report = assemble_report(
        &cfg,
        elements,
        Record100::BYTES,
        runs,
        per_rank.iter().map(|r| r.phases.clone()).collect(),
    );
    Ok(LaunchOutcome { report, per_rank })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctrl_messages_roundtrip_over_a_socketpair() {
        let deadline = || Instant::now() + Duration::from_secs(5);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            s.set_read_timeout(Some(Duration::from_millis(50))).expect("timeout");
            let (tag, body) = read_msg_deadline(&mut s, deadline()).expect("read");
            write_msg(&mut s, tag + 1, &body).expect("write");
        });
        let mut c = TcpStream::connect(addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_millis(50))).expect("timeout");
        write_msg(&mut c, TAG_JOIN, b"hello").expect("write");
        let (tag, body) = read_msg_deadline(&mut c, deadline()).expect("read");
        assert_eq!(tag, TAG_JOIN + 1);
        assert_eq!(body, b"hello");
        t.join().expect("echo thread");
        // A silent peer times out instead of hanging.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _silent = TcpStream::connect(addr).expect("connect");
        let (mut s, _) = listener.accept().expect("accept");
        s.set_read_timeout(Some(Duration::from_millis(20))).expect("timeout");
        let err = read_msg_deadline(&mut s, Instant::now() + Duration::from_millis(100))
            .expect_err("silence");
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn launch_rejects_in_place_output_before_truncating() {
        let path = std::env::temp_dir().join(format!("demsort-inplace-{}.dat", std::process::id()));
        std::fs::write(&path, vec![1u8; 200]).expect("write input");
        let p = path.to_string_lossy().into_owned();
        let job = JobConfig {
            input: p.clone(),
            output: p,
            machine: demsort_types::MachineConfig::tiny(2),
            algo: demsort_types::AlgoConfig::default(),
            read_timeout_ms: 1000,
        };
        // Rejected before any worker spawns (the bogus worker path is
        // never exercised) and before the output truncate.
        let err =
            launch(&job, std::path::Path::new("/nonexistent-worker")).expect_err("in-place output");
        assert!(err.to_string().contains("output"), "{err}");
        assert_eq!(std::fs::metadata(&path).expect("stat").len(), 200, "input untouched");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_rank_rejects_mismatched_address_table() {
        let (listener, _) = bind_loopback().expect("bind");
        let job = JobConfig {
            input: "/nonexistent".into(),
            output: "/nonexistent".into(),
            machine: demsort_types::MachineConfig::tiny(3),
            algo: demsort_types::AlgoConfig::default(),
            read_timeout_ms: 1000,
        };
        let err = run_rank(0, &[], listener, &job).expect_err("empty address table");
        assert!(err.to_string().contains("address table"), "{err}");
    }
}
