//! Deterministic SortBenchmark-style record generation.
//!
//! The SortBenchmark (Section VI) sorts 100-byte records with 10-byte
//! keys produced by the reference `gensort` tool. We generate
//! equivalent records deterministically from `(seed, index)`: the key
//! is 10 pseudo-random bytes; the payload carries the 8-byte record
//! index (so permutation checks work) followed by filler derived from
//! the index, mimicking gensort's readable payload.

use crate::splitmix64;
use demsort_types::{Key10, Record100};

/// Generate `count` records starting at global index `start`.
pub fn gensort_records(seed: u64, start: u64, count: usize) -> Vec<Record100> {
    (0..count as u64).map(|i| gensort_record(seed, start + i)).collect()
}

/// Generate the record with global index `idx`.
pub fn gensort_record(seed: u64, idx: u64) -> Record100 {
    let a = splitmix64(seed ^ splitmix64(idx));
    let b = splitmix64(a ^ 0xA5A5_A5A5_A5A5_A5A5);
    let mut key = [0u8; 10];
    key[..8].copy_from_slice(&a.to_be_bytes());
    key[8..].copy_from_slice(&b.to_be_bytes()[..2]);

    let mut payload = [0u8; 90];
    payload[..8].copy_from_slice(&idx.to_be_bytes());
    // Filler: deterministic "readable" bytes like gensort's ASCII rows.
    for (j, byte) in payload[8..].iter_mut().enumerate() {
        *byte = b' ' + ((idx as usize + j) % 64) as u8;
    }
    Record100::new(Key10(key), payload)
}

/// Recover the global index embedded in a generated record.
pub fn record_index(r: &Record100) -> u64 {
    u64::from_be_bytes(r.payload[..8].try_into().expect("8-byte index"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(gensort_record(1, 5), gensort_record(1, 5));
        assert_ne!(gensort_record(1, 5), gensort_record(1, 6));
        assert_ne!(gensort_record(1, 5), gensort_record(2, 5));
    }

    #[test]
    fn batch_matches_singles_and_indices_roundtrip() {
        let batch = gensort_records(9, 100, 50);
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(*r, gensort_record(9, 100 + i as u64));
            assert_eq!(record_index(r), 100 + i as u64);
        }
    }

    #[test]
    fn keys_are_spread() {
        let recs = gensort_records(3, 0, 1000);
        let first_bytes: HashSet<u8> = recs.iter().map(|r| r.key.0[0]).collect();
        // 1000 records should hit a large fraction of the 256 first-byte
        // values if keys are uniform.
        assert!(first_bytes.len() > 200, "only {} distinct first bytes", first_bytes.len());
    }

    #[test]
    fn payload_filler_is_printable() {
        let r = gensort_record(0, 12345);
        assert!(r.payload[8..].iter().all(|&b| (b' '..b' ' + 64).contains(&b)));
    }
}
