//! Cluster-level failure injection: SIGKILL one worker of a real
//! 4-process loopback TCP launch mid-sort and assert the fallible-
//! collective contract end to end:
//!
//! * every **surviving** rank returns `Error::Comm` from its sort
//!   (reported to the coordinator as a structured failed `RankReport`)
//!   within the comm read timeout — no hang, no process abort, no
//!   `catch_unwind`;
//! * the **launcher** classifies the killed rank as vanished and its
//!   error (what `demsort-launch` prints before exiting non-zero)
//!   names that rank first.
//!
//! With `--replication 1` the contract strengthens from "survivors
//! fail cleanly" to "survivors finish": a 4-process striped sort whose
//! victim is SIGKILLed at merge start re-routes the dead rank's blocks
//! to their buddy-rank replicas and produces output byte-identical to
//! an undisturbed run (second test).
//!
//! Cargo builds the real `demsort-worker` binary for this test and
//! exposes its path via `CARGO_BIN_EXE_demsort-worker`.

use demsort_bench::procs::{
    launch, launch_workers, launch_workers_env, summarize_outcomes, RankOutcome,
};
use demsort_types::{AlgoConfig, JobConfig, MachineConfig, Record as _, Record100, SortAlgo};
use demsort_workloads::gensort_records;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Enough records over a tiny memory budget that the sort runs many
/// multi-collective rounds (R ≈ 30 runs) — the kill lands mid-sort,
/// not after a rank already finished.
const RECORDS: usize = 20_000;
const RANKS: usize = 4;
const VICTIM: usize = 1;
const COMM_TIMEOUT_MS: u64 = 2_000;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demsort-cluster-failure-{}-{name}", std::process::id()))
}

fn write_gensort_input(path: &Path) {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create input"));
    let mut buf = vec![0u8; Record100::BYTES];
    for rec in gensort_records(11, 0, RECORDS) {
        rec.encode(&mut buf);
        f.write_all(&buf).expect("write record");
    }
    f.flush().expect("flush");
}

#[test]
fn sigkill_mid_sort_fails_every_survivor_cleanly_and_names_the_dead_rank() {
    let input = tmp_path("input.dat");
    let output = tmp_path("out.dat");
    write_gensort_input(&input);

    let job = JobConfig {
        input: input.to_string_lossy().into_owned(),
        output: output.to_string_lossy().into_owned(),
        machine: MachineConfig {
            pes: RANKS,
            disks_per_pe: 2,
            block_bytes: 1 << 10,
            mem_bytes_per_pe: 16 << 10,
            cores_per_pe: 1,
        },
        algo: AlgoConfig::default(),
        algorithm: SortAlgo::default(),
        read_timeout_ms: COMM_TIMEOUT_MS,
        trace_dir: String::new(),
    };
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_demsort-worker"));

    // Spawn + rendezvous the real 4-process cluster; the sort is now
    // underway in the workers.
    let mut ctl = launch_workers(&job, &worker).expect("launch workers");

    // Let the mesh come up and the sort get going, then kill one rank.
    std::thread::sleep(Duration::from_millis(150));
    ctl.kill_rank(VICTIM).expect("SIGKILL the victim rank");

    let started = Instant::now();
    let outcomes = ctl.collect_outcomes();
    let elapsed = started.elapsed();

    // No hang: every surviving rank's collective fails within the read
    // timeout (plus per-rank dependency chains and reporting slack; a
    // hang would only break at the 300 s collect deadline).
    assert!(
        elapsed < Duration::from_secs(30),
        "survivors must fail within the read timeout, took {elapsed:?}"
    );

    assert_eq!(outcomes.len(), RANKS);
    for (rank, outcome) in outcomes.iter().enumerate() {
        if rank == VICTIM {
            assert!(
                matches!(outcome, RankOutcome::Vanished(_)),
                "killed rank must vanish without a report: {outcome:?}"
            );
            continue;
        }
        // A structured failure report (no abort: the worker stayed
        // alive to send it) carrying the sort's Error::Comm, which
        // names a peer and direction.
        match outcome {
            RankOutcome::Failed(msg) => {
                assert!(
                    msg.contains("communication error"),
                    "rank {rank} must fail with Error::Comm, got: {msg}"
                );
            }
            other => panic!("surviving rank {rank} must report a failure, got {other:?}"),
        }
    }

    // The launcher-level summary (what demsort-launch prints before
    // exiting non-zero) names the dead rank, leading the message.
    let err = summarize_outcomes(&job, outcomes).expect_err("job must fail");
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("rank {VICTIM} died without reporting")),
        "launch error must name the dead rank: {msg}"
    );
    assert!(
        msg.find(&format!("rank {VICTIM} died")).expect("named") < msg.len() / 2,
        "dead rank leads the diagnostics: {msg}"
    );

    drop(ctl); // reaps the surviving workers
    for p in [&input, &output] {
        let _ = std::fs::remove_file(p);
    }
}

/// The tentpole pin: with `--replication 1`, killing a rank at the
/// start of the merge phase no longer fails the job — the survivors
/// detect the death, regroup, re-route the dead rank's blocks to their
/// buddy replicas, and finish. The degraded output must be valsort-
/// clean AND byte-identical to an undisturbed run of the same job.
#[test]
fn sigkill_mid_merge_with_replication_survivors_finish_byte_identical() {
    const VICTIM: usize = 2;
    let input = tmp_path("repl-input.dat");
    let output_ref = tmp_path("repl-out-ref.dat");
    let output = tmp_path("repl-out.dat");
    write_gensort_input(&input);

    let algo = AlgoConfig { replication: 1, ..AlgoConfig::default() };
    let mut job = JobConfig {
        input: input.to_string_lossy().into_owned(),
        output: output_ref.to_string_lossy().into_owned(),
        machine: MachineConfig {
            pes: RANKS,
            disks_per_pe: 2,
            block_bytes: 1 << 10,
            mem_bytes_per_pe: 16 << 10,
            cores_per_pe: 1,
        },
        algo,
        algorithm: SortAlgo::Striped,
        read_timeout_ms: COMM_TIMEOUT_MS,
        trace_dir: String::new(),
    };
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_demsort-worker"));

    // Undisturbed reference run (replication on, nobody dies).
    let reference =
        launch(&job, &worker).expect("undisturbed replicated striped sort must succeed");
    assert_eq!(reference.report.elements as usize, RECORDS);
    let ref_bytes = std::fs::read(&output_ref).expect("read reference output");
    assert_eq!(ref_bytes.len(), RECORDS * Record100::BYTES);

    // Failure run: arm the merge-start harness so every rank drops a
    // marker file when it reaches the merge phase and then stalls,
    // giving the launcher a deterministic window to SIGKILL the victim
    // before any survivor has begun merging.
    let marker_dir = tmp_path("repl-markers");
    std::fs::create_dir_all(&marker_dir).expect("create marker dir");
    job.output = output.to_string_lossy().into_owned();
    let envs = [
        ("DEMSORT_MERGE_START_MARKER_DIR", marker_dir.to_string_lossy().into_owned()),
        ("DEMSORT_MERGE_START_STALL_MS", "1500".to_string()),
    ];
    let mut ctl = launch_workers_env(&job, &worker, &envs).expect("launch workers");

    // Wait for the victim to reach its merge phase, then kill it inside
    // the stall window.
    let marker = marker_dir.join(format!("merge-start-{VICTIM}"));
    let arm_deadline = Instant::now() + Duration::from_secs(120);
    while !marker.exists() {
        assert!(Instant::now() < arm_deadline, "victim never reached merge start");
        std::thread::sleep(Duration::from_millis(10));
    }
    ctl.kill_rank(VICTIM).expect("SIGKILL the victim rank");

    let outcomes = ctl.collect_outcomes();
    eprintln!("outcomes: {outcomes:#?}");
    assert_eq!(outcomes.len(), RANKS);
    for (rank, outcome) in outcomes.iter().enumerate() {
        if rank == VICTIM {
            assert!(
                matches!(outcome, RankOutcome::Vanished(_)),
                "killed rank must vanish without a report: {outcome:?}"
            );
            continue;
        }
        // Every survivor COMPLETES the sort (a structured report, not a
        // failure): the recovery path re-routed the dead rank's blocks
        // to their replicas.
        match outcome {
            RankOutcome::Report(rep) => {
                assert_eq!(rep.rank, rank);
            }
            other => panic!("surviving rank {rank} must finish the sort, got {other:?}"),
        }
    }

    // Degraded output: valsort-clean (sorted, right cardinality) and
    // byte-identical to the undisturbed run.
    let out_bytes = std::fs::read(&output).expect("read degraded output");
    assert_eq!(out_bytes.len(), RECORDS * Record100::BYTES, "degraded output is complete");
    let mut prev: Option<Record100> = None;
    for chunk in out_bytes.chunks_exact(Record100::BYTES) {
        let rec = Record100::decode(chunk);
        if let Some(p) = &prev {
            assert!(p.key() <= rec.key(), "degraded output must be sorted");
        }
        prev = Some(rec);
    }
    assert_eq!(out_bytes, ref_bytes, "degraded output must be byte-identical to undisturbed run");

    drop(ctl);
    let _ = std::fs::remove_dir_all(&marker_dir);
    for p in [&input, &output, &output_ref] {
        let _ = std::fs::remove_file(p);
    }
}
