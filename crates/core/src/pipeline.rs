//! Pipelined sorting (Section VII's future-work sketch): "This
//! algorithm could also be useful for pipelined sorting where the run
//! formation does not fetch the data but obtains it from some data
//! generator (no randomization possible for CANONICALMERGESORT) and
//! where the output is not written to disk but fed into a
//! postprocessor that requires its input in sorted order (e.g.,
//! variants of Kruskal's algorithm)."
//!
//! [`pipelined_sort`] runs the canonical pipeline with both ends
//! replaced:
//!
//! * **source** — each PE pulls up to `m` records per round from a
//!   local generator; rounds continue until every PE's source is dry
//!   (run counts stay aligned by an allreduce per round). Input is
//!   never written to disk, and — as the paper notes — block
//!   randomization is impossible: the stream dictates run composition,
//!   so adversarial streams behave like Figure 6.
//! * **sink** — the final merge calls a consumer per record (in global
//!   rank order per PE) instead of writing the output run.
//!
//! I/O drops from the batch sort's `4N` to `2N` (runs only).

use crate::alltoall::{exchange_splitters, external_alltoall};
use crate::ctx::ClusterStorage;
use crate::extselect::select_rank_external;
use crate::localmerge::merge_into;
use crate::psort::parallel_sort;
use crate::recio::RecordRunWriter;
use crate::rundir::build_directory;
use demsort_net::Communicator;
use demsort_types::{ranks, Record, Result, SortConfig};

/// Result of a pipelined sort on one PE.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineOutcome {
    /// Records this PE pulled from its source.
    pub produced: u64,
    /// Records delivered to this PE's sink (its canonical slice).
    pub delivered: u64,
    /// Number of runs formed.
    pub runs: usize,
}

/// Sort a distributed stream: pull records from `source` until it is
/// exhausted (on every PE), deliver each PE's canonical slice of the
/// global sorted order to `sink`. Collective.
pub fn pipelined_sort<R, Src, Snk>(
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    mut source: Src,
    mut sink: Snk,
    cores: usize,
) -> Result<PipelineOutcome>
where
    R: Record + Ord,
    Src: FnMut() -> Option<R>,
    Snk: FnMut(R) -> Result<()>,
{
    let me = comm.rank();
    let st = storage.pe(me);
    let mem_elems = (cfg.machine.mem_bytes_per_pe / R::BYTES).max(1);

    // ---- Phase 1: run formation from the generator ----
    let mut produced = 0u64;
    let mut local_runs = Vec::new();
    loop {
        let mut chunk = Vec::with_capacity(mem_elems);
        while chunk.len() < mem_elems {
            match source() {
                Some(r) => chunk.push(r),
                None => break,
            }
        }
        produced += chunk.len() as u64;
        // Everyone must agree whether another run happens.
        if comm.allreduce_sum(chunk.len() as u64)? == 0 {
            break;
        }
        let (sorted, _cpu) = parallel_sort(comm, chunk, cores)?;
        let mut w = RecordRunWriter::new(st, cfg.algo.sample_every);
        w.push_all(&sorted)?;
        local_runs.push(w.finish()?);
    }
    let dir = build_directory(comm, local_runs)?;
    let runs = dir.num_runs();
    let n = dir.total_elems();

    // ---- Single-run shortcut: stream the slice straight out ----
    if runs <= 1 {
        let mut delivered = 0u64;
        if let Some(fr) = dir.local.into_iter().next() {
            let mut reader = crate::recio::RecordRunReader::<R>::with_range(
                st, fr.run, fr.elems, 0, fr.elems, true,
            );
            while let Some(rec) = reader.next_rec()? {
                sink(rec)?;
                delivered += 1;
            }
        }
        return Ok(PipelineOutcome { produced, delivered, runs });
    }

    // ---- Phases 2–3: selection, redistribution, merge into the sink ----
    let boundary = ranks::owned_range(me, comm.size(), n).start;
    let (splitters, _sel) = select_rank_external(storage, me, &dir, boundary, &cfg.algo)?;
    let all_splitters = exchange_splitters(comm, &splitters)?;
    let outcome = external_alltoall::<R>(comm, st, cfg, &dir, &all_splitters)?;
    let mut delivered = 0u64;
    let (_, _cpu) = merge_into::<R>(st, outcome.merge_inputs, cores, |rec| {
        delivered += 1;
        sink(rec)
    })?;
    for b in outcome.stragglers {
        st.free_block(b);
    }
    Ok(PipelineOutcome { produced, delivered, runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_net::run_cluster;
    use demsort_types::{AlgoConfig, Element16, MachineConfig};
    use demsort_workloads::splitmix64;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cfg(p: usize) -> SortConfig {
        SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid")
    }

    /// Pipe `per_pe` generated records per PE through the pipeline and
    /// return each PE's delivered records.
    fn pipe(p: usize, per_pe: usize, seed: u64) -> Vec<Vec<Element16>> {
        let cfg = cfg(p);
        let storage = ClusterStorage::new_mem(&cfg.machine);
        let storage_ref = &storage;
        let cfg2 = cfg.clone();
        run_cluster(p, move |c| {
            let mut i = 0u64;
            let pe = c.rank() as u64;
            let source = move || {
                (i < per_pe as u64).then(|| {
                    let gid = pe * per_pe as u64 + i;
                    i += 1;
                    Element16::new(splitmix64(seed ^ gid), gid)
                })
            };
            let mut got = Vec::new();
            let out = pipelined_sort::<Element16, _, _>(
                &c,
                storage_ref,
                &cfg2,
                source,
                |r| {
                    got.push(r);
                    Ok(())
                },
                1,
            )
            .expect("pipeline");
            assert_eq!(out.produced, per_pe as u64);
            assert_eq!(out.delivered, got.len() as u64);
            got
        })
    }

    fn check(p: usize, per_pe: usize, seed: u64) {
        let outputs = pipe(p, per_pe, seed);
        let n = (p * per_pe) as u64;
        let mut reference: Vec<u64> = (0..n).map(|gid| splitmix64(seed ^ gid)).collect();
        reference.sort_unstable();
        let concat: Vec<u64> = outputs.iter().flat_map(|o| o.iter().map(|e| e.key)).collect();
        assert_eq!(concat, reference, "pipelined output is the sorted stream");
        for (pe, o) in outputs.iter().enumerate() {
            assert_eq!(o.len() as u64, ranks::owned_len(pe, p, n), "canonical sizes");
        }
    }

    #[test]
    fn pipelines_external_volumes() {
        check(3, 700, 5); // several runs
    }

    #[test]
    fn pipelines_internal_volume() {
        check(3, 100, 6); // single run (shortcut path)
    }

    #[test]
    fn unbalanced_sources() {
        let p = 3;
        let cfgv = cfg(p);
        let storage = ClusterStorage::new_mem(&cfgv.machine);
        let storage_ref = &storage;
        let cfg2 = cfgv.clone();
        let outputs = run_cluster(p, move |c| {
            // PE i produces i * 400 records: PE 0 produces nothing.
            let per_pe = c.rank() * 400;
            let mut i = 0u64;
            let pe = c.rank() as u64;
            let source = move || {
                (i < per_pe as u64).then(|| {
                    let gid = pe * 1000 + i;
                    i += 1;
                    Element16::new(splitmix64(gid), gid)
                })
            };
            let mut got = Vec::new();
            pipelined_sort::<Element16, _, _>(
                &c,
                storage_ref,
                &cfg2,
                source,
                |r| {
                    got.push(r);
                    Ok(())
                },
                1,
            )
            .expect("pipeline");
            got
        });
        let total: usize = outputs.iter().map(Vec::len).sum();
        assert_eq!(total, 400 + 800);
        let keys: Vec<u64> = outputs.iter().flat_map(|o| o.iter().map(|e| e.key)).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
    }

    #[test]
    fn pipeline_io_is_two_passes_not_four() {
        // Input comes from the generator and output goes to the sink,
        // so only the runs themselves touch disk: 2N instead of 4N.
        let p = 2;
        let per_pe = 700usize;
        let cfgv = cfg(p);
        let storage = ClusterStorage::new_mem(&cfgv.machine);
        let storage_ref = &storage;
        let cfg2 = cfgv.clone();
        let counted = AtomicU64::new(0);
        let counted_ref = &counted;
        run_cluster(p, move |c| {
            let mut i = 0u64;
            let pe = c.rank() as u64;
            let source = move || {
                (i < per_pe as u64).then(|| {
                    let gid = pe * per_pe as u64 + i;
                    i += 1;
                    Element16::new(splitmix64(gid), gid)
                })
            };
            pipelined_sort::<Element16, _, _>(
                &c,
                storage_ref,
                &cfg2,
                source,
                |_r| {
                    counted_ref.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                },
                1,
            )
            .expect("pipeline");
        });
        assert_eq!(counted.load(Ordering::Relaxed), (p * per_pe) as u64);
        let io: u64 = (0..p).map(|pe| storage.pe(pe).counters().bytes_total()).sum();
        let n_bytes = (p * per_pe * 16) as u64;
        let ratio = io as f64 / n_bytes as f64;
        assert!(
            (1.9..=3.5).contains(&ratio),
            "pipelined sort must do ~2 N of I/O (runs only): {ratio:.2}"
        );
    }

    #[test]
    fn sink_errors_propagate() {
        let p = 1;
        let cfgv = cfg(p);
        let storage = ClusterStorage::new_mem(&cfgv.machine);
        let storage_ref = &storage;
        let cfg2 = cfgv.clone();
        let results = run_cluster(p, move |c| {
            let mut i = 0u64;
            let source = move || {
                (i < 100).then(|| {
                    i += 1;
                    Element16::new(i, i)
                })
            };
            pipelined_sort::<Element16, _, _>(
                &c,
                storage_ref,
                &cfg2,
                source,
                |_r| Err(demsort_types::Error::validation("sink rejected")),
                1,
            )
        });
        assert!(results[0].is_err(), "sink errors must surface");
    }
}
