//! # demsort-storage
//!
//! The external-memory substrate of the demsort suite: a multi-disk,
//! asynchronous, block-oriented storage engine in the spirit of STXXL
//! (which the paper's DEMSort implementation used "for handling
//! asynchronous block-wise access to the multiple disks highly
//! efficiently").
//!
//! Layers, bottom up:
//!
//! * [`backend`] — where bytes live: RAM ([`MemBackend`]), files
//!   ([`FileBackend`]), or a fault-injecting wrapper for tests.
//! * [`disk`] — the timing model (Seagate 7200.10 defaults from the
//!   paper) and per-disk statistics. Time is *accounted, not slept*.
//! * [`engine`] — one worker thread per disk, FIFO request queues,
//!   futures-style [`IoHandle`]s; this is what makes I/O overlap real.
//! * [`alloc`] — per-disk free-list allocation with a high-water mark,
//!   enabling the paper's (nearly) in-place operation.
//! * [`striping`] — [`PeStorage`] facade plus streaming [`RunWriter`] /
//!   [`RunReader`] with write-behind / read-ahead over RAID-0 striping.
//! * [`prefetch`] — prediction-sequence prefetching with both naive and
//!   duality-optimal schedules (Appendix A of the paper, \[13\]).

pub mod alloc;
pub mod backend;
pub mod block;
pub mod disk;
pub mod engine;
pub mod prefetch;
pub mod striping;

pub use alloc::BlockAllocator;
pub use backend::{Backend, FaultInjectingBackend, FileBackend, MemBackend};
pub use block::{alloc_buf, BlockId};
pub use disk::{DiskModel, DiskStats, DiskStatsSnapshot};
pub use engine::{IoEngine, IoHandle};
pub use prefetch::{
    duality_issue_order, naive_issue_order, simulate_schedule, MergePrefetcher, ScheduleSim,
};
pub use striping::{
    check_run, free_run, read_run, write_run, PeStorage, Run, RunReader, RunWriter,
};
