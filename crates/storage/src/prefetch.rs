//! Prefetching for multiway merging.
//!
//! During a merge pass the order in which blocks are needed is known in
//! advance from the *prediction sequence* (the smallest key in each
//! block, Section III / \[11\]). Two schedules are provided:
//!
//! * [`naive_issue_order`] — fetch blocks simply in consumption order
//!   (works well for random inputs, \[11\]);
//! * [`duality_issue_order`] — the asymptotically optimal schedule of
//!   Hutchinson–Sanders–Vitter (\[13\], Appendix A of the paper):
//!   simulate *lazy buffered writing* of the reversed sequence and play
//!   the resulting steps backwards. With `Ω(D)` buffers this keeps all
//!   disks busy even for adversarial disk layouts.
//!
//! [`MergePrefetcher`] executes a schedule against a [`PeStorage`],
//! bounding resident-plus-in-flight blocks by the buffer budget, and
//! [`simulate_schedule`] evaluates a schedule analytically (parallel
//! I/O steps, consumer stalls) for tests and the ablation bench.

use crate::block::BlockId;
use crate::engine::IoHandle;
use crate::striping::PeStorage;
use demsort_types::Result;
use std::collections::VecDeque;

/// Fetch blocks in exactly the order the merger will consume them.
pub fn naive_issue_order(seq: &[BlockId]) -> Vec<usize> {
    (0..seq.len()).collect()
}

/// Optimal-prefetching issue order via write/prefetch duality.
///
/// Process the reversed consumption sequence as if *writing* with a
/// buffer of `buffers` blocks: queue each block on its disk; whenever
/// the buffer is full, perform an output step in which every disk with
/// a queued block writes (pops) one. The prefetch schedule is the
/// write steps in reverse order.
pub fn duality_issue_order(seq: &[BlockId], buffers: usize) -> Vec<usize> {
    let buffers = buffers.max(1);
    let num_disks = seq.iter().map(|b| b.disk as usize + 1).max().unwrap_or(1);
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); num_disks];
    let mut buffered = 0usize;
    let mut steps: Vec<Vec<usize>> = Vec::new();

    let mut output_step = |queues: &mut Vec<VecDeque<usize>>, buffered: &mut usize| {
        let mut step = Vec::new();
        for q in queues.iter_mut() {
            if let Some(idx) = q.pop_front() {
                step.push(idx);
                *buffered -= 1;
            }
        }
        if !step.is_empty() {
            steps.push(step);
        }
    };

    for idx in (0..seq.len()).rev() {
        queues[seq[idx].disk as usize].push_back(idx);
        buffered += 1;
        if buffered >= buffers {
            output_step(&mut queues, &mut buffered);
        }
    }
    while buffered > 0 {
        output_step(&mut queues, &mut buffered);
    }

    // Prefetch order = write steps reversed (within a step the blocks
    // hit distinct disks, so their relative order is irrelevant).
    let mut order = Vec::with_capacity(seq.len());
    for step in steps.iter().rev() {
        order.extend(step.iter().copied());
    }
    debug_assert_eq!(order.len(), seq.len());
    order
}

/// Result of analytically simulating a prefetch schedule.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleSim {
    /// Parallel I/O steps until the whole sequence is consumed
    /// (lower bound: `⌈max per-disk load⌉`).
    pub io_steps: u64,
    /// Steps in which the consumer made no progress while data was
    /// still outstanding.
    pub consumer_stalls: u64,
}

/// Simulate executing `issue_order` over `seq` with `buffers` block
/// buffers: each I/O step every disk delivers at most one queued fetch;
/// the consumer drains blocks in `seq` order as they arrive.
pub fn simulate_schedule(seq: &[BlockId], issue_order: &[usize], buffers: usize) -> ScheduleSim {
    assert_eq!(seq.len(), issue_order.len());
    let buffers = buffers.max(1);
    let num_disks = seq.iter().map(|b| b.disk as usize + 1).max().unwrap_or(1);
    let n = seq.len();
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); num_disks];
    let mut resident = vec![false; n];
    let mut pending = 0usize; // queued + resident, bounded by `buffers`
    let mut next_issue = 0usize;
    let mut consumed = 0usize;
    let mut sim = ScheduleSim::default();

    // Prime the queues before the first step.
    while next_issue < n && pending < buffers {
        let idx = issue_order[next_issue];
        queues[seq[idx].disk as usize].push_back(idx);
        pending += 1;
        next_issue += 1;
    }

    while consumed < n {
        sim.io_steps += 1;
        // Every disk delivers one queued block.
        for q in queues.iter_mut() {
            if let Some(idx) = q.pop_front() {
                resident[idx] = true;
            }
        }
        // Consumer drains in order.
        let before = consumed;
        while consumed < n && resident[consumed] {
            resident[consumed] = false;
            pending -= 1;
            consumed += 1;
        }
        if consumed == before {
            sim.consumer_stalls += 1;
        }
        // Issue more fetches into the freed budget.
        while next_issue < n && pending < buffers {
            let idx = issue_order[next_issue];
            queues[seq[idx].disk as usize].push_back(idx);
            pending += 1;
            next_issue += 1;
        }
    }
    sim
}

/// Online prefetcher: issues reads per a schedule, bounded by a buffer
/// budget, and yields blocks in consumption order.
pub struct MergePrefetcher<'a> {
    st: &'a PeStorage,
    seq: Vec<BlockId>,
    issue_order: Vec<usize>,
    handles: Vec<Option<IoHandle>>,
    next_issue: usize,
    next_deliver: usize,
    outstanding: usize,
    buffers: usize,
    free_after_read: bool,
}

impl<'a> MergePrefetcher<'a> {
    /// Prefetch `seq` from `st` following `issue_order`, keeping at most
    /// `buffers` blocks issued-but-undelivered. If `free_after_read`,
    /// each block is recycled as soon as it is delivered.
    pub fn new(
        st: &'a PeStorage,
        seq: Vec<BlockId>,
        issue_order: Vec<usize>,
        buffers: usize,
        free_after_read: bool,
    ) -> Self {
        assert_eq!(seq.len(), issue_order.len());
        let n = seq.len();
        Self {
            st,
            seq,
            issue_order,
            handles: (0..n).map(|_| None).collect(),
            next_issue: 0,
            next_deliver: 0,
            outstanding: 0,
            buffers: buffers.max(1),
            free_after_read,
        }
    }

    /// Convenience: naive schedule.
    pub fn naive(st: &'a PeStorage, seq: Vec<BlockId>, buffers: usize, free: bool) -> Self {
        let order = naive_issue_order(&seq);
        Self::new(st, seq, order, buffers, free)
    }

    /// Convenience: duality-optimal schedule.
    pub fn optimal(st: &'a PeStorage, seq: Vec<BlockId>, buffers: usize, free: bool) -> Self {
        let order = duality_issue_order(&seq, buffers);
        Self::new(st, seq, order, buffers, free)
    }

    fn top_up(&mut self) {
        while self.next_issue < self.seq.len() && self.outstanding < self.buffers {
            let idx = self.issue_order[self.next_issue];
            self.next_issue += 1;
            if self.handles[idx].is_none() {
                self.handles[idx] = Some(self.st.engine().read(self.seq[idx]));
                self.outstanding += 1;
            }
        }
    }

    /// The number of blocks remaining to deliver.
    pub fn remaining(&self) -> usize {
        self.seq.len() - self.next_deliver
    }

    /// Next block in consumption order, or `None` after the last one.
    /// (Not an `Iterator`: delivery is fallible, so the signature is
    /// `Result<Option<..>>`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Box<[u8]>>> {
        if self.next_deliver >= self.seq.len() {
            return Ok(None);
        }
        self.top_up();
        let idx = self.next_deliver;
        // Defensive fallback: if the schedule failed to cover this block
        // yet (can only happen with an inconsistent custom order), fetch
        // it directly rather than deadlock.
        if self.handles[idx].is_none() {
            self.handles[idx] = Some(self.st.engine().read(self.seq[idx]));
            self.outstanding += 1;
        }
        let h = self.handles[idx].take().expect("issued above");
        let data = h.wait()?;
        self.outstanding -= 1;
        self.next_deliver += 1;
        if self.free_after_read {
            self.st.free_block(self.seq[idx]);
        }
        self.top_up();
        Ok(Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::disk::DiskModel;
    use std::sync::Arc;

    fn storage(disks: usize, block: usize) -> PeStorage {
        PeStorage::with_backend(disks, block, DiskModel::paper(), Arc::new(MemBackend::new(disks)))
    }

    /// A consumption sequence that is adversarial for naive prefetching:
    /// long stretches on a single disk.
    fn clustered_seq(per_disk: usize, disks: u32) -> Vec<BlockId> {
        let mut seq = Vec::new();
        for d in 0..disks {
            for s in 0..per_disk as u32 {
                seq.push(BlockId::new(d, s));
            }
        }
        seq
    }

    fn striped_seq(n: usize, disks: u32) -> Vec<BlockId> {
        (0..n as u32).map(|i| BlockId::new(i % disks, i / disks)).collect()
    }

    #[test]
    fn duality_order_is_a_permutation() {
        for buffers in [1, 2, 4, 7, 64] {
            let seq = clustered_seq(13, 3);
            let order = duality_issue_order(&seq, buffers);
            let mut seen = vec![false; seq.len()];
            for &i in &order {
                assert!(!seen[i], "duplicate index {i}");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn striped_sequence_achieves_full_parallelism() {
        let seq = striped_seq(64, 4);
        let sim = simulate_schedule(&seq, &naive_issue_order(&seq), 8);
        // 64 blocks over 4 disks: at least 16 steps; striping should be
        // within one step of that.
        assert!(sim.io_steps <= 17, "steps = {}", sim.io_steps);
    }

    #[test]
    fn duality_never_worse_than_naive() {
        // Engineering note: with queued asynchronous disks (per-disk
        // FIFO queues, budget counted at issue time) the in-order naive
        // schedule already realizes the cross-cluster overlap that the
        // duality schedule encodes explicitly, so the two tie on most
        // sequences — consistent with [11] observing naive order works
        // well in practice. The theoretical gap of [6]/[13] needs the
        // queue-less fetch-step model. We assert the optimal schedule is
        // never *worse*, on clustered, striped, and random layouts.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut cases = vec![clustered_seq(32, 4), striped_seq(128, 4)];
        let mut next_slot = [0u32; 4];
        cases.push(
            (0..150)
                .map(|_| {
                    let d = rng.gen_range(0..4u32);
                    let s = next_slot[d as usize];
                    next_slot[d as usize] += 1;
                    BlockId::new(d, s)
                })
                .collect(),
        );
        for seq in cases {
            for buffers in [4usize, 8, 16, 64] {
                let naive = simulate_schedule(&seq, &naive_issue_order(&seq), buffers);
                let optimal = simulate_schedule(&seq, &duality_issue_order(&seq, buffers), buffers);
                assert!(
                    optimal.io_steps <= naive.io_steps,
                    "optimal {} vs naive {} (buffers {buffers})",
                    optimal.io_steps,
                    naive.io_steps
                );
            }
        }
    }

    #[test]
    fn duality_step_count_near_lower_bound_random() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let disks = 4u32;
        let mut next_slot = vec![0u32; disks as usize];
        let seq: Vec<BlockId> = (0..200)
            .map(|_| {
                let d = rng.gen_range(0..disks);
                let s = next_slot[d as usize];
                next_slot[d as usize] += 1;
                BlockId::new(d, s)
            })
            .collect();
        let buffers = 4 * disks as usize;
        let sim = simulate_schedule(&seq, &duality_issue_order(&seq, buffers), buffers);
        let max_load = *next_slot.iter().max().expect("disks") as u64;
        assert!(
            sim.io_steps <= max_load * 2,
            "steps {} vs per-disk load {}",
            sim.io_steps,
            max_load
        );
    }

    #[test]
    fn prefetcher_delivers_in_order_both_schedules() {
        let st = storage(3, 16);
        // Write blocks with identifiable contents in clustered layout.
        let seq = clustered_seq(10, 3);
        for (i, id) in seq.iter().enumerate() {
            st.engine().write_sync(*id, vec![i as u8; 16].into_boxed_slice()).expect("write");
        }
        for optimal in [false, true] {
            let mut pf = if optimal {
                MergePrefetcher::optimal(&st, seq.clone(), 4, false)
            } else {
                MergePrefetcher::naive(&st, seq.clone(), 4, false)
            };
            let mut i = 0u8;
            while let Some(block) = pf.next().expect("read") {
                assert!(block.iter().all(|&b| b == i), "block {i} content");
                i += 1;
            }
            assert_eq!(i as usize, seq.len());
        }
    }

    #[test]
    fn prefetcher_frees_blocks_in_place_mode() {
        let st = storage(2, 16);
        let ids: Vec<BlockId> = (0..6).map(|_| st.alloc().alloc_striped()).collect();
        for id in &ids {
            st.engine().write_sync(*id, vec![1u8; 16].into_boxed_slice()).expect("write");
        }
        assert_eq!(st.alloc().in_use(), 6);
        let mut pf = MergePrefetcher::optimal(&st, ids, 2, true);
        while pf.next().expect("read").is_some() {}
        assert_eq!(st.alloc().in_use(), 0);
    }

    #[test]
    fn tiny_buffer_budget_still_correct() {
        let st = storage(2, 8);
        let seq = striped_seq(20, 2);
        for (i, id) in seq.iter().enumerate() {
            st.engine().write_sync(*id, vec![i as u8; 8].into_boxed_slice()).expect("write");
        }
        let mut pf = MergePrefetcher::optimal(&st, seq.clone(), 1, false);
        let mut count = 0;
        while let Some(b) = pf.next().expect("read") {
            assert_eq!(b[0] as usize, count);
            count += 1;
        }
        assert_eq!(count, seq.len());
    }

    #[test]
    fn empty_sequence() {
        let st = storage(1, 8);
        let mut pf = MergePrefetcher::naive(&st, Vec::new(), 4, false);
        assert!(pf.next().expect("read").is_none());
        assert_eq!(pf.remaining(), 0);
    }
}
