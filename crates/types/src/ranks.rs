//! Rank arithmetic for the canonical output format.
//!
//! CANONICALMERGESORT delivers to PE `i` the elements of global ranks
//! `(i-1)N/P+1 .. iN/P` (1-based in the paper; 0-based here:
//! `⌊i·N/P⌋ .. ⌊(i+1)·N/P⌋`). The same convention splits runs into `P`
//! pieces during the distributed internal sort, so it lives here where
//! every crate can reach it.

use std::ops::Range;

/// The half-open range of global ranks owned by PE `pe` out of `p` PEs
/// for a total of `n` elements.
///
/// The split uses `⌊i·n/p⌋` boundaries, so ranges differ in size by at
/// most one and exactly cover `0..n`.
pub fn owned_range(pe: usize, p: usize, n: u64) -> Range<u64> {
    assert!(pe < p, "pe {pe} out of range for {p} PEs");
    let lo = (pe as u128 * n as u128 / p as u128) as u64;
    let hi = ((pe as u128 + 1) * n as u128 / p as u128) as u64;
    lo..hi
}

/// Number of elements PE `pe` owns (`owned_range` length).
pub fn owned_len(pe: usize, p: usize, n: u64) -> u64 {
    let r = owned_range(pe, p, n);
    r.end - r.start
}

/// Which PE owns global rank `rank` (inverse of [`owned_range`]).
pub fn owner_of(rank: u64, p: usize, n: u64) -> usize {
    assert!(rank < n, "rank {rank} out of range for {n} elements");
    // owner = the unique pe with floor(pe*n/p) <= rank < floor((pe+1)*n/p).
    // Start from the proportional guess and fix up (at most one step).
    let mut pe = ((rank as u128 * p as u128) / n as u128) as usize;
    if pe >= p {
        pe = p - 1;
    }
    while owned_range(pe, p, n).start > rank {
        pe -= 1;
    }
    while owned_range(pe, p, n).end <= rank {
        pe += 1;
    }
    pe
}

/// Split `n` items into `p` nearly equal contiguous chunks; returns the
/// `p + 1` boundaries (`boundaries[i]..boundaries[i+1]` is chunk `i`).
pub fn boundaries(p: usize, n: u64) -> Vec<u64> {
    (0..=p).map(|i| (i as u128 * n as u128 / p as u128) as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ranges_cover_exactly() {
        for p in 1..10 {
            for n in [0u64, 1, 7, 100, 101] {
                let mut total = 0;
                let mut prev_end = 0;
                for pe in 0..p {
                    let r = owned_range(pe, p, n);
                    assert_eq!(r.start, prev_end, "ranges must be contiguous");
                    prev_end = r.end;
                    total += r.end - r.start;
                }
                assert_eq!(prev_end, n);
                assert_eq!(total, n);
            }
        }
    }

    #[test]
    fn range_sizes_differ_by_at_most_one() {
        for p in 1..16 {
            for n in [1u64, 13, 64, 1000] {
                let sizes: Vec<u64> = (0..p).map(|pe| owned_len(pe, p, n)).collect();
                let min = *sizes.iter().min().expect("nonempty");
                let max = *sizes.iter().max().expect("nonempty");
                assert!(max - min <= 1, "p={p} n={n} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn boundaries_match_ranges() {
        let b = boundaries(4, 10);
        assert_eq!(b, vec![0, 2, 5, 7, 10]);
        for pe in 0..4 {
            assert_eq!(owned_range(pe, 4, 10), b[pe]..b[pe + 1]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_of_rejects_out_of_range() {
        owner_of(10, 2, 10);
    }

    #[test]
    fn owned_len_when_n_is_zero() {
        for p in 1..20 {
            for pe in 0..p {
                assert_eq!(owned_len(pe, p, 0), 0);
                assert_eq!(owned_range(pe, p, 0), 0..0);
            }
        }
        assert_eq!(boundaries(5, 0), vec![0; 6]);
    }

    #[test]
    fn owned_len_when_n_less_than_p() {
        // Fewer elements than PEs: every PE owns 0 or 1 element, the
        // owned lengths sum to n, and owner_of agrees with the ranges.
        for p in 2..12 {
            for n in 1..p as u64 {
                let sizes: Vec<u64> = (0..p).map(|pe| owned_len(pe, p, n)).collect();
                assert!(sizes.iter().all(|&s| s <= 1), "p={p} n={n} sizes={sizes:?}");
                assert_eq!(sizes.iter().sum::<u64>(), n);
                for rank in 0..n {
                    let pe = owner_of(rank, p, n);
                    assert!(owned_range(pe, p, n).contains(&rank));
                    assert_eq!(sizes[pe], 1);
                }
            }
        }
    }

    #[test]
    fn owned_len_when_n_not_divisible_by_p() {
        // ⌊i·n/p⌋ boundaries put the larger pieces exactly where the
        // floor steps land — check the canonical example and the
        // general ±1 + exact-cover law on a sweep of awkward shapes.
        assert_eq!((0..4).map(|pe| owned_len(pe, 4, 10)).collect::<Vec<_>>(), vec![2, 3, 2, 3]);
        for (p, n) in [(3, 10u64), (7, 100), (16, 1000), (9, 80), (11, 23)] {
            let sizes: Vec<u64> = (0..p).map(|pe| owned_len(pe, p, n)).collect();
            assert_eq!(sizes.iter().sum::<u64>(), n, "p={p} n={n}");
            let lo = n / p as u64;
            assert!(sizes.iter().all(|&s| s == lo || s == lo + 1), "p={p} n={n} sizes={sizes:?}");
            assert_eq!(sizes.iter().filter(|&&s| s == lo + 1).count() as u64, n % p as u64);
        }
    }

    proptest! {
        #[test]
        fn owner_inverts_range(p in 1usize..32, n in 1u64..10_000, frac in 0.0f64..1.0) {
            let rank = ((n - 1) as f64 * frac) as u64;
            let pe = owner_of(rank, p, n);
            let r = owned_range(pe, p, n);
            prop_assert!(r.contains(&rank), "rank {} not in {:?} (pe {})", rank, r, pe);
        }
    }
}
