//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the `proptest!` macro, range and collection strategies,
//! and `prop_assert*` with proptest-1.x-shaped APIs, minus shrinking.
//! Generation is **fully deterministic**: every test's RNG is seeded
//! from its `file!()` + function name, so a failing case reproduces
//! identically on every run and machine (the role upstream proptest's
//! `proptest-regressions/` files play — see that directory's README).
//!
//! Case counts come from [`test_runner::Config`]: the `PROPTEST_CASES`
//! environment variable overrides both the default and any
//! `with_cases` value, so CI can pin or extend coverage globally.

pub mod test_runner {
    use std::fmt;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    fn env_cases() -> Option<u32> {
        let raw = std::env::var("PROPTEST_CASES").ok()?;
        match raw.parse() {
            Ok(n) => Some(n),
            Err(_) => panic!("PROPTEST_CASES must be an unsigned integer, got {raw:?}"),
        }
    }

    impl Config {
        /// `cases` cases, unless `PROPTEST_CASES` overrides it.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases: env_cases().unwrap_or(cases) }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self::with_cases(64)
        }
    }

    /// A failed property (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test RNG (SplitMix64 seeded by test identity).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's source identity (FNV-1a over the name),
        /// so runs are reproducible without any persisted state.
        pub fn from_test_name(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` 0 is an error.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)` with 53 bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Produces one value per generated case. (Upstream proptest's
    /// `Strategy` yields shrinkable value trees; this stand-in yields
    /// plain values.)
    pub trait Strategy {
        type Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let width = (*self.end() as u64).wrapping_sub(*self.start() as u64);
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    self.start().wrapping_add(rng.below(width + 1) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start() <= self.end(), "empty range strategy");
            // Hit both endpoints with small positive probability so
            // boundary behavior (rank 0, rank N) is exercised.
            match rng.below(64) {
                0 => *self.start(),
                1 => *self.end(),
                _ => self.start() + rng.unit_f64() * (self.end() - self.start()),
            }
        }
    }

    /// `Just(value)`: always produces a clone of `value`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vector strategy: length drawn from `size`, elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `Option<T>` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` produced by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(inner)`: `None` a quarter of the time,
    /// `Some(inner value)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// The `prop::` namespace used inside `proptest!` bodies
/// (`prop::collection::vec(...)`, `prop::option::of(...)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Everything test modules import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body; failure fails only the current
/// case (reported with the case number for reproduction).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l,
                    r
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    l
                );
            }
        }
    }};
}

/// Define property tests. Accepts proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop(x in 0u64..100, mut v in prop::collection::vec(0u32..9, 0..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::from_test_name(
                    concat!(file!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                        $(
                            let $parm =
                                $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                        )+
                        // `mut`: bodies that mutate their bound values
                        // make this closure `FnMut`.
                        #[allow(unused_mut)]
                        let mut property = move || {
                            $body
                            ::core::result::Result::Ok(())
                        };
                        property()
                    };
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{} (deterministic seed; rerun \
                             reproduces it — see proptest-regressions/README.md):\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 0usize..3, f in 0.0f64..=1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 100);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_and_mut_patterns(mut v in prop::collection::vec(0u8..4, 0..6)) {
            v.push(0);
            prop_assert_eq!(*v.last().expect("just pushed"), 0);
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = TestRng::from_test_name("mod::x");
        let mut b = TestRng::from_test_name("mod::x");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = TestRng::from_test_name("mod::y");
        assert_ne!(xs, (0..16).map(|_| c.next_u64()).collect::<Vec<u64>>());
    }

    #[test]
    fn full_u64_domain_does_not_overflow() {
        let mut rng = TestRng::from_test_name("domain");
        let s = 0u64..u64::MAX;
        for _ in 0..100 {
            let v = crate::strategy::Strategy::new_value(&s, &mut rng);
            assert!(v < u64::MAX);
        }
    }
}
