//! The pluggable cluster transport: point-to-point byte frames with
//! per-source FIFO ordering.
//!
//! [`Communicator`](crate::Communicator) builds every MPI-style
//! collective from this interface, so swapping the transport swaps the
//! *cluster substrate* under every algorithm unchanged:
//!
//! * [`LocalTransport`] — the original in-process channel mesh (one PE
//!   per thread). This is the MVAPICH-over-shared-memory analogue: zero
//!   copies cross the kernel, a "send" is a channel push.
//! * [`TcpTransport`](crate::tcp::TcpTransport) — one PE per OS
//!   process, a full `P × P` socket mesh over TCP. This is the paper's
//!   actual deployment shape (200 nodes, MVAPICH over InfiniBand), with
//!   TCP standing in for the interconnect.
//!
//! The contract mirrors what the algorithms assume of MPI:
//!
//! 1. **Per-source FIFO**: two frames sent from the same rank to the
//!    same destination are received in send order. No ordering is
//!    promised across sources.
//! 2. **Non-blocking send**: `send` may buffer; it never waits for the
//!    receiver (unbounded buffering, like the channel mesh).
//! 3. **Self-delivery**: `send(rank, ..)` loops back through the same
//!    FIFO (a real MPI does a memcpy).
//! 4. **Failure is an `Err`, not a hang**: a disappeared peer must
//!    surface as [`Error::Comm`](demsort_types::Error) from `recv`
//!    within the transport's timeout.

use crossbeam::channel::{unbounded, Receiver, Sender};
use demsort_types::{Error, Result};

/// Point-to-point byte-frame transport between `size` ranks.
///
/// Implementations must be `Send` (a rank's endpoint moves into its PE
/// thread/process) but need not be `Sync` — like an MPI rank, an
/// endpoint belongs to one execution context.
pub trait Transport: Send {
    /// This endpoint's rank (`0..size`).
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster.
    fn size(&self) -> usize;

    /// Queue `frame` for delivery to `to` (non-blocking).
    fn send(&self, to: usize, frame: Vec<u8>) -> Result<()>;

    /// Queue a borrowed frame for delivery to `to`.
    ///
    /// Transports that serialize onto a wire (TCP) copy straight into
    /// their buffered writer — no intermediate `Vec` per message. The
    /// default falls back to an owned copy for transports that hand
    /// frames across threads.
    fn send_bytes(&self, to: usize, frame: &[u8]) -> Result<()> {
        self.send(to, frame.to_vec())
    }

    /// Receive the next frame from `from` (blocking, FIFO per source).
    ///
    /// Returns [`Error::Comm`](demsort_types::Error) if the peer
    /// disconnects or the transport's receive timeout elapses — never
    /// hangs forever on a dead peer.
    fn recv(&self, from: usize) -> Result<Vec<u8>>;

    /// Push buffered sends onto the wire.
    ///
    /// Buffering transports (TCP) may hold small frames back for
    /// batching; [`Communicator`](crate::Communicator) flushes before
    /// every blocking receive — the collective-boundary flush points —
    /// so no peer ever waits on bytes parked in a local buffer. In-
    /// process transports deliver eagerly and make this a no-op.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

/// The in-process channel mesh: each rank pair has a dedicated
/// unbounded FIFO channel, each rank one endpoint.
pub struct LocalTransport {
    rank: usize,
    size: usize,
    /// `out[j]` feeds rank `j`'s inbox slot for this rank.
    out: Vec<Sender<Vec<u8>>>,
    /// `inbox[i]` receives what rank `i` sent us.
    inbox: Vec<Receiver<Vec<u8>>>,
}

impl LocalTransport {
    /// Build the full `p × p` mesh and return one endpoint per rank.
    pub fn mesh(p: usize) -> Vec<LocalTransport> {
        assert!(p > 0, "cluster needs at least one rank");
        // senders[src][dst] / inboxes[dst][src]
        let mut senders: Vec<Vec<Sender<Vec<u8>>>> =
            (0..p).map(|_| Vec::with_capacity(p)).collect();
        let mut inboxes: Vec<Vec<Receiver<Vec<u8>>>> =
            (0..p).map(|_| Vec::with_capacity(p)).collect();
        for dst_inbox in inboxes.iter_mut() {
            for sender in senders.iter_mut() {
                let (tx, rx) = unbounded::<Vec<u8>>();
                sender.push(tx);
                dst_inbox.push(rx);
            }
        }
        senders
            .into_iter()
            .zip(inboxes)
            .enumerate()
            .map(|(rank, (out, inbox))| LocalTransport { rank, size: p, out, inbox })
            .collect()
    }
}

impl Transport for LocalTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, frame: Vec<u8>) -> Result<()> {
        self.out[to]
            .send(frame)
            .map_err(|_| Error::comm(format!("send to rank {to}: peer hung up (channel closed)")))
    }

    fn recv(&self, from: usize) -> Result<Vec<u8>> {
        self.inbox[from].recv().map_err(|_| {
            Error::comm(format!("recv from rank {from}: peer hung up (channel closed)"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_shapes() {
        let mesh = LocalTransport::mesh(3);
        assert_eq!(mesh.len(), 3);
        for (i, t) in mesh.iter().enumerate() {
            assert_eq!(t.rank(), i);
            assert_eq!(t.size(), 3);
        }
    }

    #[test]
    fn per_source_fifo_and_self_delivery() {
        let mut mesh = LocalTransport::mesh(2);
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        t0.send(1, vec![1]).expect("send");
        t0.send_bytes(1, &[2]).expect("send");
        t0.send(0, vec![9]).expect("self send");
        assert_eq!(t1.recv(0).expect("recv"), vec![1]);
        assert_eq!(t1.recv(0).expect("recv"), vec![2]);
        assert_eq!(t0.recv(0).expect("self recv"), vec![9]);
    }

    #[test]
    fn dead_peer_is_an_error_not_a_hang() {
        let mut mesh = LocalTransport::mesh(2);
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        drop(t1);
        let err = t0.recv(1).expect_err("peer gone");
        assert!(matches!(err, Error::Comm(_)), "{err}");
    }
}
