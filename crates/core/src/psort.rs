//! Distributed internal-memory parallel mergesort (Section IV-B).
//!
//! "Each node sorts its local data. Then, the internal memory variant
//! of the multiway selection algorithm is used to split the `P` sorted
//! sequences into `P` pieces of equal size. An all-to-all communication
//! is used to move the pieces to the right PE. Note that in the best
//! case, this is the only time when the data is actually communicated."
//!
//! Steps on each PE:
//!
//! 1. sort local data with the in-node parallel sort
//!    ([`crate::seqsort`], the MCSTL stand-in);
//! 2. exact splitters via distributed multiway selection
//!    ([`crate::distselect`]);
//! 3. `alltoallv` the pieces (through the chunked variant that lifts
//!    MPI's 2 GiB limit, Section V);
//! 4. `P`-way merge of the received sorted pieces.
//!
//! The output is *canonical*: PE `i` ends up with the elements of
//! global ranks `⌊i·N/P⌋ .. ⌊(i+1)·N/P⌋`.

use crate::distselect::dist_split;
use crate::merge::{merge_cpu, par_merge_k_into};
use crate::seqsort::sort_in_node;
use demsort_net::{chunked_alltoallv, Communicator, MPI_VOLUME_LIMIT};
use demsort_types::{CpuCounters, Record, Result};

/// Sort `data` across all PEs of `comm`; returns this PE's canonical
/// slice of the global sorted order plus CPU counters.
///
/// Every PE must call this collectively. Local input sizes may differ;
/// output sizes differ by at most one element.
///
/// # Errors
/// [`Error::Comm`](demsort_types::Error) if a peer dies during the
/// splitter selection or the all-to-all exchange.
pub fn parallel_sort<R: Record + Ord>(
    comm: &Communicator,
    mut data: Vec<R>,
    cores: usize,
) -> Result<(Vec<R>, CpuCounters)> {
    let cpu = sort_in_node(&mut data, cores);
    parallel_sort_presorted(comm, data, cores, cpu)
}

/// [`parallel_sort`] for data that is already locally sorted (used by
/// the single-run sort-on-arrival optimization of Section IV-E, where
/// blocks are sorted as they arrive from disk and merged afterwards).
///
/// `cpu` carries the counters of however the local sort was achieved;
/// the splitter/exchange/merge counters are added to it. The final
/// P-way merge of the received pieces runs on up to `cores` threads.
///
/// # Errors
/// See [`parallel_sort`].
pub fn parallel_sort_presorted<R: Record + Ord>(
    comm: &Communicator,
    data: Vec<R>,
    cores: usize,
    mut cpu: CpuCounters,
) -> Result<(Vec<R>, CpuCounters)> {
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]), "input must be locally sorted");
    if comm.size() == 1 {
        return Ok((data, cpu));
    }

    // Exact equal-size splitters over the P distributed sorted runs.
    let cuts = dist_split(comm, &data, comm.size())?;

    // Exchange the pieces: piece p of every PE goes to PE p.
    let msgs: Vec<Vec<u8>> = cuts
        .windows(2)
        .map(|w| {
            let piece = &data[w[0]..w[1]];
            let mut buf = vec![0u8; piece.len() * R::BYTES];
            R::encode_slice(piece, &mut buf);
            buf
        })
        .collect();
    let received = chunked_alltoallv(comm, msgs, MPI_VOLUME_LIMIT)?;
    drop(data);

    // Merge the P sorted pieces (they arrive indexed by source rank,
    // which is exactly the canonical (key, pe) tie-break order).
    let pieces: Vec<Vec<R>> = received
        .into_iter()
        .map(|buf| {
            let mut v = Vec::new();
            R::decode_slice(&buf, &mut v);
            v
        })
        .collect();
    let views: Vec<&[R]> = pieces.iter().map(|p| p.as_slice()).collect();
    let total: usize = views.iter().map(|v| v.len()).sum();
    let mut out = Vec::with_capacity(total);
    let pm = par_merge_k_into(&views, cores, &mut out);

    cpu = cpu.merge(&merge_cpu(out.len() as u64, comm.size()));
    cpu.split_probes += pm.split_probes;
    Ok((out, cpu))
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_net::run_cluster;
    use demsort_types::Element16;
    use demsort_workloads::{checksum_elements, generate_all, generate_pe_input, InputSpec};

    /// Run a parallel sort and verify the three output properties:
    /// locally sorted, globally ordered across PEs, and a permutation
    /// of the input.
    fn check_psort(spec: InputSpec, p: usize, local_n: usize) {
        let outputs = run_cluster(p, move |c| {
            let data = generate_pe_input(spec, 99, c.rank(), p, local_n);
            let (out, _) = parallel_sort(&c, data, 2).expect("sort");
            out
        });

        let mut reference = generate_all(spec, 99, p, local_n);
        reference.sort_unstable();

        // Balanced canonical sizes.
        let n = (p * local_n) as u64;
        for (pe, out) in outputs.iter().enumerate() {
            let expect = demsort_types::ranks::owned_len(pe, p, n);
            assert_eq!(out.len() as u64, expect, "PE {pe} size");
        }
        // Concatenation equals the sequential reference sort.
        let concat: Vec<Element16> = outputs.concat();
        assert_eq!(concat, reference, "global order ({spec:?}, P={p})");
        assert_eq!(
            checksum_elements(&concat),
            checksum_elements(&generate_all(spec, 99, p, local_n)),
            "permutation"
        );
    }

    #[test]
    fn sorts_uniform_inputs() {
        for p in [1, 2, 3, 4, 8] {
            check_psort(InputSpec::Uniform, p, 500);
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check_psort(InputSpec::Sorted, 4, 300);
        check_psort(InputSpec::ReverseSorted, 4, 300);
        check_psort(InputSpec::SkewedToOne, 4, 300);
        check_psort(InputSpec::Constant, 4, 300);
        check_psort(InputSpec::Banded { block_elems: 50 }, 4, 300);
    }

    #[test]
    fn tiny_inputs_and_more_pes_than_elements() {
        check_psort(InputSpec::Uniform, 4, 1);
        check_psort(InputSpec::Uniform, 3, 0);
        check_psort(InputSpec::Uniform, 2, 2);
    }

    #[test]
    fn communication_is_single_pass_for_presorted() {
        // A globally sorted input needs *zero* data movement: every
        // piece stays home. ("in the best case, this is the only time
        // when the data is actually communicated" — and for sorted
        // input even that is a self-message.)
        let p = 4;
        let sent_at = |local_n: usize| {
            let counters = run_cluster(p, move |c| {
                let data = generate_pe_input(InputSpec::Sorted, 1, c.rank(), p, local_n);
                let before = c.counters();
                let _ = parallel_sort(&c, data, 1).expect("sort");
                c.counters().delta_since(&before)
            });
            counters.iter().map(|c| c.bytes_sent).max().expect("nonempty")
        };
        // Only selection control traffic (O(P log N) tiny messages), no
        // bulk data: far below the 16 KiB of local payload, and growing
        // only logarithmically when the input grows 8-fold.
        let small = sent_at(1000);
        let big = sent_at(8000);
        assert!(small < 16_000, "control traffic too large: {small} bytes");
        assert!(
            (big as f64) < (small as f64) * 1.5,
            "control traffic must not scale with N: {small} -> {big}"
        );
    }

    #[test]
    fn uniform_input_communicates_about_once() {
        // Random input: ~ (P-1)/P of the data crosses the network once.
        let p = 4;
        let local_n = 2000usize;
        let counters = run_cluster(p, move |c| {
            let data = generate_pe_input(InputSpec::Uniform, 5, c.rank(), p, local_n);
            let before = c.counters();
            let _ = parallel_sort(&c, data, 1).expect("sort");
            c.counters().delta_since(&before)
        });
        let total_sent: u64 = counters.iter().map(|c| c.bytes_sent).sum();
        let n_bytes = (p * local_n * 16) as u64;
        let ratio = total_sent as f64 / n_bytes as f64;
        assert!(
            (0.5..=1.1).contains(&ratio),
            "expected ~0.75 N communicated, got ratio {ratio:.2}"
        );
    }
}
