//! `demsort-worker` — one rank of a multi-process demsort cluster.
//!
//! ```text
//! demsort-worker --coordinator HOST:PORT
//! demsort-worker --hostfile FILE --rank R --input IN --output OUT
//!                [--mem-mib M] [--block-kib K] [--disks D]
//!                [--cores C] [--seed S] [--comm-timeout MS]
//!                [--algo canonical|striped] [--replication F]
//!                [--trace DIR]
//! ```
//!
//! In **coordinator mode** the worker dials `demsort-launch`'s
//! rendezvous port, reports its mesh listener, and receives its rank,
//! the cluster address table, and the job config over the wire.
//!
//! In **hostfile mode** (multi-host, no coordinator) the worker binds
//! the address at line `R` of the host file, meshes with the other
//! listed ranks, and takes the job config from flags — every rank must
//! be started with identical flags.
//!
//! `--comm-timeout MS` (legacy alias `--timeout-ms`) bounds how long a
//! rank waits on a silent peer before declaring the job dead; a worker
//! whose sort fails exits non-zero after reporting a structured failure
//! to its coordinator (fallible collectives — no `catch_unwind`).

use demsort_bench::procs::{run_rank, run_worker};
use demsort_net::tcp::parse_hostfile;
use demsort_types::{AlgoConfig, JobConfig, MachineConfig, SortAlgo, Tracer};
use std::net::TcpListener;

fn main() {
    let mut coordinator: Option<String> = None;
    let mut hostfile: Option<String> = None;
    let mut rank: Option<usize> = None;
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut mem_mib = 8usize;
    let mut block_kib = 64usize;
    let mut disks = 4usize;
    let mut cores = 1usize;
    let mut seed: Option<u64> = None;
    let mut timeout_ms = 30_000u64;
    let mut algorithm = SortAlgo::Canonical;
    let mut replication = 0usize;
    let mut trace_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |flag: &str| args.next().unwrap_or_else(|| die(&format!("{flag} VALUE")));
        match a.as_str() {
            "--coordinator" => coordinator = Some(next("--coordinator")),
            "--hostfile" => hostfile = Some(next("--hostfile")),
            "--rank" => rank = Some(parse(&next("--rank"), "rank")),
            "--input" => input = Some(next("--input")),
            "--output" => output = Some(next("--output")),
            "--mem-mib" => mem_mib = parse(&next("--mem-mib"), "mem-mib"),
            "--block-kib" => block_kib = parse(&next("--block-kib"), "block-kib"),
            "--disks" => disks = parse(&next("--disks"), "disks"),
            "--cores" => cores = parse(&next("--cores"), "cores"),
            "--seed" => seed = Some(parse(&next("--seed"), "seed")),
            "--comm-timeout" | "--timeout-ms" => timeout_ms = parse(&next(&a), "comm-timeout"),
            "--algo" => {
                algorithm = SortAlgo::parse(&next("--algo")).unwrap_or_else(|e| die(&e.to_string()))
            }
            "--replication" => replication = parse(&next("--replication"), "replication"),
            "--trace" => trace_dir = Some(next("--trace")),
            "--help" | "-h" => {
                println!(
                    "demsort-worker --coordinator HOST:PORT\n\
                     demsort-worker --hostfile FILE --rank R --input IN --output OUT\n\
                     \x20              [--mem-mib M] [--block-kib K] [--disks D]\n\
                     \x20              [--cores C] [--seed S] [--comm-timeout MS]\n\
                     \x20              [--algo canonical|striped] [--replication F]\n\
                     \x20              [--trace DIR]"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }

    let result = match (coordinator, hostfile) {
        (Some(coord), None) => run_worker(&coord),
        (None, Some(path)) => {
            let rank = rank.unwrap_or_else(|| die("--hostfile requires --rank"));
            let input = input.unwrap_or_else(|| die("--hostfile requires --input"));
            let output = output.unwrap_or_else(|| die("--hostfile requires --output"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| die(&format!("read {path}: {e}")));
            let addrs = parse_hostfile(&text).unwrap_or_else(|e| die(&e.to_string()));
            if rank >= addrs.len() {
                die(&format!("--rank {rank} out of range: {path} lists {} hosts", addrs.len()));
            }
            let listener = TcpListener::bind(addrs[rank])
                .unwrap_or_else(|e| die(&format!("bind {}: {e}", addrs[rank])));
            let mut algo = AlgoConfig::default();
            if let Some(s) = seed {
                algo.seed = s;
            }
            algo.replication = replication;
            let job = JobConfig {
                input,
                output,
                machine: MachineConfig {
                    pes: addrs.len(),
                    disks_per_pe: disks,
                    block_bytes: block_kib << 10,
                    mem_bytes_per_pe: mem_mib << 20,
                    cores_per_pe: cores,
                },
                algo,
                algorithm,
                read_timeout_ms: timeout_ms,
                trace_dir: trace_dir.unwrap_or_default(),
            };
            // No coordinator to stream progress to in hostfile mode —
            // journals only.
            let tracer = if job.trace_dir.is_empty() {
                Tracer::off()
            } else {
                let dir = std::path::PathBuf::from(&job.trace_dir);
                std::fs::create_dir_all(&dir)
                    .unwrap_or_else(|e| die(&format!("create trace dir {}: {e}", job.trace_dir)));
                Tracer::to_path(rank, &dir.join(format!("rank{rank}.jsonl")))
                    .unwrap_or_else(|e| die(&e.to_string()))
            };
            run_rank(rank, &addrs, listener, &job, tracer)
        }
        _ => die("exactly one of --coordinator or --hostfile is required (see --help)"),
    };

    match result {
        Ok(rep) => {
            eprintln!(
                "rank {}: {} records in this rank's output, {} runs",
                rep.rank, rep.elems, rep.runs
            );
        }
        Err(e) => {
            eprintln!("demsort-worker: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    demsort_bench::procs::cli_parse("demsort-worker", s, what)
}

fn die(msg: &str) -> ! {
    demsort_bench::procs::cli_die("demsort-worker", msg)
}
