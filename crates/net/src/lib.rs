//! # demsort-net
//!
//! The cluster substrate of the demsort suite: an MPI-flavoured
//! message-passing layer over a **pluggable transport**.
//!
//! The paper ran CANONICALMERGESORT on a 200-node InfiniBand cluster
//! under MVAPICH. Algorithms here are written exactly as SPMD MPI
//! programs (rank/size, point-to-point, barriers, reductions,
//! allgather, alltoallv) against one facade, [`Communicator`], which
//! meters all remote traffic for the cost model and builds every
//! collective from the [`Transport`] contract — point-to-point byte
//! frames with per-source FIFO ordering. Two transports implement it:
//!
//! * [`LocalTransport`] — the in-process channel mesh: each PE is an
//!   OS thread, each PE pair a dedicated FIFO channel. This plays the
//!   role MVAPICH's shared-memory device plays on one node: delivery
//!   is a pointer move, and the whole cluster lives in one address
//!   space (which also lets remote block reads short-circuit to
//!   direct memory access).
//! * [`TcpTransport`](tcp::TcpTransport) — the multi-process mesh:
//!   each PE is an OS process, each PE pair one TCP connection carrying
//!   length-prefixed frames, with a rank handshake at connect time, a
//!   full `P × P` mesh bootstrapped from a rendezvous host file or a
//!   coordinator, buffered writers flushed at collective boundaries,
//!   and per-socket timeouts so dead peers surface as errors. This
//!   plays the role of MVAPICH's network device on the paper's
//!   cluster; remote block reads (selection probes, striped-sequence
//!   reconstruction) ride the out-of-band **block service**
//!   ([`tcp::TcpTransport::fetch_blocks`]) — batched, pipelined,
//!   id-matched request/reply frames served by the owner's reader
//!   thread, the moral equivalent of the RDMA gets the paper assumes.
//!
//! Because metering happens in the facade, the message/byte counters of
//! a job are **identical across transports** — the in-process cluster
//! predicts exactly what the wire cluster will send.
//!
//! * [`Communicator`] — one PE's endpoint with collectives.
//! * [`Transport`] / [`LocalTransport`] / [`tcp::TcpTransport`] — the
//!   transport layer.
//! * [`run_cluster`] — spawn P PE threads and run an SPMD closure
//!   (in-process transport); [`run_cluster_tcp`] — the same over a
//!   loopback TCP mesh (full wire path, one process).
//! * [`chunked_alltoallv`] — the paper's reimplementation of
//!   `MPI_Alltoallv` lifting the 2 GiB (`i32`) volume limit.

pub mod chunked;
pub mod cluster;
pub mod comm;
pub mod tcp;
pub mod transport;

pub use chunked::{chunked_alltoallv, MPI_VOLUME_LIMIT};
pub use cluster::{build_mesh, run_cluster, run_cluster_over, run_cluster_tcp};
pub use comm::{decode_u64s, decode_u64s_into, encode_u64s, encode_u64s_into, Communicator};
pub use transport::{LocalTransport, SubTransport, Transport};
