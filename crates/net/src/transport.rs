//! The pluggable cluster transport: point-to-point byte frames with
//! per-source FIFO ordering.
//!
//! [`Communicator`](crate::Communicator) builds every MPI-style
//! collective from this interface, so swapping the transport swaps the
//! *cluster substrate* under every algorithm unchanged:
//!
//! * [`LocalTransport`] — the original in-process channel mesh (one PE
//!   per thread). This is the MVAPICH-over-shared-memory analogue: zero
//!   copies cross the kernel, a "send" is a channel push.
//! * [`TcpTransport`](crate::tcp::TcpTransport) — one PE per OS
//!   process, a full `P × P` socket mesh over TCP. This is the paper's
//!   actual deployment shape (200 nodes, MVAPICH over InfiniBand), with
//!   TCP standing in for the interconnect.
//!
//! The contract mirrors what the algorithms assume of MPI:
//!
//! 1. **Per-source FIFO**: two frames sent from the same rank to the
//!    same destination are received in send order. No ordering is
//!    promised across sources.
//! 2. **Non-blocking send**: `send` may buffer; it never waits for the
//!    receiver (unbounded buffering, like the channel mesh).
//! 3. **Self-delivery**: `send(rank, ..)` loops back through the same
//!    FIFO (a real MPI does a memcpy).
//! 4. **Failure is an `Err`, not a hang**: a disappeared peer must
//!    surface as [`Error::Comm`](demsort_types::Error) from `recv`
//!    within the transport's timeout.

use crossbeam::channel::{unbounded, Receiver, Sender};
use demsort_types::{Error, Result};

/// Point-to-point byte-frame transport between `size` ranks.
///
/// Implementations must be `Send` (a rank's endpoint moves into its PE
/// thread/process) but need not be `Sync` — like an MPI rank, an
/// endpoint belongs to one execution context.
pub trait Transport: Send {
    /// This endpoint's rank (`0..size`).
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster.
    fn size(&self) -> usize;

    /// Queue `frame` for delivery to `to` (non-blocking).
    fn send(&self, to: usize, frame: Vec<u8>) -> Result<()>;

    /// Queue a borrowed frame for delivery to `to`.
    ///
    /// Transports that serialize onto a wire (TCP) copy straight into
    /// their buffered writer — no intermediate `Vec` per message. The
    /// default falls back to an owned copy for transports that hand
    /// frames across threads.
    fn send_bytes(&self, to: usize, frame: &[u8]) -> Result<()> {
        self.send(to, frame.to_vec())
    }

    /// Queue one frame assembled from `parts` (gather-write).
    ///
    /// The frame delivered to `to` is the concatenation of the parts —
    /// receivers cannot tell it from a contiguous [`send`](Self::send).
    /// Wire transports (TCP) override this with a vectored write so a
    /// header-plus-payload frame never gets glued into an intermediate
    /// buffer; the default concatenates for in-process transports that
    /// hand an owned `Vec` across threads.
    fn send_vectored(&self, to: usize, parts: &[&[u8]]) -> Result<()> {
        let mut frame = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            frame.extend_from_slice(p);
        }
        self.send(to, frame)
    }

    /// Receive the next frame from `from` (blocking, FIFO per source).
    ///
    /// Returns [`Error::Comm`](demsort_types::Error) if the peer
    /// disconnects or the transport's receive timeout elapses — never
    /// hangs forever on a dead peer.
    fn recv(&self, from: usize) -> Result<Vec<u8>>;

    /// Push buffered sends onto the wire.
    ///
    /// Buffering transports (TCP) may hold small frames back for
    /// batching; [`Communicator`](crate::Communicator) flushes before
    /// every blocking receive — the collective-boundary flush points —
    /// so no peer ever waits on bytes parked in a local buffer. In-
    /// process transports deliver eagerly and make this a no-op.
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// `dead[j]` is `true` once the transport has observed rank `j`'s
    /// connection as gone for good (socket closed, process exited).
    /// Recovery uses this as the failure-detector snapshot. The
    /// default — for transports without a failure detector — reports
    /// every peer alive.
    fn dead_peers(&self) -> Vec<bool> {
        vec![false; self.size()]
    }

    /// Push an **epoch marker** through this rank's FIFO to every live
    /// peer (and to itself): a deterministic cut point separating
    /// traffic of the doomed sort from traffic of the recovery attempt
    /// that follows. Survivors call [`Transport::drain_to_epoch`] to
    /// discard everything queued before the marker, so a stale
    /// collective frame can never be mistaken for a recovery frame.
    /// No-op by default (in-process transports tear the whole mesh
    /// down instead of recovering).
    fn advance_epoch(&self, epoch: u64) -> Result<()> {
        let _ = epoch;
        Ok(())
    }

    /// Discard every data frame queued from `from` until the epoch
    /// watermark of that source reaches `epoch` (markers pushed by
    /// [`Transport::advance_epoch`]). No-op by default.
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) if the marker does not
    /// arrive within the transport's read timeout.
    fn drain_to_epoch(&self, from: usize, epoch: u64) -> Result<()> {
        let _ = (from, epoch);
        Ok(())
    }
}

/// A renumbered view of a subset of another transport's ranks: member
/// `i` of `members` appears as rank `i` of a `members.len()`-rank
/// cluster. This is `MPI_Comm_create` for the survivor group — after a
/// rank dies, the survivors build a `SubTransport` over the same
/// socket mesh (connections to live peers stay up; nothing re-dials)
/// and run the recovery sort as a dense, contiguous cluster.
///
/// The wrapper only renumbers; FIFO order, buffering, and failure
/// semantics are the inner transport's. Frames from non-member ranks
/// simply sit unread in the inner per-source queues.
pub struct SubTransport<T: Transport> {
    inner: T,
    /// `members[i]` = global rank appearing as sub-rank `i` (strictly
    /// increasing, so survivor order is deterministic on every rank).
    members: Vec<usize>,
    /// This endpoint's position in `members`.
    sub_rank: usize,
}

impl<T: Transport> SubTransport<T> {
    /// Wrap `inner` as member `members[i] == inner.rank()` of the
    /// subgroup.
    ///
    /// # Errors
    /// [`Error::Config`] if `members` is empty, not strictly
    /// increasing, out of range, or does not contain `inner.rank()`.
    pub fn new(inner: T, members: Vec<usize>) -> Result<Self> {
        if members.is_empty() {
            return Err(Error::config("subgroup needs at least one member"));
        }
        if !members.windows(2).all(|w| w[0] < w[1]) {
            return Err(Error::config(format!(
                "subgroup members must be strictly increasing, got {members:?}"
            )));
        }
        if *members.last().expect("non-empty") >= inner.size() {
            return Err(Error::config(format!(
                "subgroup member {} out of range for {} ranks",
                members.last().expect("non-empty"),
                inner.size()
            )));
        }
        let sub_rank = members.iter().position(|&g| g == inner.rank()).ok_or_else(|| {
            Error::config(format!("rank {} is not a member of subgroup {members:?}", inner.rank()))
        })?;
        Ok(Self { inner, members, sub_rank })
    }

    /// The global rank behind sub-rank `i`.
    pub fn global_of(&self, i: usize) -> usize {
        self.members[i]
    }

    /// The member list (strictly increasing global ranks).
    pub fn members(&self) -> &[usize] {
        &self.members
    }
}

impl<T: Transport> Transport for SubTransport<T> {
    fn rank(&self) -> usize {
        self.sub_rank
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn send(&self, to: usize, frame: Vec<u8>) -> Result<()> {
        self.inner.send(self.members[to], frame)
    }

    fn send_bytes(&self, to: usize, frame: &[u8]) -> Result<()> {
        self.inner.send_bytes(self.members[to], frame)
    }

    fn send_vectored(&self, to: usize, parts: &[&[u8]]) -> Result<()> {
        self.inner.send_vectored(self.members[to], parts)
    }

    fn recv(&self, from: usize) -> Result<Vec<u8>> {
        self.inner.recv(self.members[from])
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn dead_peers(&self) -> Vec<bool> {
        let global = self.inner.dead_peers();
        self.members.iter().map(|&g| global[g]).collect()
    }

    fn advance_epoch(&self, epoch: u64) -> Result<()> {
        self.inner.advance_epoch(epoch)
    }

    fn drain_to_epoch(&self, from: usize, epoch: u64) -> Result<()> {
        self.inner.drain_to_epoch(self.members[from], epoch)
    }
}

/// The in-process channel mesh: each rank pair has a dedicated
/// unbounded FIFO channel, each rank one endpoint.
pub struct LocalTransport {
    rank: usize,
    size: usize,
    /// `out[j]` feeds rank `j`'s inbox slot for this rank.
    out: Vec<Sender<Vec<u8>>>,
    /// `inbox[i]` receives what rank `i` sent us.
    inbox: Vec<Receiver<Vec<u8>>>,
    /// Receive timeout: `None` blocks until the sender's endpoint
    /// drops (the default — an in-process peer cannot be silently
    /// dead), `Some(t)` turns a peer silent for `t` into
    /// [`Error::Comm`], mirroring the TCP transport's read timeout.
    /// Failure-injection tests need this: a live survivor that bailed
    /// out of a collective mid-round never closes its channels.
    timeout: Option<std::time::Duration>,
}

impl LocalTransport {
    /// Build the full `p × p` mesh and return one endpoint per rank.
    pub fn mesh(p: usize) -> Vec<LocalTransport> {
        assert!(p > 0, "cluster needs at least one rank");
        // senders[src][dst] / inboxes[dst][src]
        let mut senders: Vec<Vec<Sender<Vec<u8>>>> =
            (0..p).map(|_| Vec::with_capacity(p)).collect();
        let mut inboxes: Vec<Vec<Receiver<Vec<u8>>>> =
            (0..p).map(|_| Vec::with_capacity(p)).collect();
        for dst_inbox in inboxes.iter_mut() {
            for sender in senders.iter_mut() {
                let (tx, rx) = unbounded::<Vec<u8>>();
                sender.push(tx);
                dst_inbox.push(rx);
            }
        }
        senders
            .into_iter()
            .zip(inboxes)
            .enumerate()
            .map(|(rank, (out, inbox))| LocalTransport { rank, size: p, out, inbox, timeout: None })
            .collect()
    }

    /// [`mesh`](Self::mesh) with a receive timeout on every endpoint:
    /// a peer silent for `timeout` surfaces as
    /// [`Error::Comm`](demsort_types::Error) instead of blocking
    /// forever. Used by failure-injection tests, where a surviving
    /// rank can abandon a collective mid-round while its endpoint (and
    /// hence its channels) stays alive.
    pub fn mesh_with_timeout(p: usize, timeout: std::time::Duration) -> Vec<LocalTransport> {
        let mut mesh = Self::mesh(p);
        for t in &mut mesh {
            t.timeout = Some(timeout);
        }
        mesh
    }
}

impl Transport for LocalTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, frame: Vec<u8>) -> Result<()> {
        self.out[to]
            .send(frame)
            .map_err(|_| Error::comm(format!("send to rank {to}: peer hung up (channel closed)")))
    }

    fn recv(&self, from: usize) -> Result<Vec<u8>> {
        match self.timeout {
            None => self.inbox[from].recv().map_err(|_| {
                Error::comm(format!("recv from rank {from}: peer hung up (channel closed)"))
            }),
            Some(t) => self.inbox[from].recv_timeout(t).map_err(|_| {
                Error::comm(format!("recv from rank {from}: peer hung up or silent past {t:?}"))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_shapes() {
        let mesh = LocalTransport::mesh(3);
        assert_eq!(mesh.len(), 3);
        for (i, t) in mesh.iter().enumerate() {
            assert_eq!(t.rank(), i);
            assert_eq!(t.size(), 3);
        }
    }

    #[test]
    fn per_source_fifo_and_self_delivery() {
        let mut mesh = LocalTransport::mesh(2);
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        t0.send(1, vec![1]).expect("send");
        t0.send_bytes(1, &[2]).expect("send");
        t0.send(0, vec![9]).expect("self send");
        assert_eq!(t1.recv(0).expect("recv"), vec![1]);
        assert_eq!(t1.recv(0).expect("recv"), vec![2]);
        assert_eq!(t0.recv(0).expect("self recv"), vec![9]);
    }

    #[test]
    fn send_vectored_concatenates_parts() {
        let mut mesh = LocalTransport::mesh(2);
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        t0.send_vectored(1, &[&[1, 2], &[], &[3]]).expect("send");
        t0.send(1, vec![1, 2, 3]).expect("send");
        assert_eq!(t1.recv(0).expect("recv"), vec![1, 2, 3]);
        assert_eq!(t1.recv(0).expect("recv"), vec![1, 2, 3], "indistinguishable from send");
    }

    #[test]
    fn dead_peer_is_an_error_not_a_hang() {
        let mut mesh = LocalTransport::mesh(2);
        let t1 = mesh.pop().expect("rank 1");
        let t0 = mesh.pop().expect("rank 0");
        drop(t1);
        let err = t0.recv(1).expect_err("peer gone");
        assert!(matches!(err, Error::Comm(_)), "{err}");
    }

    #[test]
    fn sub_transport_renumbers_a_survivor_group() {
        // Global cluster {0,1,2,3}; rank 2 "died" — survivors {0,1,3}
        // renumber as a dense 3-rank cluster.
        let mesh = LocalTransport::mesh(4);
        let mut subs: Vec<SubTransport<LocalTransport>> = mesh
            .into_iter()
            .enumerate()
            .filter(|(g, _)| *g != 2)
            .map(|(_, t)| SubTransport::new(t, vec![0, 1, 3]).expect("member"))
            .collect();
        let s3 = subs.pop().expect("sub 2");
        let s1 = subs.pop().expect("sub 1");
        let s0 = subs.pop().expect("sub 0");
        assert_eq!((s0.rank(), s0.size()), (0, 3));
        assert_eq!((s3.rank(), s3.size()), (2, 3));
        assert_eq!(s3.global_of(2), 3);
        assert_eq!(s0.members(), &[0, 1, 3]);
        // Sub-rank routing: sub 2 (global 3) sends to sub 1 (global 1).
        s3.send(1, vec![42]).expect("send");
        assert_eq!(s1.recv(2).expect("recv"), vec![42]);
        // Self-delivery still loops back.
        s0.send(0, vec![7]).expect("self send");
        assert_eq!(s0.recv(0).expect("self recv"), vec![7]);
    }

    #[test]
    fn sub_transport_rejects_bad_member_lists() {
        let err = |members: Vec<usize>| {
            let mesh = LocalTransport::mesh(4);
            let t0 = mesh.into_iter().next().expect("rank 0");
            match SubTransport::new(t0, members) {
                Ok(_) => panic!("must reject"),
                Err(e) => e,
            }
        };
        assert!(matches!(err(vec![]), Error::Config(_)));
        assert!(matches!(err(vec![0, 0, 1]), Error::Config(m) if m.contains("increasing")));
        assert!(matches!(err(vec![0, 9]), Error::Config(m) if m.contains("out of range")));
        assert!(matches!(err(vec![1, 3]), Error::Config(m) if m.contains("not a member")));
    }

    #[test]
    fn default_failure_hooks_are_benign() {
        let mesh = LocalTransport::mesh(2);
        assert_eq!(mesh[0].dead_peers(), vec![false, false]);
        mesh[0].advance_epoch(1).expect("no-op epoch");
        mesh[0].drain_to_epoch(1, 1).expect("no-op drain");
    }
}
