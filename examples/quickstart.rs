//! Quickstart: sort data on a simulated cluster and walk through the
//! four phases of CANONICALMERGESORT (Figure 1 of the paper).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use demsort::prelude::*;
use demsort::types::fmtsize::{fmt_bytes, fmt_secs};

fn main() {
    // A small simulated cluster: 8 PEs, 4 disks each, 4 KiB blocks,
    // 512 KiB of "RAM" per PE — every ratio of a real deployment, at
    // demo scale.
    let machine = MachineConfig {
        pes: 8,
        disks_per_pe: 4,
        block_bytes: 4 << 10,
        mem_bytes_per_pe: (4 << 10) * 128,
        cores_per_pe: 2,
    };
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid config");

    // Each PE contributes 200k uniformly random 16-byte elements
    // (≈ 3 MiB), several times its memory — a genuinely external sort.
    let local_n = 200_000usize;
    println!(
        "sorting {} across {} PEs ({} per PE, memory {} per PE)...\n",
        fmt_bytes((cfg.machine.pes * local_n * Element16::BYTES) as u64),
        cfg.machine.pes,
        fmt_bytes((local_n * Element16::BYTES) as u64),
        fmt_bytes(cfg.machine.mem_bytes_per_pe as u64),
    );
    let outcome = demsort::core::canonical::sort_cluster::<Element16, _>(&cfg, |pe, p| {
        demsort::workloads::generate_pe_input(InputSpec::Uniform, 7, pe, p, local_n)
    })
    .expect("sort");

    // Figure 1's stages, as they actually ran:
    let o = &outcome.per_pe[0];
    println!("phase 1  run formation: {} global runs, each sorted across all PEs", o.runs);
    println!(
        "phase 2a multiway selection: exact rank boundaries, {} probes on PE 0 ({} block fetches, {} cache hits)",
        o.selection.probes(),
        o.selection.blocks_local + o.selection.blocks_remote,
        o.selection.cache_hits,
    );
    println!(
        "phase 2b external all-to-all: {} suboperation(s), data received from {} PEs",
        o.alltoall_subops, o.sources_seen,
    );
    println!("phase 3  final merge: {}-way loser-tree merge into the canonical output\n", o.runs);

    // Per-phase measured traffic.
    println!("measured volumes (all PEs):");
    for phase in Phase::ALL {
        let io = outcome.report.phase_total(phase, |s| s.io.bytes_total());
        let net = outcome.report.phase_total(phase, |s| s.comm.bytes_sent);
        println!(
            "  {:<20} I/O {:>12}   network {:>12}",
            phase.name(),
            fmt_bytes(io),
            fmt_bytes(net)
        );
    }
    println!(
        "\ntotal I/O = {:.2} N (two passes ≈ 4 N), communication = {:.2} N\n",
        outcome.report.io_volume_over_n(),
        outcome.report.comm_volume_over_n(),
    );

    // Validate collectively: sorted locally, ordered across PEs, and a
    // permutation of the input.
    let input_fp = {
        let mut f = Fingerprint::default();
        for pe in 0..cfg.machine.pes {
            for r in demsort::workloads::generate_pe_input(
                InputSpec::Uniform,
                7,
                pe,
                cfg.machine.pes,
                local_n,
            ) {
                f.add(&r);
            }
        }
        f
    };
    let storage = &outcome.storage;
    let outputs: Vec<_> = outcome.per_pe.iter().map(|o| o.output.clone()).collect();
    let outputs = &outputs;
    let reports = demsort::net::run_cluster(cfg.machine.pes, move |c| {
        validate_output::<Element16>(&c, storage.pe(c.rank()), &outputs[c.rank()])
            .expect("validation")
    });
    assert!(reports[0].is_valid_sort_of(input_fp), "output must be a valid sort");
    println!("validation: sorted ✓  boundaries ✓  permutation ✓");

    // What this run would cost on the paper's 200-node cluster.
    let model = CostModel::paper();
    println!(
        "\nmodeled on the paper's hardware (no scaling): {}",
        fmt_secs((model.total_wall_s(&outcome.report) * 1e9) as u64)
    );
}
