//! Wire codec for cluster control messages.
//!
//! The multi-process runtime (`demsort-launch` / `demsort-worker`)
//! ships job configuration to workers and collects per-rank reports
//! back over the coordinator connection. This module is the shared
//! vocabulary for that control plane: a tiny, dependency-free
//! little-endian codec plus encode/decode for the config and counter
//! types. Payloads are versioned by the launcher protocol, not here —
//! the codec is strictly structural.

use crate::config::{AlgoConfig, JobConfig, MachineConfig};
use crate::counters::{CommCounters, CpuCounters, IoCounters, Phase, PhaseStats};
use crate::error::{Error, Result};

/// Append-only encoder over a byte buffer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Start with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, x: u8) -> &mut Self {
        self.buf.push(x);
        self
    }

    pub fn u32(&mut self, x: u32) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    pub fn u64(&mut self, x: u64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    pub fn bool(&mut self, x: bool) -> &mut Self {
        self.u8(x as u8)
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
        self
    }
}

/// Cursor-based decoder over a byte slice. Every read is
/// bounds-checked and returns [`Error::Comm`] on truncation — a
/// malformed control frame must never panic a worker.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::comm(format!(
                "truncated control frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    pub fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).map_err(|_| Error::comm("control frame string is not UTF-8"))
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

// -------------------------------------------------------------------
// Config codecs
// -------------------------------------------------------------------

/// Encode a [`MachineConfig`].
pub fn encode_machine(w: &mut WireWriter, m: &MachineConfig) {
    w.u64(m.pes as u64)
        .u64(m.disks_per_pe as u64)
        .u64(m.block_bytes as u64)
        .u64(m.mem_bytes_per_pe as u64)
        .u64(m.cores_per_pe as u64);
}

/// Decode a [`MachineConfig`].
pub fn decode_machine(r: &mut WireReader<'_>) -> Result<MachineConfig> {
    Ok(MachineConfig {
        pes: r.u64()? as usize,
        disks_per_pe: r.u64()? as usize,
        block_bytes: r.u64()? as usize,
        mem_bytes_per_pe: r.u64()? as usize,
        cores_per_pe: r.u64()? as usize,
    })
}

/// Encode an [`AlgoConfig`].
pub fn encode_algo(w: &mut WireWriter, a: &AlgoConfig) {
    w.bool(a.randomize)
        .u64(a.sample_every as u64)
        .u64(a.selection_cache_blocks as u64)
        .bool(a.overlap)
        .u64(a.seed)
        .f64(a.alltoall_mem_fraction);
}

/// Decode an [`AlgoConfig`].
pub fn decode_algo(r: &mut WireReader<'_>) -> Result<AlgoConfig> {
    Ok(AlgoConfig {
        randomize: r.bool()?,
        sample_every: r.u64()? as usize,
        selection_cache_blocks: r.u64()? as usize,
        overlap: r.bool()?,
        seed: r.u64()?,
        alltoall_mem_fraction: r.f64()?,
    })
}

/// Encode a [`JobConfig`].
pub fn encode_job(job: &JobConfig) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.string(&job.input).string(&job.output);
    encode_machine(&mut w, &job.machine);
    encode_algo(&mut w, &job.algo);
    w.u64(job.read_timeout_ms);
    w.finish()
}

/// Decode a [`JobConfig`].
pub fn decode_job(buf: &[u8]) -> Result<JobConfig> {
    let mut r = WireReader::new(buf);
    Ok(JobConfig {
        input: r.string()?,
        output: r.string()?,
        machine: decode_machine(&mut r)?,
        algo: decode_algo(&mut r)?,
        read_timeout_ms: r.u64()?,
    })
}

// -------------------------------------------------------------------
// Counter codecs (worker -> launcher report)
// -------------------------------------------------------------------

fn phase_tag(p: Phase) -> u8 {
    match p {
        Phase::RunFormation => 0,
        Phase::MultiwaySelection => 1,
        Phase::AllToAll => 2,
        Phase::FinalMerge => 3,
    }
}

fn phase_from_tag(t: u8) -> Result<Phase> {
    match t {
        0 => Ok(Phase::RunFormation),
        1 => Ok(Phase::MultiwaySelection),
        2 => Ok(Phase::AllToAll),
        3 => Ok(Phase::FinalMerge),
        _ => Err(Error::comm(format!("unknown phase tag {t}"))),
    }
}

/// Encode one phase's stats.
pub fn encode_phase_stats(w: &mut WireWriter, phase: Phase, s: &PhaseStats) {
    w.u8(phase_tag(phase));
    w.u64(s.io.bytes_read)
        .u64(s.io.bytes_written)
        .u64(s.io.blocks_read)
        .u64(s.io.blocks_written)
        .u64(s.io.max_disk_busy_ns);
    w.u64(s.comm.bytes_sent).u64(s.comm.bytes_recv).u64(s.comm.messages);
    w.u64(s.cpu.elements_sorted)
        .u64(s.cpu.sort_work)
        .u64(s.cpu.elements_merged)
        .u64(s.cpu.merge_work)
        .u64(s.cpu.host_wall_ns);
}

/// Decode one phase's stats.
pub fn decode_phase_stats(r: &mut WireReader<'_>) -> Result<(Phase, PhaseStats)> {
    let phase = phase_from_tag(r.u8()?)?;
    let io = IoCounters {
        bytes_read: r.u64()?,
        bytes_written: r.u64()?,
        blocks_read: r.u64()?,
        blocks_written: r.u64()?,
        max_disk_busy_ns: r.u64()?,
    };
    let comm = CommCounters { bytes_sent: r.u64()?, bytes_recv: r.u64()?, messages: r.u64()? };
    let cpu = CpuCounters {
        elements_sorted: r.u64()?,
        sort_work: r.u64()?,
        elements_merged: r.u64()?,
        merge_work: r.u64()?,
        host_wall_ns: r.u64()?,
    };
    Ok((phase, PhaseStats { io, comm, cpu }))
}

/// One worker's result summary, shipped back to the launcher.
#[derive(Clone, Debug, PartialEq)]
pub struct RankReport {
    /// The reporting rank.
    pub rank: usize,
    /// Elements in this rank's canonical output.
    pub elems: u64,
    /// Number of runs formed (`R`, identical across ranks).
    pub runs: usize,
    /// Per-phase measured counters, in phase order.
    pub phases: Vec<(Phase, PhaseStats)>,
}

/// Encode a [`RankReport`].
pub fn encode_rank_report(rep: &RankReport) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(rep.rank as u64).u64(rep.elems).u64(rep.runs as u64);
    w.u32(rep.phases.len() as u32);
    for (phase, stats) in &rep.phases {
        encode_phase_stats(&mut w, *phase, stats);
    }
    w.finish()
}

/// Decode a [`RankReport`].
pub fn decode_rank_report(buf: &[u8]) -> Result<RankReport> {
    let mut r = WireReader::new(buf);
    let rank = r.u64()? as usize;
    let elems = r.u64()?;
    let runs = r.u64()? as usize;
    let n = r.u32()? as usize;
    let mut phases = Vec::with_capacity(n);
    for _ in 0..n {
        phases.push(decode_phase_stats(&mut r)?);
    }
    Ok(RankReport { rank, elems, runs, phases })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = WireWriter::new();
        w.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).f64(0.5).bool(true).string("héllo").bytes(&[1, 2]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().expect("u8"), 7);
        assert_eq!(r.u32().expect("u32"), 0xDEAD_BEEF);
        assert_eq!(r.u64().expect("u64"), u64::MAX);
        assert_eq!(r.f64().expect("f64"), 0.5);
        assert!(r.bool().expect("bool"));
        assert_eq!(r.string().expect("string"), "héllo");
        assert_eq!(r.bytes().expect("bytes"), vec![1, 2]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.u32(1000); // string length, no body
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.string(), Err(Error::Comm(_))));
        let mut r = WireReader::new(&[1, 2]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn job_config_roundtrip() {
        let job = JobConfig {
            input: "/tmp/in.dat".to_string(),
            output: "/tmp/out.dat".to_string(),
            machine: MachineConfig::tiny(4),
            algo: AlgoConfig { seed: 42, sample_every: 7, ..AlgoConfig::default() },
            read_timeout_ms: 12_345,
        };
        let decoded = decode_job(&encode_job(&job)).expect("decode");
        assert_eq!(decoded.input, job.input);
        assert_eq!(decoded.output, job.output);
        assert_eq!(decoded.machine, job.machine);
        assert_eq!(decoded.algo, job.algo);
        assert_eq!(decoded.read_timeout_ms, 12_345);
    }

    #[test]
    fn rank_report_roundtrip() {
        let rep = RankReport {
            rank: 3,
            elems: 999,
            runs: 4,
            phases: vec![
                (
                    Phase::RunFormation,
                    PhaseStats {
                        io: IoCounters { bytes_read: 1, bytes_written: 2, ..Default::default() },
                        comm: CommCounters { bytes_sent: 3, bytes_recv: 4, messages: 5 },
                        cpu: CpuCounters { elements_sorted: 6, ..Default::default() },
                    },
                ),
                (Phase::FinalMerge, PhaseStats::default()),
            ],
        };
        assert_eq!(decode_rank_report(&encode_rank_report(&rep)).expect("decode"), rep);
    }

    #[test]
    fn every_phase_tag_roundtrips() {
        for p in Phase::ALL {
            assert_eq!(phase_from_tag(phase_tag(p)).expect("tag"), p);
        }
        assert!(phase_from_tag(9).is_err());
    }
}
