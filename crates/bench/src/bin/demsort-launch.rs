//! `demsort-launch` — spawn a local multi-process demsort cluster and
//! sort a file (the suite's `mpirun`).
//!
//! ```text
//! demsort-launch [--ranks P] [--mem-mib M] [--block-kib K] [--disks D]
//!                [--seed S] [--comm-timeout MS] [--cores C]
//!                [--worker-bin PATH] INPUT OUTPUT
//! ```
//!
//! Spawns `P` `demsort-worker` processes, rendezvouses them over a
//! loopback coordinator port, distributes the job, and aggregates the
//! per-rank reports. The workers run the identical SPMD code path as
//! `sortfile`'s in-process cluster — same algorithms, same counters —
//! so the two modes are directly comparable.
//!
//! On failure the exit code is non-zero and the error names the failed
//! rank(s): a rank that died without reporting (crash, SIGKILL) leads
//! the message, followed by surviving ranks' structured comm failures.

use demsort_bench::procs::{launch_and_report, TcpJobCli};

fn main() {
    const BIN: &str = "demsort-launch";
    let mut cli = TcpJobCli::default();
    let mut positional: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if cli.try_flag(BIN, &a, &mut args) {
            continue;
        }
        match a.as_str() {
            "--help" | "-h" => {
                println!("demsort-launch [flags] INPUT OUTPUT\n{}", TcpJobCli::FLAG_HELP);
                return;
            }
            other => positional.push(other.to_string()),
        }
    }
    let [input, output] = positional.as_slice() else {
        die("usage: demsort-launch [flags] INPUT OUTPUT (see --help)");
    };

    let job = cli.job(input, output);
    let worker = cli.worker(BIN);
    launch_and_report(BIN, &job, &worker)
}

fn die(msg: &str) -> ! {
    demsort_bench::procs::cli_die("demsort-launch", msg)
}
