//! SortBenchmark-style run (Section VI): 100-byte records with 10-byte
//! keys, generated gensort-style, sorted with CANONICALMERGESORT and
//! validated valsort-style; reports the modeled GraySort rate on the
//! paper's cluster.
//!
//! ```sh
//! cargo run --release --example sortbenchmark [PES] [MIB_PER_PE]
//! ```

use demsort::prelude::*;
use demsort::types::fmtsize::fmt_bytes;

fn main() {
    let mut args = std::env::args().skip(1);
    let pes: usize = args.next().map(|a| a.parse().expect("PES")).unwrap_or(8);
    let mib_per_pe: usize = args.next().map(|a| a.parse().expect("MIB_PER_PE")).unwrap_or(8);

    // Machine shaped like the paper's nodes at 1/8192 volume: 1 KiB
    // blocks standing for 8 MiB, 2 MiB memory standing for 16 GiB.
    let machine = MachineConfig {
        pes,
        disks_per_pe: 4,
        block_bytes: 1 << 10,
        mem_bytes_per_pe: (1 << 10) * 2048,
        cores_per_pe: 1,
    };
    let scale = (8u64 << 20) as f64 / machine.block_bytes as f64;
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid config");

    let local_n = mib_per_pe << 20;
    let local_records = local_n / Record100::BYTES;
    println!(
        "GraySort-style run: {} of 100-byte records on {pes} simulated nodes",
        fmt_bytes((pes * local_records * Record100::BYTES) as u64),
    );

    let seed = 0xC0FF_EE00;
    let outcome = demsort::core::canonical::sort_cluster::<Record100, _>(&cfg, move |pe, _| {
        demsort::workloads::gensort_records(seed, (pe * local_records) as u64, local_records)
    })
    .expect("sort");

    // valsort: stream-validate the output and compare fingerprints.
    let input_fp = {
        let mut f = Fingerprint::default();
        for pe in 0..pes {
            for r in demsort::workloads::gensort_records(
                seed,
                (pe * local_records) as u64,
                local_records,
            ) {
                f.add(&r);
            }
        }
        f
    };
    let storage = &outcome.storage;
    let outputs: Vec<_> = outcome.per_pe.iter().map(|o| o.output.clone()).collect();
    let outputs = &outputs;
    let reports = demsort::net::run_cluster(pes, move |c| {
        validate_output::<Record100>(&c, storage.pe(c.rank()), &outputs[c.rank()])
            .expect("validation")
    });
    assert!(reports[0].is_valid_sort_of(input_fp), "valsort failed");
    println!("valsort: OK ({} records, {} runs)", reports[0].elements, outcome.per_pe[0].runs);

    // Modeled rate on the paper's hardware at paper volume.
    let model = CostModel::paper_scaled(scale);
    let wall = model.total_wall_s(&outcome.report);
    let gb_min = model.throughput_bytes_per_sec(&outcome.report) * 60.0 / 1e9;
    println!(
        "modeled at paper scale (x{scale:.0}): {:.0} s wall, {gb_min:.0} GB/min on {pes} nodes \
         ({:.2} GB/min/node; the 2009 record was 564 GB/min on 195 nodes = 2.89 GB/min/node)",
        wall,
        gb_min / pes as f64,
    );
}
