//! Index construction — the paper's opening motivation: "sorting (or
//! similar computations) can be used to build index data structures."
//!
//! A crawl of (term-hash → document-id) postings arrives unsorted and
//! scattered over the cluster. Sorting it with CANONICALMERGESORT
//! yields, on every PE, a sorted partition of the postings — exactly
//! the layout an inverted index wants — and because the output is
//! *canonical* (PE `i` holds global ranks `⌊i·N/P⌋..`), a tiny
//! directory of partition boundaries makes any term findable in one
//! hop plus a local binary search over block first-keys.
//!
//! ```sh
//! cargo run --release --example build_index
//! ```

use demsort::prelude::*;
use demsort::workloads::splitmix64;

/// A posting: term hash → document id, packed as the paper's 16-byte
/// element (64-bit key, 64-bit payload).
fn posting(term_hash: u64, doc: u64) -> Element16 {
    Element16::new(term_hash, doc)
}

fn main() {
    let pes = 6;
    let postings_per_pe = 120_000usize;
    let machine = MachineConfig {
        pes,
        disks_per_pe: 2,
        block_bytes: 4 << 10,
        mem_bytes_per_pe: (4 << 10) * 128,
        cores_per_pe: 2,
    };
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid config");

    // Each PE crawled a shard: postings with term hashes scattered over
    // the whole key space (a zipf-flavoured term mix: a few hot terms,
    // a long tail).
    println!("building an inverted-index layout from {} postings...", pes * postings_per_pe);
    let outcome = demsort::core::canonical::sort_cluster::<Element16, _>(&cfg, move |pe, _| {
        (0..postings_per_pe as u64)
            .map(|i| {
                let doc = (pe as u64) << 32 | i;
                let r = splitmix64(doc ^ 0xB16_B00B5);
                // 1 in 8 postings goes to one of 1024 hot terms (the
                // branch bit and the term id use disjoint bits of r).
                let term = if r.is_multiple_of(8) {
                    splitmix64((r >> 3) % 1024) // hot head
                } else {
                    splitmix64(r) // long tail
                };
                posting(term, doc)
            })
            .collect()
    })
    .expect("sort");

    // The index directory: each partition's first key (P entries), plus
    // per-partition block first-keys (already collected by the writer).
    let storage = &outcome.storage;
    let mut directory = Vec::with_capacity(pes);
    for (pe, o) in outcome.per_pe.iter().enumerate() {
        let first = o.output.block_first_keys.first().copied();
        directory.push((first, pe));
    }
    println!("directory: {} partitions, block index depth 2 (partition → block → scan)", pes);

    // Look up a hot term: route by directory, then binary-search the
    // partition's block first-keys, then scan one block.
    let term = splitmix64(42); // hot term id 42
    let target_pe = directory
        .iter()
        .rev()
        .find(|(first, _)| first.is_some_and(|f| f <= term))
        .map(|&(_, pe)| pe)
        .unwrap_or(0);
    let o = &outcome.per_pe[target_pe];
    let block = o.output.block_first_keys.partition_point(|&k| k <= term).saturating_sub(1);
    let recs = read_records::<Element16>(storage.pe(target_pe), &o.output.run, o.output.elems)
        .expect("read partition");
    let rpb = (4 << 10) / Element16::BYTES;
    let lo = block * rpb;
    let hi = (lo + rpb).min(recs.len());
    let hits: Vec<u64> =
        recs[lo..hi].iter().filter(|r| r.key == term).map(|r| r.payload).take(5).collect();
    println!(
        "term {term:#018x}: partition {target_pe}, block {block}: {} matching postings in that block (first docs: {hits:?})",
        recs[lo..hi].iter().filter(|r| r.key == term).count(),
    );

    // Index-wide sanity: partitions ordered, postings preserved.
    let total: u64 = outcome.per_pe.iter().map(|o| o.output.elems).sum();
    assert_eq!(total as usize, pes * postings_per_pe);
    println!("index built over {total} postings — partitions ordered and complete");
}
