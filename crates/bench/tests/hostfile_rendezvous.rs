//! Hostfile rendezvous beyond the single-loopback path: three real
//! `demsort-worker --hostfile` processes bind **distinct loopback
//! addresses** (`127.0.0.1`, `127.0.0.2`, `127.0.0.3` — the multi-host
//! deployment shape, with the 127/8 block standing in for separate
//! NICs) and are started in **reverse rank order** with gaps, so high
//! ranks dial peers whose listeners do not exist yet and connections
//! arrive out of order. The mesh bootstrap's retry-dial plus rank
//! handshake must sort it out, and the job must finish valsort-clean.

use demsort_types::{Record as _, Record100};
use demsort_workloads::gensort_records;
use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;

// Big enough that each rank's ~1.2 MiB shard exceeds its 1 MiB of
// memory: the sort is external (R > 1), so multiway selection's remote
// probes cross the multi-address mesh too.
const RECORDS: usize = 36_000;
const RANKS: usize = 3;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demsort-hostfile-{}-{name}", std::process::id()))
}

/// Reserve an ephemeral port on `ip` by binding and immediately
/// releasing it (the worker re-binds moments later; loopback ephemeral
/// ports are effectively private to this test run).
fn reserve_port(ip: &str) -> Option<u16> {
    let l = TcpListener::bind((ip, 0)).ok()?;
    let port = l.local_addr().ok()?.port();
    drop(l);
    Some(port)
}

#[test]
fn multi_address_hostfile_with_out_of_order_worker_starts() {
    // 127.0.0.2/3 are bindable on Linux (the whole 127/8 block is
    // loopback); on platforms where they are not, the multi-address
    // shape cannot be exercised — skip rather than fail.
    let ips = ["127.0.0.1", "127.0.0.2", "127.0.0.3"];
    let mut addrs = Vec::with_capacity(RANKS);
    for ip in ips {
        match reserve_port(ip) {
            Some(port) => addrs.push(format!("{ip}:{port}")),
            None => {
                eprintln!("skipping: cannot bind {ip} on this platform");
                return;
            }
        }
    }

    let input = tmp_path("input.dat");
    let output = tmp_path("output.dat");
    let hostfile = tmp_path("hosts");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&input).expect("create input"));
    let mut buf = vec![0u8; Record100::BYTES];
    for rec in gensort_records(23, 0, RECORDS) {
        rec.encode(&mut buf);
        f.write_all(&buf).expect("write record");
    }
    f.flush().expect("flush");
    drop(f);
    std::fs::write(&hostfile, format!("# demsort hosts\n{}\n", addrs.join("\n")))
        .expect("write hostfile");
    // No pre-sizing here: hostfile mode has no launcher, so the
    // workers themselves create and size the shared output from the
    // job's record count before writing their disjoint ranges.

    // Start workers in REVERSE rank order with gaps: rank 2 dials
    // ranks 0 and 1 long before their listeners exist.
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_demsort-worker"));
    let mut children = Vec::with_capacity(RANKS);
    for rank in (0..RANKS).rev() {
        let child = std::process::Command::new(&worker)
            .args(["--hostfile", &hostfile.to_string_lossy()])
            .args(["--rank", &rank.to_string()])
            .args(["--input", &input.to_string_lossy()])
            .args(["--output", &output.to_string_lossy()])
            .args(["--mem-mib", "1", "--block-kib", "16", "--disks", "2"])
            .args(["--comm-timeout", "30000"])
            .spawn()
            .expect("spawn worker");
        children.push((rank, child));
        std::thread::sleep(std::time::Duration::from_millis(150));
    }
    for (rank, mut child) in children {
        let status = child.wait().expect("wait worker");
        assert!(status.success(), "rank {rank} exited with {status}");
    }

    // valsort: globally sorted permutation of the input.
    let out_bytes = std::fs::read(&output).expect("read output");
    assert_eq!(out_bytes.len(), RECORDS * Record100::BYTES);
    let mut recs = Vec::new();
    Record100::decode_slice(&out_bytes, &mut recs);
    assert!(recs.windows(2).all(|w| w[0].key <= w[1].key), "output must be globally sorted");
    let mut in_recs = Vec::new();
    Record100::decode_slice(&std::fs::read(&input).expect("read input"), &mut in_recs);
    let fp = |rs: &[Record100]| {
        rs.iter().fold(0u64, |acc, r| acc.wrapping_add(demsort_core::validate::hash_record(r)))
    };
    assert_eq!(fp(&recs), fp(&in_recs), "output must be a permutation of the input");

    for p in [&input, &output, &hostfile] {
        let _ = std::fs::remove_file(p);
    }
}
