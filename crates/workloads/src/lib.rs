//! # demsort-workloads
//!
//! Input generators and output validators for the demsort experiments.
//!
//! * [`gen`] — the paper's input classes: uniform random (Figures 2/3),
//!   banded worst case (Figures 4/5/6), plus skew/sorted/duplicate
//!   stress inputs for the baselines and tests.
//! * [`gensort`] — deterministic SortBenchmark-style 100-byte records
//!   (10-byte key), our stand-in for `gensort` (Section VI).
//! * [`validate`] — `valsort`-style checks: sortedness, counts, and an
//!   order-independent permutation checksum.

pub mod gen;
pub mod gensort;
pub mod validate;

pub use gen::{generate_all, generate_pe_input, InputSpec};
pub use gensort::{gensort_record, gensort_records, record_index};
pub use validate::{checksum_elements, checksum_records, Fingerprint, SortednessCheck};

/// SplitMix64: tiny, high-quality 64-bit mixer used for deterministic
/// record synthesis and order-independent checksums.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // consecutive seeds land far apart
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!(a.abs_diff(b) > 1 << 32);
    }
}
