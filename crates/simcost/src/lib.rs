//! # demsort-simcost
//!
//! Hardware cost model: converts the measured per-PE, per-phase
//! counters of a [`demsort_types::SortReport`] into cluster phase times
//! under a hardware profile (the paper's 200-node Xeon/InfiniBand
//! cluster by default). The *measured volumes* are exact — only the
//! conversion to seconds is modeled, so the figure shapes (who wins,
//! phase ratios, crossovers) come from the measurements, not from the
//! constants.

pub mod model;
pub mod profile;

pub use model::{CostModel, PhaseTime};
pub use profile::HardwareProfile;
