//! Asynchronous block I/O engine.
//!
//! One worker thread per simulated disk services a FIFO request queue,
//! exactly like STXXL's disk queues. Callers get [`IoHandle`]s —
//! lightweight futures they can poll or block on — so algorithms
//! naturally overlap computation, communication, and I/O (the
//! "Overlapping" optimization of Section IV-E is just *not waiting
//! immediately*).
//!
//! Timing is accounted, not slept: each operation charges its modeled
//! service time ([`DiskModel`]) to the disk's busy-time counter, which
//! the cost model later reads.

use crate::backend::Backend;
use crate::block::BlockId;
use crate::disk::{DiskModel, DiskStats};
use crossbeam::channel::{unbounded, Sender};
use demsort_types::{BufferPool, IoCounters, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Request {
    Read {
        slot: u64,
        state: Arc<HandleState>,
    },
    Write {
        slot: u64,
        data: Box<[u8]>,
        state: Arc<HandleState>,
    },
    /// Completes once everything queued before it has been serviced;
    /// touches neither the backend nor the counters.
    Fence {
        state: Arc<HandleState>,
    },
    Shutdown,
}

struct HandleState {
    result: Mutex<Option<Result<Box<[u8]>>>>,
    cv: Condvar,
}

impl HandleState {
    fn new() -> Arc<Self> {
        Arc::new(Self { result: Mutex::new(None), cv: Condvar::new() })
    }

    fn complete(&self, r: Result<Box<[u8]>>) {
        let mut guard = self.result.lock();
        *guard = Some(r);
        self.cv.notify_all();
    }
}

/// A pending I/O operation. For reads, resolves to the filled block
/// buffer; for writes, resolves to the written buffer (handed back for
/// reuse).
#[must_use = "an IoHandle must be waited on, or the I/O may be lost"]
pub struct IoHandle {
    state: Arc<HandleState>,
}

impl IoHandle {
    /// Block until the operation completes; returns the buffer.
    pub fn wait(self) -> Result<Box<[u8]>> {
        let mut guard = self.state.result.lock();
        while guard.is_none() {
            // verify: allow(L2, parking_lot Condvar::wait returns unit — not the fallible IoHandle::wait)
            self.state.cv.wait(&mut guard);
        }
        guard.take().expect("completed state present")
    }

    /// `true` once the operation has completed (success or failure).
    pub fn is_done(&self) -> bool {
        self.state.result.lock().is_some()
    }

    /// An already-completed handle (used when data is served from a
    /// cache or buffer without touching the disk).
    pub fn ready(data: Box<[u8]>) -> Self {
        let state = HandleState::new();
        state.complete(Ok(data));
        Self { state }
    }
}

/// Multi-disk asynchronous I/O engine for one PE.
pub struct IoEngine {
    queues: Vec<Sender<Request>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Vec<DiskStats>>,
    block_bytes: usize,
    pool: BufferPool,
}

impl IoEngine {
    /// Spawn one worker per disk over the shared `backend`, with a
    /// default-sized buffer pool (the prefetch+carry minimum of two
    /// buffers per disk plus two spares).
    pub fn new(
        disks: usize,
        block_bytes: usize,
        model: DiskModel,
        backend: Arc<dyn Backend>,
    ) -> Self {
        let pool = BufferPool::new(block_bytes, 2 * disks + 2);
        Self::with_pool(disks, block_bytes, model, backend, pool)
    }

    /// Spawn workers over `backend` drawing read buffers from `pool`.
    ///
    /// The pool's buffer size must equal `block_bytes`; reads pop a
    /// recycled buffer (or allocate on a pool miss) and hand it to the
    /// caller through the [`IoHandle`], so callers that return buffers
    /// via [`BufferPool::put`] make the steady-state read path
    /// allocation-free.
    pub fn with_pool(
        disks: usize,
        block_bytes: usize,
        model: DiskModel,
        backend: Arc<dyn Backend>,
        pool: BufferPool,
    ) -> Self {
        assert!(disks > 0, "need at least one disk");
        assert_eq!(pool.buf_bytes(), block_bytes, "pool buffer size must match block size");
        let stats: Arc<Vec<DiskStats>> =
            Arc::new((0..disks).map(|_| DiskStats::default()).collect());
        let mut queues = Vec::with_capacity(disks);
        let mut workers = Vec::with_capacity(disks);
        for disk in 0..disks {
            let (tx, rx) = unbounded::<Request>();
            queues.push(tx);
            let backend = Arc::clone(&backend);
            let stats = Arc::clone(&stats);
            let model = model.clone();
            let pool = pool.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("demsort-disk-{disk}"))
                    .spawn(move || {
                        while let Ok(req) = rx.recv() {
                            match req {
                                Request::Read { slot, state } => {
                                    // Recycled buffers keep stale bytes;
                                    // the backend fills the whole block
                                    // on success and errors otherwise.
                                    let mut buf = pool.get();
                                    let res = backend.read(disk, slot, &mut buf);
                                    stats[disk].record_read(
                                        block_bytes,
                                        model.service_ns_at(block_bytes, slot),
                                    );
                                    state.complete(res.map(|()| buf));
                                }
                                Request::Write { slot, data, state } => {
                                    let res = backend.write(disk, slot, &data);
                                    stats[disk].record_write(
                                        data.len(),
                                        model.service_ns_at(data.len(), slot),
                                    );
                                    state.complete(res.map(|()| data));
                                }
                                Request::Fence { state } => {
                                    state.complete(Ok(Vec::new().into_boxed_slice()));
                                }
                                Request::Shutdown => break,
                            }
                        }
                    })
                    .expect("spawn disk worker"),
            );
        }
        Self { queues, workers, stats, block_bytes, pool }
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// The block-buffer pool read buffers are drawn from. Callers done
    /// with a buffer return it here ([`BufferPool::put`]) so subsequent
    /// reads reuse it instead of allocating.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.queues.len()
    }

    /// Enqueue an asynchronous read of `id`.
    pub fn read(&self, id: BlockId) -> IoHandle {
        let state = HandleState::new();
        let handle = IoHandle { state: Arc::clone(&state) };
        self.queues[id.disk as usize]
            .send(Request::Read { slot: id.slot as u64, state })
            .expect("disk worker alive");
        handle
    }

    /// Enqueue an asynchronous write of `data` to `id`.
    /// `data.len()` must equal the block size.
    pub fn write(&self, id: BlockId, data: Box<[u8]>) -> IoHandle {
        assert_eq!(data.len(), self.block_bytes, "write must be exactly one block");
        let state = HandleState::new();
        let handle = IoHandle { state: Arc::clone(&state) };
        self.queues[id.disk as usize]
            .send(Request::Write { slot: id.slot as u64, data, state })
            .expect("disk worker alive");
        handle
    }

    /// Synchronous read convenience.
    pub fn read_sync(&self, id: BlockId) -> Result<Box<[u8]>> {
        self.read(id).wait()
    }

    /// Synchronous write convenience.
    pub fn write_sync(&self, id: BlockId, data: Box<[u8]>) -> Result<()> {
        self.write(id, data).wait().map(|_| ())
    }

    /// Wait until all requests enqueued so far have been serviced
    /// (FIFO queues make a per-disk fence sufficient).
    pub fn drain(&self) -> Result<()> {
        let fences: Vec<IoHandle> = self
            .queues
            .iter()
            .map(|q| {
                let state = HandleState::new();
                let handle = IoHandle { state: Arc::clone(&state) };
                q.send(Request::Fence { state }).expect("disk worker alive");
                handle
            })
            .collect();
        for f in fences {
            f.wait()?;
        }
        Ok(())
    }

    /// Aggregate I/O counters for this PE: byte/block totals summed over
    /// disks, busy time of the busiest disk (they run in parallel).
    pub fn counters(&self) -> IoCounters {
        let mut c = IoCounters::default();
        for d in self.stats.iter() {
            let s = d.snapshot();
            c.bytes_read += s.bytes_read;
            c.bytes_written += s.bytes_written;
            c.blocks_read += s.reads;
            c.blocks_written += s.writes;
            c.max_disk_busy_ns = c.max_disk_busy_ns.max(s.busy_ns);
        }
        c
    }

    /// Per-disk snapshots (for imbalance diagnostics, Figure 3).
    pub fn per_disk(&self) -> Vec<crate::disk::DiskStatsSnapshot> {
        self.stats.iter().map(|d| d.snapshot()).collect()
    }
}

impl Drop for IoEngine {
    fn drop(&mut self) {
        for q in &self.queues {
            // verify: allow(L2, shutdown send in Drop — a worker that already exited has an empty queue)
            let _ = q.send(Request::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultInjectingBackend, MemBackend};
    use demsort_types::Error;

    fn engine(disks: usize, block: usize) -> IoEngine {
        IoEngine::new(disks, block, DiskModel::paper(), Arc::new(MemBackend::new(disks)))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let e = engine(2, 32);
        let id = BlockId::new(1, 4);
        let mut data = vec![0u8; 32].into_boxed_slice();
        data.iter_mut().enumerate().for_each(|(i, b)| *b = i as u8);
        e.write_sync(id, data.clone()).expect("write");
        let back = e.read_sync(id).expect("read");
        assert_eq!(&back[..], &data[..]);
    }

    #[test]
    fn many_concurrent_ops_complete() {
        let e = engine(4, 64);
        let writes: Vec<IoHandle> = (0..200u32)
            .map(|i| {
                let id = BlockId::new(i % 4, i / 4);
                let buf = vec![(i % 251) as u8; 64].into_boxed_slice();
                e.write(id, buf)
            })
            .collect();
        for w in writes {
            w.wait().expect("write ok");
        }
        let reads: Vec<(u32, IoHandle)> =
            (0..200u32).map(|i| (i, e.read(BlockId::new(i % 4, i / 4)))).collect();
        for (i, r) in reads {
            let buf = r.wait().expect("read ok");
            assert!(buf.iter().all(|&b| b == (i % 251) as u8));
        }
    }

    #[test]
    fn counters_track_traffic() {
        let e = engine(2, 128);
        for i in 0..10 {
            e.write_sync(BlockId::new(i % 2, i), vec![0u8; 128].into_boxed_slice()).expect("write");
        }
        for i in 0..10 {
            e.read_sync(BlockId::new(i % 2, i)).expect("read");
        }
        let c = e.counters();
        assert_eq!(c.bytes_written, 10 * 128);
        assert_eq!(c.bytes_read, 10 * 128);
        assert_eq!(c.blocks_read, 10);
        assert!(c.max_disk_busy_ns > 0);
    }

    #[test]
    fn errors_propagate_through_handles() {
        let backend = FaultInjectingBackend::new(MemBackend::new(1), 0);
        let e = IoEngine::new(1, 16, DiskModel::paper(), Arc::new(backend));
        let res = e.write_sync(BlockId::new(0, 0), vec![0u8; 16].into_boxed_slice());
        assert!(matches!(res, Err(Error::Io(_))));
        // engine still usable afterwards
        e.write_sync(BlockId::new(0, 0), vec![1u8; 16].into_boxed_slice()).expect("recovers");
    }

    #[test]
    fn read_of_unwritten_block_is_error_not_panic() {
        let e = engine(1, 16);
        assert!(e.read_sync(BlockId::new(0, 7)).is_err());
    }

    #[test]
    fn drain_waits_for_all() {
        let e = engine(3, 256);
        let mut handles = Vec::new();
        for i in 0..60u32 {
            handles.push(e.write(BlockId::new(i % 3, i / 3), vec![7u8; 256].into_boxed_slice()));
        }
        e.drain().expect("drain");
        for h in handles {
            assert!(h.is_done(), "drain must imply completion of prior requests");
            h.wait().expect("completed ok");
        }
    }

    #[test]
    fn ready_handle_completes_immediately() {
        let h = IoHandle::ready(vec![3u8; 4].into_boxed_slice());
        assert!(h.is_done());
        assert_eq!(&h.wait().expect("ready")[..], &[3, 3, 3, 3]);
    }

    #[test]
    fn read_buffers_recycle_through_the_pool() {
        let e = engine(1, 32);
        e.write_sync(BlockId::new(0, 0), vec![9u8; 32].into_boxed_slice()).expect("write");
        let first = e.read_sync(BlockId::new(0, 0)).expect("read");
        let misses_after_first = e.pool().counters().misses;
        e.pool().put(first);
        let second = e.read_sync(BlockId::new(0, 0)).expect("read");
        assert_eq!(&second[..], &[9u8; 32][..]);
        let c = e.pool().counters();
        assert_eq!(c.misses, misses_after_first, "second read must reuse the returned buffer");
        assert!(c.hits >= 1);
    }

    #[test]
    #[should_panic(expected = "exactly one block")]
    fn wrong_size_write_panics() {
        let e = engine(1, 64);
        let _ = e.write(BlockId::new(0, 0), vec![0u8; 32].into_boxed_slice());
    }
}
