//! MPI-style communicator over in-process channels.
//!
//! Each pair of PEs owns a dedicated FIFO channel, so `recv(from)` has
//! MPI's per-source ordering semantics. All collectives (barrier,
//! broadcast, gather, allgather, reductions, alltoallv) are built from
//! point-to-point sends exactly as an MPI implementation would, and all
//! remote traffic is metered into [`CommCounters`] — the communication
//! volumes reported in the paper's analysis (Section IV-D) are read off
//! these counters.
//!
//! Self-messages short-circuit (a real MPI does a memcpy); they are not
//! counted as network traffic.

use crossbeam::channel::{Receiver, Sender};
use demsort_types::CommCounters;
use std::cell::Cell;

/// One PE's endpoint of the cluster interconnect.
///
/// Not `Sync`: a communicator belongs to its PE thread, like an MPI
/// rank.
pub struct Communicator {
    rank: usize,
    size: usize,
    /// `out[j]` sends into PE `j`'s inbox slot for us.
    out: Vec<Sender<Vec<u8>>>,
    /// `inbox[i]` receives what PE `i` sent us.
    inbox: Vec<Receiver<Vec<u8>>>,
    bytes_sent: Cell<u64>,
    bytes_recv: Cell<u64>,
    messages: Cell<u64>,
}

impl Communicator {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        out: Vec<Sender<Vec<u8>>>,
        inbox: Vec<Receiver<Vec<u8>>>,
    ) -> Self {
        assert_eq!(out.len(), size);
        assert_eq!(inbox.len(), size);
        Self {
            rank,
            size,
            out,
            inbox,
            bytes_sent: Cell::new(0),
            bytes_recv: Cell::new(0),
            messages: Cell::new(0),
        }
    }

    /// This PE's rank (`0..size`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of PEs.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters so far.
    pub fn counters(&self) -> CommCounters {
        CommCounters {
            bytes_sent: self.bytes_sent.get(),
            bytes_recv: self.bytes_recv.get(),
            messages: self.messages.get(),
        }
    }

    /// Send `msg` to PE `to` (non-blocking; channels are unbounded).
    pub fn send(&self, to: usize, msg: Vec<u8>) {
        if to != self.rank {
            self.bytes_sent.set(self.bytes_sent.get() + msg.len() as u64);
            self.messages.set(self.messages.get() + 1);
        }
        self.out[to].send(msg).expect("peer hung up");
    }

    /// Receive the next message from PE `from` (blocking, FIFO per
    /// source).
    pub fn recv(&self, from: usize) -> Vec<u8> {
        let msg = self.inbox[from].recv().expect("peer hung up");
        if from != self.rank {
            self.bytes_recv.set(self.bytes_recv.get() + msg.len() as u64);
        }
        msg
    }

    // ---------------------------------------------------------------
    // Collectives
    // ---------------------------------------------------------------

    /// Dissemination barrier: `⌈log2 P⌉` rounds.
    pub fn barrier(&self) {
        let mut dist = 1;
        while dist < self.size {
            let to = (self.rank + dist) % self.size;
            let from = (self.rank + self.size - dist) % self.size;
            self.send(to, Vec::new());
            let _ = self.recv(from);
            dist <<= 1;
        }
    }

    /// Broadcast `msg` from `root` to everyone (binomial tree,
    /// `⌈log2 P⌉` depth).
    ///
    /// In the rotated rank space (root = 0) the parent of `v > 0` is
    /// `v` with its lowest set bit cleared, and the children of `v` are
    /// `v + 2^k` for all `2^k` below that bit (all powers of two for
    /// the root).
    pub fn broadcast(&self, root: usize, msg: Vec<u8>) -> Vec<u8> {
        let vrank = (self.rank + self.size - root) % self.size;
        let data = if vrank == 0 {
            msg
        } else {
            let parent_v = vrank & (vrank - 1);
            self.recv((parent_v + root) % self.size)
        };
        let child_bit_limit = if vrank == 0 { self.size } else { vrank & vrank.wrapping_neg() };
        let mut b = 1;
        while b < child_bit_limit {
            let child_v = vrank + b;
            if child_v < self.size {
                self.send((child_v + root) % self.size, data.clone());
            }
            b <<= 1;
        }
        data
    }

    /// Gather everyone's `msg` at `root`; non-roots get an empty vec.
    #[allow(clippy::needless_range_loop)] // rank loop skips self by index
    pub fn gather(&self, root: usize, msg: Vec<u8>) -> Vec<Vec<u8>> {
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size];
            out[root] = msg;
            for i in 0..self.size {
                if i != root {
                    out[i] = self.recv(i);
                }
            }
            out
        } else {
            self.send(root, msg);
            Vec::new()
        }
    }

    /// Allgather: everyone receives everyone's message, indexed by rank.
    pub fn allgather(&self, msg: Vec<u8>) -> Vec<Vec<u8>> {
        // Simple ring: P-1 rounds, each forwarding one original.
        let mut out = vec![Vec::new(); self.size];
        out[self.rank] = msg;
        for round in 1..self.size {
            let to = (self.rank + 1) % self.size;
            let from = (self.rank + self.size - 1) % self.size;
            // forward the message that originated `round-1` hops back
            let orig = (self.rank + self.size - (round - 1)) % self.size;
            self.send(to, out[orig].clone());
            let recv_orig = (self.rank + self.size - round) % self.size;
            out[recv_orig] = self.recv(from);
        }
        out
    }

    /// Allgather of one `u64` per PE.
    pub fn allgather_u64(&self, x: u64) -> Vec<u64> {
        self.allgather(x.to_le_bytes().to_vec())
            .into_iter()
            .map(|v| u64::from_le_bytes(v.try_into().expect("8 bytes")))
            .collect()
    }

    /// Allreduce of a `u64` with an associative, commutative `op`.
    pub fn allreduce_u64(&self, x: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        self.allgather_u64(x).into_iter().reduce(&op).expect("size >= 1")
    }

    /// Sum-allreduce convenience.
    pub fn allreduce_sum(&self, x: u64) -> u64 {
        self.allreduce_u64(x, |a, b| a.wrapping_add(b))
    }

    /// Max-allreduce convenience.
    pub fn allreduce_max(&self, x: u64) -> u64 {
        self.allreduce_u64(x, |a, b| a.max(b))
    }

    /// Logical-and allreduce (for "are we all done?" loops).
    pub fn allreduce_and(&self, x: bool) -> bool {
        self.allreduce_u64(x as u64, |a, b| a & b) == 1
    }

    /// Exclusive prefix sum of `x` over ranks (`rank 0 gets 0`).
    pub fn exscan_sum(&self, x: u64) -> u64 {
        self.allgather_u64(x).iter().take(self.rank).sum()
    }

    /// Personalized all-to-all: `msgs[j]` goes to PE `j`; returns what
    /// each PE sent us, indexed by source rank.
    ///
    /// Sends happen before receives; unbounded channels make this
    /// deadlock-free without MPI's internal buffering concerns.
    #[allow(clippy::needless_range_loop)] // rank loop skips self by index
    pub fn alltoallv(&self, msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(msgs.len(), self.size, "need exactly one message per PE");
        let mut out = vec![Vec::new(); self.size];
        for (j, m) in msgs.into_iter().enumerate() {
            if j == self.rank {
                out[j] = m; // self-delivery without the channel round-trip
            } else {
                self.send(j, m);
            }
        }
        for i in 0..self.size {
            if i != self.rank {
                out[i] = self.recv(i);
            }
        }
        out
    }
}

/// Encode a `u64` slice little-endian.
pub fn encode_u64s(xs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode a little-endian `u64` buffer.
pub fn decode_u64s(buf: &[u8]) -> Vec<u64> {
    assert_eq!(buf.len() % 8, 0, "u64 buffer length must be a multiple of 8");
    buf.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;

    #[test]
    fn u64_codec_roundtrip() {
        let xs = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        assert_eq!(decode_u64s(&encode_u64s(&xs)), xs);
    }

    #[test]
    fn p2p_send_recv() {
        let results = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send(1, vec![1, 2, 3]);
                c.recv(1)
            } else {
                let got = c.recv(0);
                c.send(0, vec![9]);
                got
            }
        });
        assert_eq!(results[0], vec![9]);
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn barrier_all_sizes() {
        for p in 1..=9 {
            run_cluster(p, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in 1..=8 {
            for root in 0..p {
                let results = run_cluster(p, move |c| {
                    let msg = if c.rank() == root { vec![42, root as u8] } else { Vec::new() };
                    c.broadcast(root, msg)
                });
                for r in results {
                    assert_eq!(r, vec![42, root as u8]);
                }
            }
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        for p in 1..=8 {
            let results = run_cluster(p, |c| c.allgather(vec![c.rank() as u8; c.rank() + 1]));
            for r in results {
                for (i, m) in r.iter().enumerate() {
                    assert_eq!(m, &vec![i as u8; i + 1]);
                }
            }
        }
    }

    #[test]
    fn reductions_and_scan() {
        let results = run_cluster(5, |c| {
            let sum = c.allreduce_sum(c.rank() as u64 + 1);
            let max = c.allreduce_max(c.rank() as u64);
            let and_all = c.allreduce_and(true);
            let and_one = c.allreduce_and(c.rank() != 2);
            let ex = c.exscan_sum(c.rank() as u64 + 1);
            (sum, max, and_all, and_one, ex)
        });
        for (rank, (sum, max, and_all, and_one, ex)) in results.into_iter().enumerate() {
            assert_eq!(sum, 15);
            assert_eq!(max, 4);
            assert!(and_all);
            assert!(!and_one);
            assert_eq!(ex, (1..=rank as u64).sum::<u64>());
        }
    }

    #[test]
    fn alltoallv_permutes() {
        let p = 6;
        let results = run_cluster(p, move |c| {
            let msgs: Vec<Vec<u8>> = (0..p).map(|j| vec![c.rank() as u8, j as u8, 7]).collect();
            c.alltoallv(msgs)
        });
        for (me, r) in results.into_iter().enumerate() {
            for (src, m) in r.into_iter().enumerate() {
                assert_eq!(m, vec![src as u8, me as u8, 7]);
            }
        }
    }

    #[test]
    fn counters_meter_remote_traffic_only() {
        let results = run_cluster(2, |c| {
            c.send(c.rank(), vec![0; 100]); // self: free
            let _ = c.recv(c.rank());
            c.send(1 - c.rank(), vec![0; 50]);
            let _ = c.recv(1 - c.rank());
            c.counters()
        });
        for c in results {
            assert_eq!(c.bytes_sent, 50);
            assert_eq!(c.bytes_recv, 50);
            assert_eq!(c.messages, 1);
        }
    }
}
