//! End-to-end CANONICALMERGESORT on the simulated cluster (smoke
//! scale), including the worst-case/randomization matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demsort_bench::{run_canonical, worst_case, ExpScale};
use demsort_types::AlgoConfig;
use demsort_workloads::InputSpec;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let scale = ExpScale::smoke();
    let p = 4;
    let bytes = (scale.data_bytes_per_pe * p) as u64;
    let mut g = c.benchmark_group("canonical_sort");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);

    let cases: Vec<(&str, InputSpec, bool)> = vec![
        ("random", InputSpec::Uniform, true),
        ("worst_rand", worst_case(&scale), true),
        ("worst_nonrand", worst_case(&scale), false),
    ];
    for (name, spec, randomize) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, &spec| {
            b.iter(|| {
                let algo = AlgoConfig { randomize, ..AlgoConfig::default() };
                black_box(run_canonical(&scale, p, spec, algo))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
