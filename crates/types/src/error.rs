//! Error type shared across the suite.

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the demsort crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Invalid configuration (bad parameter combination).
    Config(String),
    /// Storage-layer failure (bad block id, backend I/O error,
    /// out-of-space).
    Io(String),
    /// Communication failure (peer disappeared, protocol violation).
    Comm(String),
    /// Output validation failed (not sorted / not a permutation).
    Validation(String),
}

impl Error {
    /// Construct a [`Error::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }

    /// Construct a [`Error::Io`].
    pub fn io(msg: impl Into<String>) -> Self {
        Error::Io(msg.into())
    }

    /// Construct a [`Error::Comm`].
    pub fn comm(msg: impl Into<String>) -> Self {
        Error::Comm(msg.into())
    }

    /// Construct a [`Error::Validation`].
    pub fn validation(msg: impl Into<String>) -> Self {
        Error::Validation(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Io(m) => write!(f, "storage error: {m}"),
            Error::Comm(m) => write!(f, "communication error: {m}"),
            Error::Validation(m) => write!(f, "validation error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(Error::config("bad P").to_string(), "configuration error: bad P");
        assert_eq!(Error::io("disk 3").to_string(), "storage error: disk 3");
        assert_eq!(Error::comm("peer 1").to_string(), "communication error: peer 1");
        assert_eq!(Error::validation("rank 5").to_string(), "validation error: rank 5");
    }

    #[test]
    fn io_error_converts() {
        let ioe = std::io::Error::other("boom");
        let e: Error = ioe.into();
        assert!(matches!(e, Error::Io(m) if m.contains("boom")));
    }
}
