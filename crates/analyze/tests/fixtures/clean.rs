//! Clean fixture: tricky-but-legal constructs the analyzer must pass.

pub fn hatched(c: &Communicator) {
    // verify: allow(L2, fixture demonstrates the escape hatch)
    let _ = c.barrier();
}

pub fn strings() -> String {
    // Not code: panic!("x") .unwrap() c.barrier();
    let s = r##"panic!("still not code") "# keeps going"##;
    let block = "/* unsafe { } */";
    format!("{s}{block}")
}

/* nested /* block */ comments hide panic!("here") too */

pub fn lifetimes<'a>(x: &'a [u8]) -> &'a [u8] {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_and_panic() {
        Some(1u32).unwrap();
        panic!("fine in tests");
    }
}
