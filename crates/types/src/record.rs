//! Fixed-size sortable records.
//!
//! The storage layer moves raw bytes (like a real disk); algorithms work
//! on typed records. [`Record`] bridges the two with cheap bulk
//! encode/decode. Two concrete record types cover the paper's
//! experiments:
//!
//! * [`Element16`] — 16-byte element with a 64-bit key, used in the
//!   scalability experiments (Figures 2–6): "The element size is (only)
//!   16 bytes with 64-bit keys."
//! * [`Record100`] — the SortBenchmark record: 100 bytes, 10-byte key,
//!   used for the GraySort/MinuteSort runs (Section VI).

/// A totally ordered, fixed-size sort key.
///
/// `MIN_KEY`/`MAX_KEY` act as sentinels for loser trees and for the
/// conceptual "fill up with ∞" padding in multiway selection
/// (Section IV-A of the paper).
pub trait Key: Copy + Ord + Send + Sync + std::fmt::Debug + 'static {
    /// Smallest possible key (−∞ sentinel).
    const MIN_KEY: Self;
    /// Largest possible key (+∞ sentinel).
    const MAX_KEY: Self;

    /// A monotone 64-bit summary of the key: `a <= b` implies
    /// `a.prefix64() <= b.prefix64()`. Used for histograms, band
    /// generation, and diagnostics — never for ordering decisions.
    fn prefix64(&self) -> u64;
}

impl Key for u64 {
    const MIN_KEY: Self = 0;
    const MAX_KEY: Self = u64::MAX;

    #[inline]
    fn prefix64(&self) -> u64 {
        *self
    }
}

impl Key for u32 {
    const MIN_KEY: Self = 0;
    const MAX_KEY: Self = u32::MAX;

    #[inline]
    fn prefix64(&self) -> u64 {
        (*self as u64) << 32
    }
}

/// The SortBenchmark 10-byte key, ordered lexicographically.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key10(pub [u8; 10]);

impl Key for Key10 {
    const MIN_KEY: Self = Key10([0u8; 10]);
    const MAX_KEY: Self = Key10([0xFF; 10]);

    #[inline]
    fn prefix64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8-byte prefix"))
    }
}

impl std::fmt::Debug for Key10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key10(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

/// A fixed-size record that can be sorted by its [`Key`] and moved
/// through the byte-oriented storage and network layers.
///
/// Implementations must guarantee `encode` writes exactly
/// [`Record::BYTES`] bytes and `decode(encode(r)) == r`.
pub trait Record: Copy + Send + Sync + 'static {
    /// The sort key type.
    type Key: Key;

    /// Serialized size in bytes.
    const BYTES: usize;

    /// Extract the sort key.
    fn key(&self) -> Self::Key;

    /// Serialize into `out` (`out.len() == Self::BYTES`).
    fn encode(&self, out: &mut [u8]);

    /// Deserialize from `buf` (`buf.len() == Self::BYTES`).
    fn decode(buf: &[u8]) -> Self;

    /// A record carrying the given key (payload unspecified but
    /// deterministic). Used by tests and splitter exchange.
    fn with_key(key: Self::Key) -> Self;

    /// Bulk-serialize `recs` into `out`
    /// (`out.len() >= recs.len() * Self::BYTES`).
    fn encode_slice(recs: &[Self], out: &mut [u8]) {
        assert!(out.len() >= recs.len() * Self::BYTES, "output buffer too small");
        for (r, chunk) in recs.iter().zip(out.chunks_exact_mut(Self::BYTES)) {
            r.encode(chunk);
        }
    }

    /// Bulk-deserialize `buf` (a whole number of records), appending to
    /// `out`.
    fn decode_slice(buf: &[u8], out: &mut Vec<Self>) {
        debug_assert_eq!(buf.len() % Self::BYTES, 0, "partial record in buffer");
        out.reserve(buf.len() / Self::BYTES);
        for chunk in buf.chunks_exact(Self::BYTES) {
            out.push(Self::decode(chunk));
        }
    }
}

/// The paper's 16-byte element: 64-bit key plus 64-bit payload.
///
/// "The element size is (only) 16 bytes with 64-bit keys. This makes
/// internal computation efficiency as important as high I/O throughput."
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Element16 {
    /// 64-bit sort key.
    pub key: u64,
    /// Opaque payload; carries provenance in tests (e.g. original index)
    /// so permutation checks can detect duplication or loss.
    pub payload: u64,
}

impl Element16 {
    /// Construct from key and payload.
    #[inline]
    pub const fn new(key: u64, payload: u64) -> Self {
        Self { key, payload }
    }
}

impl PartialOrd for Element16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order by key, tie-broken by payload so tests can demand a
/// unique sorted sequence.
impl Ord for Element16 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.payload).cmp(&(other.key, other.payload))
    }
}

impl Record for Element16 {
    type Key = u64;
    const BYTES: usize = 16;

    #[inline]
    fn key(&self) -> u64 {
        self.key
    }

    #[inline]
    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..16].copy_from_slice(&self.payload.to_le_bytes());
    }

    #[inline]
    fn decode(buf: &[u8]) -> Self {
        Self {
            key: u64::from_le_bytes(buf[..8].try_into().expect("8 bytes")),
            payload: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        }
    }

    #[inline]
    fn with_key(key: u64) -> Self {
        Self { key, payload: 0 }
    }
}

/// SortBenchmark record: 10-byte key, 90-byte payload, 100 bytes total
/// ("This setting considers 100-byte elements with a 10-byte key").
#[derive(Copy, Clone)]
pub struct Record100 {
    /// The 10-byte lexicographic key.
    pub key: Key10,
    /// The remaining 90 bytes of the record.
    pub payload: [u8; 90],
}

impl Record100 {
    /// Construct from key and payload.
    #[inline]
    pub const fn new(key: Key10, payload: [u8; 90]) -> Self {
        Self { key, payload }
    }
}

impl std::fmt::Debug for Record100 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Record100").field("key", &self.key).finish_non_exhaustive()
    }
}

impl PartialEq for Record100 {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.payload[..] == other.payload[..]
    }
}

impl Eq for Record100 {}

impl PartialOrd for Record100 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Ordered by key, then payload (total order for stable validation).
impl Ord for Record100 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then_with(|| self.payload.cmp(&other.payload))
    }
}

impl Record for Record100 {
    type Key = Key10;
    const BYTES: usize = 100;

    #[inline]
    fn key(&self) -> Key10 {
        self.key
    }

    #[inline]
    fn encode(&self, out: &mut [u8]) {
        out[..10].copy_from_slice(&self.key.0);
        out[10..100].copy_from_slice(&self.payload);
    }

    #[inline]
    fn decode(buf: &[u8]) -> Self {
        let mut key = [0u8; 10];
        key.copy_from_slice(&buf[..10]);
        let mut payload = [0u8; 90];
        payload.copy_from_slice(&buf[10..100]);
        Self { key: Key10(key), payload }
    }

    #[inline]
    fn with_key(key: Key10) -> Self {
        Self { key, payload: [0u8; 90] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element16_roundtrip() {
        let e = Element16::new(0xDEAD_BEEF_1234_5678, 42);
        let mut buf = [0u8; 16];
        e.encode(&mut buf);
        assert_eq!(Element16::decode(&buf), e);
    }

    #[test]
    fn element16_order_is_by_key_then_payload() {
        let a = Element16::new(1, 9);
        let b = Element16::new(2, 0);
        let c = Element16::new(2, 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn record100_roundtrip() {
        let mut payload = [0u8; 90];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = i as u8;
        }
        let r = Record100::new(Key10(*b"ABCDEFGHIJ"), payload);
        let mut buf = [0u8; 100];
        r.encode(&mut buf);
        assert_eq!(Record100::decode(&buf), r);
    }

    #[test]
    fn key10_lexicographic_order() {
        let a = Key10(*b"AAAAAAAAA\x00");
        let b = Key10(*b"AAAAAAAAA\x01");
        let c = Key10(*b"B\x00\x00\x00\x00\x00\x00\x00\x00\x00");
        assert!(a < b && b < c);
        assert!(Key10::MIN_KEY <= a && c <= Key10::MAX_KEY);
    }

    #[test]
    fn key_prefix_is_monotone_on_samples() {
        let keys = [0u64, 1, 255, 1 << 20, u64::MAX / 2, u64::MAX];
        for w in keys.windows(2) {
            assert!(w[0].prefix64() <= w[1].prefix64());
        }
        let k10s = [Key10([0; 10]), Key10(*b"ABCDEFGHIJ"), Key10([0xFF; 10])];
        for w in k10s.windows(2) {
            assert!(w[0].prefix64() <= w[1].prefix64());
        }
    }

    #[test]
    fn bulk_encode_decode_roundtrip() {
        let recs: Vec<Element16> = (0..100).map(|i| Element16::new(i * 3, i)).collect();
        let mut buf = vec![0u8; recs.len() * Element16::BYTES];
        Element16::encode_slice(&recs, &mut buf);
        let mut out = Vec::new();
        Element16::decode_slice(&buf, &mut out);
        assert_eq!(recs, out);
    }

    #[test]
    fn with_key_carries_key() {
        assert_eq!(Element16::with_key(7).key(), 7);
        assert_eq!(Record100::with_key(Key10([3; 10])).key(), Key10([3; 10]));
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn bulk_encode_checks_capacity() {
        let recs = [Element16::new(1, 2); 4];
        let mut buf = vec![0u8; 3 * Element16::BYTES];
        Element16::encode_slice(&recs, &mut buf);
    }
}
