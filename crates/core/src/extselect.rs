//! Phase 2a: external multiway selection across runs (Section IV-A,
//! Appendix B).
//!
//! PE `i` selects, for each run, the position of the first element it
//! must own in the final output — i.e. the partition of global rank
//! `r = ⌊i·N/P⌋` over the `R` runs. The runs live on disk, distributed
//! over all PEs, so a probe of run element `x` may hit a *remote* disk:
//! "although these selections can run in parallel, they have to request
//! data from remote disks and thus the worst case number of I/O steps
//! is `O(RP log M)` when a constant fraction of requests is directed to
//! a single disk."
//!
//! The paper's three mitigations, all implemented and ablatable:
//!
//! 1. **randomization** during run formation spreads the probes;
//! 2. **sampling** — every `K`-th element of each run (collected while
//!    the runs were written, kept in memory) warm-starts the splitter
//!    positions so the step size starts at `~K` instead of `M`;
//! 3. **caching** — an LRU cache of recently probed blocks absorbs the
//!    last `R·log B` probes of the halving search.
//!
//! A probe reads the block through the unified
//! [`ClusterStorage::fetch_block_cached`] path — the *owning* PE's
//! storage engine serves it (its disk pays the I/O, as in the paper's
//! bottleneck analysis), the shared [`BlockCache`] absorbs repeats,
//! and the transferred bytes are charged to the prober as
//! communication. The same path serves the probes on every transport,
//! so the probe counters are deployment-independent by construction.

use crate::ctx::{BlockCache, ClusterStorage, FetchSource};
use crate::recio::records_per_block;
use crate::rundir::{RunDirectory, RunMeta};
use crate::selection::{multiway_select_from, KeyedSlice, SortedSeq};
use demsort_types::{AlgoConfig, CommCounters, Error, Record, Result};
use std::cell::RefCell;
use std::rc::Rc;

/// Probe-cost accounting for one external selection.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Element probes answered from the in-memory sample (no block
    /// access at all). Zero when sampling is off.
    pub sample_hits: u64,
    /// Blocks served by the probe cache.
    pub cache_hits: u64,
    /// Blocks fetched from this PE's own disks.
    pub blocks_local: u64,
    /// Blocks fetched from other PEs' disks.
    pub blocks_remote: u64,
    /// Bytes moved over the (simulated) network for remote probes.
    pub remote_bytes: u64,
}

impl SelectionStats {
    /// Element probes that had to fetch a block (disk I/O steps); the
    /// in-memory sample and the block cache absorb the rest. Derived
    /// from the fetch counters so the two can never drift apart.
    pub fn probes(&self) -> u64 {
        self.blocks_local + self.blocks_remote
    }

    /// The communication this selection caused (attributed to the
    /// probing PE: remote gets are one request + one block reply).
    pub fn comm(&self) -> CommCounters {
        CommCounters {
            bytes_sent: 16 * self.blocks_remote, // request descriptors
            bytes_recv: self.remote_bytes,
            messages: 2 * self.blocks_remote,
        }
    }
}

/// Random access to one distributed on-disk run, as a [`SortedSeq`].
struct RunProbe<'a, R: Record> {
    storage: &'a ClusterStorage,
    my_rank: usize,
    meta: &'a RunMeta<R>,
    rpb: usize,
    /// Whether the in-memory sample may answer probes — tied to the
    /// *selection-time* `sample_every` switch so an ablation with
    /// sampling off really pays for every probe, even when the runs
    /// were formed with samples attached.
    use_samples: bool,
    cache: Rc<RefCell<BlockCache>>,
    stats: Rc<RefCell<SelectionStats>>,
}

impl<R: Record> SortedSeq for RunProbe<'_, R> {
    type Key = R::Key;

    fn len(&self) -> usize {
        self.meta.elems() as usize
    }

    fn key_at(&mut self, idx: usize) -> Result<R::Key> {
        // Appendix B: the sample lives in memory, so a probe landing on
        // a sampled position costs no I/O at all. Warm-started searches
        // spend their coarse rounds on the sample grid, which is what
        // makes sampling cut the external probe count, not just the
        // step size.
        if self.use_samples {
            if let Ok(si) = self.meta.samples.binary_search_by_key(&(idx as u64), |s| s.pos) {
                self.stats.borrow_mut().sample_hits += 1;
                return Ok(self.meta.samples[si].rec.key());
            }
        }
        let (pe, local) = self.meta.locate(idx as u64);
        let block_idx = (local / self.rpb as u64) as usize;
        let offset = (local % self.rpb as u64) as usize;
        let id = self.meta.slices[pe].blocks[block_idx];

        // Only a cache-missing probe is an I/O step — the metric the
        // paper's bottleneck analysis (and the sampling/caching
        // ablation) is about; see SelectionStats::probes. The unified
        // fetch path reads through the owner's storage: its disk pays
        // the I/O. In multi-process mode a non-local owner is reached
        // through the transport's block service; a dead owner surfaces
        // here as a clean error, not a panic. Keep the error's kind (a
        // local disk fault stays Error::Io) and add probe context to
        // comm failures only.
        let mut cache = self.cache.borrow_mut();
        let (data, source) = self
            .storage
            .fetch_block_cached(self.my_rank, pe, id, &mut cache)
            .map_err(|e| match e {
                Error::Comm(m) => {
                    Error::comm(format!("selection probe of rank {pe}'s block {id:?} failed: {m}"))
                }
                other => other,
            })?;
        let mut stats = self.stats.borrow_mut();
        match source {
            FetchSource::Cache => stats.cache_hits += 1,
            FetchSource::LocalDisk => stats.blocks_local += 1,
            FetchSource::RemoteDisk => {
                stats.blocks_remote += 1;
                stats.remote_bytes += data.len() as u64;
            }
        }
        Ok(R::decode(&data[offset * R::BYTES..(offset + 1) * R::BYTES]).key())
    }
}

/// The splitter positions of one global rank over all runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunSplitters {
    /// `positions[j]` = first run-global element of run `j` belonging to
    /// the right side.
    pub positions: Vec<u64>,
}

/// Select the partition of global rank `r` over all runs of `dir` — a
/// one-rank [`select_ranks_external`] (same probe path, same cache
/// behavior).
///
/// # Errors
/// [`Error::Comm`] if a (possibly remote) block probe fails — the
/// selection aborts cleanly instead of panicking the PE.
pub fn select_rank_external<R: Record + Ord>(
    storage: &ClusterStorage,
    my_rank: usize,
    dir: &RunDirectory<R>,
    r: u64,
    algo: &AlgoConfig,
) -> Result<(RunSplitters, SelectionStats)> {
    let (mut splitters, stats) = select_ranks_external(storage, my_rank, dir, &[r], algo)?;
    Ok((splitters.pop().expect("one rank selected"), stats))
}

/// Select the partitions of *several* ranks over the runs of `dir`,
/// sharing one block cache across all searches.
///
/// Appendix B points out that the sample-based initialization "can be
/// done for all `P` desired ranks using a parallel sorting step and a
/// single parallel scan of the sorted sample" — the searches then
/// touch overlapping blocks, so a shared cache cuts the total fetch
/// count well below `ranks × (per-rank fetches)`. Useful when one node
/// computes several boundaries (e.g. recovering for a failed peer, or
/// the `P = 1` debugging path).
///
/// # Errors
/// [`Error::Comm`] on the first failed block probe.
pub fn select_ranks_external<R: Record + Ord>(
    storage: &ClusterStorage,
    my_rank: usize,
    dir: &RunDirectory<R>,
    ranks: &[u64],
    algo: &AlgoConfig,
) -> Result<(Vec<RunSplitters>, SelectionStats)> {
    let block_bytes = storage.pe(my_rank).block_bytes();
    let rpb = records_per_block::<R>(block_bytes);
    let cache = Rc::new(RefCell::new(BlockCache::new(algo.selection_cache_blocks)));
    let stats = Rc::new(RefCell::new(SelectionStats::default()));

    let mut out = Vec::with_capacity(ranks.len());
    for &r in ranks {
        let mut probes: Vec<RunProbe<'_, R>> = dir
            .runs
            .iter()
            .map(|meta| RunProbe {
                storage,
                my_rank,
                meta,
                rpb,
                use_samples: algo.sample_every > 0,
                cache: Rc::clone(&cache),
                stats: Rc::clone(&stats),
            })
            .collect();
        let (init, step) = sample_warm_start(dir, r, algo.sample_every);
        let result = multiway_select_from(&mut probes, r, init, step)?;
        out.push(RunSplitters { positions: result.positions.iter().map(|&p| p as u64).collect() });
    }
    let final_stats = *stats.borrow();
    Ok((out, final_stats))
}

/// Initial positions and step size derived from the in-memory samples.
fn sample_warm_start<R: Record + Ord>(
    dir: &RunDirectory<R>,
    r: u64,
    sample_every: usize,
) -> (Vec<usize>, usize) {
    let max_len = dir.runs.iter().map(|m| m.elems() as usize).max().unwrap_or(0);
    let cold = (vec![0usize; dir.num_runs()], max_len.next_power_of_two().max(1));
    if sample_every == 0 {
        return cold;
    }
    let total_samples: u64 = dir.runs.iter().map(|m| m.samples.len() as u64).sum();
    if total_samples == 0 {
        return cold;
    }
    // Rank-r elements contain roughly r/K samples; select that prefix
    // of the combined sample (exactly, in memory), then map each run's
    // sample splitter back to an element position. Positions derived
    // this way sit at most ~2K elements below the true splitter (slice
    // boundaries can stretch a sample gap to < 2K).
    let t = (r / sample_every as u64).min(total_samples);
    let mut sample_views: Vec<KeyedSlice<'_, _, _, _>> = dir
        .runs
        .iter()
        .map(|m| KeyedSlice::new(m.samples.as_slice(), |s: &crate::recio::Sample<R>| s.rec.key()))
        .collect();
    let sel = crate::selection::multiway_select(&mut sample_views, t)
        .expect("in-memory sample selection is infallible");
    let init: Vec<usize> = dir
        .runs
        .iter()
        .zip(&sel.positions)
        .map(|(m, &sp)| if sp == 0 { 0 } else { m.samples[sp - 1].pos as usize })
        .collect();
    (init, (2 * sample_every).next_power_of_two())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ClusterStorage;
    use crate::recio::read_records;
    use crate::runform::{form_runs, ingest_input};
    use demsort_net::run_cluster;
    use demsort_types::{AlgoConfig, Element16, MachineConfig, SortConfig};
    use demsort_workloads::{generate_pe_input, InputSpec};
    use std::sync::Arc;

    /// Build a cluster, form runs, and return (storage, per-PE dirs,
    /// decoded runs for reference checks).
    fn setup(
        p: usize,
        local_n: usize,
        algo: AlgoConfig,
    ) -> (Arc<ClusterStorage>, Vec<RunDirectory<Element16>>, Vec<Vec<Element16>>) {
        let cfg = SortConfig::new(MachineConfig::tiny(p), algo).expect("valid");
        let storage = ClusterStorage::new_mem(&cfg.machine);
        let st_ref = &storage;
        let cfg2 = cfg.clone();
        let dirs = run_cluster(p, move |c| {
            let st = st_ref.pe(c.rank());
            let recs = generate_pe_input(InputSpec::Uniform, 11, c.rank(), p, local_n);
            let input = ingest_input(st, &recs).expect("ingest");
            let out = form_runs::<Element16>(&c, st, &cfg2, input, 1).expect("form");
            crate::rundir::build_directory(&c, out.local).expect("directory")
        });
        // Decode every run (globally) for reference.
        let dir0 = &dirs[0];
        let mut runs_decoded = Vec::new();
        for j in 0..dir0.num_runs() {
            let mut run: Vec<Element16> = Vec::new();
            for (pe, d) in dirs.iter().enumerate() {
                let fr = &d.local[j];
                run.extend(
                    read_records::<Element16>(st_ref.pe(pe), &fr.run, fr.elems).expect("read"),
                );
            }
            assert!(run.windows(2).all(|w| w[0] <= w[1]), "run {j} sorted");
            runs_decoded.push(run);
        }
        (storage, dirs, runs_decoded)
    }

    /// Reference positions from an in-memory selection over the decoded
    /// runs.
    fn reference_positions(runs: &[Vec<Element16>], r: u64) -> Vec<u64> {
        let mut views: Vec<KeyedSlice<'_, _, _, _>> =
            runs.iter().map(|s| KeyedSlice::new(s.as_slice(), |e: &Element16| e.key)).collect();
        crate::selection::multiway_select(&mut views, r)
            .expect("in-memory selection")
            .positions
            .iter()
            .map(|&p| p as u64)
            .collect()
    }

    #[test]
    fn external_matches_in_memory_selection() {
        let (storage, dirs, runs) = setup(3, 700, AlgoConfig::default());
        let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
        for r in [0, 1, total / 3, total / 2, total - 1, total] {
            let (split, _) = select_rank_external(&storage, 0, &dirs[0], r, &AlgoConfig::default())
                .expect("select");
            // Both are exact partitions of rank r; with distinct keys
            // (uniform 64-bit) the positions are unique.
            assert_eq!(split.positions, reference_positions(&runs, r), "rank {r}");
        }
    }

    #[test]
    fn every_pe_gets_consistent_boundaries() {
        let p = 4;
        let (storage, dirs, runs) = setup(p, 400, AlgoConfig::default());
        let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
        let mut prev: Option<Vec<u64>> = None;
        for (pe, dir) in dirs.iter().enumerate() {
            let r = demsort_types::ranks::owned_range(pe, p, total).start;
            let (split, _) =
                select_rank_external(&storage, pe, dir, r, &AlgoConfig::default()).expect("select");
            assert_eq!(split.positions.iter().sum::<u64>(), r);
            if let Some(prev) = &prev {
                for (a, b) in prev.iter().zip(&split.positions) {
                    assert!(a <= b, "splitters must be monotone across PEs");
                }
            }
            prev = Some(split.positions);
        }
    }

    #[test]
    fn sampling_cuts_probes() {
        let algo_sampled = AlgoConfig { sample_every: 16, ..AlgoConfig::default() };
        let algo_cold =
            AlgoConfig { sample_every: 0, selection_cache_blocks: 0, ..AlgoConfig::default() };
        let (storage, dirs, runs) = setup(2, 1000, algo_sampled.clone());
        let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
        let r = total / 2;
        let (s1, warm) =
            select_rank_external(&storage, 0, &dirs[0], r, &algo_sampled).expect("select");
        let (s2, cold) =
            select_rank_external(&storage, 0, &dirs[0], r, &algo_cold).expect("select");
        assert_eq!(s1.positions, s2.positions, "same exact result");
        assert!(
            warm.probes() < cold.probes() / 2,
            "sampling must cut probes: warm {} vs cold {}",
            warm.probes(),
            cold.probes()
        );
        // The ablation must be clean: with sampling off, the in-memory
        // sample answers nothing, even though the runs carry samples.
        assert!(warm.sample_hits > 0, "warm search must use the sample");
        assert_eq!(cold.sample_hits, 0, "sampling-off search must not touch the sample");
    }

    #[test]
    fn cache_absorbs_repeat_block_fetches() {
        let algo_cached = AlgoConfig { selection_cache_blocks: 64, ..AlgoConfig::default() };
        let algo_uncached = AlgoConfig { selection_cache_blocks: 0, ..AlgoConfig::default() };
        let (storage, dirs, runs) = setup(2, 1000, algo_cached.clone());
        let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
        let r = total / 2;
        let (_, cached) =
            select_rank_external(&storage, 0, &dirs[0], r, &algo_cached).expect("select");
        let (_, uncached) =
            select_rank_external(&storage, 0, &dirs[0], r, &algo_uncached).expect("select");
        assert_eq!(uncached.cache_hits, 0);
        assert!(cached.cache_hits > 0, "cache must serve repeat probes");
        let fetched_cached = cached.blocks_local + cached.blocks_remote;
        let fetched_uncached = uncached.blocks_local + uncached.blocks_remote;
        assert!(
            fetched_cached < fetched_uncached,
            "cache must reduce block fetches: {fetched_cached} vs {fetched_uncached}"
        );
    }

    #[test]
    fn remote_probe_traffic_is_attributed() {
        let (storage, dirs, runs) = setup(3, 600, AlgoConfig::default());
        let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
        // PE 2's boundary rank probes mostly land on other PEs' slices.
        let (_, stats) =
            select_rank_external(&storage, 2, &dirs[2], total / 3, &AlgoConfig::default())
                .expect("select");
        assert!(stats.blocks_remote > 0, "cross-PE probes expected");
        assert_eq!(stats.remote_bytes, stats.blocks_remote * 256);
        let comm = stats.comm();
        assert_eq!(comm.bytes_recv, stats.remote_bytes);
        assert_eq!(comm.messages, 2 * stats.blocks_remote);
    }

    #[test]
    fn batched_selection_matches_and_shares_the_cache() {
        let algo = AlgoConfig { selection_cache_blocks: 64, ..AlgoConfig::default() };
        let (storage, dirs, runs) = setup(2, 1000, algo.clone());
        let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
        let ranks: Vec<u64> = (0..4).map(|i| i * total / 4).collect();

        let (batched, batched_stats) =
            select_ranks_external(&storage, 0, &dirs[0], &ranks, &algo).expect("select");
        let mut individual_fetches = 0u64;
        for (i, &r) in ranks.iter().enumerate() {
            let (single, s) =
                select_rank_external(&storage, 0, &dirs[0], r, &algo).expect("select");
            assert_eq!(single.positions, batched[i].positions, "rank {r}");
            individual_fetches += s.blocks_local + s.blocks_remote;
        }
        let batched_fetches = batched_stats.blocks_local + batched_stats.blocks_remote;
        assert!(
            batched_fetches < individual_fetches,
            "shared cache must cut fetches: {batched_fetches} vs {individual_fetches}"
        );
    }
}
