//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only `crossbeam::channel`'s unbounded MPSC surface is provided,
//! backed by `std::sync::mpsc`. That is all the suite uses: each
//! channel here has exactly one consumer (a PE inbox slot or a disk
//! worker queue), so crossbeam's MPMC generality is not needed.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// hands the message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Block until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).expect("receiver alive");
            }
        });
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        t.join().expect("sender");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn clone_senders_share_channel() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(1).expect("send");
        tx2.send(2).expect("send");
        drop((tx, tx2));
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
