//! In-node parallel sort scaling over core counts (the MCSTL stand-in).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demsort_core::seqsort::sort_in_node;
use demsort_types::Element16;
use demsort_workloads::splitmix64;
use std::hint::black_box;

fn bench_seqsort(c: &mut Criterion) {
    let n = 1 << 20;
    let data: Vec<Element16> =
        (0..n).map(|i| Element16::new(splitmix64(i as u64), i as u64)).collect();
    let mut g = c.benchmark_group("sort_in_node");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for cores in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            b.iter(|| {
                let mut v = data.clone();
                sort_in_node(&mut v, cores);
                black_box(v)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_seqsort);
criterion_main!(benches);
