//! Workspace source discovery.
//!
//! The analyzer scans production source only: `crates/*/src/**/*.rs`
//! plus the root facade `src/`. Integration-test trees
//! (`crates/*/tests/`), `examples/`, benches, and the offline
//! `vendor/` stand-ins are out of scope — the lints guard shipping
//! code, and in-file `#[cfg(test)]` scoping already exempts unit
//! tests.

use demsort_types::{Error, Result};
use std::path::{Path, PathBuf};

/// Collect repo-relative paths (with `/` separators) of every `.rs`
/// file the lints cover, sorted for deterministic reports.
pub fn workspace_sources(root: &Path) -> Result<Vec<String>> {
    let mut found = Vec::new();
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates)
        .map_err(|e| Error::io(format!("reading {}: {e}", crates.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::io(format!("reading crates/: {e}")))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut found)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut found)?;
    }
    let mut rel: Vec<String> = found
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root).ok().map(|r| {
                r.components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/")
            })
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<()> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| Error::io(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::io(format!("reading {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
