//! # demsort-core
//!
//! The algorithms of *"Scalable Distributed-Memory External Sorting"*
//! (Rahn, Sanders, Singler; ICDE 2010): CANONICALMERGESORT (Section IV,
//! the DEMSort record-setter) and the globally striped mergesort
//! (Section III), together with every algorithmic building block the
//! paper describes:
//!
//! * [`merge`] — k-way merging with a loser tree;
//! * [`seqsort`] — in-node (multi-core) sorting;
//! * [`selection`] — exact multiway selection (Section IV-A);
//! * [`psort`] — distributed internal parallel mergesort (Section IV-B);
//! * [`runform`] — randomized, overlapped run formation (Section IV-E);
//! * [`extselect`] — external multiway selection with sampling and
//!   block caching (Section IV-A, Appendix B);
//! * [`alltoall`] — the memory-bounded external all-to-all
//!   (Section IV-C);
//! * [`localmerge`] — the phase-3 local multiway merge;
//! * [`canonical`] — the CANONICALMERGESORT driver (Figure 1);
//! * [`striped`] — mergesort with global striping (Section III);
//! * [`baselines`] — comparison algorithms (NOW-Sort-style);
//! * [`validate`] — distributed output validation.

pub mod alltoall;
pub mod baselines;
pub mod canonical;
pub mod ctx;
pub mod distselect;
pub mod extselect;
pub mod localmerge;
pub mod merge;
pub mod pipeline;
pub mod psort;
pub mod recio;
pub mod replacement;
pub mod rundir;
pub mod runform;
pub mod selection;
pub mod seqsort;
pub mod striped;
pub mod validate;

pub use canonical::{canonical_mergesort, sort_cluster, ClusterOutcome, PeOutcome};
pub use ctx::{
    BlockCache, BlockFetch, BlockStore, ClusterStorage, FetchSource, PendingBlock, PendingStore,
    RemoteBlockService, StoreTarget,
};
pub use distselect::{dist_select_rank, dist_split};
pub use merge::{merge_k, par_merge_k_below_into, par_merge_k_into, LoserTree, ParMerge};
pub use psort::parallel_sort;
pub use selection::{multiway_select, SelectionResult};
pub use seqsort::sort_in_node;
pub use striped::{
    read_striped, read_striped_blocks, striped_mergesort, striped_mergesort_resilient,
    striped_sort_cluster, ResilientHooks, StripedClusterOutcome,
};
