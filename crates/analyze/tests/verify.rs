//! End-to-end analyzer tests: one known-bad fixture per lint (each
//! must trigger exactly its lint at the expected lines), a clean
//! fixture exercising the escape hatch and lexer-hostile constructs,
//! and the live-repo gate — the workspace this crate ships in must
//! analyze deny-clean.

use demsort_analyze::report::{Report, Severity};
use demsort_analyze::{analyze_root, analyze_sources};

fn run_fixture(path: &str, src: &str) -> Report {
    analyze_sources(&[(path, src)])
}

/// `(lint, line)` of every deny finding, in report order.
fn denies(report: &Report) -> Vec<(&'static str, u32)> {
    report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .map(|f| (f.lint, f.line))
        .collect()
}

#[test]
fn l1_fixture_flags_panic_and_unwrap_only() {
    let report = run_fixture("crates/net/src/l1_bad.rs", include_str!("fixtures/l1_bad.rs"));
    assert_eq!(denies(&report), [("L1", 4), ("L1", 8)], "{:?}", report.findings);
    // `.expect(` is inventoried as a warning, and the test-scoped
    // panic on line 19 is exempt.
    let warns: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .map(|f| (f.lint, f.line))
        .collect();
    assert_eq!(warns, [("L1", 12)]);
}

#[test]
fn l1_scope_is_limited_to_the_fault_tolerant_crates() {
    // The same source under crates/bench is out of L1 scope.
    let report = run_fixture("crates/bench/src/l1_bad.rs", include_str!("fixtures/l1_bad.rs"));
    assert_eq!(denies(&report), []);
}

#[test]
fn l2_fixture_flags_all_three_discard_forms() {
    let report = run_fixture("crates/core/src/l2_bad.rs", include_str!("fixtures/l2_bad.rs"));
    // `let _ =` (4), `.ok();` (5), bare drop (6); the `?`-propagated
    // and argument-consumed calls on lines 10–11 are fine.
    assert_eq!(denies(&report), [("L2", 4), ("L2", 5), ("L2", 6)], "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.lint == "L2"));
}

#[test]
fn l3_fixture_flags_undocumented_unsafe_and_inventories_both() {
    let report = run_fixture("crates/types/src/l3_bad.rs", include_str!("fixtures/l3_bad.rs"));
    assert_eq!(denies(&report), [("L3", 4)], "{:?}", report.findings);
    assert_eq!(report.unsafe_sites.len(), 2);
    assert!(!report.unsafe_sites[0].documented);
    assert!(report.unsafe_sites[1].documented);
    assert_eq!(report.unsafe_sites[0].func.as_deref(), Some("undocumented"));
    assert_eq!(report.unsafe_sites[1].func.as_deref(), Some("documented"));
}

#[test]
fn l4_fixture_flags_only_the_lopsided_function() {
    let report = run_fixture("crates/core/src/l4_bad.rs", include_str!("fixtures/l4_bad.rs"));
    assert_eq!(denies(&report), [("L4", 4)], "{:?}", report.findings);
    assert!(report.findings[0].message.contains("lopsided"));
}

#[test]
fn l5_fixture_flags_the_counter_mutation() {
    let report = run_fixture("crates/core/src/l5_bad.rs", include_str!("fixtures/l5_bad.rs"));
    assert_eq!(denies(&report), [("L5", 4)], "{:?}", report.findings);
    assert!(report.findings[0].message.contains("elements_sorted"));
}

#[test]
fn l5_allowlisted_metering_module_is_exempt() {
    let report = run_fixture("crates/types/src/counters.rs", include_str!("fixtures/l5_bad.rs"));
    assert_eq!(denies(&report), []);
}

#[test]
fn clean_fixture_passes_with_one_allowed_finding() {
    let report = run_fixture("crates/net/src/clean.rs", include_str!("fixtures/clean.rs"));
    assert_eq!(denies(&report), [], "{:?}", report.findings);
    // No stale-hatch warnings either: the one hatch is consumed.
    assert_eq!(report.findings.len(), 0, "{:?}", report.findings);
    assert_eq!(report.allowed.len(), 1);
    assert_eq!(report.allowed[0].finding.lint, "L2");
    assert_eq!(report.allowed[0].reason, "fixture demonstrates the escape hatch");
}

#[test]
fn stale_escape_hatch_is_flagged() {
    let src = "// verify: allow(L2, nothing here discards anything)\nfn quiet() {}\n";
    let report = run_fixture("crates/net/src/stale.rs", src);
    assert_eq!(denies(&report), []);
    let warns: Vec<_> = report.findings.iter().map(|f| (f.lint, f.line)).collect();
    assert_eq!(warns, [("L0", 1)], "{:?}", report.findings);
}

#[test]
fn doc_comments_describing_the_hatch_are_not_hatches() {
    // Rustdoc prose about `verify: allow(<lint>, <reason>)` must not
    // suppress the finding on the next line, nor count as stale.
    let src = "//! Docs: `verify: allow(L2, some reason)` syntax.\n\
               fn leak(c: &Communicator) {\n    let _ = c.barrier();\n}\n";
    let report = run_fixture("crates/net/src/doc.rs", src);
    assert_eq!(denies(&report), [("L2", 3)], "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.lint != "L0"));
    assert!(report.allowed.is_empty());
}

#[test]
fn live_repo_is_deny_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze_root(&root).expect("workspace sources readable");
    assert!(report.files_scanned > 50, "scanned only {} files", report.files_scanned);
    let deny: Vec<_> = report.findings.iter().filter(|f| f.severity == Severity::Deny).collect();
    assert!(deny.is_empty(), "deny findings in the live repo: {deny:#?}");
    // Every escape hatch in the repo must carry a reason; stale ones
    // surface as L0 warnings and should not exist either.
    assert!(report.allowed.iter().all(|a| !a.reason.is_empty()));
    assert!(
        !report.findings.iter().any(|f| f.lint == "L0"),
        "stale escape hatches: {:#?}",
        report.findings.iter().filter(|f| f.lint == "L0").collect::<Vec<_>>()
    );
}
