//! SortBenchmark round trip: gensort-style 100-byte records →
//! CANONICALMERGESORT → valsort-style collective validation.
//!
//! The validator must accept a genuine sort (sortedness + canonical
//! boundaries + permutation fingerprint) and reject the same output
//! with a single deliberately corrupted record — both a payload-only
//! corruption (caught by the fingerprint) and a key corruption (caught
//! by the order checks as well).

use demsort::core::canonical::sort_cluster;
use demsort::core::recio::{read_records, write_records};
use demsort::core::validate::{validate_output, Fingerprint, ValidationReport};
use demsort::net::run_cluster;
use demsort::prelude::*;
use demsort::workloads::gensort_records;

const SEED: u64 = 2009; // the year DEMSort led the SortBenchmark
const P: usize = 4;
const LOCAL_N: usize = 300;

fn sorted_outcome() -> demsort::core::canonical::ClusterOutcome<Record100> {
    let cfg = SortConfig::new(MachineConfig::tiny(P), AlgoConfig::default()).expect("valid");
    sort_cluster::<Record100, _>(&cfg, move |pe, _p| {
        gensort_records(SEED, (pe * LOCAL_N) as u64, LOCAL_N)
    })
    .expect("sort")
}

fn input_fingerprint() -> Fingerprint {
    let mut f = Fingerprint::default();
    for pe in 0..P {
        for r in gensort_records(SEED, (pe * LOCAL_N) as u64, LOCAL_N) {
            f.add(&r);
        }
    }
    f
}

fn validate_all(
    outcome: &demsort::core::canonical::ClusterOutcome<Record100>,
    outputs: &[demsort::core::recio::FinishedRun<Record100>],
) -> Vec<ValidationReport> {
    let storage = &outcome.storage;
    run_cluster(P, move |c| {
        validate_output::<Record100>(&c, storage.pe(c.rank()), &outputs[c.rank()])
            .expect("validate")
    })
}

#[test]
fn roundtrip_accepts_genuine_sort() {
    let outcome = sorted_outcome();
    let outputs: Vec<_> = outcome.per_pe.iter().map(|o| o.output.clone()).collect();
    let reports = validate_all(&outcome, &outputs);
    let fp = input_fingerprint();
    for (pe, rep) in reports.iter().enumerate() {
        assert!(rep.is_valid_sort_of(fp), "PE {pe} rejected a correct sort: {rep:?}");
        assert_eq!(rep.elements, (P * LOCAL_N) as u64);
    }
    // Validation is collective: every PE must report the same verdict.
    for rep in &reports[1..] {
        assert_eq!(rep, &reports[0]);
    }
}

/// Replace PE `pe`'s output with a copy whose `victim`-th record has
/// been run through `corrupt`, and return the new per-PE outputs.
fn with_corrupted_record(
    outcome: &demsort::core::canonical::ClusterOutcome<Record100>,
    pe: usize,
    victim: usize,
    corrupt: impl FnOnce(&mut Record100),
) -> Vec<demsort::core::recio::FinishedRun<Record100>> {
    let st = outcome.storage.pe(pe);
    let out = &outcome.per_pe[pe].output;
    let mut recs = read_records::<Record100>(st, &out.run, out.elems).expect("read output");
    corrupt(&mut recs[victim]);
    let rewritten = write_records(st, &recs).expect("rewrite output");
    let mut outputs: Vec<_> = outcome.per_pe.iter().map(|o| o.output.clone()).collect();
    outputs[pe] = rewritten;
    outputs
}

#[test]
fn roundtrip_rejects_payload_corruption() {
    let outcome = sorted_outcome();
    // Payload-only corruption keeps every key in order — only the
    // permutation fingerprint can catch it.
    let outputs = with_corrupted_record(&outcome, 1, 17, |r| r.payload[42] ^= 0x01);
    let reports = validate_all(&outcome, &outputs);
    let fp = input_fingerprint();
    for (pe, rep) in reports.iter().enumerate() {
        assert!(!rep.is_valid_sort_of(fp), "PE {pe} accepted corrupted output: {rep:?}");
        assert!(rep.locally_sorted, "payload corruption must not disturb key order");
        assert_ne!(rep.fingerprint, fp, "fingerprint must flag the flipped bit");
    }
}

#[test]
fn roundtrip_rejects_key_corruption() {
    let outcome = sorted_outcome();
    // Forcing a middle record's key to the maximum breaks local
    // sortedness (and the fingerprint, independently).
    let outputs = with_corrupted_record(&outcome, 2, 100, |r| r.key.0 = [0xFF; 10]);
    let reports = validate_all(&outcome, &outputs);
    let fp = input_fingerprint();
    for (pe, rep) in reports.iter().enumerate() {
        assert!(!rep.is_valid_sort_of(fp), "PE {pe} accepted corrupted output: {rep:?}");
        assert!(!rep.locally_sorted, "max key mid-run must break sortedness");
        assert_ne!(rep.fingerprint, fp);
    }
}
