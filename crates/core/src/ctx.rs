//! Per-PE execution context: storage for every PE, phase accounting.
//!
//! A PE owns its communicator endpoint and *operates on* its own
//! storage; peers' storage is reachable read-only for the remote probes
//! of external multiway selection (Section IV-A: "they have to request
//! data from remote disks"). In a real deployment those probes are
//! one-block RDMA gets / MPI request-reply pairs. The in-process
//! cluster holds every PE's storage in one [`ClusterStorage`], so a
//! probe reads the peer's storage engine directly; the multi-process
//! runtime gives each worker a single-rank view
//! ([`ClusterStorage::single`]) whose remote probes go through a
//! [`RemoteBlockFetch`] (the TCP transport's out-of-band probe
//! channel). Either way the I/O lands on the owning PE's disks
//! (exactly where the paper's bottleneck analysis puts it) and the
//! transferred bytes are charged to the prober as communication.

use demsort_storage::{Backend, BlockId, DiskModel, MemBackend, PeStorage};
use demsort_types::{
    CommCounters, CpuCounters, Error, IoCounters, MachineConfig, Phase, PhaseStats, Result,
    SortConfig, SortReport,
};
use std::sync::Arc;

/// Fetches one block from a remote PE's storage (multi-process mode:
/// implemented over the transport's probe channel).
pub trait RemoteBlockFetch: Send + Sync {
    /// Read block `id` owned by rank `pe`.
    fn fetch(&self, pe: usize, id: BlockId) -> Result<Box<[u8]>>;
}

/// The storage view of one participant in the cluster.
///
/// * In-process cluster: every PE's storage, shared between PE
///   threads (`base_rank = 0`, all ranks local).
/// * Multi-process cluster: one worker's own storage plus a remote
///   fetcher for probing peers' blocks.
pub struct ClusterStorage {
    /// Cluster size (`P`), which may exceed `pes.len()` in single-rank
    /// mode.
    size: usize,
    /// Rank of `pes[0]`.
    base_rank: usize,
    pes: Vec<PeStorage>,
    remote: Option<Box<dyn RemoteBlockFetch>>,
}

impl ClusterStorage {
    /// In-memory storage for `cfg.pes` PEs (the experiment default).
    pub fn new_mem(cfg: &MachineConfig) -> Arc<Self> {
        Self::with_backends(cfg, |c| Arc::new(MemBackend::new(c.disks_per_pe)))
    }

    /// Storage with a custom backend per PE (files, fault injection).
    pub fn with_backends(
        cfg: &MachineConfig,
        mut make: impl FnMut(&MachineConfig) -> Arc<dyn Backend>,
    ) -> Arc<Self> {
        let pes: Vec<PeStorage> = (0..cfg.pes)
            .map(|_| {
                PeStorage::with_backend(
                    cfg.disks_per_pe,
                    cfg.block_bytes,
                    DiskModel::paper(),
                    make(cfg),
                )
            })
            .collect();
        Arc::new(Self { size: pes.len(), base_rank: 0, pes, remote: None })
    }

    /// Single-rank view for a worker process: `rank`'s own storage plus
    /// a fetcher for remote probes. `size` is the cluster size `P`.
    pub fn single(
        rank: usize,
        size: usize,
        storage: PeStorage,
        remote: Box<dyn RemoteBlockFetch>,
    ) -> Arc<Self> {
        assert!(rank < size, "rank {rank} out of range for {size} ranks");
        Arc::new(Self { size, base_rank: rank, pes: vec![storage], remote: Some(remote) })
    }

    /// `true` if rank `rank`'s storage lives in this view.
    pub fn is_local(&self, rank: usize) -> bool {
        rank >= self.base_rank && rank - self.base_rank < self.pes.len()
    }

    /// Storage of PE `rank` (panics if the rank is not local to this
    /// view — remote blocks go through [`ClusterStorage::fetch_block`]).
    pub fn pe(&self, rank: usize) -> &PeStorage {
        assert!(
            self.is_local(rank),
            "PE {rank}'s storage is not local to this view (base {}, {} local)",
            self.base_rank,
            self.pes.len()
        );
        &self.pes[rank - self.base_rank]
    }

    /// Read one block of PE `rank`'s storage, local or remote — the
    /// multiway-selection probe path. Local reads go through the
    /// owner's engine (its disk pays the I/O); remote reads go through
    /// the registered [`RemoteBlockFetch`].
    pub fn fetch_block(&self, rank: usize, id: BlockId) -> Result<Box<[u8]>> {
        if self.is_local(rank) {
            return self.pe(rank).engine().read_sync(id);
        }
        match &self.remote {
            Some(r) => r.fetch(rank, id),
            None => Err(Error::io(format!(
                "PE {rank}'s storage is remote and no remote fetcher is registered"
            ))),
        }
    }

    /// Number of PEs in the cluster (`P`, not the local count).
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` if the cluster has no PEs (never in practice).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

/// Phase-by-phase counter recorder for one PE.
///
/// Phases are delimited by [`PhaseRecorder::finish_phase`], which
/// snapshots the cumulative I/O and communication counters and
/// attributes the delta (plus explicitly accumulated CPU work and any
/// extra communication such as remote selection probes) to the phase.
pub struct PhaseRecorder {
    rank: usize,
    stats: Vec<(Phase, PhaseStats)>,
    last_io: IoCounters,
    last_comm: CommCounters,
    pending_cpu: CpuCounters,
    pending_comm_extra: CommCounters,
    phase_started: std::time::Instant,
}

impl PhaseRecorder {
    /// Start recording for PE `rank` from the given counter baselines.
    pub fn new(rank: usize, io_now: IoCounters, comm_now: CommCounters) -> Self {
        Self {
            rank,
            stats: Vec::new(),
            last_io: io_now,
            last_comm: comm_now,
            pending_cpu: CpuCounters::default(),
            pending_comm_extra: CommCounters::default(),
            phase_started: std::time::Instant::now(),
        }
    }

    /// Accumulate CPU work into the current phase.
    pub fn add_cpu(&mut self, cpu: CpuCounters) {
        self.pending_cpu = self.pending_cpu.merge(&cpu);
    }

    /// Accumulate out-of-band communication (remote storage probes).
    pub fn add_comm(&mut self, comm: CommCounters) {
        self.pending_comm_extra = self.pending_comm_extra.merge(&comm);
    }

    /// Close the current phase, attributing counter deltas to `phase`.
    pub fn finish_phase(&mut self, phase: Phase, io_now: IoCounters, comm_now: CommCounters) {
        let mut cpu = std::mem::take(&mut self.pending_cpu);
        cpu.host_wall_ns += self.phase_started.elapsed().as_nanos() as u64;
        let stats = PhaseStats {
            io: io_now.delta_since(&self.last_io),
            comm: comm_now
                .delta_since(&self.last_comm)
                .merge(&std::mem::take(&mut self.pending_comm_extra)),
            cpu,
        };
        self.last_io = io_now;
        self.last_comm = comm_now;
        self.phase_started = std::time::Instant::now();
        self.stats.push((phase, stats));
    }

    /// This PE's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The recorded per-phase stats.
    pub fn into_stats(self) -> Vec<(Phase, PhaseStats)> {
        self.stats
    }
}

/// Assemble per-PE recorder outputs into a [`SortReport`].
pub fn assemble_report(
    cfg: &SortConfig,
    elements: u64,
    element_bytes: usize,
    runs: usize,
    per_pe: Vec<Vec<(Phase, PhaseStats)>>,
) -> SortReport {
    let mut report = SortReport::new(cfg.machine.pes, elements, element_bytes, runs);
    for (pe, phases) in per_pe.into_iter().enumerate() {
        for (phase, stats) in phases {
            report.record(pe, phase, stats);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_types::AlgoConfig;

    #[test]
    fn cluster_storage_shapes_from_config() {
        let cfg = MachineConfig::tiny(3);
        let cs = ClusterStorage::new_mem(&cfg);
        assert_eq!(cs.len(), 3);
        assert!(!cs.is_empty());
        assert_eq!(cs.pe(1).disks(), cfg.disks_per_pe);
        assert_eq!(cs.pe(2).block_bytes(), cfg.block_bytes);
        assert!((0..3).all(|r| cs.is_local(r)));
    }

    /// Echoes the requested address instead of real data.
    struct FakeFetch;

    impl RemoteBlockFetch for FakeFetch {
        fn fetch(&self, pe: usize, id: BlockId) -> Result<Box<[u8]>> {
            Ok(vec![pe as u8, id.disk as u8, id.slot as u8].into_boxed_slice())
        }
    }

    fn one_rank_view(rank: usize, size: usize) -> (Arc<ClusterStorage>, BlockId) {
        let cfg = MachineConfig::tiny(size);
        let st = PeStorage::with_backend(
            cfg.disks_per_pe,
            cfg.block_bytes,
            DiskModel::paper(),
            Arc::new(MemBackend::new(cfg.disks_per_pe)),
        );
        let id = st.alloc().alloc_striped();
        st.engine()
            .write_sync(id, vec![7u8; cfg.block_bytes].into_boxed_slice())
            .expect("write local block");
        (ClusterStorage::single(rank, size, st, Box::new(FakeFetch)), id)
    }

    #[test]
    fn single_rank_view_routes_local_and_remote_fetches() {
        let (cs, local_id) = one_rank_view(1, 3);
        assert_eq!(cs.len(), 3, "logical cluster size, not local count");
        assert!(cs.is_local(1));
        assert!(!cs.is_local(0) && !cs.is_local(2));
        // Local fetch reads the real block through the own engine.
        assert_eq!(&cs.fetch_block(1, local_id).expect("local")[..3], &[7, 7, 7]);
        // Remote fetch goes through the registered fetcher.
        let got = cs.fetch_block(2, BlockId::new(1, 5)).expect("remote");
        assert_eq!(&*got, &[2u8, 1, 5][..]);
    }

    #[test]
    #[should_panic(expected = "not local to this view")]
    fn single_rank_view_rejects_direct_remote_storage_access() {
        let (cs, _) = one_rank_view(1, 3);
        let _ = cs.pe(0);
    }

    #[test]
    fn in_process_view_has_no_remote_fetcher() {
        let cs = ClusterStorage::new_mem(&MachineConfig::tiny(2));
        // An unallocated-but-valid address read through fetch_block
        // routes to the local engine (error or not, it must not demand
        // a remote fetcher).
        let id = cs.pe(1).alloc().alloc_striped();
        cs.pe(1)
            .engine()
            .write_sync(id, vec![3u8; cs.pe(1).block_bytes()].into_boxed_slice())
            .expect("write");
        assert_eq!(&cs.fetch_block(1, id).expect("local fetch")[..2], &[3, 3]);
    }

    #[test]
    fn recorder_attributes_deltas_per_phase() {
        let io0 = IoCounters::default();
        let comm0 = CommCounters::default();
        let mut rec = PhaseRecorder::new(0, io0, comm0);

        rec.add_cpu(CpuCounters { elements_sorted: 10, ..Default::default() });
        let io1 = IoCounters { bytes_read: 100, ..Default::default() };
        rec.finish_phase(Phase::RunFormation, io1, comm0);

        rec.add_comm(CommCounters { bytes_recv: 55, ..Default::default() });
        let io2 = IoCounters { bytes_read: 150, ..Default::default() };
        rec.finish_phase(Phase::MultiwaySelection, io2, comm0);

        let stats = rec.into_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, Phase::RunFormation);
        assert_eq!(stats[0].1.io.bytes_read, 100);
        assert_eq!(stats[0].1.cpu.elements_sorted, 10);
        assert_eq!(stats[1].1.io.bytes_read, 50, "second phase gets only its delta");
        assert_eq!(stats[1].1.comm.bytes_recv, 55, "probe traffic counted");
    }

    #[test]
    fn report_assembly_round_trips() {
        let cfg = SortConfig::new(MachineConfig::tiny(2), AlgoConfig::default()).expect("valid");
        let per_pe = vec![
            vec![(
                Phase::FinalMerge,
                PhaseStats {
                    io: IoCounters { bytes_written: 64, ..Default::default() },
                    ..Default::default()
                },
            )],
            vec![],
        ];
        let report = assemble_report(&cfg, 1000, 16, 2, per_pe);
        assert_eq!(report.pes, 2);
        assert_eq!(report.runs, 2);
        assert_eq!(report.get(0, Phase::FinalMerge).io.bytes_written, 64);
        assert_eq!(report.get(1, Phase::FinalMerge).io.bytes_written, 0);
    }
}
