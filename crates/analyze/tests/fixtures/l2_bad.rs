//! L2 fixture: discarded Results from the cluster APIs.

pub fn discards(c: &Communicator) {
    let _ = c.barrier();
    c.recv(1).ok();
    c.flush();
}

pub fn consumed(c: &Communicator) -> Result<(), Error> {
    let n = c.allreduce_sum(1)?;
    consume(n, c.recv(2));
    Ok(())
}
