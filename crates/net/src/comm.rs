//! MPI-style communicator over a pluggable [`Transport`].
//!
//! All collectives (barrier, broadcast, gather, allgather, reductions,
//! alltoallv) are built from point-to-point sends exactly as an MPI
//! implementation would, against the [`Transport`] contract (per-source
//! FIFO, non-blocking send). The same `Communicator` therefore runs
//! unchanged over the in-process channel mesh
//! ([`LocalTransport`](crate::transport::LocalTransport)) and the
//! multi-process TCP mesh ([`TcpTransport`](crate::tcp::TcpTransport)).
//!
//! All remote traffic is metered per peer into [`CommCounters`] — the
//! communication volumes reported in the paper's analysis (Section
//! IV-D) are read off these counters, and they are *transport
//! independent*: a TCP run and an in-process run of the same job report
//! identical message and byte totals.
//!
//! Self-messages short-circuit (a real MPI does a memcpy); they are not
//! counted as network traffic.
//!
//! Control-word collectives (`allgather_u64` and the reductions built
//! on it) encode on the stack and send borrowed bytes
//! ([`Transport::send_bytes`]), so the hot send path allocates no
//! per-message `Vec` on transports that serialize onto a wire; bulk
//! payload senders can do the same via [`encode_u64s_into`] plus a
//! reused buffer.

use crate::transport::Transport;
use demsort_types::CommCounters;
use std::cell::Cell;

/// Per-peer traffic cells (interior mutability: the communicator is
/// `!Sync`, owned by its PE).
#[derive(Default)]
struct PeerMeter {
    bytes_sent: Cell<u64>,
    bytes_recv: Cell<u64>,
    messages: Cell<u64>,
}

/// One PE's endpoint of the cluster interconnect.
///
/// Not `Sync`: a communicator belongs to its PE thread/process, like an
/// MPI rank.
pub struct Communicator {
    transport: Box<dyn Transport>,
    peers: Vec<PeerMeter>,
}

impl Communicator {
    /// Wrap a transport endpoint into a communicator.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        let peers = (0..transport.size()).map(|_| PeerMeter::default()).collect();
        Self { transport, peers }
    }

    /// This PE's rank (`0..size`).
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of PEs.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Traffic counters so far (sum over peers; self-traffic is free).
    pub fn counters(&self) -> CommCounters {
        let mut total = CommCounters::default();
        for p in &self.peers {
            total.bytes_sent += p.bytes_sent.get();
            total.bytes_recv += p.bytes_recv.get();
            total.messages += p.messages.get();
        }
        total
    }

    /// Traffic exchanged with one peer (zeros for `peer == rank`).
    pub fn peer_counters(&self, peer: usize) -> CommCounters {
        let p = &self.peers[peer];
        CommCounters {
            bytes_sent: p.bytes_sent.get(),
            bytes_recv: p.bytes_recv.get(),
            messages: p.messages.get(),
        }
    }

    fn meter_send(&self, to: usize, bytes: usize) {
        if to != self.rank() {
            let p = &self.peers[to];
            p.bytes_sent.set(p.bytes_sent.get() + bytes as u64);
            p.messages.set(p.messages.get() + 1);
        }
    }

    /// Send `msg` to PE `to` (non-blocking; the transport buffers).
    pub fn send(&self, to: usize, msg: Vec<u8>) {
        self.meter_send(to, msg.len());
        self.transport.send(to, msg).unwrap_or_else(|e| panic!("send to {to}: {e}"));
    }

    /// Send a borrowed message — wire transports copy straight into
    /// their buffered writer, no intermediate allocation.
    pub fn send_bytes(&self, to: usize, msg: &[u8]) {
        self.meter_send(to, msg.len());
        self.transport.send_bytes(to, msg).unwrap_or_else(|e| panic!("send to {to}: {e}"));
    }

    /// Receive the next message from PE `from` (blocking, FIFO per
    /// source).
    ///
    /// Flushes buffered sends first, so blocking here can never
    /// deadlock on bytes parked in this PE's own write buffers; this is
    /// the transport's collective-boundary flush point. Panics (aborting
    /// the SPMD job like an MPI error handler) if the peer is gone or
    /// the transport's receive timeout elapses.
    pub fn recv(&self, from: usize) -> Vec<u8> {
        self.transport.flush().unwrap_or_else(|e| panic!("flush: {e}"));
        let msg = self.transport.recv(from).unwrap_or_else(|e| panic!("recv from {from}: {e}"));
        if from != self.rank() {
            let p = &self.peers[from];
            p.bytes_recv.set(p.bytes_recv.get() + msg.len() as u64);
        }
        msg
    }

    /// Send one control word, encoded on the stack — no allocation.
    fn send_u64(&self, to: usize, x: u64) {
        self.send_bytes(to, &x.to_le_bytes());
    }

    fn recv_u64(&self, from: usize) -> u64 {
        let buf = self.recv(from);
        u64::from_le_bytes(buf.as_slice().try_into().expect("8-byte control word"))
    }

    // ---------------------------------------------------------------
    // Collectives
    // ---------------------------------------------------------------

    /// Dissemination barrier: `⌈log2 P⌉` rounds.
    pub fn barrier(&self) {
        let mut dist = 1;
        while dist < self.size() {
            let to = (self.rank() + dist) % self.size();
            let from = (self.rank() + self.size() - dist) % self.size();
            self.send_bytes(to, &[]);
            let _ = self.recv(from);
            dist <<= 1;
        }
    }

    /// Broadcast `msg` from `root` to everyone (binomial tree,
    /// `⌈log2 P⌉` depth).
    ///
    /// In the rotated rank space (root = 0) the parent of `v > 0` is
    /// `v` with its lowest set bit cleared, and the children of `v` are
    /// `v + 2^k` for all `2^k` below that bit (all powers of two for
    /// the root).
    pub fn broadcast(&self, root: usize, msg: Vec<u8>) -> Vec<u8> {
        let size = self.size();
        let vrank = (self.rank() + size - root) % size;
        let data = if vrank == 0 {
            msg
        } else {
            let parent_v = vrank & (vrank - 1);
            self.recv((parent_v + root) % size)
        };
        let child_bit_limit = if vrank == 0 { size } else { vrank & vrank.wrapping_neg() };
        let mut b = 1;
        while b < child_bit_limit {
            let child_v = vrank + b;
            if child_v < size {
                self.send_bytes((child_v + root) % size, &data);
            }
            b <<= 1;
        }
        // The root and interior tree nodes end the collective on a
        // send: flush so children never wait on locally parked frames.
        self.transport.flush().unwrap_or_else(|e| panic!("flush: {e}"));
        data
    }

    /// Gather everyone's `msg` at `root`; non-roots get an empty vec.
    #[allow(clippy::needless_range_loop)] // rank loop skips self by index
    pub fn gather(&self, root: usize, msg: Vec<u8>) -> Vec<Vec<u8>> {
        if self.rank() == root {
            let mut out = vec![Vec::new(); self.size()];
            out[root] = msg;
            for i in 0..self.size() {
                if i != root {
                    out[i] = self.recv(i);
                }
            }
            out
        } else {
            self.send(root, msg);
            // Non-roots end the collective on a send: flush so the
            // root never waits on locally parked frames.
            self.transport.flush().unwrap_or_else(|e| panic!("flush: {e}"));
            Vec::new()
        }
    }

    /// Allgather: everyone receives everyone's message, indexed by rank.
    pub fn allgather(&self, msg: Vec<u8>) -> Vec<Vec<u8>> {
        // Simple ring: P-1 rounds, each forwarding one original.
        let size = self.size();
        let mut out = vec![Vec::new(); size];
        out[self.rank()] = msg;
        for round in 1..size {
            let to = (self.rank() + 1) % size;
            let from = (self.rank() + size - 1) % size;
            // forward the message that originated `round-1` hops back
            let orig = (self.rank() + size - (round - 1)) % size;
            self.send_bytes(to, &out[orig]);
            let recv_orig = (self.rank() + size - round) % size;
            out[recv_orig] = self.recv(from);
        }
        out
    }

    /// Allgather of one `u64` per PE (stack-encoded ring — no
    /// per-message allocation on wire transports).
    pub fn allgather_u64(&self, x: u64) -> Vec<u64> {
        let size = self.size();
        let mut out = vec![0u64; size];
        out[self.rank()] = x;
        for round in 1..size {
            let to = (self.rank() + 1) % size;
            let from = (self.rank() + size - 1) % size;
            let orig = (self.rank() + size - (round - 1)) % size;
            self.send_u64(to, out[orig]);
            let recv_orig = (self.rank() + size - round) % size;
            out[recv_orig] = self.recv_u64(from);
        }
        out
    }

    /// Allreduce of a `u64` with an associative, commutative `op`.
    pub fn allreduce_u64(&self, x: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        self.allgather_u64(x).into_iter().reduce(&op).expect("size >= 1")
    }

    /// Sum-allreduce convenience.
    pub fn allreduce_sum(&self, x: u64) -> u64 {
        self.allreduce_u64(x, |a, b| a.wrapping_add(b))
    }

    /// Max-allreduce convenience.
    pub fn allreduce_max(&self, x: u64) -> u64 {
        self.allreduce_u64(x, |a, b| a.max(b))
    }

    /// Logical-and allreduce (for "are we all done?" loops).
    pub fn allreduce_and(&self, x: bool) -> bool {
        self.allreduce_u64(x as u64, |a, b| a & b) == 1
    }

    /// Exclusive prefix sum of `x` over ranks (`rank 0 gets 0`).
    pub fn exscan_sum(&self, x: u64) -> u64 {
        self.allgather_u64(x).iter().take(self.rank()).sum()
    }

    /// Personalized all-to-all: `msgs[j]` goes to PE `j`; returns what
    /// each PE sent us, indexed by source rank.
    ///
    /// Sends happen before receives; unbounded transport buffering
    /// makes this deadlock-free without MPI's internal buffering
    /// concerns.
    #[allow(clippy::needless_range_loop)] // rank loop skips self by index
    pub fn alltoallv(&self, msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(msgs.len(), self.size(), "need exactly one message per PE");
        let mut out = vec![Vec::new(); self.size()];
        for (j, m) in msgs.into_iter().enumerate() {
            if j == self.rank() {
                out[j] = m; // self-delivery without the transport round-trip
            } else {
                self.send(j, m);
            }
        }
        for i in 0..self.size() {
            if i != self.rank() {
                out[i] = self.recv(i);
            }
        }
        out
    }
}

/// Encode a `u64` slice little-endian into a fresh buffer.
pub fn encode_u64s(xs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    encode_u64s_into(xs, &mut out);
    out
}

/// Encode a `u64` slice little-endian into `out` (cleared first) —
/// reuse one buffer across messages to skip the per-message allocation.
pub fn encode_u64s_into(xs: &[u64], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(xs.len() * 8);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Decode a little-endian `u64` buffer into a fresh vector.
pub fn decode_u64s(buf: &[u8]) -> Vec<u64> {
    let mut out = Vec::with_capacity(buf.len() / 8);
    decode_u64s_into(buf, &mut out);
    out
}

/// Decode a little-endian `u64` buffer into `out` (cleared first).
pub fn decode_u64s_into(buf: &[u8], out: &mut Vec<u64>) {
    assert_eq!(buf.len() % 8, 0, "u64 buffer length must be a multiple of 8");
    out.clear();
    out.reserve(buf.len() / 8);
    out.extend(buf.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;

    #[test]
    fn u64_codec_roundtrip() {
        let xs = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        assert_eq!(decode_u64s(&encode_u64s(&xs)), xs);
    }

    #[test]
    fn u64_codec_reuses_buffers() {
        let mut buf = Vec::new();
        let mut out = Vec::new();
        for xs in [vec![1u64, 2, 3], vec![u64::MAX], vec![]] {
            encode_u64s_into(&xs, &mut buf);
            assert_eq!(buf.len(), xs.len() * 8);
            decode_u64s_into(&buf, &mut out);
            assert_eq!(out, xs);
        }
    }

    #[test]
    fn p2p_send_recv() {
        let results = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send(1, vec![1, 2, 3]);
                c.recv(1)
            } else {
                let got = c.recv(0);
                c.send(0, vec![9]);
                got
            }
        });
        assert_eq!(results[0], vec![9]);
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn barrier_all_sizes() {
        for p in 1..=9 {
            run_cluster(p, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in 1..=8 {
            for root in 0..p {
                let results = run_cluster(p, move |c| {
                    let msg = if c.rank() == root { vec![42, root as u8] } else { Vec::new() };
                    c.broadcast(root, msg)
                });
                for r in results {
                    assert_eq!(r, vec![42, root as u8]);
                }
            }
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        for p in 1..=8 {
            let results = run_cluster(p, |c| c.allgather(vec![c.rank() as u8; c.rank() + 1]));
            for r in results {
                for (i, m) in r.iter().enumerate() {
                    assert_eq!(m, &vec![i as u8; i + 1]);
                }
            }
        }
    }

    #[test]
    fn reductions_and_scan() {
        let results = run_cluster(5, |c| {
            let sum = c.allreduce_sum(c.rank() as u64 + 1);
            let max = c.allreduce_max(c.rank() as u64);
            let and_all = c.allreduce_and(true);
            let and_one = c.allreduce_and(c.rank() != 2);
            let ex = c.exscan_sum(c.rank() as u64 + 1);
            (sum, max, and_all, and_one, ex)
        });
        for (rank, (sum, max, and_all, and_one, ex)) in results.into_iter().enumerate() {
            assert_eq!(sum, 15);
            assert_eq!(max, 4);
            assert!(and_all);
            assert!(!and_one);
            assert_eq!(ex, (1..=rank as u64).sum::<u64>());
        }
    }

    #[test]
    fn alltoallv_permutes() {
        let p = 6;
        let results = run_cluster(p, move |c| {
            let msgs: Vec<Vec<u8>> = (0..p).map(|j| vec![c.rank() as u8, j as u8, 7]).collect();
            c.alltoallv(msgs)
        });
        for (me, r) in results.into_iter().enumerate() {
            for (src, m) in r.into_iter().enumerate() {
                assert_eq!(m, vec![src as u8, me as u8, 7]);
            }
        }
    }

    #[test]
    fn counters_meter_remote_traffic_only() {
        let results = run_cluster(2, |c| {
            c.send(c.rank(), vec![0; 100]); // self: free
            let _ = c.recv(c.rank());
            c.send(1 - c.rank(), vec![0; 50]);
            let _ = c.recv(1 - c.rank());
            c.counters()
        });
        for c in results {
            assert_eq!(c.bytes_sent, 50);
            assert_eq!(c.bytes_recv, 50);
            assert_eq!(c.messages, 1);
        }
    }

    #[test]
    fn per_peer_metering_sums_to_totals() {
        let p = 3;
        let results = run_cluster(p, move |c| {
            // Send j+1 bytes to each peer j; receive theirs.
            for j in 0..p {
                if j != c.rank() {
                    c.send(j, vec![0; j + 1]);
                }
            }
            for j in 0..p {
                if j != c.rank() {
                    let _ = c.recv(j);
                }
            }
            (0..p).map(|j| c.peer_counters(j)).collect::<Vec<_>>()
        });
        for (me, peers) in results.into_iter().enumerate() {
            let mut sum = CommCounters::default();
            for (j, pc) in peers.iter().enumerate() {
                if j == me {
                    assert_eq!(*pc, CommCounters::default(), "self-traffic is free");
                } else {
                    assert_eq!(pc.bytes_sent, j as u64 + 1, "PE {me} -> {j}");
                    assert_eq!(pc.bytes_recv, me as u64 + 1, "PE {me} <- {j}");
                    assert_eq!(pc.messages, 1);
                }
                sum = sum.merge(pc);
            }
            let expect_sent: u64 = (0..p).filter(|&j| j != me).map(|j| j as u64 + 1).sum();
            assert_eq!(sum.bytes_sent, expect_sent);
        }
    }
}
