//! Cluster runtime: run an SPMD function over a set of communicator
//! endpoints.
//!
//! [`run_cluster`] substitutes for the paper's 200-node InfiniBand
//! cluster plus MVAPICH: each PE is an OS thread running the same SPMD
//! function with its own [`Communicator`] endpoint over the in-process
//! [`LocalTransport`] mesh. [`run_cluster_over`] does the same over
//! *any* pre-built transport endpoints (used by the TCP loopback tests
//! and benchmarks); the true multi-process deployment instead runs one
//! [`run_cluster`]-less rank per process via `demsort-worker`.
//!
//! Panics in any PE propagate to the caller after all PEs have been
//! joined, so test failures surface cleanly. Communication failures do
//! *not* panic: collectives return `Result`, so an SPMD closure
//! typically returns `Result<T>` and the caller inspects the per-rank
//! outcomes (a dead peer yields `Error::Comm` on every surviving
//! rank).

use crate::comm::Communicator;
use crate::transport::LocalTransport;

/// Build the `P × P` in-process channel mesh and hand each PE its
/// endpoint.
pub fn build_mesh(p: usize) -> Vec<Communicator> {
    LocalTransport::mesh(p).into_iter().map(|t| Communicator::new(Box::new(t))).collect()
}

/// Run `f` as an SPMD program on `p` PE threads over the in-process
/// channel mesh; returns the per-rank results in rank order.
///
/// `f` receives the PE's [`Communicator`]. If any PE panics, this
/// function panics after joining all threads (mirroring an MPI job
/// abort).
pub fn run_cluster<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Communicator) -> T + Send + Sync,
{
    run_cluster_over(build_mesh(p), f)
}

/// Run `f` as an SPMD program, one thread per pre-built endpoint
/// (endpoints must be in rank order); returns per-rank results in rank
/// order.
///
/// This is the transport-generic sibling of [`run_cluster`]: pass
/// communicators over [`LocalTransport`] endpoints for the in-process
/// cluster, or over [`TcpTransport`](crate::tcp::TcpTransport)
/// endpoints (e.g. from
/// [`tcp::loopback_mesh`](crate::tcp::loopback_mesh)) to exercise the
/// full wire path within one process.
pub fn run_cluster_over<T, F>(comms: Vec<Communicator>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Communicator) -> T + Send + Sync,
{
    let p = comms.len();
    debug_assert!(comms.iter().enumerate().all(|(i, c)| c.rank() == i), "rank order");
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                std::thread::Builder::new()
                    .name(format!("demsort-pe-{rank}"))
                    .stack_size(8 << 20)
                    .spawn_scoped(s, move || f(comm))
                    .expect("spawn PE thread")
            })
            .collect();
        let mut results = Vec::with_capacity(p);
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(v) => results.push(v),
                Err(e) => panic_payload = Some(e),
            }
        }
        if let Some(e) = panic_payload {
            std::panic::resume_unwind(e);
        }
        results
    })
}

/// Run `f` over a freshly bootstrapped TCP loopback mesh of `p`
/// single-process ranks — the full wire path (framing, handshake,
/// buffered writers, reader threads) without spawning processes.
pub fn run_cluster_tcp<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Communicator) -> T + Send + Sync,
{
    let comms = crate::tcp::loopback_mesh(p, crate::tcp::TcpOptions::default())
        .expect("bootstrap loopback TCP mesh")
        .into_iter()
        .map(|t| Communicator::new(Box::new(t)))
        .collect();
    run_cluster_over(comms, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let results = run_cluster(7, |c| c.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn single_pe_cluster_works() {
        let results = run_cluster(1, |c| {
            c.barrier().expect("barrier");
            assert_eq!(c.size(), 1);
            c.allreduce_sum(5).expect("allreduce")
        });
        assert_eq!(results, vec![5]);
    }

    #[test]
    #[should_panic(expected = "pe 3 exploded")]
    fn pe_panic_propagates() {
        run_cluster(5, |c| {
            if c.rank() == 3 {
                panic!("pe 3 exploded");
            }
            // Others may block on a barrier that never completes if we
            // are unlucky; avoid that by not communicating here.
        });
    }

    #[test]
    fn large_cluster_spawns() {
        let results = run_cluster(64, |c| {
            c.barrier().expect("barrier");
            c.allreduce_sum(1).expect("allreduce")
        });
        assert!(results.iter().all(|&x| x == 64));
    }
}
