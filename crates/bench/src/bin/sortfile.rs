//! `sortfile` — externally sort a file of SortBenchmark records.
//!
//! ```text
//! sortfile [--transport local|tcp] [--algo canonical|striped]
//!          [--pes P] [--mem-mib M] [--block-kib K] [--disks D]
//!          [--seed S] [--comm-timeout MS] [--cores C]
//!          [--worker-bin PATH] INPUT OUTPUT
//! ```
//!
//! The file is split evenly over `P` PEs and sorted; OUTPUT is
//! globally sorted either way. `--mem-mib` bounds each PE's memory, so
//! files much larger than `P × M` are sorted genuinely externally.
//!
//! `--algo` selects the paper's algorithm: `canonical`
//! (CANONICALMERGESORT, Section IV — per-PE outputs concatenate into
//! OUTPUT) or `striped` (mergesort with global striping, Section III —
//! the globally striped blocks interleave into OUTPUT).
//!
//! `--transport` selects the cluster substrate:
//!
//! * `local` (default) — the in-process cluster: one thread per PE
//!   over the channel mesh.
//! * `tcp` — the multi-process cluster: one `demsort-worker` process
//!   per rank over the loopback TCP mesh (`--ranks` is an alias for
//!   `--pes` in this mode). Identical SPMD code path, identical
//!   counters, real process isolation. The job-building flags are the
//!   same as `demsort-launch`'s (shared via `demsort_bench::procs`).

use demsort_bench::procs::{launch_and_report, TcpJobCli};
use demsort_core::canonical::sort_cluster;
use demsort_core::recio::read_records;
use demsort_core::striped::{read_striped_blocks, striped_sort_cluster};
use demsort_types::{Record as _, Record100, SortAlgo, SortConfig};
use std::io::{Read, Seek, SeekFrom, Write};

fn main() {
    const BIN: &str = "sortfile";
    let mut cli = TcpJobCli::default();
    let mut transport = "local".to_string();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if cli.try_flag(BIN, &a, &mut args) {
            continue;
        }
        match a.as_str() {
            "--transport" => {
                transport = args.next().unwrap_or_else(|| die("--transport local|tcp"))
            }
            "--help" | "-h" => {
                println!(
                    "sortfile [--transport local|tcp] [flags] INPUT OUTPUT\n{}",
                    TcpJobCli::FLAG_HELP
                );
                return;
            }
            other => positional.push(other.to_string()),
        }
    }
    let [input, output] = positional.as_slice() else {
        die("usage: sortfile [--transport local|tcp] [flags] INPUT OUTPUT (see --help)");
    };

    match transport.as_str() {
        "local" => {
            // The same job config the TCP path would ship, validated the
            // same way (bad --pool-blocks etc. die with the config error).
            let job = cli.job(input, output);
            let cfg =
                SortConfig::new(job.machine, job.algo).unwrap_or_else(|e| die(&e.to_string()));
            match cli.algorithm {
                SortAlgo::Canonical => sort_local(cfg, input, output),
                SortAlgo::Striped => sort_local_striped(cfg, input, output),
            }
        }
        "tcp" => {
            let job = cli.job(input, output);
            let worker = cli.worker(BIN);
            launch_and_report(BIN, &job, &worker)
        }
        other => die(&format!("unknown transport {other} (expected local or tcp)")),
    }
}

/// Validate the input file and split it into per-PE shard loaders (the
/// same `⌊i·n/p⌋` boundaries the TCP workers use).
fn shard_loader(input: &str) -> (usize, impl Fn(usize, usize) -> Vec<Record100> + Send + Sync) {
    let meta = std::fs::metadata(input).unwrap_or_else(|e| die(&format!("stat {input}: {e}")));
    if !meta.len().is_multiple_of(Record100::BYTES as u64) {
        die(&format!("input {input} must be whole 100-byte records"));
    }
    let total_records = (meta.len() / Record100::BYTES as u64) as usize;
    let input_path = input.to_string();
    let load = move |pe: usize, p: usize| {
        let shard = demsort_types::ranks::owned_range(pe, p, total_records as u64);
        let mut f = std::fs::File::open(&input_path).expect("open input");
        f.seek(SeekFrom::Start(shard.start * Record100::BYTES as u64)).expect("seek");
        let mut bytes = vec![0u8; (shard.end - shard.start) as usize * Record100::BYTES];
        f.read_exact(&mut bytes).expect("read shard");
        let mut recs = Vec::with_capacity((shard.end - shard.start) as usize);
        Record100::decode_slice(&bytes, &mut recs);
        recs
    };
    (total_records, load)
}

/// The in-process cluster: one thread per PE over the channel mesh.
fn sort_local(cfg: SortConfig, input: &str, output: &str) {
    let (total_records, load) = shard_loader(input);
    let pes = cfg.machine.pes;
    eprintln!(
        "sorting {total_records} records on {pes} in-process PEs ({} each)",
        demsort_types::fmtsize::fmt_bytes(cfg.machine.mem_bytes_per_pe as u64)
    );
    let outcome = sort_cluster::<Record100, _>(&cfg, load).unwrap_or_else(|e| {
        eprintln!("sortfile: {e}");
        std::process::exit(1);
    });

    // Concatenate the canonical outputs: globally sorted by key.
    let out =
        std::fs::File::create(output).unwrap_or_else(|e| die(&format!("create {output}: {e}")));
    let mut out = std::io::BufWriter::new(out);
    let mut buf = vec![0u8; Record100::BYTES];
    for (pe, o) in outcome.per_pe.iter().enumerate() {
        let recs = read_records::<Record100>(outcome.storage.pe(pe), &o.output.run, o.output.elems)
            .expect("read output");
        for rec in recs {
            rec.encode(&mut buf);
            out.write_all(&buf).expect("write");
        }
    }
    out.flush().expect("flush");
    eprintln!(
        "done: {} runs, I/O volume {:.2} N, communication {:.2} N",
        outcome.per_pe[0].runs,
        outcome.report.io_volume_over_n(),
        outcome.report.comm_volume_over_n(),
    );
}

/// The in-process striped sort (Section III): globally striped output
/// read back through the cluster block service in block order.
fn sort_local_striped(cfg: SortConfig, input: &str, output: &str) {
    let (total_records, load) = shard_loader(input);
    let pes = cfg.machine.pes;
    eprintln!(
        "striped-sorting {total_records} records on {pes} in-process PEs ({} each)",
        demsort_types::fmtsize::fmt_bytes(cfg.machine.mem_bytes_per_pe as u64)
    );
    let outcome = striped_sort_cluster::<Record100, _>(&cfg, load, None).unwrap_or_else(|e| {
        eprintln!("sortfile: {e}");
        std::process::exit(1);
    });

    // Stream the globally striped output through the core block
    // reader: global block order, bounded read-ahead window, so memory
    // stays O(window · B) — not O(N) — while the async engine overlaps
    // reads across every PE's disks (blocks hold raw encoded records,
    // so bytes go straight to the file).
    let run = &outcome.per_pe[0].output;
    let out =
        std::fs::File::create(output).unwrap_or_else(|e| die(&format!("create {output}: {e}")));
    let mut out = std::io::BufWriter::new(out);
    read_striped_blocks(&outcome.storage, run, Record100::BYTES, |bytes| {
        out.write_all(bytes).map_err(|e| demsort_types::Error::io(format!("write {output}: {e}")))
    })
    .unwrap_or_else(|e| die(&e.to_string()));
    out.flush().expect("flush");
    eprintln!(
        "done: {} runs, {} merge passes, I/O volume {:.2} N, communication {:.2} N",
        outcome.per_pe[0].runs,
        outcome.per_pe[0].passes,
        outcome.report.io_volume_over_n(),
        outcome.report.comm_volume_over_n(),
    );
}

fn die(msg: &str) -> ! {
    demsort_bench::procs::cli_die("sortfile", msg)
}
