//! # demsort-types
//!
//! Shared vocabulary types for the `demsort` suite, a reproduction of
//! *"Scalable Distributed-Memory External Sorting"* (Rahn, Sanders,
//! Singler; ICDE 2010).
//!
//! This crate is dependency-free and holds everything the substrate and
//! algorithm crates need to agree on:
//!
//! * [`Record`] / [`Key`] — fixed-size sortable records with bulk
//!   encode/decode ([`Element16`] is the paper's 16-byte element with a
//!   64-bit key, [`Record100`] the SortBenchmark 100-byte record with a
//!   10-byte key),
//! * [`MachineConfig`] / [`AlgoConfig`] — the machine parameters `P`,
//!   `M`, `B`, `D` of the paper's Table I and the algorithm switches
//!   (randomization, sampling, overlap),
//! * [`PhaseStats`] and friends — per-PE, per-phase I/O, communication,
//!   and CPU counters that the cost model turns into cluster times,
//! * rank arithmetic for the canonical output format (PE `i` holds the
//!   elements of global ranks `i·N/P .. (i+1)·N/P`).

pub mod buf;
pub mod config;
pub mod counters;
pub mod error;
pub mod fmtsize;
pub mod json;
pub mod ranks;
pub mod record;
pub mod trace;
pub mod wire;

pub use buf::{BufferPool, PoolCounters};
pub use config::{AlgoConfig, JobConfig, MachineConfig, SortAlgo, SortConfig};
pub use counters::{CommCounters, CpuCounters, IoCounters, Phase, PhaseStats, SortReport};
pub use error::{Error, Result};
pub use record::{Element16, Key, Key10, Record, Record100};
pub use trace::{ProgressFrame, TraceEv, TraceRecord, Tracer};
