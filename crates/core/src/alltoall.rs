//! Phase 2b: the memory-bounded external all-to-all (Section IV-C).
//!
//! After multiway selection, every PE knows, per run, the run-global
//! range it must own. Data already in place stays on disk untouched
//! (this is why Figure 5's all-to-all I/O volume is tiny for random
//! input); everything else is read, shipped, and written to fresh local
//! blocks.
//!
//! Two problems relative to a plain `MPI_Alltoallv` (quoting the
//! paper):
//!
//! * "each PE might have to communicate more data than fits into its
//!   local memory. We solve this problem by splitting the external
//!   all-to-all into `k` internal memory suboperations by logically
//!   splitting the data sent to a receiver into `k` (almost)
//!   equally-sized parts."
//! * "the data has to be collected from `R` different runs. We
//!   therefore assemble the submessages by consuming all the
//!   participating data of run `i` before switching to run `i + 1`."
//!
//! The receiver writes each received piece as a *fragment* — a fresh
//! block-aligned mini-run per `(run, source, suboperation)`. Fragment
//! tails are partially filled blocks, the paper's `O(R·P')` space/I/O
//! overhead ("these partially filled blocks have to be written out to
//! disk"); `P'` stays small under randomization, which is exactly the
//! effect Figure 5 measures.
//!
//! In-place operation: sent blocks are recycled as soon as every
//! element they hold has been shipped (monotone per-run cursors), so
//! received fragments reuse them.

use crate::extselect::RunSplitters;
use crate::recio::records_per_block;
use crate::rundir::{slice_run, RunDirectory};
use demsort_net::{chunked_alltoallv, decode_u64s, encode_u64s, Communicator, MPI_VOLUME_LIMIT};
use demsort_storage::{BlockId, PeStorage, Run, RunWriter};
use demsort_types::{Record, Result, SortConfig};

/// One sorted piece of a run on local disk after redistribution.
#[derive(Clone, Debug)]
pub enum MergeFragment {
    /// Freshly written fragment (from a received piece).
    Received {
        /// The fragment's blocks.
        run: Run,
        /// Records in the fragment.
        elems: u64,
    },
    /// A still-on-disk range of this PE's original slice.
    Retained {
        /// The original slice's blocks.
        run: Run,
        /// Total records in the slice.
        slice_elems: u64,
        /// First retained record.
        start: u64,
        /// One past the last retained record.
        end: u64,
    },
}

impl MergeFragment {
    /// Records this fragment contributes.
    pub fn elems(&self) -> u64 {
        match self {
            MergeFragment::Received { elems, .. } => *elems,
            MergeFragment::Retained { start, end, .. } => end - start,
        }
    }
}

/// Phase-3 input for one run: fragments whose concatenation is this
/// PE's sorted piece of the run.
#[derive(Clone, Debug, Default)]
pub struct MergeInput {
    /// Fragments in run order.
    pub fragments: Vec<MergeFragment>,
}

impl MergeInput {
    /// Total records across fragments.
    pub fn elems(&self) -> u64 {
        self.fragments.iter().map(|f| f.elems()).sum()
    }
}

/// Result of the external all-to-all on one PE.
#[derive(Clone, Debug, Default)]
pub struct AllToAllOutcome {
    /// Per run, the fragments to merge in phase 3.
    pub merge_inputs: Vec<MergeInput>,
    /// Slice blocks neither shipped-and-recycled nor covered by a
    /// retained range (empty-retained boundary blocks); the driver
    /// frees them after phase 3.
    pub stragglers: Vec<BlockId>,
    /// Number of distinct PEs this PE received data from (`P'`).
    pub sources_seen: usize,
    /// Number of suboperations (`k`).
    pub subops: usize,
}

/// Allgather every PE's splitter vector (each PE computed its own rank's
/// positions via external multiway selection).
///
/// # Errors
/// [`Error::Comm`](demsort_types::Error) if the allgather fails or a
/// peer's splitter message is malformed.
pub fn exchange_splitters(comm: &Communicator, mine: &RunSplitters) -> Result<Vec<RunSplitters>> {
    comm.allgather(encode_u64s(&mine.positions))?
        .into_iter()
        .map(|buf| Ok(RunSplitters { positions: decode_u64s(&buf)? }))
        .collect()
}

/// Per-destination send state for one run: the local range to ship and
/// a monotone cursor.
#[derive(Clone, Debug)]
struct Segment {
    run: usize,
    /// Range in local-slice element coordinates.
    start: u64,
    end: u64,
    cursor: u64,
}

impl Segment {
    fn remaining(&self) -> u64 {
        self.end - self.cursor
    }
}

/// Execute the external all-to-all. Collective.
///
/// `all_splitters[q].positions[j]` is the run-global position where
/// PE `q`'s data begins in run `j` (from [`exchange_splitters`]).
pub fn external_alltoall<R: Record + Ord>(
    comm: &Communicator,
    st: &PeStorage,
    cfg: &SortConfig,
    dir: &RunDirectory<R>,
    all_splitters: &[RunSplitters],
) -> Result<AllToAllOutcome> {
    let p = comm.size();
    let me = comm.rank();
    let nruns = dir.num_runs();
    let rpb = records_per_block::<R>(st.block_bytes()) as u64;
    assert_eq!(all_splitters.len(), p);

    // My slice's run-global interval per run, and the local retained
    // range [lo, hi) per run.
    let mut retained = Vec::with_capacity(nruns);
    // Per destination, the ordered segments of my slices it receives.
    let mut segments: Vec<Vec<Segment>> = vec![Vec::new(); p];
    for j in 0..nruns {
        let meta = &dir.runs[j];
        let my_off = meta.offsets[me];
        let my_len = meta.slices[me].elems;
        let clamp = |g: u64| g.clamp(my_off, my_off + my_len) - my_off;
        for q in 0..p {
            let g_lo = all_splitters[q].positions[j];
            let g_hi = if q + 1 < p { all_splitters[q + 1].positions[j] } else { meta.elems() };
            let (lo, hi) = (clamp(g_lo), clamp(g_hi));
            if q == me {
                retained.push((lo, hi));
            } else if lo < hi {
                segments[q].push(Segment { run: j, start: lo, end: hi, cursor: lo });
            }
        }
    }

    // Choose k so one suboperation's send volume fits the memory budget.
    let send_elems: u64 =
        segments.iter().map(|s| s.iter().map(Segment::remaining).sum::<u64>()).sum();
    let budget = ((cfg.machine.mem_bytes_per_pe as f64 * cfg.algo.alltoall_mem_fraction)
        / R::BYTES as f64)
        .max(1.0) as u64;
    let k_local = send_elems.div_ceil(budget).max(1);
    let k = comm.allreduce_max(k_local)? as usize;

    // Per-destination per-suboperation quota, in records.
    let quotas: Vec<u64> = segments
        .iter()
        .map(|segs| {
            let total: u64 = segs.iter().map(Segment::remaining).sum();
            total.div_ceil(k as u64).max(1)
        })
        .collect();

    // Free blocks of my slices as their last record ships (monotone
    // per-run frontier over the two sent regions of each slice).
    let mut freed_upto: Vec<(usize, usize)> = (0..nruns)
        .map(|j| {
            let (_lo, hi) = retained[j];
            // Upper region frees only blocks at or above this index.
            let upper_floor = hi.div_ceil(rpb) as usize;
            (0usize, upper_floor)
        })
        .collect();

    // Received fragments per (run, source): a source's pieces of a run
    // arrive across suboperations in position order, and within a run
    // everything from source q precedes everything from source q+1 (a
    // run is globally sorted across PE slices), so the phase-3 chain is
    // the source-major concatenation.
    let mut streams: Vec<Vec<Vec<MergeFragment>>> = vec![vec![Vec::new(); p]; nruns];
    let mut sources = vec![false; p];

    for _subop in 0..k {
        // ---- assemble submessages (consume runs in order) ----
        let mut msgs: Vec<Vec<u8>> = Vec::with_capacity(p);
        for q in 0..p {
            if q == me {
                msgs.push(Vec::new());
                continue;
            }
            msgs.push(assemble_submessage::<R>(st, dir, me, &mut segments[q], quotas[q])?);
        }

        // ---- recycle fully shipped blocks (in-place) ----
        for j in 0..nruns {
            let meta = &dir.runs[j];
            let (lo, hi) = retained[j];
            let slice = &meta.slices[me];
            let nblocks = slice.blocks.len();
            // Contiguous shipped prefix of the lower region [0, lo).
            let lower_done = region_frontier(&segments, j, 0, lo);
            let lower_limit = ((lower_done / rpb) as usize).min(nblocks);
            for idx in freed_upto[j].0..lower_limit {
                st.free_block(slice.blocks[idx]);
            }
            freed_upto[j].0 = freed_upto[j].0.max(lower_limit);
            // Contiguous shipped prefix of the upper region [hi, len).
            let upper_done = region_frontier(&segments, j, hi, slice.elems);
            // A fully shipped partial tail block is freeable too.
            let upper_limit = if upper_done == slice.elems && hi < slice.elems {
                nblocks
            } else {
                ((upper_done / rpb) as usize).min(nblocks)
            };
            for idx in freed_upto[j].1..upper_limit {
                st.free_block(slice.blocks[idx]);
            }
            freed_upto[j].1 = freed_upto[j].1.max(upper_limit);
        }

        // ---- exchange ----
        let received = chunked_alltoallv(comm, msgs, MPI_VOLUME_LIMIT)?;

        // ---- write received pieces as fragments ----
        for (src, buf) in received.into_iter().enumerate() {
            if src == me || buf.is_empty() {
                continue;
            }
            sources[src] = true;
            for (run, elems, payload) in parse_submessage::<R>(&buf) {
                debug_assert!(elems > 0, "empty pieces are never assembled");
                streams[run][src].push(write_fragment::<R>(st, payload, elems)?);
            }
        }
    }
    st.engine().drain()?;

    // ---- assemble phase-3 inputs and find straggler blocks ----
    let mut merge_inputs = Vec::with_capacity(nruns);
    let mut stragglers = Vec::new();
    for j in 0..nruns {
        let meta = &dir.runs[j];
        let slice = &meta.slices[me];
        let (lo, hi) = retained[j];
        let mut fragments = Vec::new();
        for (src, frags) in streams[j].iter_mut().enumerate() {
            if src == me {
                fragments.push(MergeFragment::Retained {
                    run: slice_run(slice, st.block_bytes()),
                    slice_elems: slice.elems,
                    start: lo,
                    end: hi,
                });
            }
            fragments.append(frags);
        }
        merge_inputs.push(MergeInput { fragments });

        // With an empty retained range, the block straddling the lo
        // boundary is freed by neither region nor the phase-3 reader.
        if lo == hi && lo % rpb != 0 && ((lo / rpb) as usize) < slice.blocks.len() {
            stragglers.push(slice.blocks[(lo / rpb) as usize]);
        }
    }

    Ok(AllToAllOutcome {
        merge_inputs,
        stragglers,
        sources_seen: sources.iter().filter(|&&s| s).count(),
        subops: k,
    })
}

/// Contiguous shipped prefix (in elements) of region `[lo, hi)` of run
/// `j` across all destinations' segment cursors.
fn region_frontier(segments: &[Vec<Segment>], j: usize, lo: u64, hi: u64) -> u64 {
    let mut frontier = hi;
    for segs in segments {
        for s in segs {
            if s.run == j && s.start >= lo && s.end <= hi && s.cursor < s.end {
                frontier = frontier.min(s.cursor);
            }
        }
    }
    frontier.max(lo)
}

/// Build one suboperation's message for a destination: header
/// `[count, (run, elems)*]` then the concatenated encoded records,
/// consuming the destination's segments (runs in order) up to `quota`.
fn assemble_submessage<R: Record>(
    st: &PeStorage,
    dir: &RunDirectory<R>,
    me: usize,
    segments: &mut [Segment],
    quota: u64,
) -> Result<Vec<u8>> {
    let mut pieces: Vec<(u32, u64)> = Vec::new();
    let mut payloads: Vec<Vec<R>> = Vec::new();
    let mut left = quota;
    for seg in segments.iter_mut() {
        if left == 0 {
            break;
        }
        let take = seg.remaining().min(left);
        if take == 0 {
            continue;
        }
        let slice = &dir.runs[seg.run].slices[me];
        let recs = crate::recio::RecordRunReader::<R>::with_range(
            st,
            slice_run(slice, st.block_bytes()),
            slice.elems,
            seg.cursor,
            seg.cursor + take,
            false, // recycling is handled by the monotone frontier
        )
        .read_to_vec()?;
        pieces.push((seg.run as u32, take));
        payloads.push(recs);
        seg.cursor += take;
        left -= take;
    }

    if pieces.is_empty() {
        return Ok(Vec::new()); // nothing this round: send no bytes at all
    }
    let payload_bytes: usize = payloads.iter().map(|p| p.len() * R::BYTES).sum();
    let mut out = Vec::with_capacity(4 + pieces.len() * 12 + payload_bytes);
    out.extend_from_slice(&(pieces.len() as u32).to_le_bytes());
    for (run, elems) in &pieces {
        out.extend_from_slice(&run.to_le_bytes());
        out.extend_from_slice(&elems.to_le_bytes());
    }
    let data_start = out.len();
    out.resize(data_start + payload_bytes, 0);
    let mut off = data_start;
    for recs in &payloads {
        R::encode_slice(recs, &mut out[off..off + recs.len() * R::BYTES]);
        off += recs.len() * R::BYTES;
    }
    Ok(out)
}

/// Parse a submessage into `(run, elems, payload)` pieces.
fn parse_submessage<R: Record>(buf: &[u8]) -> Vec<(usize, u64, &[u8])> {
    let count = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    let mut pieces = Vec::with_capacity(count);
    let mut hdr = 4;
    let mut data = 4 + count * 12;
    for _ in 0..count {
        let run = u32::from_le_bytes(buf[hdr..hdr + 4].try_into().expect("4 bytes")) as usize;
        let elems = u64::from_le_bytes(buf[hdr + 4..hdr + 12].try_into().expect("8 bytes"));
        let bytes = elems as usize * R::BYTES;
        pieces.push((run, elems, &buf[data..data + bytes]));
        hdr += 12;
        data += bytes;
    }
    pieces
}

/// Write a received piece as a fresh block-aligned fragment.
fn write_fragment<R: Record>(st: &PeStorage, payload: &[u8], elems: u64) -> Result<MergeFragment> {
    let block_bytes = st.block_bytes();
    let rpb = records_per_block::<R>(block_bytes);
    let mut w = RunWriter::new(st);
    for chunk in payload.chunks(rpb * R::BYTES) {
        // Stage each block in a pooled buffer (recycled once its write
        // retires); recycled buffers keep stale bytes, so zero the tail
        // past the chunk.
        let mut block = st.pool().get();
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()..].fill(0);
        st.pool().add_copied(chunk.len() as u64);
        w.push_block(block)?;
    }
    let mut run = w.finish()?;
    run.bytes = run.blocks.len() as u64 * block_bytes as u64;
    Ok(MergeFragment::Received { run, elems })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ClusterStorage;
    use crate::extselect::select_rank_external;
    use crate::recio::{read_records, RecordRunReader};
    use crate::rundir::build_directory;
    use crate::runform::{form_runs, ingest_input};
    use demsort_net::run_cluster;
    use demsort_types::{ranks, AlgoConfig, Element16, MachineConfig};
    use demsort_workloads::{generate_pe_input, InputSpec};
    use std::sync::Arc;

    /// Form runs, select exact boundaries, run the all-to-all, and
    /// return (storage, per-PE outcomes, per-PE expected run pieces).
    #[allow(clippy::type_complexity)]
    fn exchange(
        p: usize,
        local_n: usize,
        spec: InputSpec,
        algo: AlgoConfig,
    ) -> (Arc<ClusterStorage>, Vec<AllToAllOutcome>, Vec<Vec<Vec<Element16>>>) {
        let cfg = SortConfig::new(MachineConfig::tiny(p), algo).expect("valid");
        let storage = ClusterStorage::new_mem(&cfg.machine);
        let storage_ref = &storage;
        let cfg2 = cfg.clone();
        let results = run_cluster(p, move |c| {
            let st = storage_ref.pe(c.rank());
            let recs = generate_pe_input(spec, 13, c.rank(), p, local_n);
            let input = ingest_input(st, &recs).expect("ingest");
            let out = form_runs::<Element16>(&c, st, &cfg2, input, 1).expect("form");
            let dir = build_directory(&c, out.local).expect("directory");
            let n = dir.total_elems();
            let r = ranks::owned_range(c.rank(), p, n).start;
            let (mine, _) =
                select_rank_external(storage_ref, c.rank(), &dir, r, &cfg2.algo).expect("select");
            let all = exchange_splitters(&c, &mine).expect("exchange");
            // Reference: decode each run fully (before the exchange
            // frees blocks) and slice at the splitter positions.
            let nruns = dir.num_runs();
            let mut expected: Vec<Vec<Element16>> = Vec::with_capacity(nruns);
            for j in 0..nruns {
                let meta = &dir.runs[j];
                let mut whole: Vec<Element16> = Vec::new();
                for (pe, slice) in meta.slices.iter().enumerate() {
                    whole.extend(
                        read_records::<Element16>(
                            storage_ref.pe(pe),
                            &slice_run(slice, st.block_bytes()),
                            slice.elems,
                        )
                        .expect("read slice"),
                    );
                }
                let lo = all[c.rank()].positions[j] as usize;
                let hi = if c.rank() + 1 < p {
                    all[c.rank() + 1].positions[j] as usize
                } else {
                    whole.len()
                };
                expected.push(whole[lo..hi].to_vec());
            }
            let outcome =
                external_alltoall::<Element16>(&c, st, &cfg2, &dir, &all).expect("alltoall");
            (outcome, expected)
        });
        let (outcomes, expected) = results.into_iter().unzip();
        (storage, outcomes, expected)
    }

    /// Decode a merge input's fragments back into records.
    fn decode_input(st: &demsort_storage::PeStorage, mi: &MergeInput) -> Vec<Element16> {
        let mut out = Vec::new();
        for f in &mi.fragments {
            match f {
                MergeFragment::Received { run, elems } => {
                    out.extend(read_records::<Element16>(st, run, *elems).expect("read"));
                }
                MergeFragment::Retained { run, slice_elems, start, end } => {
                    out.extend(
                        RecordRunReader::<Element16>::with_range(
                            st,
                            run.clone(),
                            *slice_elems,
                            *start,
                            *end,
                            false,
                        )
                        .read_to_vec()
                        .expect("read range"),
                    );
                }
            }
        }
        out
    }

    fn check(p: usize, local_n: usize, spec: InputSpec, algo: AlgoConfig) {
        let (storage, outcomes, expected) = exchange(p, local_n, spec, algo);
        for (pe, (o, expect)) in outcomes.iter().zip(&expected).enumerate() {
            assert_eq!(o.merge_inputs.len(), expect.len(), "one input per run");
            for (j, (mi, want)) in o.merge_inputs.iter().zip(expect).enumerate() {
                let got = decode_input(storage.pe(pe), mi);
                assert_eq!(got.len(), want.len(), "PE {pe} run {j} piece size ({spec:?})");
                assert_eq!(&got, want, "PE {pe} run {j} piece content");
                assert!(
                    got.windows(2).all(|w| w[0].key <= w[1].key),
                    "PE {pe} run {j} piece must be sorted"
                );
            }
        }
    }

    #[test]
    fn delivers_exact_run_pieces_random_input() {
        check(3, 700, InputSpec::Uniform, AlgoConfig::default());
    }

    #[test]
    fn delivers_exact_run_pieces_worst_case() {
        for randomize in [true, false] {
            check(
                4,
                1024,
                InputSpec::Banded { block_elems: 16 },
                AlgoConfig { randomize, ..AlgoConfig::default() },
            );
        }
    }

    #[test]
    fn tiny_memory_budget_forces_many_suboperations() {
        let algo = AlgoConfig { alltoall_mem_fraction: 0.05, ..AlgoConfig::default() };
        let (_, outcomes, _) =
            exchange(3, 900, InputSpec::Banded { block_elems: 16 }, algo.clone());
        assert!(
            outcomes.iter().any(|o| o.subops > 1),
            "5% memory budget must split the exchange: {:?}",
            outcomes.iter().map(|o| o.subops).collect::<Vec<_>>()
        );
        // Correctness under the multi-suboperation path.
        check(3, 900, InputSpec::Banded { block_elems: 16 }, algo);
    }

    #[test]
    fn randomization_shrinks_sources_seen() {
        let worst = InputSpec::Banded { block_elems: 16 };
        let sources = |randomize: bool| {
            let (_, outcomes, _) =
                exchange(4, 1024, worst, AlgoConfig { randomize, ..AlgoConfig::default() });
            outcomes.iter().map(|o| o.sources_seen).max().unwrap_or(0)
        };
        // Without randomization, the banded worst case makes everyone
        // receive from everyone; P' is what the paper's O(R·P') space
        // overhead scales with.
        assert!(sources(false) >= 3, "worst case spreads sources");
    }

    #[test]
    fn submessage_roundtrip() {
        // parse(assemble(x)) == x at the wire-format level.
        let cfg = SortConfig::new(MachineConfig::tiny(1), AlgoConfig::default()).expect("valid");
        let storage = ClusterStorage::new_mem(&cfg.machine);
        let st = storage.pe(0);
        let recs: Vec<Element16> = (0..40).map(|i| Element16::new(i, i)).collect();
        let fr = crate::recio::write_records(st, &recs).expect("write");
        let dir = RunDirectory::<Element16> {
            runs: vec![crate::rundir::RunMeta {
                slices: vec![crate::rundir::SliceMeta {
                    elems: fr.elems,
                    blocks: fr.run.blocks.clone(),
                }],
                offsets: vec![0, fr.elems],
                samples: Vec::new(),
            }],
            local: vec![fr],
        };
        let mut segs = vec![Segment { run: 0, start: 5, end: 25, cursor: 5 }];
        let msg = assemble_submessage::<Element16>(st, &dir, 0, &mut segs, 12).expect("assemble");
        let pieces = parse_submessage::<Element16>(&msg);
        assert_eq!(pieces.len(), 1);
        let (run, elems, payload) = pieces[0];
        assert_eq!((run, elems), (0, 12));
        let mut decoded = Vec::new();
        Element16::decode_slice(payload, &mut decoded);
        assert_eq!(decoded, recs[5..17], "quota-limited piece from the cursor");
        assert_eq!(segs[0].cursor, 17);
    }
}
