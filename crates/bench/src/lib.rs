//! # demsort-bench
//!
//! The reproduction harness: one experiment per figure/table of the
//! paper's evaluation (Section VI), runnable through the `repro`
//! binary, plus shared plumbing for the criterion micro-benchmarks.
//!
//! ## Scale
//!
//! Experiments run the real algorithms on the in-process cluster at
//! `1/8192` of the paper's data volume while preserving every ratio
//! that shapes the results:
//!
//! | quantity | paper | here (simulated) |
//! |---|---|---|
//! | block size `B` | 8 MiB | 1 KiB |
//! | memory/PE `m` | 16 GiB (2048 blocks) | 2 MiB (2048 blocks) |
//! | data/PE | 100 GiB (6.25 m) | 12.5 MiB (6.25 m) |
//! | runs `R` | 7 | 7 |
//! | blocks/PE | 12 800 | 12 800 |
//!
//! Byte volumes are converted back to paper scale by the cost model
//! (`scale = 8192`); block-op counts and run structure are already
//! identical, so seek charges and phase shapes carry over directly.

pub mod experiments;
pub mod procs;
pub mod table;

use demsort_core::canonical::{sort_cluster, ClusterOutcome};
use demsort_simcost::CostModel;
use demsort_types::{AlgoConfig, Element16, MachineConfig, SortConfig};
use demsort_workloads::{generate_pe_input, InputSpec};

/// Experiment-wide scale and machine shape (see module docs).
#[derive(Clone, Debug)]
pub struct ExpScale {
    /// Simulated block size.
    pub block_bytes: usize,
    /// Simulated memory per PE.
    pub mem_bytes_per_pe: usize,
    /// Simulated data per PE.
    pub data_bytes_per_pe: usize,
    /// Disks per PE (paper: 4).
    pub disks_per_pe: usize,
    /// Intra-PE cores used by the algorithms *in the simulation* (1 —
    /// host cores are busy simulating PEs; the cost model credits the
    /// paper's 8).
    pub sim_cores: usize,
    /// Bytes on the paper's cluster per simulated byte.
    pub scale: f64,
}

impl Default for ExpScale {
    fn default() -> Self {
        Self {
            block_bytes: 1 << 10,
            mem_bytes_per_pe: (1 << 10) * 2048,
            data_bytes_per_pe: (1 << 10) * 2048 * 25 / 4, // 6.25 m
            disks_per_pe: 4,
            sim_cores: 1,
            scale: 8192.0,
        }
    }
}

impl ExpScale {
    /// The default scale but with quarter-size blocks — the paper's
    /// `B = 2 MiB` configuration of Figure 5.
    pub fn small_blocks() -> Self {
        let base = Self::default();
        Self { block_bytes: base.block_bytes / 4, ..base }
    }

    /// A faster, smaller preset for smoke tests (keeps `R ≈ 6.25` but
    /// shrinks memory to 128 blocks).
    pub fn smoke() -> Self {
        Self {
            block_bytes: 256,
            mem_bytes_per_pe: 256 * 128,
            data_bytes_per_pe: 256 * 128 * 25 / 4,
            disks_per_pe: 4,
            sim_cores: 1,
            scale: (100u64 << 30) as f64 / (256.0 * 128.0 * 25.0 / 4.0),
        }
    }

    /// Machine config for `pes` PEs.
    pub fn machine(&self, pes: usize) -> MachineConfig {
        MachineConfig {
            pes,
            disks_per_pe: self.disks_per_pe,
            block_bytes: self.block_bytes,
            mem_bytes_per_pe: self.mem_bytes_per_pe,
            cores_per_pe: self.sim_cores,
        }
    }

    /// Elements of 16 bytes per PE.
    pub fn elems_per_pe(&self) -> usize {
        self.data_bytes_per_pe / 16
    }

    /// Elements per block (the worst-case generator's band width).
    pub fn elems_per_block(&self) -> usize {
        self.block_bytes / 16
    }

    /// Cost model at this scale (against the paper's cluster).
    pub fn cost_model(&self, overlap: bool) -> CostModel {
        let mut m = CostModel::paper_scaled(self.scale);
        m.overlap = overlap;
        m
    }
}

/// Run CANONICALMERGESORT on `pes` PEs for `spec` input and return the
/// outcome (counters + per-PE stats).
pub fn run_canonical(
    scale: &ExpScale,
    pes: usize,
    spec: InputSpec,
    algo: AlgoConfig,
) -> ClusterOutcome<Element16> {
    let cfg = SortConfig::new(scale.machine(pes), algo).expect("valid experiment config");
    let local_n = scale.elems_per_pe();
    sort_cluster::<Element16, _>(&cfg, move |pe, p| {
        generate_pe_input(spec, 0xDE77_5047 ^ pes as u64, pe, p, local_n)
    })
    .expect("experiment sort")
}

/// The paper's worst-case input for this scale: bands the width of one
/// disk block.
pub fn worst_case(scale: &ExpScale) -> InputSpec {
    InputSpec::Banded { block_elems: scale.elems_per_block() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_matches_paper_ratios() {
        let s = ExpScale::default();
        let m = s.machine(4);
        assert_eq!(m.mem_blocks_per_pe(), 2048, "m/B = 2048 like 16 GiB / 8 MiB");
        assert_eq!(s.data_bytes_per_pe / s.mem_bytes_per_pe, 6, "⌊100/16⌋ runs");
        assert_eq!(s.data_bytes_per_pe / s.block_bytes, 12_800, "blocks per PE");
        let paper_per_pe = (100u64 << 30) as f64;
        assert!((s.scale * s.data_bytes_per_pe as f64 - paper_per_pe).abs() < 1e-6);
    }

    #[test]
    fn smoke_scale_sorts_and_reports() {
        let s = ExpScale::smoke();
        let outcome = run_canonical(&s, 2, InputSpec::Uniform, AlgoConfig::default());
        assert_eq!(outcome.per_pe.len(), 2);
        assert_eq!(outcome.per_pe[0].runs, 7, "R = ⌈6.25⌉");
        let io = outcome.report.io_volume_over_n();
        assert!((3.5..7.0).contains(&io), "two-pass external sort: {io}");
    }
}
