//! Per-PE execution context: storage for every PE, phase accounting.
//!
//! A PE owns its communicator endpoint and *operates on* its own
//! storage; peers' storage is reachable read-only for the remote probes
//! of external multiway selection (Section IV-A: "they have to request
//! data from remote disks"). In a real deployment those probes are
//! one-block RDMA gets / MPI request-reply pairs; here a probe reads
//! the peer's storage engine directly, so the I/O lands on the owning
//! PE's disks (exactly where the paper's bottleneck analysis puts it)
//! and the transferred bytes are charged to the prober as communication.

use demsort_storage::{Backend, DiskModel, MemBackend, PeStorage};
use demsort_types::{
    CommCounters, CpuCounters, IoCounters, MachineConfig, Phase, PhaseStats, SortConfig, SortReport,
};
use std::sync::Arc;

/// The storage of every PE in the cluster, shared between PE threads.
pub struct ClusterStorage {
    pes: Vec<PeStorage>,
}

impl ClusterStorage {
    /// In-memory storage for `cfg.pes` PEs (the experiment default).
    pub fn new_mem(cfg: &MachineConfig) -> Arc<Self> {
        Self::with_backends(cfg, |c| Arc::new(MemBackend::new(c.disks_per_pe)))
    }

    /// Storage with a custom backend per PE (files, fault injection).
    pub fn with_backends(
        cfg: &MachineConfig,
        mut make: impl FnMut(&MachineConfig) -> Arc<dyn Backend>,
    ) -> Arc<Self> {
        let pes = (0..cfg.pes)
            .map(|_| {
                PeStorage::with_backend(
                    cfg.disks_per_pe,
                    cfg.block_bytes,
                    DiskModel::paper(),
                    make(cfg),
                )
            })
            .collect();
        Arc::new(Self { pes })
    }

    /// Storage of PE `rank`.
    pub fn pe(&self, rank: usize) -> &PeStorage {
        &self.pes[rank]
    }

    /// Number of PEs.
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// `true` if the cluster has no PEs (never in practice).
    pub fn is_empty(&self) -> bool {
        self.pes.is_empty()
    }
}

/// Phase-by-phase counter recorder for one PE.
///
/// Phases are delimited by [`PhaseRecorder::finish_phase`], which
/// snapshots the cumulative I/O and communication counters and
/// attributes the delta (plus explicitly accumulated CPU work and any
/// extra communication such as remote selection probes) to the phase.
pub struct PhaseRecorder {
    rank: usize,
    stats: Vec<(Phase, PhaseStats)>,
    last_io: IoCounters,
    last_comm: CommCounters,
    pending_cpu: CpuCounters,
    pending_comm_extra: CommCounters,
    phase_started: std::time::Instant,
}

impl PhaseRecorder {
    /// Start recording for PE `rank` from the given counter baselines.
    pub fn new(rank: usize, io_now: IoCounters, comm_now: CommCounters) -> Self {
        Self {
            rank,
            stats: Vec::new(),
            last_io: io_now,
            last_comm: comm_now,
            pending_cpu: CpuCounters::default(),
            pending_comm_extra: CommCounters::default(),
            phase_started: std::time::Instant::now(),
        }
    }

    /// Accumulate CPU work into the current phase.
    pub fn add_cpu(&mut self, cpu: CpuCounters) {
        self.pending_cpu = self.pending_cpu.merge(&cpu);
    }

    /// Accumulate out-of-band communication (remote storage probes).
    pub fn add_comm(&mut self, comm: CommCounters) {
        self.pending_comm_extra = self.pending_comm_extra.merge(&comm);
    }

    /// Close the current phase, attributing counter deltas to `phase`.
    pub fn finish_phase(&mut self, phase: Phase, io_now: IoCounters, comm_now: CommCounters) {
        let mut cpu = std::mem::take(&mut self.pending_cpu);
        cpu.host_wall_ns += self.phase_started.elapsed().as_nanos() as u64;
        let stats = PhaseStats {
            io: io_now.delta_since(&self.last_io),
            comm: comm_now
                .delta_since(&self.last_comm)
                .merge(&std::mem::take(&mut self.pending_comm_extra)),
            cpu,
        };
        self.last_io = io_now;
        self.last_comm = comm_now;
        self.phase_started = std::time::Instant::now();
        self.stats.push((phase, stats));
    }

    /// This PE's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The recorded per-phase stats.
    pub fn into_stats(self) -> Vec<(Phase, PhaseStats)> {
        self.stats
    }
}

/// Assemble per-PE recorder outputs into a [`SortReport`].
pub fn assemble_report(
    cfg: &SortConfig,
    elements: u64,
    element_bytes: usize,
    runs: usize,
    per_pe: Vec<Vec<(Phase, PhaseStats)>>,
) -> SortReport {
    let mut report = SortReport::new(cfg.machine.pes, elements, element_bytes, runs);
    for (pe, phases) in per_pe.into_iter().enumerate() {
        for (phase, stats) in phases {
            report.record(pe, phase, stats);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_types::AlgoConfig;

    #[test]
    fn cluster_storage_shapes_from_config() {
        let cfg = MachineConfig::tiny(3);
        let cs = ClusterStorage::new_mem(&cfg);
        assert_eq!(cs.len(), 3);
        assert!(!cs.is_empty());
        assert_eq!(cs.pe(1).disks(), cfg.disks_per_pe);
        assert_eq!(cs.pe(2).block_bytes(), cfg.block_bytes);
    }

    #[test]
    fn recorder_attributes_deltas_per_phase() {
        let io0 = IoCounters::default();
        let comm0 = CommCounters::default();
        let mut rec = PhaseRecorder::new(0, io0, comm0);

        rec.add_cpu(CpuCounters { elements_sorted: 10, ..Default::default() });
        let io1 = IoCounters { bytes_read: 100, ..Default::default() };
        rec.finish_phase(Phase::RunFormation, io1, comm0);

        rec.add_comm(CommCounters { bytes_recv: 55, ..Default::default() });
        let io2 = IoCounters { bytes_read: 150, ..Default::default() };
        rec.finish_phase(Phase::MultiwaySelection, io2, comm0);

        let stats = rec.into_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, Phase::RunFormation);
        assert_eq!(stats[0].1.io.bytes_read, 100);
        assert_eq!(stats[0].1.cpu.elements_sorted, 10);
        assert_eq!(stats[1].1.io.bytes_read, 50, "second phase gets only its delta");
        assert_eq!(stats[1].1.comm.bytes_recv, 55, "probe traffic counted");
    }

    #[test]
    fn report_assembly_round_trips() {
        let cfg = SortConfig::new(MachineConfig::tiny(2), AlgoConfig::default()).expect("valid");
        let per_pe = vec![
            vec![(
                Phase::FinalMerge,
                PhaseStats {
                    io: IoCounters { bytes_written: 64, ..Default::default() },
                    ..Default::default()
                },
            )],
            vec![],
        ];
        let report = assemble_report(&cfg, 1000, 16, 2, per_pe);
        assert_eq!(report.pes, 2);
        assert_eq!(report.runs, 2);
        assert_eq!(report.get(0, Phase::FinalMerge).io.bytes_written, 64);
        assert_eq!(report.get(1, Phase::FinalMerge).io.bytes_written, 0);
    }
}
