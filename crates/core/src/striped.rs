//! Mergesort with global striping (Section III).
//!
//! The I/O-optimal sibling of CANONICALMERGESORT: runs and output are
//! striped over *all* `D` disks of the cluster ("subsequent blocks are
//! allocated on subsequent disks"), which makes every read and write
//! perfectly parallel but costs a communication for each of them —
//! "we need 4–5 communications for two passes of sorting".
//!
//! * **Run formation**: like phase 1 of the canonical algorithm, but
//!   the sorted run is written striped: block `g` of a run goes to disk
//!   `g mod D` (on PE `(g mod D) / disks_per_pe`), so the run's data is
//!   exchanged once more after the internal sort.
//! * **Merging**: up to `k_max` runs are merged per pass. The global
//!   *prediction sequence* — the smallest key of every block, recorded
//!   at write time — gives the exact order in which blocks are needed
//!   \[11\]\[14\]. A batch of the next `Θ(M/B)` blocks is fetched (each PE
//!   reads the blocks on its own disks) and **merged, not re-sorted**:
//!   the fetched blocks come from already sorted runs, so each PE
//!   feeds its per-run sorted sequences (plus the per-run carry tails
//!   of the previous batch) into a loser tree, and the merged prefix
//!   that is provably complete — smaller than every not-yet-merged
//!   block's first key — is redistributed canonically with one
//!   splitter-based exchange ([`parallel_sort_presorted`]: exact
//!   splitters, one all-to-all, a `P`-way merge) and written out
//!   striped. The rest stays buffered per run for the next batch (at
//!   most `B` elements per run remain unmerged, so carry-over is
//!   bounded). Merging costs `O(n log R)` comparisons per pass instead
//!   of the `O(n log n)` per batch that full batch sorting would pay —
//!   the internal-work bound that dominates throughput at scale.
//!
//! The result is a globally striped sorted sequence: block `g` of the
//! output holds elements `g·rpb ..`, on disk `g mod D` — emitted
//! pieces continue the round-robin striping where the previous piece
//! left off, so the per-disk block counts of the stitched output
//! differ by at most one.
//!
//! All block reads go through the location-transparent
//! [`ClusterStorage`] block service: the merge phase issues its batch
//! fetches asynchronously in the duality-optimal prefetch order
//! ([`duality_issue_order`], Appendix A), and the fetches for batch
//! `k+1` are issued **before** batch `k` is merged (double-buffered
//! prefetch — [`StripedOutcome::merge_events`] records the
//! interleaving), so the reads overlap the merge and the exchange.
//! [`read_striped`] reconstructs the output from *any single rank* —
//! blocks owned by peers are fetched over the wire in pipelined
//! per-owner batches.

use crate::ctx::{assemble_report, BlockFetch, ClusterStorage, PhaseRecorder};
use crate::merge::{merge_cpu, merge_k_below_into, merge_k_into};
use crate::psort::{parallel_sort, parallel_sort_presorted};
use crate::recio::records_per_block;
use crate::runform::{ingest_input, LocalInput};
use demsort_net::{chunked_alltoallv, run_cluster, Communicator, MPI_VOLUME_LIMIT};
use demsort_storage::{duality_issue_order, BlockId, PeStorage};
use demsort_types::{CpuCounters, Phase, PhaseStats, Record, Result, SortConfig, SortReport};
use std::sync::Arc;

/// A globally striped sorted sequence: block `g` lives on PE
/// `owners[g]` at `blocks[g]`, holding records
/// `[g·rpb, min((g+1)·rpb, elems))`; `first_keys[g]` is its smallest
/// key (the prediction sequence).
#[derive(Clone, Debug)]
pub struct StripedRun<K> {
    /// Owning PE per global block.
    pub owners: Vec<u32>,
    /// Local block id per global block.
    pub blocks: Vec<BlockId>,
    /// Prediction sequence: first key per global block.
    pub first_keys: Vec<K>,
    /// Valid records per block (interior blocks of stitched merge
    /// output can be partial, so counts are explicit).
    pub counts: Vec<u32>,
    /// Total records.
    pub elems: u64,
}

impl<K> StripedRun<K> {
    /// A run with no blocks and no records.
    pub fn empty() -> Self {
        Self {
            owners: Vec::new(),
            blocks: Vec::new(),
            first_keys: Vec::new(),
            counts: Vec::new(),
            elems: 0,
        }
    }
}

/// One step of the merge loop's fetch/merge interleaving, recorded in
/// [`StripedOutcome::merge_events`]. Batch indices restart at 0 for
/// each merge group (and each pass).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MergeEvent {
    /// Batch `b`'s block fetches were handed to the block service.
    Issued(usize),
    /// Batch `b`'s merged prefix finished its striped write.
    Emitted(usize),
}

/// Outcome of the striped sort on one PE.
pub struct StripedOutcome<R: Record> {
    /// The globally striped sorted output (identical on every PE).
    pub output: StripedRun<R::Key>,
    /// Number of initial runs.
    pub runs: usize,
    /// Number of merge passes (0 if a single run sufficed).
    pub passes: usize,
    /// CPU counters for this PE.
    pub cpu: CpuCounters,
    /// Per-phase measured counters: run formation (striped writes
    /// included), then — when merging happened — the merge passes
    /// under [`Phase::FinalMerge`].
    pub phases: Vec<(Phase, PhaseStats)>,
    /// Fetch/merge interleaving trace of the merge passes: overlap
    /// means `Issued(b+1)` precedes `Emitted(b)` (the next batch's
    /// reads are in flight while the current batch merges).
    pub merge_events: Vec<MergeEvent>,
}

/// Sort `input` into a globally striped output (Section III).
/// Collective. `k_max` bounds the merge fan-in (`None` = `M/B`).
///
/// `input` must reside on this rank's own storage
/// (`storage.pe(comm.rank())`); cross-rank block access — none during
/// the sort itself, all of it in [`read_striped`] — goes through
/// `storage`'s block service, so the identical call works on the
/// in-process cluster and on a multi-process single-rank view.
pub fn striped_mergesort<R: Record + Ord>(
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    input: LocalInput,
    cores: usize,
    k_max: Option<usize>,
) -> Result<StripedOutcome<R>> {
    let me = comm.rank();
    let st = storage.pe(me);
    let rpb = records_per_block::<R>(st.block_bytes());
    let bpr = cfg.machine.mem_blocks_per_pe().max(1);
    let k_max = k_max.unwrap_or(cfg.machine.mem_blocks_per_pe() * cfg.machine.pes).max(2);
    let mut cpu = CpuCounters::default();
    let mut rec = PhaseRecorder::new(me, st.counters(), comm.counters());

    // ---- Run formation with striped writes ----
    let full_blocks = (input.elems / rpb as u64) as usize;
    let tail = (input.elems % rpb as u64) as usize;
    let local_groups = full_blocks.div_ceil(bpr).max(usize::from(tail > 0));
    let num_runs = comm.allreduce_max(local_groups as u64)?.max(1) as usize;

    let mut runs: Vec<StripedRun<R::Key>> = Vec::with_capacity(num_runs);
    for j in 0..num_runs {
        let lo = (j * bpr).min(full_blocks);
        let hi = ((j + 1) * bpr).min(full_blocks);
        let mut data: Vec<R> = Vec::with_capacity((hi - lo + 1) * rpb);
        let mut handles = Vec::new();
        for b in lo..hi {
            handles.push((st.engine().read(input.run.blocks[b]), rpb));
            st.alloc().free(input.run.blocks[b]);
        }
        if tail > 0 && hi == full_blocks && j * bpr <= full_blocks && (lo < hi || full_blocks == 0)
        {
            let id = *input.run.blocks.last().expect("tail block");
            handles.push((st.engine().read(id), tail));
            st.alloc().free(id);
        }
        for (h, valid) in handles {
            let buf = h.wait()?;
            R::decode_slice(&buf[..valid * R::BYTES], &mut data);
        }
        let (sorted, sort_cpu) = parallel_sort(comm, data, cores)?;
        cpu = cpu.merge(&sort_cpu);
        rec.add_cpu(sort_cpu);
        // The run is canonically distributed in memory; write it
        // striped over all disks (one more communication).
        runs.push(write_striped::<R>(comm, st, cfg, &sorted, 0)?);
    }
    rec.finish_phase(Phase::RunFormation, st.counters(), comm.counters());

    // ---- Merge passes ----
    let mut passes = 0;
    let mut merge_events = Vec::new();
    while runs.len() > 1 {
        passes += 1;
        let mut next: Vec<StripedRun<R::Key>> = Vec::new();
        for group in runs.chunks(k_max) {
            let (merged, pass_cpu) =
                merge_striped_group::<R>(comm, storage, cfg, group, &mut merge_events)?;
            cpu = cpu.merge(&pass_cpu);
            rec.add_cpu(pass_cpu);
            next.push(merged);
        }
        runs = next;
    }
    if passes > 0 {
        // `num_runs` is a collective maximum, so every rank records the
        // same phase set (the report shapes stay comparable).
        rec.finish_phase(Phase::FinalMerge, st.counters(), comm.counters());
    }

    let output = runs.into_iter().next().unwrap_or_else(StripedRun::empty);
    Ok(StripedOutcome {
        output,
        runs: num_runs,
        passes,
        cpu,
        phases: rec.into_stats(),
        merge_events,
    })
}

/// Write a canonically distributed sorted sequence (each PE holds its
/// `⌊i·n/P⌋..⌊(i+1)·n/P⌋` slice in memory) as a globally striped run.
///
/// `stripe_offset` (in blocks) rotates the round-robin disk
/// assignment: block `g` of this sequence goes to disk
/// `(stripe_offset + g) mod D`. The merge loop passes the running
/// block count of the pieces emitted so far, so a stitched multi-piece
/// run continues the striping where the previous piece left off
/// instead of every piece resetting to disk 0 (which would skew the
/// per-disk block counts).
fn write_striped<R: Record>(
    comm: &Communicator,
    st: &PeStorage,
    cfg: &SortConfig,
    local: &[R],
    stripe_offset: u64,
) -> Result<StripedRun<R::Key>> {
    let p = comm.size();
    let me = comm.rank();
    let d = cfg.machine.total_disks();
    let dpp = cfg.machine.disks_per_pe;
    let rpb = records_per_block::<R>(st.block_bytes()) as u64;

    let n = comm.allreduce_sum(local.len() as u64)?;
    let my_off = comm.exscan_sum(local.len() as u64)?;
    let total_blocks = n.div_ceil(rpb);

    // Ship each overlapped piece of each global block to the block's
    // owner: block g → disk ((off + g) mod D) → PE ((off + g) mod D)/dpp.
    // Message format per piece: (g: u64, offset_in_block: u32,
    // count: u32, records...).
    let mut msgs: Vec<Vec<u8>> = vec![Vec::new(); p];
    let mut pos = 0usize;
    while pos < local.len() {
        let g = (my_off + pos as u64) / rpb;
        let within = (my_off + pos as u64) % rpb;
        let take = ((rpb - within) as usize).min(local.len() - pos);
        let owner = (((stripe_offset + g) % d as u64) as usize) / dpp;
        let msg = &mut msgs[owner];
        msg.extend_from_slice(&g.to_le_bytes());
        msg.extend_from_slice(&(within as u32).to_le_bytes());
        msg.extend_from_slice(&(take as u32).to_le_bytes());
        let start = msg.len();
        msg.resize(start + take * R::BYTES, 0);
        R::encode_slice(&local[pos..pos + take], &mut msg[start..]);
        pos += take;
    }
    let received = chunked_alltoallv(comm, msgs, MPI_VOLUME_LIMIT)?;

    // Assemble my blocks (pieces of one block can come from two PEs).
    let mut mine: std::collections::BTreeMap<u64, (Vec<u8>, usize)> =
        std::collections::BTreeMap::new();
    let block_bytes = st.block_bytes();
    for buf in &received {
        let mut at = 0usize;
        while at < buf.len() {
            let g = u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
            let within =
                u32::from_le_bytes(buf[at + 8..at + 12].try_into().expect("4 bytes")) as usize;
            let count =
                u32::from_le_bytes(buf[at + 12..at + 16].try_into().expect("4 bytes")) as usize;
            let bytes = count * R::BYTES;
            let entry = mine.entry(g).or_insert_with(|| (vec![0u8; block_bytes], 0));
            entry.0[within * R::BYTES..within * R::BYTES + bytes]
                .copy_from_slice(&buf[at + 16..at + 16 + bytes]);
            entry.1 += count;
            at += 16 + bytes;
        }
    }

    // Write assembled blocks to the designated local disk and collect
    // (g, block id, first key) for the directory.
    let mut triples: Vec<(u64, BlockId, R::Key, u32)> = Vec::with_capacity(mine.len());
    let mut pending = Vec::with_capacity(mine.len());
    for (g, (data, count)) in mine {
        let expect = (n.min((g + 1) * rpb) - g * rpb) as usize;
        debug_assert_eq!(count, expect, "block {g} incomplete");
        let disk = (((stripe_offset + g) % d as u64) as usize) % dpp;
        let id = st.alloc().alloc_on(disk);
        let first = R::decode(&data[..R::BYTES]).key();
        pending.push(st.engine().write(id, data.into_boxed_slice()));
        triples.push((g, id, first, expect as u32));
    }
    for h in pending {
        h.wait()?;
    }

    // Allgather the directory (every PE learns the whole striped run).
    let mut msg = Vec::with_capacity(triples.len() * (20 + R::BYTES));
    let mut key_buf = vec![0u8; R::BYTES];
    for (g, id, key, count) in &triples {
        msg.extend_from_slice(&g.to_le_bytes());
        msg.extend_from_slice(&id.disk.to_le_bytes());
        msg.extend_from_slice(&id.slot.to_le_bytes());
        msg.extend_from_slice(&count.to_le_bytes());
        R::with_key(*key).encode(&mut key_buf);
        msg.extend_from_slice(&key_buf);
    }
    let gathered = comm.allgather(msg)?;
    let tb = total_blocks as usize;
    let mut run = StripedRun {
        owners: vec![0; tb],
        blocks: vec![BlockId::new(0, 0); tb],
        first_keys: Vec::with_capacity(tb),
        counts: vec![0; tb],
        elems: n,
    };
    let mut keys: Vec<Option<R::Key>> = vec![None; tb];
    for (pe, buf) in gathered.iter().enumerate() {
        let mut at = 0;
        while at < buf.len() {
            let g = u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes")) as usize;
            let disk = u32::from_le_bytes(buf[at + 8..at + 12].try_into().expect("4 bytes"));
            let slot = u32::from_le_bytes(buf[at + 12..at + 16].try_into().expect("4 bytes"));
            let count = u32::from_le_bytes(buf[at + 16..at + 20].try_into().expect("4 bytes"));
            run.owners[g] = pe as u32;
            run.blocks[g] = BlockId::new(disk, slot);
            run.counts[g] = count;
            keys[g] = Some(R::decode(&buf[at + 20..at + 20 + R::BYTES]).key());
            at += 20 + R::BYTES;
        }
    }
    run.first_keys =
        keys.into_iter().map(|k| k.expect("every global block written by someone")).collect();
    let _ = me;
    Ok(run)
}

/// Merge one group of striped runs into a new striped run.
///
/// Streaming multiway batch merge: the fetched blocks come from
/// already sorted runs, so each batch is *merged* (per-run sources +
/// per-run carry tails through a loser tree, `O(n log R)` comparisons)
/// instead of re-sorted, and the emitted prefix is redistributed with
/// one exact-splitter exchange. Batch `b+1`'s fetches are issued
/// before batch `b` is merged, so the reads overlap the merge and the
/// exchange (recorded in `events`).
fn merge_striped_group<R: Record + Ord>(
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    group: &[StripedRun<R::Key>],
    events: &mut Vec<MergeEvent>,
) -> Result<(StripedRun<R::Key>, CpuCounters)> {
    let me = comm.rank();
    let st = storage.pe(me);
    let p = comm.size();
    let k = group.len();

    let mut cpu = CpuCounters::default();

    // Global consumption order: all blocks of the group sorted by
    // (first key, run, block) — the prediction sequence.
    let mut order: Vec<(usize, usize)> = Vec::new(); // (run-in-group, g)
    for (r, run) in group.iter().enumerate() {
        for g in 0..run.blocks.len() {
            order.push((r, g));
        }
    }
    order.sort_by(|&(ra, ga), &(rb, gb)| {
        (&group[ra].first_keys[ga], ra, ga).cmp(&(&group[rb].first_keys[gb], rb, gb))
    });

    // Batch size: Θ(M/B) blocks globally. The batch count is derived
    // from the (identical) group directories, so every PE walks the
    // same batches without a collective loop condition.
    let batch_blocks = (cfg.machine.mem_blocks_per_pe() * p / 2).max(1);
    let total_batches = order.len().div_ceil(batch_blocks);

    // Each PE reads the batch blocks that live on its disks, through
    // the location-transparent block service: all fetches are issued
    // asynchronously — in the duality-optimal prefetch order
    // (Appendix A), which the engine's per-disk FIFO queues realize —
    // and only waited on when the batch is merged, one loop iteration
    // later.
    let issue_batch = |b: usize| -> Result<Vec<(usize, BlockId, usize, BlockFetch)>> {
        let lo = b * batch_blocks;
        let hi = ((b + 1) * batch_blocks).min(order.len());
        let mine: Vec<(usize, BlockId, usize)> = order[lo..hi]
            .iter()
            .filter_map(|&(r, g)| {
                let run = &group[r];
                (run.owners[g] as usize == me).then(|| (r, run.blocks[g], run.counts[g] as usize))
            })
            .collect();
        let ids: Vec<BlockId> = mine.iter().map(|&(_, id, _)| id).collect();
        let schedule = duality_issue_order(&ids, batch_blocks.div_ceil(p).max(st.disks()));
        let fetches = storage.fetch_blocks_scheduled(me, &ids, &schedule)?;
        Ok(mine.into_iter().zip(fetches).map(|((r, id, v), f)| (r, id, v, f)).collect())
    };

    // sources[r]: this PE's buffered sorted slice of run r — the carry
    // tail of previous batches plus the blocks fetched this batch.
    // Within a run, blocks in increasing g hold increasing key ranges
    // (the run is globally sorted), so appending fetched blocks in
    // prediction order keeps each source sorted.
    let mut sources: Vec<Vec<R>> = vec![Vec::new(); k];
    let mut out_pieces: Vec<StripedRun<R::Key>> = Vec::new();
    let mut stripe_off = 0u64;
    let mut pending = if total_batches > 0 {
        events.push(MergeEvent::Issued(0));
        Some(issue_batch(0)?)
    } else {
        None
    };
    for b in 0..total_batches {
        let current = pending.take().expect("batch issued one iteration ahead");
        // Overlap: hand batch b+1's reads to the block service before
        // merging batch b, so the disks prefetch while the CPUs merge
        // and the network exchanges.
        pending = if b + 1 < total_batches {
            events.push(MergeEvent::Issued(b + 1));
            Some(issue_batch(b + 1)?)
        } else {
            None
        };

        for (r, id, valid, fetch) in current {
            let buf = fetch.wait()?;
            R::decode_slice(&buf[..valid * R::BYTES], &mut sources[r]);
            // In-place: the slot is reusable once consumed; the
            // backing bytes are only released on overwrite.
            st.alloc().free(id);
        }

        // Threshold: smallest first key among not-yet-merged blocks.
        // `order` is sorted by first key, so the next batch's first
        // entry *is* the global minimum over every block that has not
        // entered the merge — its blocks may already be in flight, but
        // none of their elements are in the sources yet. All PEs share
        // the same batch index, so the threshold is globally
        // consistent without communication.
        let threshold: Option<R::Key> =
            order.get((b + 1) * batch_blocks).map(|&(r, g)| group[r].first_keys[g]);

        // Merge (don't sort) the per-run prefixes below the threshold;
        // the suffixes stay buffered as the next batch's carry tails.
        let mut emit: Vec<R> = Vec::new();
        let views: Vec<&[R]> = sources.iter().map(|s| s.as_slice()).collect();
        let cuts = match &threshold {
            Some(t) => merge_k_below_into(&views, |x| x.key() < *t, &mut emit),
            None => {
                merge_k_into(&views, &mut emit);
                views.iter().map(|v| v.len()).collect()
            }
        };
        drop(views);
        for (s, cut) in sources.iter_mut().zip(cuts) {
            s.drain(..cut);
        }
        cpu = cpu.merge(&merge_cpu(emit.len() as u64, k));

        // The emitted set is locally sorted; one exact-splitter
        // exchange (selection + all-to-all + P-way merge — no local
        // sort) makes it canonically distributed for the striped
        // write.
        let (canon, exchange_cpu) = parallel_sort_presorted(comm, emit, CpuCounters::default())?;
        cpu = cpu.merge(&exchange_cpu);

        let piece = write_striped::<R>(comm, st, cfg, &canon, stripe_off)?;
        stripe_off += piece.blocks.len() as u64;
        events.push(MergeEvent::Emitted(b));
        out_pieces.push(piece);
    }
    debug_assert!(
        sources.iter().all(Vec::is_empty),
        "the final batch has no threshold and must drain every carry tail"
    );

    // Stitch the emitted pieces into one striped run. Pieces were
    // emitted in globally increasing key order, so their concatenation
    // is the merged run, and each piece continued the round-robin
    // striping at `stripe_off`, so block t of the stitched run is on
    // disk t mod D exactly as if it had been written in one piece.
    let mut merged = StripedRun::<R::Key>::empty();
    for piece in out_pieces {
        merged.owners.extend(piece.owners);
        merged.blocks.extend(piece.blocks);
        merged.first_keys.extend(piece.first_keys);
        merged.counts.extend(piece.counts);
        merged.elems += piece.elems;
    }
    Ok((merged, cpu))
}

/// How many blocks the striped streaming readers keep
/// issued-but-unconsumed: deep enough to pipeline fetches across every
/// owner's disks, shallow enough that in-flight response buffers stay
/// O(window), not O(run).
const READ_STRIPED_WINDOW: usize = 64;

/// Stream a striped run's blocks in global order into `sink`, **from
/// any single rank**: every block goes through the [`ClusterStorage`]
/// block service, so blocks owned by peers are fetched over the
/// transport. Reads are issued ahead of consumption as pipelined
/// per-owner batches, bounded by a fixed in-flight window — memory
/// stays O(window · B) regardless of the run size. Each callback
/// receives one block's valid bytes (`counts[g] · record_bytes` of raw
/// encoded records). The shared engine under [`read_striped`] and the
/// file write-back of `sortfile --algo striped`.
pub fn read_striped_blocks<K>(
    storage: &ClusterStorage,
    run: &StripedRun<K>,
    record_bytes: usize,
    mut sink: impl FnMut(&[u8]) -> Result<()>,
) -> Result<()> {
    let n = run.blocks.len();
    let mut pending: Vec<Option<BlockFetch>> = run.blocks.iter().map(|_| None).collect();
    let mut issued = 0usize;
    // Issue the next slice of global blocks as one batch per owner —
    // remote owners see a handful of pipelined request frames behind
    // one flush each, and all owners' fetches are in flight at once.
    let issue_chunk = |from: usize, pending: &mut Vec<Option<BlockFetch>>| -> Result<usize> {
        let to = (from + READ_STRIPED_WINDOW / 2).max(from + 1).min(n);
        let mut by_owner: std::collections::BTreeMap<u32, Vec<usize>> =
            std::collections::BTreeMap::new();
        for g in from..to {
            by_owner.entry(run.owners[g]).or_default().push(g);
        }
        for (owner, gs) in &by_owner {
            let ids: Vec<BlockId> = gs.iter().map(|&g| run.blocks[g]).collect();
            let fetches = storage.fetch_blocks(*owner as usize, &ids)?;
            for (&g, f) in gs.iter().zip(fetches) {
                pending[g] = Some(f);
            }
        }
        Ok(to)
    };
    for g in 0..n {
        while issued < n && issued - g < READ_STRIPED_WINDOW {
            issued = issue_chunk(issued, &mut pending)?;
        }
        let data = pending[g].take().expect("every block issued before consumption").wait()?;
        sink(&data[..run.counts[g] as usize * record_bytes])?;
    }
    Ok(())
}

/// Read a striped run back as one vector — [`read_striped_blocks`]
/// decoded into records (test/validation convenience; callers that
/// stream to a file should use the block form directly to keep memory
/// bounded).
pub fn read_striped<R: Record>(
    storage: &ClusterStorage,
    run: &StripedRun<R::Key>,
) -> Result<Vec<R>> {
    let mut out = Vec::with_capacity(run.elems as usize);
    read_striped_blocks(storage, run, R::BYTES, |bytes| {
        R::decode_slice(bytes, &mut out);
        Ok(())
    })?;
    Ok(out)
}

/// Whole-cluster result of [`striped_sort_cluster`].
pub struct StripedClusterOutcome<R: Record> {
    /// Per-PE outcomes, indexed by rank.
    pub per_pe: Vec<StripedOutcome<R>>,
    /// The aggregated measured report.
    pub report: SortReport,
    /// The cluster storage (the striped output remains readable
    /// through it via [`read_striped`]).
    pub storage: Arc<ClusterStorage>,
}

/// Convenience driver for the in-process cluster: spin up
/// `cfg.machine.pes` PE threads, generate and ingest each PE's input
/// via `gen(pe, p)`, run the striped mergesort, and aggregate the
/// report — the striped sibling of
/// [`sort_cluster`](crate::canonical::sort_cluster).
pub fn striped_sort_cluster<R, G>(
    cfg: &SortConfig,
    gen: G,
    k_max: Option<usize>,
) -> Result<StripedClusterOutcome<R>>
where
    R: Record + Ord,
    G: Fn(usize, usize) -> Vec<R> + Send + Sync,
{
    let p = cfg.machine.pes;
    let storage = ClusterStorage::new_mem(&cfg.machine);
    let storage_ref = &storage;
    let gen = &gen;
    let results: Vec<Result<StripedOutcome<R>>> = run_cluster(p, move |comm| {
        let st = storage_ref.pe(comm.rank());
        let recs = gen(comm.rank(), p);
        let input = ingest_input(st, &recs)?;
        striped_mergesort::<R>(&comm, storage_ref, cfg, input, cfg.machine.cores_per_pe, k_max)
    });
    let mut per_pe = Vec::with_capacity(p);
    for r in results {
        per_pe.push(r?);
    }
    // The striped output is global, so the element count is any PE's
    // view of it (identical everywhere), not a per-PE sum.
    let elements = per_pe.first().map_or(0, |o| o.output.elems);
    let runs = per_pe.first().map_or(0, |o| o.runs);
    let report = assemble_report(
        cfg,
        elements,
        R::BYTES,
        runs,
        per_pe.iter().map(|o| o.phases.clone()).collect(),
    );
    Ok(StripedClusterOutcome { per_pe, report, storage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_types::{AlgoConfig, Element16, MachineConfig};
    use demsort_workloads::{checksum_elements, generate_all, generate_pe_input, InputSpec};

    fn sort_striped(
        p: usize,
        local_n: usize,
        spec: InputSpec,
        k_max: Option<usize>,
    ) -> (Vec<Element16>, Vec<StripedOutcome<Element16>>, std::sync::Arc<ClusterStorage>) {
        let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid");
        let outcome = striped_sort_cluster::<Element16, _>(
            &cfg,
            |pe, p| generate_pe_input(spec, 21, pe, p, local_n),
            k_max,
        )
        .expect("sort");
        let got =
            read_striped::<Element16>(&outcome.storage, &outcome.per_pe[0].output).expect("read");
        (got, outcome.per_pe, outcome.storage)
    }

    fn check(p: usize, local_n: usize, spec: InputSpec, k_max: Option<usize>) {
        let (got, outcomes, _storage) = sort_striped(p, local_n, spec, k_max);
        let mut reference = generate_all(spec, 21, p, local_n);
        let checksum_in = checksum_elements(&reference);
        reference.sort_unstable();
        let keys: Vec<u64> = got.iter().map(|e| e.key).collect();
        let ref_keys: Vec<u64> = reference.iter().map(|e| e.key).collect();
        assert_eq!(keys, ref_keys, "striped output keys ({spec:?}, P={p})");
        assert_eq!(checksum_elements(&got), checksum_in, "permutation");
        // Output directory identical on all PEs.
        for o in &outcomes {
            assert_eq!(o.output.elems, outcomes[0].output.elems);
            assert_eq!(o.output.blocks.len(), outcomes[0].output.blocks.len());
        }
    }

    #[test]
    fn sorts_single_run_case() {
        check(2, 200, InputSpec::Uniform, None);
    }

    #[test]
    fn sorts_multi_run_single_pass() {
        check(3, 700, InputSpec::Uniform, None);
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check(2, 600, InputSpec::ReverseSorted, None);
        check(2, 600, InputSpec::Constant, None);
        check(2, 600, InputSpec::Banded { block_elems: 16 }, None);
    }

    #[test]
    fn multi_pass_merging_with_tiny_fanin() {
        let (_, outcomes, _) = sort_striped(2, 1200, InputSpec::Uniform, Some(2));
        assert!(outcomes[0].passes >= 2, "fan-in 2 over ≥3 runs needs ≥2 passes");
        check(2, 1200, InputSpec::Uniform, Some(2));
    }

    #[test]
    fn blocks_stripe_over_all_pes() {
        let (_, outcomes, _) = sort_striped(3, 900, InputSpec::Uniform, None);
        let owners = &outcomes[0].output.owners;
        for pe in 0..3u32 {
            assert!(owners.contains(&pe), "every PE owns output blocks");
        }
    }

    #[test]
    fn phases_cover_run_formation_and_merging() {
        // External case: both phases recorded, counters attributed.
        let (_, outcomes, _) = sort_striped(2, 700, InputSpec::Uniform, None);
        for o in &outcomes {
            assert!(o.passes >= 1, "external case must merge");
            let phases: Vec<Phase> = o.phases.iter().map(|(p, _)| *p).collect();
            assert_eq!(phases, vec![Phase::RunFormation, Phase::FinalMerge]);
            assert!(o.phases[0].1.io.bytes_written > 0, "runs written in phase 1");
            assert!(o.phases[1].1.io.bytes_read > 0, "merge reads in phase 2");
        }
        // Single-run case: only run formation.
        let (_, outcomes, _) = sort_striped(2, 200, InputSpec::Uniform, None);
        for o in &outcomes {
            assert_eq!(o.passes, 0);
            let phases: Vec<Phase> = o.phases.iter().map(|(p, _)| *p).collect();
            assert_eq!(phases, vec![Phase::RunFormation]);
        }
    }

    #[test]
    fn merge_phase_merges_instead_of_sorting() {
        // Single merge pass: the merge phase must charge *merge* work
        // only — n·⌈log2 R⌉ for the batch loser trees plus n·⌈log2 P⌉
        // for the exchange merges — and no sort comparisons at all
        // (the seed re-sorted every batch: ~n·log n per batch).
        let p = 2;
        let local_n = 700;
        let (_, outcomes, _) = sort_striped(p, local_n, InputSpec::Uniform, None);
        assert_eq!(outcomes[0].passes, 1, "config must give a single merge pass");
        let runs = outcomes[0].runs;
        let n = (p * local_n) as u64;
        let mut sort_work = 0u64;
        let mut merge_work_total = 0u64;
        let mut merged = 0u64;
        for o in &outcomes {
            let (_, stats) = o
                .phases
                .iter()
                .find(|(ph, _)| *ph == Phase::FinalMerge)
                .expect("merge phase recorded");
            sort_work += stats.cpu.sort_work;
            merge_work_total += stats.cpu.merge_work;
            merged += stats.cpu.elements_merged;
        }
        assert_eq!(sort_work, 0, "batches are merged, never re-sorted");
        assert_eq!(merged, 2 * n, "each element merges once locally, once in the exchange");
        assert_eq!(
            merge_work_total,
            crate::merge::merge_work(n, runs) + crate::merge::merge_work(n, p),
            "merge comparisons are n·(⌈log2 R⌉ + ⌈log2 P⌉), R = {runs}"
        );
    }

    #[test]
    fn next_batch_fetches_issued_before_current_batch_emits() {
        // Multi-batch single-pass merge: the trace must show batch
        // b+1's fetches handed to the block service before batch b's
        // piece is written — the fetch/merge overlap of Section IV-E.
        let (_, outcomes, _) = sort_striped(2, 1200, InputSpec::Uniform, None);
        for o in &outcomes {
            assert_eq!(o.passes, 1);
            let ev = &o.merge_events;
            let batches = ev.iter().filter(|e| matches!(e, MergeEvent::Emitted(_))).count();
            assert!(batches >= 2, "config must force multiple merge batches, got {batches}");
            let pos = |want: MergeEvent| ev.iter().position(|e| *e == want).expect("event");
            for b in 0..batches - 1 {
                assert!(
                    pos(MergeEvent::Issued(b + 1)) < pos(MergeEvent::Emitted(b)),
                    "batch {}'s fetches must be in flight before batch {b} emits: {ev:?}",
                    b + 1
                );
            }
        }
    }

    #[test]
    fn multi_piece_output_stripes_evenly_over_disks() {
        // The merged output is stitched from several emitted pieces;
        // each piece continues the round-robin striping where the
        // previous left off, so per-disk block counts differ by ≤ 1.
        let p = 2;
        let (_, outcomes, _) = sort_striped(p, 1200, InputSpec::Uniform, None);
        let o = &outcomes[0];
        let pieces = o.merge_events.iter().filter(|e| matches!(e, MergeEvent::Emitted(_))).count();
        assert!(pieces >= 2, "test must cover a multi-piece run, got {pieces} piece(s)");
        let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid");
        let dpp = cfg.machine.disks_per_pe;
        let mut per_disk = vec![0u64; cfg.machine.total_disks()];
        for (g, id) in o.output.blocks.iter().enumerate() {
            per_disk[o.output.owners[g] as usize * dpp + id.disk as usize] += 1;
        }
        let (min, max) =
            (per_disk.iter().min().expect("disks"), per_disk.iter().max().expect("disks"));
        assert!(max - min <= 1, "stitched run must stripe evenly over all disks, got {per_disk:?}");
    }

    #[test]
    fn cluster_driver_report_aggregates_striped_phases() {
        let cfg = SortConfig::new(MachineConfig::tiny(2), AlgoConfig::default()).expect("valid");
        let outcome = striped_sort_cluster::<Element16, _>(
            &cfg,
            |pe, p| generate_pe_input(InputSpec::Uniform, 21, pe, p, 700),
            None,
        )
        .expect("sort");
        assert_eq!(outcome.report.elements, 2 * 700);
        assert_eq!(outcome.report.pes, 2);
        assert!(outcome.report.runs > 1, "external case");
        // Striped I/O: 2 passes = ~4N plus the re-striping writes.
        let io_over_n = outcome.report.io_volume_over_n();
        assert!(io_over_n > 3.0, "two-pass external I/O, got {io_over_n}");
        // Striping costs communication on every pass ("4-5
        // communications for two passes").
        assert!(outcome.report.comm_volume_over_n() > 1.0);
    }
}
