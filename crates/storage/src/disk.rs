//! Disk timing model and per-disk statistics.
//!
//! Disks do not sleep — they *account*. Every operation adds its modeled
//! service time (positioning + transfer) to an atomic busy-time counter.
//! The cost model later reads these to compute phase I/O times at paper
//! scale. The defaults reproduce the paper's measured drives: Seagate
//! Barracuda 7200.10, "peak I/O rates between 60 and 71 MiB/s, in
//! average 67 MiB/s" with ~8 ms average positioning time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Timing model for one simulated disk, with optional zoned (ZBR)
/// bandwidth: real drives transfer faster on outer tracks (low block
/// addresses) than inner ones — the paper lists "worse performance of
/// tracks closer to the center of a disk (when disks fill up)" among
/// the reasons measured bandwidth fell below peak.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskModel {
    /// Average positioning (seek + rotational) latency per block access,
    /// in nanoseconds. Sequential scans of large blocks amortize this;
    /// it is charged per block operation, which matches the paper's
    /// block-granular access pattern.
    pub seek_ns: u64,
    /// Sustained transfer bandwidth on the outermost zone (bytes/s).
    pub bytes_per_sec: u64,
    /// Bandwidth on the innermost zone as a fraction of the outermost
    /// (`1.0` = no zoning). Typical 3.5" drives: ~0.5.
    pub inner_zone_fraction: f64,
    /// Slot count at which the innermost zone is reached (`0` disables
    /// zoning regardless of the fraction).
    pub zone_span_slots: u64,
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl DiskModel {
    /// The paper's measured drive: 67 MiB/s sustained, ~8 ms
    /// positioning, no zoning (zoning is opt-in via [`Self::zoned`]
    /// because experiments usually fold the slowdown into the cost
    /// model's sustained rate instead).
    pub fn paper() -> Self {
        Self {
            seek_ns: 8_000_000,
            bytes_per_sec: 67 * 1024 * 1024,
            inner_zone_fraction: 1.0,
            zone_span_slots: 0,
        }
    }

    /// The paper's drive with zoned bandwidth: 71 MiB/s on the outer
    /// tracks falling linearly to ~53% of that on the inner ones over
    /// `span_slots` block slots (Seagate 7200.10-like).
    pub fn zoned(span_slots: u64) -> Self {
        Self {
            seek_ns: 8_000_000,
            bytes_per_sec: 71 * 1024 * 1024,
            inner_zone_fraction: 0.53,
            zone_span_slots: span_slots,
        }
    }

    /// Effective bandwidth at block address `slot`.
    #[inline]
    pub fn bytes_per_sec_at(&self, slot: u64) -> f64 {
        if self.zone_span_slots == 0 || self.inner_zone_fraction >= 1.0 {
            return self.bytes_per_sec as f64;
        }
        let depth = (slot as f64 / self.zone_span_slots as f64).min(1.0);
        let fraction = 1.0 - depth * (1.0 - self.inner_zone_fraction);
        self.bytes_per_sec as f64 * fraction
    }

    /// Service time for transferring `bytes` in one operation at block
    /// address `slot`.
    #[inline]
    pub fn service_ns_at(&self, bytes: usize, slot: u64) -> u64 {
        self.seek_ns + (bytes as f64 * 1e9 / self.bytes_per_sec_at(slot)) as u64
    }

    /// Service time on the outermost zone (back-compat path used where
    /// the address is irrelevant).
    #[inline]
    pub fn service_ns(&self, bytes: usize) -> u64 {
        self.service_ns_at(bytes, 0)
    }
}

/// Lock-free per-disk counters, updated by the disk's worker thread.
#[derive(Debug, Default)]
pub struct DiskStats {
    /// Bytes read from this disk.
    pub bytes_read: AtomicU64,
    /// Bytes written to this disk.
    pub bytes_written: AtomicU64,
    /// Read operations.
    pub reads: AtomicU64,
    /// Write operations.
    pub writes: AtomicU64,
    /// Accumulated modeled service time (ns).
    pub busy_ns: AtomicU64,
}

impl DiskStats {
    /// Record a read of `bytes` with modeled service time `service_ns`.
    pub fn record_read(&self, bytes: usize, service_ns: u64) {
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(service_ns, Ordering::Relaxed);
    }

    /// Record a write of `bytes` with modeled service time `service_ns`.
    pub fn record_write(&self, bytes: usize, service_ns: u64) {
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(service_ns, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot (individual counters are exact;
    /// cross-counter skew is harmless for reporting).
    pub fn snapshot(&self) -> DiskStatsSnapshot {
        DiskStatsSnapshot {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`DiskStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DiskStatsSnapshot {
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Read operations.
    pub reads: u64,
    /// Write operations.
    pub writes: u64,
    /// Modeled busy time (ns).
    pub busy_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_scales_with_bytes() {
        let m = DiskModel {
            seek_ns: 1_000_000,
            bytes_per_sec: 100 * 1024 * 1024,
            inner_zone_fraction: 1.0,
            zone_span_slots: 0,
        };
        let t_small = m.service_ns(4096);
        let t_big = m.service_ns(8 << 20);
        assert!(t_big > t_small);
        // 8 MiB at 100 MiB/s = 80 ms transfer + 1 ms seek
        let expected = 1_000_000 + (8u64 << 20) * 1_000_000_000 / (100 << 20);
        assert_eq!(t_big, expected);
    }

    #[test]
    fn zoned_bandwidth_falls_toward_inner_tracks() {
        let m = DiskModel::zoned(1000);
        let outer = m.bytes_per_sec_at(0);
        let mid = m.bytes_per_sec_at(500);
        let inner = m.bytes_per_sec_at(1000);
        assert!(outer > mid && mid > inner, "{outer} > {mid} > {inner}");
        assert_eq!(m.bytes_per_sec_at(5000), inner, "clamped past the span");
        let frac = inner / outer;
        assert!((frac - 0.53).abs() < 1e-9, "innermost fraction: {frac}");
        // Service time follows suit.
        assert!(m.service_ns_at(8 << 20, 1000) > m.service_ns_at(8 << 20, 0));
    }

    #[test]
    fn unzoned_model_is_address_independent() {
        let m = DiskModel::paper();
        assert_eq!(m.service_ns_at(4096, 0), m.service_ns_at(4096, 1 << 30));
    }

    #[test]
    fn paper_disk_rate() {
        let m = DiskModel::paper();
        // one 8 MiB block: ~119 ms transfer + 8 ms seek → ~127 ms,
        // i.e. ~63 MiB/s effective — within the measured 60..71 band.
        let t = m.service_ns(8 << 20);
        let eff_mib_s = (8u64 << 20) as f64 / (t as f64 / 1e9) / (1024.0 * 1024.0);
        assert!((55.0..67.5).contains(&eff_mib_s), "effective {eff_mib_s} MiB/s");
    }

    #[test]
    fn stats_accumulate() {
        let s = DiskStats::default();
        s.record_read(100, 5);
        s.record_read(200, 7);
        s.record_write(50, 3);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_read, 300);
        assert_eq!(snap.bytes_written, 50);
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.busy_ns, 15);
    }
}
