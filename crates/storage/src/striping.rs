//! Per-PE storage facade and striped sequential runs.
//!
//! [`PeStorage`] bundles the async engine, the block allocator, and the
//! backend for one PE. [`RunWriter`]/[`RunReader`] stream byte
//! sequences ("runs") as blocks striped round-robin over the PE's local
//! disks, with configurable write-behind and read-ahead windows — the
//! overlap machinery of Section IV-E.

use crate::alloc::BlockAllocator;
use crate::backend::{Backend, MemBackend};
use crate::block::BlockId;
use crate::disk::DiskModel;
use crate::engine::{IoEngine, IoHandle};
use demsort_types::{BufferPool, Error, IoCounters, MachineConfig, Result};
use std::collections::VecDeque;
use std::sync::Arc;

/// Default number of outstanding writes for [`RunWriter`] (one per disk
/// keeps all spindles busy, paper: "We maintain D buffer blocks").
pub const DEFAULT_WRITE_BEHIND: usize = 4;
/// Default read-ahead depth for [`RunReader`].
pub const DEFAULT_READAHEAD: usize = 4;

/// All storage state owned by one PE.
pub struct PeStorage {
    engine: IoEngine,
    alloc: BlockAllocator,
    backend: Arc<dyn Backend>,
}

impl PeStorage {
    /// In-memory storage shaped by `cfg` (the default for experiments).
    /// The buffer pool is sized to the PE's memory budget in blocks.
    pub fn new_mem(cfg: &MachineConfig) -> Self {
        Self::new_mem_with_pool_blocks(cfg, cfg.mem_blocks_per_pe())
    }

    /// In-memory storage with an explicit pool capacity (the resolved
    /// `pool_blocks` of a validated config); clamped to the machine's
    /// prefetch+carry minimum.
    pub fn new_mem_with_pool_blocks(cfg: &MachineConfig, pool_blocks: usize) -> Self {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new(cfg.disks_per_pe));
        let pool = BufferPool::new(cfg.block_bytes, pool_blocks.max(cfg.min_pool_blocks()));
        Self::with_backend_pool(
            cfg.disks_per_pe,
            cfg.block_bytes,
            DiskModel::paper(),
            backend,
            pool,
        )
    }

    /// Storage over an arbitrary backend (files, fault injection, ...),
    /// with the engine's default-sized buffer pool.
    pub fn with_backend(
        disks: usize,
        block_bytes: usize,
        model: DiskModel,
        backend: Arc<dyn Backend>,
    ) -> Self {
        Self {
            engine: IoEngine::new(disks, block_bytes, model, Arc::clone(&backend)),
            alloc: BlockAllocator::new(disks),
            backend,
        }
    }

    /// Storage over an arbitrary backend drawing block buffers from
    /// `pool`.
    pub fn with_backend_pool(
        disks: usize,
        block_bytes: usize,
        model: DiskModel,
        backend: Arc<dyn Backend>,
        pool: BufferPool,
    ) -> Self {
        Self {
            engine: IoEngine::with_pool(disks, block_bytes, model, Arc::clone(&backend), pool),
            alloc: BlockAllocator::new(disks),
            backend,
        }
    }

    /// The async I/O engine.
    pub fn engine(&self) -> &IoEngine {
        &self.engine
    }

    /// The PE's block-buffer pool (shared with the engine's readers).
    pub fn pool(&self) -> &BufferPool {
        self.engine.pool()
    }

    /// The block allocator.
    pub fn alloc(&self) -> &BlockAllocator {
        &self.alloc
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.engine.block_bytes()
    }

    /// Number of local disks.
    pub fn disks(&self) -> usize {
        self.engine.disks()
    }

    /// Free a block: return the slot to the allocator and drop backing
    /// bytes (in-place recycling).
    pub fn free_block(&self, id: BlockId) {
        self.backend.discard(id.disk as usize, id.slot as u64);
        self.alloc.free(id);
    }

    /// Current I/O counters (cumulative).
    pub fn counters(&self) -> IoCounters {
        self.engine.counters()
    }
}

/// A sequence of blocks holding `bytes` logical bytes (the final block
/// may be partially filled; the tail is zero-padded on disk).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Run {
    /// Blocks in logical order.
    pub blocks: Vec<BlockId>,
    /// Logical byte length.
    pub bytes: u64,
}

impl Run {
    /// `true` if the run holds no data.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Bytes of valid data in block `i` given block size `b`.
    pub fn valid_bytes_in(&self, i: usize, b: usize) -> usize {
        let start = (i * b) as u64;
        debug_assert!(start < self.bytes || (self.bytes == 0 && i == 0));
        ((self.bytes - start).min(b as u64)) as usize
    }
}

/// Streaming run writer: buffers into one block at a time, issues async
/// writes striped over the local disks, keeps at most `write_behind`
/// writes in flight.
pub struct RunWriter<'a> {
    st: &'a PeStorage,
    buf: Vec<u8>,
    pending: VecDeque<IoHandle>,
    write_behind: usize,
    blocks: Vec<BlockId>,
    bytes: u64,
}

impl<'a> RunWriter<'a> {
    /// Start a new run on `st`.
    pub fn new(st: &'a PeStorage) -> Self {
        Self::with_window(st, DEFAULT_WRITE_BEHIND.max(st.disks()))
    }

    /// Start a new run with an explicit write-behind window.
    pub fn with_window(st: &'a PeStorage, write_behind: usize) -> Self {
        Self {
            st,
            buf: st.pool().get_vec(),
            pending: VecDeque::new(),
            write_behind: write_behind.max(1),
            blocks: Vec::new(),
            bytes: 0,
        }
    }

    fn retire_until(&mut self, max_pending: usize) -> Result<()> {
        while self.pending.len() > max_pending {
            let h = self.pending.pop_front().expect("nonempty");
            // The engine hands the written buffer back; recycle it so
            // the next flush reuses it instead of allocating.
            self.st.pool().put(h.wait()?);
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        debug_assert!(!self.buf.is_empty());
        let b = self.st.block_bytes();
        self.buf.resize(b, 0); // zero-pad a partial tail block
        let data = std::mem::replace(&mut self.buf, self.st.pool().get_vec()).into_boxed_slice();
        let id = self.st.alloc.alloc_striped();
        self.blocks.push(id);
        self.pending.push_back(self.st.engine.write(id, data));
        self.retire_until(self.write_behind.saturating_sub(1))
    }

    /// Append bytes to the run.
    pub fn push(&mut self, mut data: &[u8]) -> Result<()> {
        let b = self.st.block_bytes();
        self.bytes += data.len() as u64;
        while !data.is_empty() {
            let room = b - self.buf.len();
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buf.len() == b {
                self.flush_block()?;
            }
        }
        Ok(())
    }

    /// Append a whole pre-assembled block-sized buffer (avoids a copy
    /// when the caller already works block-wise and the writer is
    /// aligned).
    pub fn push_block(&mut self, data: Box<[u8]>) -> Result<()> {
        let b = self.st.block_bytes();
        assert_eq!(data.len(), b, "push_block requires exactly one block");
        if self.buf.is_empty() {
            self.bytes += b as u64;
            let id = self.st.alloc.alloc_striped();
            self.blocks.push(id);
            self.pending.push_back(self.st.engine.write(id, data));
            self.retire_until(self.write_behind.saturating_sub(1))
        } else {
            self.push(&data)
        }
    }

    /// Bytes appended so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flush outstanding data and return the completed [`Run`].
    pub fn finish(mut self) -> Result<Run> {
        if !self.buf.is_empty() {
            self.flush_block()?;
        }
        self.retire_until(0)?;
        // Hand the (now idle) staging buffer back to the pool; resize
        // to full length first so the Vec → Box conversion is free.
        let b = self.st.block_bytes();
        let mut buf = std::mem::take(&mut self.buf);
        buf.resize(b, 0);
        self.st.pool().put_vec(buf);
        Ok(Run { blocks: std::mem::take(&mut self.blocks), bytes: self.bytes })
    }
}

/// Streaming run reader with read-ahead; optionally frees blocks as
/// they are consumed (in-place mode).
pub struct RunReader<'a> {
    st: &'a PeStorage,
    run: Run,
    next_issue: usize,
    next_take: usize,
    pending: VecDeque<IoHandle>,
    readahead: usize,
    free_after_read: bool,
}

impl<'a> RunReader<'a> {
    /// Read `run` sequentially from `st`.
    pub fn new(st: &'a PeStorage, run: Run) -> Self {
        Self::with_options(st, run, DEFAULT_READAHEAD.max(st.disks()), false)
    }

    /// Full-control constructor: `readahead` outstanding reads,
    /// `free_after_read` recycles each block once consumed.
    pub fn with_options(
        st: &'a PeStorage,
        run: Run,
        readahead: usize,
        free_after_read: bool,
    ) -> Self {
        Self {
            st,
            run,
            next_issue: 0,
            next_take: 0,
            pending: VecDeque::new(),
            readahead: readahead.max(1),
            free_after_read,
        }
    }

    fn top_up(&mut self) {
        while self.pending.len() < self.readahead && self.next_issue < self.run.blocks.len() {
            let id = self.run.blocks[self.next_issue];
            self.pending.push_back(self.st.engine.read(id));
            self.next_issue += 1;
        }
    }

    /// Next block and the count of valid bytes in it, or `None` at end.
    pub fn next_block(&mut self) -> Result<Option<(Box<[u8]>, usize)>> {
        self.top_up();
        let Some(h) = self.pending.pop_front() else {
            return Ok(None);
        };
        let data = h.wait()?;
        let idx = self.next_take;
        self.next_take += 1;
        let valid = self.run.valid_bytes_in(idx, self.st.block_bytes());
        if self.free_after_read {
            self.st.free_block(self.run.blocks[idx]);
        }
        self.top_up();
        Ok(Some((data, valid)))
    }

    /// Read the whole remaining run into one buffer (valid bytes only).
    /// Block buffers are recycled into the PE's pool as they drain;
    /// the bytes copied out are charged to the pool's copy meter.
    pub fn read_to_end(&mut self) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.run.bytes as usize);
        while let Some((block, valid)) = self.next_block()? {
            out.extend_from_slice(&block[..valid]);
            self.st.pool().add_copied(valid as u64);
            self.st.pool().put(block);
        }
        Ok(out)
    }
}

/// Read an arbitrary run fully (convenience for tests and small data).
pub fn read_run(st: &PeStorage, run: &Run) -> Result<Vec<u8>> {
    RunReader::new(st, run.clone()).read_to_end()
}

/// Write `data` as a new run (convenience).
pub fn write_run(st: &PeStorage, data: &[u8]) -> Result<Run> {
    let mut w = RunWriter::new(st);
    w.push(data)?;
    w.finish()
}

/// Free all blocks of a run.
pub fn free_run(st: &PeStorage, run: &Run) {
    for &b in &run.blocks {
        st.free_block(b);
    }
}

/// Validate that `run`'s metadata is consistent with the block size.
pub fn check_run(run: &Run, block_bytes: usize) -> Result<()> {
    let needed = (run.bytes as usize).div_ceil(block_bytes);
    if needed != run.blocks.len() {
        return Err(Error::io(format!(
            "run claims {} bytes over {} blocks (block size {}, expected {} blocks)",
            run.bytes,
            run.blocks.len(),
            block_bytes,
            needed
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage(disks: usize, block: usize) -> PeStorage {
        PeStorage::with_backend(disks, block, DiskModel::paper(), Arc::new(MemBackend::new(disks)))
    }

    #[test]
    fn write_read_roundtrip_partial_tail() {
        let st = storage(3, 64);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let run = write_run(&st, &data).expect("write");
        assert_eq!(run.bytes, 1000);
        assert_eq!(run.blocks.len(), 1000usize.div_ceil(64));
        check_run(&run, 64).expect("consistent");
        assert_eq!(read_run(&st, &run).expect("read"), data);
    }

    #[test]
    fn empty_run() {
        let st = storage(2, 64);
        let run = write_run(&st, &[]).expect("write");
        assert!(run.is_empty());
        assert!(run.blocks.is_empty());
        assert_eq!(read_run(&st, &run).expect("read"), Vec::<u8>::new());
    }

    #[test]
    fn blocks_stripe_over_disks() {
        let st = storage(4, 32);
        let run = write_run(&st, &vec![1u8; 32 * 8]).expect("write");
        let disks: Vec<u32> = run.blocks.iter().map(|b| b.disk).collect();
        assert_eq!(disks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn push_block_fast_path_equals_push() {
        let st = storage(2, 16);
        let mut w = RunWriter::new(&st);
        w.push_block(vec![5u8; 16].into_boxed_slice()).expect("block");
        w.push(&[1, 2, 3]).expect("partial");
        w.push_block(vec![9u8; 16].into_boxed_slice()).expect("unaligned block");
        let run = w.finish().expect("finish");
        assert_eq!(run.bytes, 16 + 3 + 16);
        let mut expect = vec![5u8; 16];
        expect.extend_from_slice(&[1, 2, 3]);
        expect.extend_from_slice(&[9u8; 16]);
        assert_eq!(read_run(&st, &run).expect("read"), expect);
    }

    #[test]
    fn free_after_read_recycles_blocks() {
        let st = storage(2, 32);
        let run = write_run(&st, &[3u8; 32 * 6]).expect("write");
        assert_eq!(st.alloc().in_use(), 6);
        let mut r = RunReader::with_options(&st, run, 2, true);
        let mut total = 0;
        while let Some((_, valid)) = r.next_block().expect("read") {
            total += valid;
        }
        assert_eq!(total, 32 * 6);
        assert_eq!(st.alloc().in_use(), 0, "all blocks recycled");
    }

    #[test]
    fn streaming_many_blocks_with_small_windows() {
        let st = storage(2, 16);
        let data: Vec<u8> = (0..16 * 100).map(|i| (i % 89) as u8).collect();
        let mut w = RunWriter::with_window(&st, 1);
        w.push(&data).expect("write");
        let run = w.finish().expect("finish");
        let mut r = RunReader::with_options(&st, run, 1, false);
        assert_eq!(r.read_to_end().expect("read"), data);
    }

    #[test]
    fn run_io_reaches_pool_steady_state() {
        // After warmup, a write→read→write cycle must stop allocating:
        // writer buffers retire into the pool, reads draw from it.
        let st = storage(2, 32);
        let data: Vec<u8> = (0..32 * 40).map(|i| (i % 97) as u8).collect();
        let run = write_run(&st, &data).expect("warmup write");
        assert_eq!(read_run(&st, &run).expect("warmup read"), data);
        free_run(&st, &run);
        let warm = st.pool().counters();
        let run2 = write_run(&st, &data).expect("steady write");
        assert_eq!(read_run(&st, &run2).expect("steady read"), data);
        let steady = st.pool().counters();
        assert_eq!(steady.misses, warm.misses, "steady-state run I/O must not allocate");
        assert!(steady.hits > warm.hits);
    }

    #[test]
    fn check_run_detects_mismatch() {
        let mut run = Run { blocks: vec![BlockId::new(0, 0)], bytes: 100 };
        assert!(check_run(&run, 64).is_err());
        run.blocks.push(BlockId::new(0, 1));
        assert!(check_run(&run, 64).is_ok());
    }

    #[test]
    fn counters_reflect_run_io() {
        let st = storage(2, 64);
        let run = write_run(&st, &vec![1u8; 64 * 4]).expect("write");
        let after_write = st.counters();
        assert_eq!(after_write.bytes_written, 64 * 4);
        read_run(&st, &run).expect("read");
        let after_read = st.counters();
        assert_eq!(after_read.bytes_read, 64 * 4);
    }
}
