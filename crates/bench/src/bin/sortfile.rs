//! `sortfile` — externally sort a file of SortBenchmark records with
//! CANONICALMERGESORT on the in-process cluster.
//!
//! ```text
//! sortfile [--pes P] [--mem-mib M] INPUT OUTPUT
//! ```
//!
//! The file is split evenly over `P` simulated PEs, sorted, and the
//! canonical per-PE outputs are concatenated into OUTPUT (which is
//! therefore globally sorted). `--mem-mib` bounds each PE's memory, so
//! files much larger than `P × M` are sorted genuinely externally.

use demsort_core::canonical::sort_cluster;
use demsort_core::recio::read_records;
use demsort_types::{AlgoConfig, MachineConfig, Record as _, Record100, SortConfig};
use std::io::{Read, Seek, SeekFrom, Write};

fn main() {
    let mut pes = 4usize;
    let mut mem_mib = 8usize;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pes" => pes = args.next().expect("--pes P").parse().expect("pes"),
            "--mem-mib" => mem_mib = args.next().expect("--mem-mib M").parse().expect("mem"),
            "--help" | "-h" => {
                println!("sortfile [--pes P] [--mem-mib M] INPUT OUTPUT");
                return;
            }
            other => positional.push(other.to_string()),
        }
    }
    let [input, output] = positional.as_slice() else {
        eprintln!("usage: sortfile [--pes P] [--mem-mib M] INPUT OUTPUT");
        std::process::exit(2);
    };

    let meta = std::fs::metadata(input).expect("stat input");
    let total_records = (meta.len() / Record100::BYTES as u64) as usize;
    assert_eq!(meta.len() % Record100::BYTES as u64, 0, "input must be whole 100-byte records");
    eprintln!("sorting {total_records} records on {pes} simulated PEs ({mem_mib} MiB memory each)");

    let machine = MachineConfig {
        pes,
        disks_per_pe: 4,
        block_bytes: 64 << 10,
        mem_bytes_per_pe: mem_mib << 20,
        cores_per_pe: std::thread::available_parallelism()
            .map_or(1, |c| c.get() / pes.max(1))
            .max(1),
    };
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid config");

    // Each PE loads its contiguous shard of the file.
    let input_path = input.clone();
    let outcome = sort_cluster::<Record100, _>(&cfg, move |pe, p| {
        let lo = (pe as u64 * total_records as u64 / p as u64) as usize;
        let hi = ((pe as u64 + 1) * total_records as u64 / p as u64) as usize;
        let mut f = std::fs::File::open(&input_path).expect("open input");
        f.seek(SeekFrom::Start((lo * Record100::BYTES) as u64)).expect("seek");
        let mut bytes = vec![0u8; (hi - lo) * Record100::BYTES];
        f.read_exact(&mut bytes).expect("read shard");
        let mut recs = Vec::with_capacity(hi - lo);
        Record100::decode_slice(&bytes, &mut recs);
        recs
    })
    .expect("sort");

    // Concatenate the canonical outputs: globally sorted by key.
    let out = std::fs::File::create(output).expect("create output");
    let mut out = std::io::BufWriter::new(out);
    let mut buf = vec![0u8; Record100::BYTES];
    for (pe, o) in outcome.per_pe.iter().enumerate() {
        let recs = read_records::<Record100>(outcome.storage.pe(pe), &o.output.run, o.output.elems)
            .expect("read output");
        for rec in recs {
            rec.encode(&mut buf);
            out.write_all(&buf).expect("write");
        }
    }
    out.flush().expect("flush");
    eprintln!(
        "done: {} runs, I/O volume {:.2} N, communication {:.2} N",
        outcome.per_pe[0].runs,
        outcome.report.io_volume_over_n(),
        outcome.report.comm_volume_over_n(),
    );
}
