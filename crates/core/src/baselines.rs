//! Baseline algorithms for comparison (Section II).
//!
//! **NOW-Sort-style partition sort** \[5\]: one pass of key-space
//! partitioning — every PE streams its input, routes each record to
//! `bucket = ⌊key/keyspace · P⌋`, and each PE externally sorts what it
//! receives (run formation + local merge). "However, it only works
//! efficiently for random inputs. In the worst case, it deteriorates
//! to a sequential algorithm since all the data ends up in a single
//! processor." That degradation — and CANONICALMERGESORT's immunity to
//! it via *exact* splitting — is what the `baseline-skew` experiment
//! shows.

use crate::alltoall::{MergeFragment, MergeInput};
use crate::localmerge::final_merge;
use crate::recio::{records_per_block, FinishedRun, RecordRunReader, RecordRunWriter};
use crate::runform::LocalInput;
use crate::seqsort::sort_in_node;
use demsort_net::{chunked_alltoallv, Communicator, MPI_VOLUME_LIMIT};
use demsort_storage::PeStorage;
use demsort_types::{Key, Phase, PhaseStats, Record, Result, SortConfig};

/// Outcome of the NOW-Sort baseline on one PE.
pub struct NowSortOutcome<R: Record> {
    /// This PE's sorted output (key-space bucket `rank`).
    pub output: FinishedRun<R>,
    /// Elements this PE ended up sorting.
    pub local_elems: u64,
    /// `max_pe_elements / (N/P)` — 1.0 is perfect balance; the paper's
    /// worst case drives this to `P`.
    pub imbalance: f64,
    /// Per-phase counters (exchange → `RunFormation`+`AllToAll`,
    /// local external sort → `FinalMerge`).
    pub phases: Vec<(Phase, PhaseStats)>,
}

/// Key-space bucket of a key: `⌊prefix64 · P / 2^64⌋` — the uniform
/// assumption NOW-Sort relies on.
pub fn keyspace_bucket<K: Key>(key: &K, p: usize) -> usize {
    ((key.prefix64() as u128 * p as u128) >> 64) as usize
}

/// Run the NOW-Sort baseline. Collective.
pub fn nowsort<R: Record + Ord>(
    comm: &Communicator,
    st: &PeStorage,
    cfg: &SortConfig,
    input: LocalInput,
    cores: usize,
) -> Result<NowSortOutcome<R>> {
    let p = comm.size();
    let me = comm.rank();
    let rpb = records_per_block::<R>(st.block_bytes());
    let mem_elems = (cfg.machine.mem_bytes_per_pe / R::BYTES).max(2 * rpb);
    let chunk_elems = (mem_elems / 2).max(rpb);
    let mut rec = crate::ctx::PhaseRecorder::new(me, st.counters(), comm.counters());

    // ---- Phase 1: stream, partition, exchange, form runs ----
    let mut reader = RecordRunReader::<R>::with_range(
        st,
        input.run.clone(),
        input.elems,
        0,
        input.elems,
        true, // in-place: input recycled as it streams out
    );
    let rounds = {
        let local = input.elems.div_ceil(chunk_elems as u64);
        comm.allreduce_max(local)?.max(1)
    };
    let mut local_runs: Vec<FinishedRun<R>> = Vec::new();
    let mut received_total = 0u64;
    for _ in 0..rounds {
        // Read up to one chunk and bucket it.
        let mut buckets: Vec<Vec<R>> = vec![Vec::new(); p];
        for _ in 0..chunk_elems {
            match reader.next_rec()? {
                Some(r) => buckets[keyspace_bucket(&r.key(), p)].push(r),
                None => break,
            }
        }
        let msgs: Vec<Vec<u8>> = buckets
            .into_iter()
            .map(|b| {
                let mut buf = vec![0u8; b.len() * R::BYTES];
                R::encode_slice(&b, &mut buf);
                buf
            })
            .collect();
        let received = chunked_alltoallv(comm, msgs, MPI_VOLUME_LIMIT)?;
        // Sort what arrived and write it as one run (NOW-Sort's
        // receiver-side run formation).
        let mut run_data: Vec<R> = Vec::new();
        for buf in received {
            R::decode_slice(&buf, &mut run_data);
        }
        received_total += run_data.len() as u64;
        if !run_data.is_empty() {
            let cpu = sort_in_node(&mut run_data, cores);
            rec.add_cpu(cpu);
            let mut w = RecordRunWriter::<R>::new(st, 0);
            w.push_all(&run_data)?;
            local_runs.push(w.finish()?);
        }
    }
    rec.finish_phase(Phase::RunFormation, st.counters(), comm.counters());

    // ---- Phase 2: local multiway merge of the received runs ----
    let inputs: Vec<MergeInput> = local_runs
        .into_iter()
        .map(|fr| MergeInput {
            fragments: vec![MergeFragment::Received { run: fr.run, elems: fr.elems }],
        })
        .collect();
    let (output, merge_cpu) = final_merge::<R>(st, inputs, cores)?;
    rec.add_cpu(merge_cpu);
    rec.finish_phase(Phase::FinalMerge, st.counters(), comm.counters());

    let n = comm.allreduce_sum(received_total)?;
    let max_local = comm.allreduce_max(received_total)?;
    let imbalance = if n == 0 { 1.0 } else { max_local as f64 / (n as f64 / p as f64) };

    Ok(NowSortOutcome { output, local_elems: received_total, imbalance, phases: rec.into_stats() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ClusterStorage;
    use crate::recio::read_records;
    use crate::runform::ingest_input;
    use demsort_net::run_cluster;
    use demsort_types::{AlgoConfig, Element16, MachineConfig};
    use demsort_workloads::{checksum_elements, generate_all, generate_pe_input, InputSpec};

    fn run_nowsort(
        p: usize,
        local_n: usize,
        spec: InputSpec,
    ) -> (Vec<Element16>, Vec<NowSortOutcome<Element16>>) {
        let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).expect("valid");
        let storage = ClusterStorage::new_mem(&cfg.machine);
        let storage_ref = &storage;
        let cfg2 = cfg.clone();
        let outcomes = run_cluster(p, move |c| {
            let st = storage_ref.pe(c.rank());
            let recs = generate_pe_input(spec, 31, c.rank(), p, local_n);
            let input = ingest_input(st, &recs).expect("ingest");
            nowsort::<Element16>(&c, st, &cfg2, input, 1).expect("nowsort")
        });
        let mut all = Vec::new();
        for (pe, o) in outcomes.iter().enumerate() {
            all.extend(
                read_records::<Element16>(storage.pe(pe), &o.output.run, o.output.elems)
                    .expect("read"),
            );
        }
        (all, outcomes)
    }

    #[test]
    fn sorts_uniform_input_with_good_balance() {
        let p = 4;
        let (got, outcomes) = run_nowsort(p, 800, InputSpec::Uniform);
        let mut reference = generate_all(InputSpec::Uniform, 31, p, 800);
        let checksum_in = checksum_elements(&reference);
        reference.sort_unstable();
        let keys: Vec<u64> = got.iter().map(|e| e.key).collect();
        let ref_keys: Vec<u64> = reference.iter().map(|e| e.key).collect();
        assert_eq!(keys, ref_keys, "bucket concatenation is globally sorted");
        assert_eq!(checksum_elements(&got), checksum_in);
        assert!(
            outcomes[0].imbalance < 1.3,
            "uniform input is near-balanced: {}",
            outcomes[0].imbalance
        );
    }

    #[test]
    fn degrades_to_sequential_on_skew() {
        // "In the worst case, it deteriorates to a sequential algorithm
        // since all the data ends up in a single processor."
        let p = 4;
        let (got, outcomes) = run_nowsort(p, 400, InputSpec::SkewedToOne);
        assert!(got.windows(2).all(|w| w[0].key <= w[1].key));
        assert!(
            (outcomes[0].imbalance - p as f64).abs() < 1e-9,
            "all data on one PE: imbalance {}",
            outcomes[0].imbalance
        );
        assert_eq!(outcomes[0].local_elems, 400 * p as u64, "PE 0 got everything");
        assert_eq!(outcomes[1].local_elems, 0);
    }

    #[test]
    fn partitioning_is_inexact_even_when_balanced() {
        // The paper's point versus sample/key-space methods: bucket
        // sizes only *approximate* N/P; exact splitting needs multiway
        // selection.
        let p = 4;
        let (_, outcomes) = run_nowsort(p, 1000, InputSpec::Uniform);
        let sizes: Vec<u64> = outcomes.iter().map(|o| o.local_elems).collect();
        assert!(sizes.iter().any(|&s| s != 1000), "key-space buckets are inexact: {sizes:?}");
    }

    #[test]
    fn empty_input_is_fine() {
        let (got, _) = run_nowsort(3, 0, InputSpec::Uniform);
        assert!(got.is_empty());
    }

    #[test]
    fn bucket_function_covers_and_orders() {
        let p = 7;
        assert_eq!(keyspace_bucket(&0u64, p), 0);
        assert_eq!(keyspace_bucket(&u64::MAX, p), p - 1);
        let mut prev = 0;
        for k in (0..64).map(|i| 1u64 << i) {
            let b = keyspace_bucket(&k, p);
            assert!(b >= prev && b < p);
            prev = b;
        }
    }
}
