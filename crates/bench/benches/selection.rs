//! Multiway selection: cold start vs sample warm start (Section IV-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use demsort_core::selection::{multiway_select, multiway_select_from};
use demsort_workloads::splitmix64;
use std::hint::black_box;

fn sorted_seqs(r: usize, n: usize) -> Vec<Vec<u64>> {
    (0..r)
        .map(|s| {
            let mut v: Vec<u64> = (0..n).map(|i| splitmix64((s * n + i) as u64)).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("multiway_select");
    for r in [4usize, 8, 32] {
        let seqs = sorted_seqs(r, 1 << 16);
        let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        let rank = total / 2;
        g.bench_with_input(BenchmarkId::new("cold", r), &seqs, |b, seqs| {
            b.iter(|| {
                let mut views: Vec<&[u64]> = seqs.iter().map(|s| s.as_slice()).collect();
                black_box(multiway_select(&mut views, rank).expect("in-memory"))
            });
        });
        // Warm start: positions within K = 64 of the target (what the
        // run-formation sample provides).
        let reference = {
            let mut views: Vec<&[u64]> = seqs.iter().map(|s| s.as_slice()).collect();
            multiway_select(&mut views, rank).expect("in-memory")
        };
        let init: Vec<usize> = reference.positions.iter().map(|&p| p - p % 64).collect();
        g.bench_with_input(BenchmarkId::new("sample_warm", r), &seqs, |b, seqs| {
            b.iter(|| {
                let mut views: Vec<&[u64]> = seqs.iter().map(|s| s.as_slice()).collect();
                black_box(
                    multiway_select_from(&mut views, rank, init.clone(), 64).expect("in-memory"),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
