//! Control-word codec throughput: fresh-allocation vs reused-buffer
//! encode/decode of `u64` slices — the `Communicator` send-path
//! optimization (scratch buffer instead of a `Vec` per message).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demsort_net::{decode_u64s, decode_u64s_into, encode_u64s, encode_u64s_into};
use demsort_workloads::splitmix64;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("u64_codec");
    for n in [8usize, 256, 1 << 14] {
        let xs: Vec<u64> = (0..n).map(|i| splitmix64(i as u64)).collect();
        let encoded = encode_u64s(&xs);
        g.throughput(Throughput::Bytes((n * 8) as u64));

        // Before: one fresh Vec per message.
        g.bench_with_input(BenchmarkId::new("encode_alloc", n), &xs, |b, xs| {
            b.iter(|| black_box(encode_u64s(xs)));
        });
        // After: the communicator's reusable scratch buffer.
        g.bench_with_input(BenchmarkId::new("encode_reuse", n), &xs, |b, xs| {
            let mut scratch = Vec::with_capacity(n * 8);
            b.iter(|| {
                encode_u64s_into(xs, &mut scratch);
                black_box(scratch.len())
            });
        });
        g.bench_with_input(BenchmarkId::new("decode_alloc", n), &encoded, |b, buf| {
            b.iter(|| black_box(decode_u64s(buf).expect("aligned")));
        });
        g.bench_with_input(BenchmarkId::new("decode_reuse", n), &encoded, |b, buf| {
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                decode_u64s_into(buf, &mut out).expect("aligned");
                black_box(out.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
