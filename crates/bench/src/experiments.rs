//! One experiment per figure/table of the paper (see DESIGN.md's
//! experiment index). Each returns [`Table`]s that the `repro` binary
//! prints and dumps as CSV.

use crate::table::{ratio, secs, Table};
use crate::{run_canonical, worst_case, ExpScale};
use demsort_core::baselines::nowsort;
use demsort_core::canonical::{sort_cluster, ClusterOutcome};
use demsort_core::ctx::ClusterStorage;
use demsort_core::runform::ingest_input;
use demsort_core::striped::{striped_mergesort, striped_sort_cluster, StripedOutcome};
use demsort_net::run_cluster;
use demsort_types::json::Json;
use demsort_types::{AlgoConfig, Element16, Phase, Record, Record100, SortConfig, SortReport};
use demsort_workloads::{generate_pe_input, gensort_records, InputSpec};

/// Default cluster sizes of the scalability figures (`P = 1..64`).
pub const PAPER_PES: &[usize] = &[1, 2, 4, 8, 16, 32, 64];

/// Phase-stacked running-time sweep (the shared shape of Figures 2, 4
/// and 6).
fn phase_sweep(
    title: &str,
    scale: &ExpScale,
    spec: InputSpec,
    algo: AlgoConfig,
    pes_list: &[usize],
) -> Table {
    let mut t = Table::new(
        title,
        &[
            "P",
            "run_formation_s",
            "selection_s",
            "alltoall_s",
            "final_merge_s",
            "host_wall_s",
            "total_s",
        ],
    );
    for &p in pes_list {
        let outcome = run_canonical(scale, p, spec, algo.clone());
        let model = scale.cost_model(algo.overlap);
        let phases = model.cluster_phases(&outcome.report);
        let get = |ph: Phase| phases.get(&ph).map(|t| t.wall_s).unwrap_or(0.0);
        let total: f64 = phases.values().map(|t| t.wall_s).sum();
        // Measured host wall of this (unscaled) run — a phase ends when
        // its slowest PE does, so take the per-phase max over PEs. A
        // sanity signal next to the modeled paper-scale columns.
        let wall_ns: u64 =
            Phase::ALL.iter().map(|&ph| outcome.report.phase_max(ph, |s| s.cpu.host_wall_ns)).sum();
        t.row(vec![
            p.to_string(),
            secs(get(Phase::RunFormation)),
            secs(get(Phase::MultiwaySelection)),
            secs(get(Phase::AllToAll)),
            secs(get(Phase::FinalMerge)),
            secs(wall_ns as f64 / 1e9),
            secs(total),
        ]);
    }
    t
}

/// Figure 2: running times for random input, split by phase, P = 1..64,
/// 100 GiB/PE (scaled).
pub fn fig2(scale: &ExpScale, pes_list: &[usize]) -> Table {
    phase_sweep(
        "Figure 2 — random input, randomized run formation (modeled seconds at paper scale)",
        scale,
        InputSpec::Uniform,
        AlgoConfig::default(),
        pes_list,
    )
}

/// Figure 4: worst-case input *with* randomization.
pub fn fig4(scale: &ExpScale, pes_list: &[usize]) -> Table {
    phase_sweep(
        "Figure 4 — worst-case input with randomization",
        scale,
        worst_case(scale),
        AlgoConfig::default(),
        pes_list,
    )
}

/// Figure 6: worst-case input *without* randomization.
pub fn fig6(scale: &ExpScale, pes_list: &[usize]) -> Table {
    phase_sweep(
        "Figure 6 — worst-case input without randomization",
        scale,
        worst_case(scale),
        AlgoConfig { randomize: false, ..AlgoConfig::default() },
        pes_list,
    )
}

/// Figure 3: per-PE wall-clock and I/O time of every phase on a
/// 32-node run with random input.
pub fn fig3(scale: &ExpScale, pes: usize) -> Table {
    let outcome = run_canonical(scale, pes, InputSpec::Uniform, AlgoConfig::default());
    let model = scale.cost_model(true);
    let mut t = Table::new(
        &format!("Figure 3 — per-PE phase times, P = {pes}, random input"),
        &[
            "PE",
            "runform_wall_s",
            "runform_io_s",
            "selection_wall_s",
            "alltoall_wall_s",
            "merge_wall_s",
            "merge_io_s",
        ],
    );
    let rf = model.per_pe_times(&outcome.report, Phase::RunFormation);
    let sel = model.per_pe_times(&outcome.report, Phase::MultiwaySelection);
    let a2a = model.per_pe_times(&outcome.report, Phase::AllToAll);
    let fm = model.per_pe_times(&outcome.report, Phase::FinalMerge);
    for pe in 0..pes {
        t.row(vec![
            pe.to_string(),
            secs(rf[pe].wall_s),
            secs(rf[pe].io_s),
            secs(sel[pe].wall_s),
            secs(a2a[pe].wall_s),
            secs(fm[pe].wall_s),
            secs(fm[pe].io_s),
        ]);
    }
    t
}

/// Figure 5: I/O volume of the all-to-all phase divided by N — pure
/// measurement, no cost model. Four curves: worst-case non-randomized,
/// worst-case randomized at B = 8 MiB and B = 2 MiB (scaled), and
/// random input.
pub fn fig5(scale: &ExpScale, pes_list: &[usize]) -> Table {
    let small = ExpScale { block_bytes: scale.block_bytes / 4, ..scale.clone() };
    fn a2a_over_n(s: &ExpScale, p: usize, spec: InputSpec, randomize: bool) -> f64 {
        let outcome = run_canonical(s, p, spec, AlgoConfig { randomize, ..AlgoConfig::default() });
        outcome.report.phase_total(Phase::AllToAll, |st| st.io.bytes_total()) as f64
            / outcome.report.total_bytes() as f64
    }
    let worst = worst_case(scale);
    let worst_small = worst_case(&small);
    let mut t = Table::new(
        "Figure 5 — all-to-all I/O volume ÷ N",
        &["P", "worst_nonrand", "worst_rand_B8", "worst_rand_B2", "random"],
    );
    for &p in pes_list {
        t.row(vec![
            p.to_string(),
            ratio(a2a_over_n(scale, p, worst, false)),
            ratio(a2a_over_n(scale, p, worst, true)),
            ratio(a2a_over_n(&small, p, worst_small, true)),
            ratio(a2a_over_n(scale, p, InputSpec::Uniform, true)),
        ]);
    }
    t
}

/// Run the canonical sort on SortBenchmark records (100 bytes, 10-byte
/// key).
pub fn run_canonical_r100(
    scale: &ExpScale,
    pes: usize,
    data_bytes_per_pe: usize,
) -> ClusterOutcome<Record100> {
    let cfg = SortConfig::new(scale.machine(pes), AlgoConfig::default()).expect("valid");
    let local_n = data_bytes_per_pe / Record100::BYTES;
    sort_cluster::<Record100, _>(&cfg, move |pe, p| {
        let _ = p;
        gensort_records(0x50FF_BEEF, (pe * local_n) as u64, local_n)
    })
    .expect("sortbench sort")
}

/// Section VI's SortBenchmark results: our modeled runs next to the
/// published 2009 numbers the paper cites.
pub fn sortbench(scale: &ExpScale, pes: usize) -> Table {
    let mut t = Table::new(
        &format!("SortBenchmark (Section VI) — modeled at paper scale, P = {pes} nodes"),
        &["entry", "category", "nodes", "result", "source"],
    );

    // GraySort-style run: external (R > 1) 100-byte records.
    let gray = run_canonical_r100(scale, pes, scale.data_bytes_per_pe);
    let model = scale.cost_model(true);
    let wall = model.total_wall_s(&gray.report);
    let gbmin = model.throughput_bytes_per_sec(&gray.report) * 60.0 / 1e9;
    t.row(vec![
        "demsort (this run)".into(),
        "GraySort rate".into(),
        pes.to_string(),
        format!("{gbmin:.0} GB/min"),
        format!("measured x{:.0} cost model ({:.0}s wall)", scale.scale, wall),
    ]);
    t.row(vec![
        "DEMSort".into(),
        "Indy GraySort 2009".into(),
        "195".into(),
        "564 GB/min (100 TB in <3 h)".into(),
        "published".into(),
    ]);
    t.row(vec![
        "Yahoo Hadoop".into(),
        "GraySort 2009".into(),
        "3452".into(),
        "578 GB/min".into(),
        "published (17x nodes)".into(),
    ]);
    t.row(vec![
        "Google MapReduce".into(),
        "1 PB (informal)".into(),
        "~4000 (48000 disks)".into(),
        "6h02m ≈ 2763 GB/min".into(),
        "published (61x disks)".into(),
    ]);

    // MinuteSort-style run: internal case (N < M), modeled data per
    // minute. A 100-byte record does not pack a power-of-two block
    // fully, so size the run in records: 4/5 of the blocks memory can
    // hold.
    let rpb = scale.block_bytes / Record100::BYTES;
    let bpr = scale.mem_bytes_per_pe / scale.block_bytes;
    let minute_bytes = bpr * rpb * 4 / 5 * Record100::BYTES;
    let minute = run_canonical_r100(scale, pes, minute_bytes);
    assert_eq!(minute.per_pe[0].runs, 1, "MinuteSort case must be internal");
    let mwall = model.total_wall_s(&minute.report);
    let paper_bytes = minute.report.total_bytes() as f64 * scale.scale;
    let per_minute_gb = paper_bytes / mwall * 60.0 / 1e9;
    t.row(vec![
        "demsort (this run)".into(),
        "MinuteSort rate".into(),
        pes.to_string(),
        format!("{per_minute_gb:.0} GB/min (internal, R = 1)"),
        format!("measured x{:.0} cost model ({mwall:.1}s wall)", scale.scale),
    ]);
    t.row(vec![
        "DEMSort".into(),
        "Indy MinuteSort 2009".into(),
        "195".into(),
        "955 GB in 60 s".into(),
        "published (3.6x TokuSampleSort)".into(),
    ]);
    t.row(vec![
        "Yahoo Hadoop".into(),
        "MinuteSort 2009".into(),
        "1406".into(),
        "~500 GB in 60 s".into(),
        "published (7x larger machine)".into(),
    ]);
    t
}

/// Ablation of Section IV-A's selection optimizations: sampling and
/// block caching, on the worst case where probes are most expensive.
pub fn ablate_selection(scale: &ExpScale, pes: usize) -> Table {
    let mut t = Table::new(
        "Ablation — multiway selection: sampling / caching (sums over PEs)",
        &["sampling", "cache", "sample_hits", "blocks_fetched", "cache_hits", "remote_MiB"],
    );
    for (sample_every, cache) in [(64usize, 32usize), (64, 0), (0, 32), (0, 0)] {
        let algo =
            AlgoConfig { sample_every, selection_cache_blocks: cache, ..AlgoConfig::default() };
        let outcome = run_canonical(scale, pes, InputSpec::Uniform, algo);
        let sum = |f: &dyn Fn(&demsort_core::extselect::SelectionStats) -> u64| -> u64 {
            outcome.per_pe.iter().map(|o| f(&o.selection)).sum()
        };
        t.row(vec![
            if sample_every > 0 { format!("every {sample_every}") } else { "off".into() },
            if cache > 0 { format!("{cache} blocks") } else { "off".into() },
            sum(&|s| s.sample_hits).to_string(),
            sum(&|s| s.blocks_local + s.blocks_remote).to_string(),
            sum(&|s| s.cache_hits).to_string(),
            format!("{:.2}", sum(&|s| s.remote_bytes) as f64 / (1 << 20) as f64),
        ]);
    }
    t
}

/// Ablation of Section IV-E's overlapping: modeled phase times with
/// overlap on/off.
pub fn ablate_overlap(scale: &ExpScale, pes: usize) -> Table {
    let mut t = Table::new(
        "Ablation — I/O overlap (Section IV-E), random input",
        &["overlap", "run_formation_s", "total_s"],
    );
    for overlap in [true, false] {
        let algo = AlgoConfig { overlap, ..AlgoConfig::default() };
        let outcome = run_canonical(scale, pes, InputSpec::Uniform, algo);
        let model = scale.cost_model(overlap);
        let phases = model.cluster_phases(&outcome.report);
        let rf = phases.get(&Phase::RunFormation).map(|t| t.wall_s).unwrap_or(0.0);
        let total: f64 = phases.values().map(|t| t.wall_s).sum();
        t.row(vec![overlap.to_string(), secs(rf), secs(total)]);
    }
    t
}

/// Section III vs Section IV: I/O and communication volumes plus
/// modeled wall time for the globally striped and the canonical
/// algorithm.
pub fn striped_vs_canonical(scale: &ExpScale, pes_list: &[usize]) -> Table {
    let mut t = Table::new(
        "Striped (Sec. III) vs CANONICALMERGESORT (Sec. IV) — random input",
        &["P", "algo", "io_over_n", "comm_over_n", "wall_s"],
    );
    for &p in pes_list {
        // Canonical.
        let outcome = run_canonical(scale, p, InputSpec::Uniform, AlgoConfig::default());
        let model = scale.cost_model(true);
        t.row(vec![
            p.to_string(),
            "canonical".into(),
            ratio(outcome.report.io_volume_over_n()),
            ratio(outcome.report.comm_volume_over_n()),
            secs(model.total_wall_s(&outcome.report)),
        ]);
        // Striped.
        let report = run_striped_report(scale, p);
        t.row(vec![
            p.to_string(),
            "striped".into(),
            ratio(report.io_volume_over_n()),
            ratio(report.comm_volume_over_n()),
            secs(model.total_wall_s(&report)),
        ]);
    }
    t
}

/// Run the striped sort and collect a single-phase report (totals).
pub fn run_striped_report(scale: &ExpScale, pes: usize) -> SortReport {
    let cfg = SortConfig::new(scale.machine(pes), AlgoConfig::default()).expect("valid config");
    let storage = ClusterStorage::new_mem(&cfg.machine);
    let storage_ref = &storage;
    let local_n = scale.elems_per_pe();
    let cfg2 = cfg.clone();
    let stats = run_cluster(pes, move |c| {
        let st = storage_ref.pe(c.rank());
        let recs =
            generate_pe_input(InputSpec::Uniform, 0xDE77_5047 ^ pes as u64, c.rank(), pes, local_n);
        let input = ingest_input(st, &recs).expect("ingest");
        let io0 = st.counters();
        let comm0 = c.counters();
        let out = striped_mergesort::<Element16>(&c, storage_ref, &cfg2, input, 1, None)
            .expect("striped");
        demsort_types::PhaseStats {
            io: st.counters().delta_since(&io0),
            comm: c.counters().delta_since(&comm0),
            cpu: out.cpu,
        }
    });
    let elements = (local_n * pes) as u64;
    let mut report = SortReport::new(pes, elements, Element16::BYTES, 0);
    for (pe, s) in stats.into_iter().enumerate() {
        // Attribute run formation and merging together; the comparison
        // table uses totals only.
        report.record(pe, Phase::RunFormation, s);
    }
    report
}

/// Repeatable striped-sort benchmark: measured wall-clock records/s,
/// per phase and total, with each replication factor in
/// `replications` — emitted as machine-readable JSON (the CI smoke
/// step writes it to `BENCH_striped.json`), built on the shared
/// escape-correct [`Json`] emitter the trace journals use. The same
/// seed, input, and machine shape are used for every factor, so
/// consecutive runs (and runs across commits) measure exactly the same
/// work and the replication column isolates the cost of storing
/// buddy-rank copies of every run block during run formation.
pub fn bench_striped_json(scale: &ExpScale, pes: usize, replications: &[usize]) -> String {
    bench_striped_json_reps(scale, pes, replications, BENCH_REPS)
}

/// Repetitions each benchmark configuration runs; the reported wall
/// time is the median, so one noisy rep cannot move the headline rate.
pub const BENCH_REPS: usize = 3;

/// Median of `xs` (mean of the middle two for even lengths).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Pool counters summed over PEs, as a JSON object.
fn pool_json<R: Record>(per_pe: &[StripedOutcome<R>]) -> Json {
    let sum = |f: &dyn Fn(&demsort_types::PoolCounters) -> u64| -> u64 {
        per_pe.iter().map(|o| f(&o.pool)).sum()
    };
    Json::Obj(vec![
        ("hits".into(), Json::Uint(sum(&|p| p.hits))),
        ("misses".into(), Json::Uint(sum(&|p| p.misses))),
        ("recycled".into(), Json::Uint(sum(&|p| p.recycled))),
        ("discarded".into(), Json::Uint(sum(&|p| p.discarded))),
        ("copied_bytes".into(), Json::Uint(sum(&|p| p.copied_bytes))),
    ])
}

/// [`bench_striped_json`] with an explicit repetition count (tests use
/// 1 to stay fast; the default is [`BENCH_REPS`]).
pub fn bench_striped_json_reps(
    scale: &ExpScale,
    pes: usize,
    replications: &[usize],
    reps: usize,
) -> String {
    let local_n = scale.elems_per_pe();
    let mut runs_json = Vec::new();
    for &f in replications {
        let algo = AlgoConfig { replication: f, ..AlgoConfig::default() };
        let cfg = SortConfig::new(scale.machine(pes), algo).expect("valid config");
        let mut walls = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps.max(1) {
            let started = std::time::Instant::now();
            let outcome = striped_sort_cluster::<Element16, _>(
                &cfg,
                |pe, p| generate_pe_input(InputSpec::Uniform, 0xBE6C_57A1, pe, p, local_n),
                None,
            )
            .expect("striped sort");
            walls.push(started.elapsed().as_secs_f64());
            last = Some(outcome);
        }
        let outcome = last.expect("at least one rep");
        let wall_s = median(&mut walls);
        let records = outcome.per_pe.first().map_or(0, |o| o.output.elems);
        runs_json.push(Json::Obj(vec![
            ("replication".into(), Json::Uint(f as u64)),
            ("reps".into(), Json::Uint(walls.len() as u64)),
            ("wall_s".into(), Json::Num(wall_s)),
            ("records_per_s".into(), Json::Uint((records as f64 / wall_s) as u64)),
            ("pool".into(), pool_json(&outcome.per_pe)),
            ("phases".into(), Json::Obj(striped_phase_rates(&outcome.per_pe, records))),
        ]));
    }
    let doc = Json::Obj(vec![
        ("bench".into(), Json::str("striped")),
        ("pes".into(), Json::Uint(pes as u64)),
        ("records".into(), Json::Uint(local_n as u64 * pes as u64)),
        ("record_bytes".into(), Json::Uint(Element16::BYTES as u64)),
        ("runs".into(), Json::Arr(runs_json)),
    ]);
    let mut out = doc.to_string();
    out.push('\n');
    out
}

/// Per-phase wall time and throughput of a striped cluster run. A
/// phase ends when its slowest PE does: throughput is bounded by the
/// per-phase maximum over PEs of measured host wall time.
fn striped_phase_rates(per_pe: &[StripedOutcome<Element16>], records: u64) -> Vec<(String, Json)> {
    let mut phases = Vec::new();
    for &phase in Phase::ALL.iter() {
        let ns = per_pe
            .iter()
            .flat_map(|o| &o.phases)
            .filter(|(p, _)| *p == phase)
            .map(|(_, s)| s.cpu.host_wall_ns)
            .max()
            .unwrap_or(0);
        if ns == 0 {
            continue;
        }
        let s = ns as f64 / 1e9;
        phases.push((
            phase.key().to_string(),
            Json::Obj(vec![
                ("wall_s".into(), Json::Num(s)),
                ("records_per_s".into(), Json::Uint((records as f64 / s) as u64)),
            ]),
        ));
    }
    phases
}

/// Repeatable in-node parallel-merge benchmark: the striped sort at
/// each thread count in `cores_list`, same seed, input, and machine
/// shape, so the cores column isolates the intra-rank parallel batch
/// merge (and parallel batch decode) — emitted as machine-readable
/// JSON (the CI bench step writes it to `BENCH_merge_parallel.json`).
/// `split_probes` counts the multisequence-selection probes that split
/// each batch across threads: 0 at `cores = 1` and deterministic for a
/// given shape, so a splitter regression shows up as a counter diff,
/// not just timing drift.
pub fn bench_merge_parallel_json(scale: &ExpScale, pes: usize, cores_list: &[usize]) -> String {
    bench_merge_parallel_json_reps(scale, pes, cores_list, BENCH_REPS)
}

/// [`bench_merge_parallel_json`] with an explicit repetition count.
pub fn bench_merge_parallel_json_reps(
    scale: &ExpScale,
    pes: usize,
    cores_list: &[usize],
    reps: usize,
) -> String {
    let local_n = scale.elems_per_pe();
    let mut runs_json = Vec::new();
    for &cores in cores_list {
        let s = ExpScale { sim_cores: cores, ..scale.clone() };
        let cfg = SortConfig::new(s.machine(pes), AlgoConfig::default()).expect("valid config");
        let mut walls = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps.max(1) {
            let started = std::time::Instant::now();
            let outcome = striped_sort_cluster::<Element16, _>(
                &cfg,
                |pe, p| generate_pe_input(InputSpec::Uniform, 0xBE6C_57A1, pe, p, local_n),
                None,
            )
            .expect("striped sort");
            walls.push(started.elapsed().as_secs_f64());
            last = Some(outcome);
        }
        let outcome = last.expect("at least one rep");
        let wall_s = median(&mut walls);
        let records = outcome.per_pe.first().map_or(0, |o| o.output.elems);
        let split_probes: u64 =
            outcome.per_pe.iter().flat_map(|o| &o.phases).map(|(_, st)| st.cpu.split_probes).sum();
        runs_json.push(Json::Obj(vec![
            ("cores".into(), Json::Uint(cores as u64)),
            ("reps".into(), Json::Uint(walls.len() as u64)),
            ("wall_s".into(), Json::Num(wall_s)),
            ("records_per_s".into(), Json::Uint((records as f64 / wall_s) as u64)),
            ("split_probes".into(), Json::Uint(split_probes)),
            ("pool".into(), pool_json(&outcome.per_pe)),
            ("phases".into(), Json::Obj(striped_phase_rates(&outcome.per_pe, records))),
        ]));
    }
    let doc = Json::Obj(vec![
        ("bench".into(), Json::str("merge_parallel")),
        ("pes".into(), Json::Uint(pes as u64)),
        ("records".into(), Json::Uint(local_n as u64 * pes as u64)),
        ("record_bytes".into(), Json::Uint(Element16::BYTES as u64)),
        ("runs".into(), Json::Arr(runs_json)),
    ]);
    let mut out = doc.to_string();
    out.push('\n');
    out
}

/// NOW-Sort baseline vs CANONICALMERGESORT on uniform and skewed
/// inputs: balance and modeled time (the Section II degradation).
pub fn baseline_skew(scale: &ExpScale, pes: usize) -> Table {
    let mut t = Table::new(
        "NOW-Sort baseline vs CANONICALMERGESORT — balance under skew",
        &["input", "algo", "max/avg_balance", "wall_s"],
    );
    for spec in [InputSpec::Uniform, InputSpec::SkewedToOne] {
        // Canonical: exact splitting keeps balance at 1 by construction.
        let outcome = run_canonical(scale, pes, spec, AlgoConfig::default());
        let model = scale.cost_model(true);
        let sizes: Vec<u64> = outcome.per_pe.iter().map(|o| o.output.elems).collect();
        let avg = sizes.iter().sum::<u64>() as f64 / pes as f64;
        let imb = sizes.iter().copied().max().unwrap_or(0) as f64 / avg.max(1.0);
        t.row(vec![
            spec.label().into(),
            "canonical".into(),
            format!("{imb:.2}"),
            secs(model.total_wall_s(&outcome.report)),
        ]);
        // NOW-Sort.
        let (report, imbalance) = run_nowsort_report(scale, pes, spec);
        t.row(vec![
            spec.label().into(),
            "nowsort".into(),
            format!("{imbalance:.2}"),
            secs(scale.cost_model(true).total_wall_s(&report)),
        ]);
    }
    t
}

/// Run the NOW-Sort baseline and return (report, imbalance).
pub fn run_nowsort_report(scale: &ExpScale, pes: usize, spec: InputSpec) -> (SortReport, f64) {
    let cfg = SortConfig::new(scale.machine(pes), AlgoConfig::default()).expect("valid config");
    let storage = ClusterStorage::new_mem(&cfg.machine);
    let storage_ref = &storage;
    let local_n = scale.elems_per_pe();
    let cfg2 = cfg.clone();
    let outcomes = run_cluster(pes, move |c| {
        let st = storage_ref.pe(c.rank());
        let recs = generate_pe_input(spec, 0xDE77_5047 ^ pes as u64, c.rank(), pes, local_n);
        let input = ingest_input(st, &recs).expect("ingest");
        let out = nowsort::<Element16>(&c, st, &cfg2, input, 1).expect("nowsort");
        (out.phases, out.imbalance)
    });
    let elements = (local_n * pes) as u64;
    let mut report = SortReport::new(pes, elements, Element16::BYTES, 0);
    let mut imbalance = 1.0f64;
    for (pe, (phases, imb)) in outcomes.into_iter().enumerate() {
        imbalance = imbalance.max(imb);
        for (phase, stats) in phases {
            report.record(pe, phase, stats);
        }
    }
    (report, imbalance)
}

/// Future-work ablation: replacement-selection run formation (Knuth
/// 5.4.1) vs load-sort-store, across input orders. Fewer runs → larger
/// feasible block size (the paper's stated motivation).
pub fn ablate_runlength(scale: &ExpScale) -> Table {
    use demsort_core::replacement::runs_by_replacement;
    use demsort_types::Element16;

    let m = (scale.mem_bytes_per_pe / 16).max(1);
    let n = scale.elems_per_pe();
    let mut t = Table::new(
        "Ablation — run formation: replacement selection vs load-sort-store",
        &["input", "method", "runs", "avg_run_over_m"],
    );
    for spec in [InputSpec::Uniform, InputSpec::Sorted, InputSpec::ReverseSorted] {
        let input = generate_pe_input(spec, 77, 0, 1, n);
        let baseline = n.div_ceil(m);
        t.row(vec![
            spec.label().into(),
            "load-sort-store".into(),
            baseline.to_string(),
            format!("{:.2}", n as f64 / baseline as f64 / m as f64),
        ]);
        let runs = runs_by_replacement::<Element16>(&input, m);
        t.row(vec![
            spec.label().into(),
            "replacement".into(),
            runs.len().to_string(),
            format!("{:.2}", n as f64 / runs.len().max(1) as f64 / m as f64),
        ]);
    }
    t
}

/// Appendix A ablation: naive (consumption-order) prefetching vs the
/// duality-optimal schedule of \[13\], on striped, random, and clustered
/// block layouts.
pub fn ablate_prefetch(scale: &ExpScale) -> Table {
    use demsort_storage::{duality_issue_order, naive_issue_order, simulate_schedule, BlockId};
    use demsort_workloads::splitmix64;

    let disks = scale.disks_per_pe as u32;
    let blocks = 512usize;
    let make = |layout: &str| -> Vec<BlockId> {
        let mut next = vec![0u32; disks as usize];
        let mut alloc = |d: u32| {
            let s = next[d as usize];
            next[d as usize] += 1;
            BlockId::new(d, s)
        };
        match layout {
            "striped" => (0..blocks).map(|i| alloc(i as u32 % disks)).collect(),
            "random" => {
                (0..blocks).map(|i| alloc((splitmix64(i as u64) % disks as u64) as u32)).collect()
            }
            // Adversarial: long stretches on one disk.
            _ => {
                (0..blocks).map(|i| alloc((i / (blocks / disks as usize)) as u32 % disks)).collect()
            }
        }
    };
    let mut t = Table::new(
        "Ablation — prefetch schedules (Appendix A): parallel I/O steps",
        &["layout", "buffers", "naive_steps", "duality_steps", "lower_bound"],
    );
    for layout in ["striped", "random", "clustered"] {
        let seq = make(layout);
        let per_disk = (0..disks)
            .map(|d| seq.iter().filter(|b| b.disk == d).count() as u64)
            .max()
            .unwrap_or(0);
        for buffers in [disks as usize, 4 * disks as usize] {
            let naive = simulate_schedule(&seq, &naive_issue_order(&seq), buffers);
            let optimal = simulate_schedule(&seq, &duality_issue_order(&seq, buffers), buffers);
            t.row(vec![
                layout.into(),
                buffers.to_string(),
                naive.io_steps.to_string(),
                optimal.io_steps.to_string(),
                per_disk.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExpScale {
        ExpScale::smoke()
    }

    #[test]
    fn fig2_scales_mildly() {
        let t = fig2(&smoke(), &[1, 2, 4]);
        let s = t.render();
        assert!(s.contains("Figure 2"));
        // Shape: per-PE volume is fixed, so total time must stay within
        // a modest factor as P grows (the paper's "scalability is very
        // good").
        let totals: Vec<f64> = s
            .lines()
            .skip(3)
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert_eq!(totals.len(), 3);
        let max = totals.iter().cloned().fold(0.0, f64::max);
        let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.8, "weak scaling within factor: {totals:?}");
    }

    #[test]
    fn fig5_shows_randomization_and_block_size_effects() {
        let t = fig5(&smoke(), &[4]);
        let s = t.render();
        let row = s.lines().nth(3).expect("data row");
        let cells: Vec<f64> = row.split_whitespace().skip(1).map(|c| c.parse().unwrap()).collect();
        let (nonrand, rand_b8, rand_b2, random) = (cells[0], cells[1], cells[2], cells[3]);
        assert!(nonrand > rand_b8, "randomization cuts volume: {cells:?}");
        assert!(rand_b2 <= rand_b8 * 1.1, "smaller blocks help (or tie): {cells:?}");
        assert!(random < nonrand, "random input moves least vs worst: {cells:?}");
    }

    #[test]
    fn fig6_shows_worstcase_penalty_vs_fig4() {
        let s = smoke();
        let with = fig4(&s, &[4]);
        let without = fig6(&s, &[4]);
        let total = |t: &Table| -> f64 {
            t.render().lines().nth(3).unwrap().split_whitespace().last().unwrap().parse().unwrap()
        };
        assert!(
            total(&without) > total(&with),
            "non-randomized worst case must be slower: {} vs {}",
            total(&without),
            total(&with)
        );
    }

    #[test]
    fn sortbench_produces_positive_rates() {
        let t = sortbench(&smoke(), 4);
        let s = t.render();
        assert!(s.contains("GB/min"));
        assert!(s.contains("564 GB/min"), "published rows present");
    }

    #[test]
    fn ablations_and_baselines_run() {
        let s = smoke();
        let sel = ablate_selection(&s, 3).render();
        assert!(sel.contains("every 64"));
        let ovl = ablate_overlap(&s, 2).render();
        assert!(ovl.contains("true") && ovl.contains("false"));
        let svc = striped_vs_canonical(&s, &[2]).render();
        assert!(svc.contains("striped") && svc.contains("canonical"));
        let skew = baseline_skew(&s, 4).render();
        assert!(skew.contains("nowsort"));
    }

    #[test]
    fn bench_striped_json_is_machine_readable_and_covers_both_factors() {
        let s = bench_striped_json_reps(&smoke(), 3, &[0, 1], 1);
        // Shape pins, now through the shared parser: both replication
        // factors, both striped phases, positive rates, pool counters.
        let doc = Json::parse(s.trim()).expect("BENCH output parses");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("striped"), "{s}");
        let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
        let reps: Vec<u64> =
            runs.iter().filter_map(|r| r.get("replication").and_then(Json::as_u64)).collect();
        assert_eq!(reps, [0, 1], "{s}");
        for run in runs {
            let rate = run.get("records_per_s").and_then(Json::as_f64).expect("rate");
            assert!(rate > 0.0, "rates must be positive: {s}");
            assert_eq!(run.get("reps").and_then(Json::as_u64), Some(1), "{s}");
            let pool = run.get("pool").expect("pool counters object");
            assert!(
                pool.get("hits").and_then(Json::as_u64).unwrap_or(0) > 0,
                "a striped sort must recycle buffers through the pool: {s}"
            );
            let phases = run.get("phases").expect("phases object");
            for key in ["run_formation", "final_merge"] {
                let ph = phases.get(key).unwrap_or_else(|| panic!("phase {key} present: {s}"));
                assert!(ph.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0) > 0.0, "{s}");
            }
        }
    }

    #[test]
    fn bench_merge_parallel_json_sweeps_cores_and_counts_split_probes() {
        let s = bench_merge_parallel_json_reps(&smoke(), 3, &[1, 2], 1);
        let doc = Json::parse(s.trim()).expect("BENCH output parses");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("merge_parallel"), "{s}");
        let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
        let cores: Vec<u64> =
            runs.iter().filter_map(|r| r.get("cores").and_then(Json::as_u64)).collect();
        assert_eq!(cores, [1, 2], "{s}");
        let probes: Vec<u64> =
            runs.iter().filter_map(|r| r.get("split_probes").and_then(Json::as_u64)).collect();
        assert_eq!(probes[0], 0, "cores=1 performs no split selection: {s}");
        assert_eq!(
            probes[1], 0,
            "smoke-scale batches sit below PAR_MERGE_MIN_PER_THREAD, so cores=2 \
             must take the sequential path with zero split probes: {s}"
        );
        for run in runs {
            let rate = run.get("records_per_s").and_then(Json::as_f64).expect("rate");
            assert!(rate > 0.0, "rates must be positive: {s}");
            assert!(run.get("pool").is_some(), "pool counters present: {s}");
            let phases = run.get("phases").expect("phases object");
            for key in ["run_formation", "final_merge"] {
                assert!(phases.get(key).is_some(), "phase {key} present: {s}");
            }
        }
    }

    #[test]
    fn runlength_ablation_shows_longer_runs() {
        let t = ablate_runlength(&smoke()).render();
        // Replacement selection on uniform input: avg run ≈ 2m.
        let repl_row = t
            .lines()
            .find(|l| l.contains("uniform") && l.contains("replacement"))
            .expect("row present");
        let avg: f64 = repl_row.split_whitespace().last().unwrap().parse().unwrap();
        assert!(avg > 1.5, "replacement runs should approach 2m: {avg}");
    }

    #[test]
    fn prefetch_ablation_duality_never_worse() {
        let t = ablate_prefetch(&smoke()).render();
        for line in t.lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 5 {
                let naive: u64 = cells[2].parse().unwrap();
                let duality: u64 = cells[3].parse().unwrap();
                assert!(duality <= naive, "duality must not lose: {line}");
            }
        }
    }
}
