//! The repo-invariant lints.
//!
//! Each lint enforces, at the source level, a convention earlier PRs
//! established operationally:
//!
//! | id | name | invariant |
//! |----|------|-----------|
//! | L1 | no-panic | no `panic!`/`unreachable!`/`todo!`/`unimplemented!`/`.unwrap()` in non-test code of `crates/{net,storage,types,core}`; `.expect(` is inventoried as a warning (repo policy reserves it for process-local invariants no peer can trigger) |
//! | L2 | fallible-op-discipline | a `Result` from a `Communicator`/`Transport`/`ClusterStorage`/`IoEngine` API is never discarded via `let _ =`, `.ok();`, or a bare statement drop |
//! | L3 | unsafe-audit | every `unsafe` block/fn/impl carries a `// SAFETY:` comment; all sites feed the unsafe-inventory artifact |
//! | L4 | trace-span-pairing | a function that opens a trace span (`.begin(`) also closes one (`.end(`), and vice versa — the static twin of `demsort-trace`'s runtime spans-closed check |
//! | L5 | counter-integrity | identity-pinned counter fields (`CpuCounters`, `CommCounters`, `IoCounters`, wire meters) are mutated only in the allowlisted metering modules |
//!
//! Intentional exceptions use the escape hatch
//! `// verify: allow(<lint>, <reason>)` on the offending line or the
//! line above; suppressed findings stay in the JSON report with their
//! reason, and hatches that suppress nothing are flagged as stale.

use crate::report::{AllowedFinding, Finding, Report, Severity, UnsafeSite};
use crate::scan::SourceFile;

/// Lint ids with one-line descriptions (for `--list-lints`).
pub const LINTS: &[(&str, &str, &str)] = &[
    (
        "L1",
        "no-panic",
        "no panic!/unwrap (deny) or expect (warn) in net/storage/types/core non-test code",
    ),
    (
        "L2",
        "fallible-op-discipline",
        "no discarded Result from Communicator/Transport/ClusterStorage/IoEngine APIs",
    ),
    (
        "L3",
        "unsafe-audit",
        "every unsafe site carries a SAFETY: comment (and feeds the unsafe inventory)",
    ),
    ("L4", "trace-span-pairing", "functions open and close trace spans together"),
    ("L5", "counter-integrity", "counter fields mutate only in allowlisted metering modules"),
];

/// Crates whose non-test code must be panic-free (L1). The old CI awk
/// guard covered `crates/net`, `crates/storage`, and three `types`
/// modules, and stopped scanning each file at its first
/// `#[cfg(test)]`; this list is a strict superset and scoping is
/// per-item.
const L1_SCOPE: &[&str] = &["crates/net/", "crates/storage/", "crates/types/", "crates/core/"];

/// Macro names that abort a rank.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method/function names of the fallible cluster APIs (L2). Keyed by
/// name because the analyzer is token-level; the list holds the
/// `Result`-returning surface of:
/// `Transport`/`Communicator` (net), `ClusterStorage`/`BlockFetch`/
/// `BlockStore` (core::ctx), and `IoEngine`/`IoHandle` (storage).
const FALLIBLE_METHODS: &[&str] = &[
    // Transport + Communicator
    "send",
    "send_bytes",
    "send_vectored",
    "recv",
    "flush",
    "barrier",
    "broadcast",
    "gather",
    "allgather",
    "allgather_u64",
    "allreduce_u64",
    "allreduce_sum",
    "allreduce_max",
    "allreduce_and",
    "exscan_sum",
    "alltoallv",
    "chunked_alltoallv",
    "advance_epoch",
    "drain_to_epoch",
    // ClusterStorage + fetch/store handles
    "fetch_block",
    "fetch_blocks",
    "fetch_blocks_scheduled",
    "fetch_block_cached",
    "store_blocks",
    "wait",
    // IoEngine
    "read_sync",
    "write_sync",
    "drain",
];

/// Statement-leading keywords that disqualify the bare-drop pattern.
const STMT_KEYWORDS: &[&str] = &[
    "let", "if", "while", "for", "match", "return", "else", "loop", "break", "continue", "use",
    "pub", "const", "static", "fn", "struct", "enum", "impl", "mod", "type", "trait", "unsafe",
    "move", "async", "where", "extern", "crate", "in",
];

/// Identity-pinned counter fields (L5): `CpuCounters`, `CommCounters`,
/// `IoCounters`, and the TCP wire meters.
const COUNTER_FIELDS: &[&str] = &[
    "elements_sorted",
    "sort_work",
    "elements_merged",
    "merge_work",
    "split_probes",
    "host_wall_ns",
    "bytes_sent",
    "bytes_recv",
    "messages",
    "bytes_read",
    "bytes_written",
    "blocks_read",
    "blocks_written",
    "max_disk_busy_ns",
    "wire_sent",
    "wire_recv",
];

/// Files allowed to mutate counter fields: the metering modules where
/// the work being counted actually happens. Anything else bumping a
/// counter would silently skew the byte- and counter-identity pins.
const L5_ALLOWED_FILES: &[&str] = &[
    "crates/types/src/counters.rs",
    "crates/net/src/comm.rs",
    "crates/net/src/tcp.rs",
    "crates/storage/src/engine.rs",
    "crates/storage/src/disk.rs",
    "crates/core/src/ctx.rs",
    "crates/core/src/seqsort.rs",
    "crates/core/src/psort.rs",
    "crates/core/src/runform.rs",
    "crates/core/src/localmerge.rs",
    "crates/core/src/striped.rs",
];

/// Lines a `SAFETY:` comment may end above the `unsafe` token it
/// documents (covers multi-line justifications).
const SAFETY_WINDOW: u32 = 8;

/// Run every lint over `file`, appending to `report`. Stale escape
/// hatches are reported after the lints so a hatch consumed by any
/// lint on the file counts as used.
pub fn run_lints(file: &SourceFile, report: &mut Report) {
    lint_l1_no_panic(file, report);
    lint_l2_fallible_discipline(file, report);
    lint_l3_unsafe_audit(file, report);
    lint_l4_span_pairing(file, report);
    lint_l5_counter_integrity(file, report);
    for a in &file.allows {
        if !a.used.get() {
            report.findings.push(Finding {
                lint: "L0",
                severity: Severity::Warn,
                file: file.path.clone(),
                line: a.line,
                message: format!(
                    "stale escape hatch: `verify: allow({}, {})` suppresses nothing",
                    a.lint, a.reason
                ),
            });
        }
    }
}

/// Emit one finding, routing it through the escape hatch if present.
fn emit(
    file: &SourceFile,
    report: &mut Report,
    lint: &'static str,
    severity: Severity,
    line: u32,
    message: String,
) {
    let finding = Finding { lint, severity, file: file.path.clone(), line, message };
    match file.allow_for(lint, line) {
        Some(a) => report.allowed.push(AllowedFinding { finding, reason: a.reason.clone() }),
        None => report.findings.push(finding),
    }
}

/// L1: no panic paths in the fault-tolerant crates.
fn lint_l1_no_panic(file: &SourceFile, report: &mut Report) {
    if !L1_SCOPE.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    let code = file.code_indices();
    for (k, &i) in code.iter().enumerate() {
        if file.is_test[i] {
            continue;
        }
        let t = &file.toks[i];
        let next = code.get(k + 1).map(|&j| &file.toks[j]);
        let next2 = code.get(k + 2).map(|&j| &file.toks[j]);
        if PANIC_MACROS.contains(&t.text.as_str()) && next.is_some_and(|n| n.is_punct('!')) {
            emit(
                file,
                report,
                "L1",
                Severity::Deny,
                t.line,
                format!(
                    "`{}!` aborts the rank; collectives and storage faults must surface as `Result` (Error::Comm / Error::Io)",
                    t.text
                ),
            );
        } else if t.is_punct('.') && next2.is_some_and(|n| n.is_punct('(')) {
            if next.is_some_and(|n| n.is_ident("unwrap")) {
                emit(
                    file,
                    report,
                    "L1",
                    Severity::Deny,
                    t.line,
                    "`.unwrap()` panics on Err/None; propagate with `?` or handle the failure"
                        .into(),
                );
            } else if next.is_some_and(|n| n.is_ident("expect")) {
                emit(
                    file,
                    report,
                    "L1",
                    Severity::Warn,
                    t.line,
                    "`.expect(` is reserved for process-local invariants no peer can trigger (lock poisoning, thread spawn); audit that this one qualifies".into(),
                );
            }
        }
    }
}

/// L2: a `Result` from the cluster APIs must be consumed.
///
/// Statements are token runs between `;`/`{`/`}`; that splits a
/// closure-bearing statement at the closure body, which can only make
/// this lint *miss* a discard, never invent one.
fn lint_l2_fallible_discipline(file: &SourceFile, report: &mut Report) {
    let code = file.code_indices();
    let mut stmt: Vec<usize> = Vec::new();
    for &i in &code {
        let t = &file.toks[i];
        if t.is_punct('{') || t.is_punct('}') {
            stmt.clear();
        } else if t.is_punct(';') {
            check_statement(file, report, &stmt);
            stmt.clear();
        } else {
            stmt.push(i);
        }
    }
}

fn check_statement(file: &SourceFile, report: &mut Report, stmt: &[usize]) {
    let Some(&first) = stmt.first() else { return };
    if file.is_test[first] {
        return;
    }
    let tok = |j: usize| &file.toks[stmt[j]];
    // The fallible call the statement contains, if any.
    let called = (0..stmt.len().saturating_sub(1)).rev().find_map(|j| {
        let t = tok(j);
        (t.kind == crate::lexer::TokKind::Ident
            && FALLIBLE_METHODS.contains(&t.text.as_str())
            && tok(j + 1).is_punct('('))
        .then(|| t.text.clone())
    });
    let Some(called) = called else { return };
    let last = tok(stmt.len() - 1);
    if last.is_punct('?') {
        return; // `let _ = c.recv(from)?;` — the Result is propagated.
    }
    let line = file.toks[first].line;
    let n = stmt.len();
    let hatch = "handle it, `?` it, or annotate `// verify: allow(L2, reason)`";
    if n > 2 && tok(0).is_ident("let") && tok(1).is_ident("_") && tok(2).is_punct('=') {
        emit(
            file,
            report,
            "L2",
            Severity::Deny,
            line,
            format!("`let _ =` discards the Result of fallible `{called}`; {hatch}"),
        );
    } else if n > 4
        && tok(n - 4).is_punct('.')
        && tok(n - 3).is_ident("ok")
        && tok(n - 2).is_punct('(')
        && tok(n - 1).is_punct(')')
    {
        emit(
            file,
            report,
            "L2",
            Severity::Deny,
            line,
            format!("`.ok();` swallows the error from fallible `{called}`; {hatch}"),
        );
    } else if bare_drop(file, stmt, &called) {
        emit(
            file,
            report,
            "L2",
            Severity::Deny,
            line,
            format!("statement drops the Result of fallible `{called}` on the floor; {hatch}"),
        );
    }
}

/// True if `stmt` is a bare expression statement whose trailing call
/// is the fallible `called` — e.g. `c.barrier();`. Anything that
/// binds, branches, propagates, or runs a macro is not a bare drop.
fn bare_drop(file: &SourceFile, stmt: &[usize], called: &str) -> bool {
    let toks: Vec<&crate::lexer::Tok> = stmt.iter().map(|&i| &file.toks[i]).collect();
    let first = toks[0];
    if first.kind == crate::lexer::TokKind::Ident && STMT_KEYWORDS.contains(&first.text.as_str()) {
        return false;
    }
    if toks.iter().any(|t| t.is_punct('=') || t.is_punct('?') || t.is_punct('!')) {
        return false;
    }
    if !toks.last().is_some_and(|t| t.is_punct(')')) {
        return false;
    }
    // The fallible call must be the statement's own trailing call, not
    // an argument to a consumer: `c.barrier();` has `barrier` at paren
    // depth 0, while in `consume(c.recv(..));` the `recv` sits at
    // depth 1 — its Result is consumed, not dropped.
    let mut depth = 0i64;
    let mut top_call = None;
    for j in 0..toks.len() {
        if toks[j].is_punct('(') {
            if depth == 0 && j > 0 && toks[j - 1].kind == crate::lexer::TokKind::Ident {
                top_call = Some(toks[j - 1].text.as_str());
            }
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
        }
    }
    top_call == Some(called)
}

/// L3: every `unsafe` site needs a `SAFETY:` comment; all sites are
/// inventoried (test code included — an undocumented `unsafe` in a
/// test is still auditable surface).
fn lint_l3_unsafe_audit(file: &SourceFile, report: &mut Report) {
    let code = file.code_indices();
    for (k, &i) in code.iter().enumerate() {
        let t = &file.toks[i];
        if !t.is_ident("unsafe") {
            continue;
        }
        let kind = match code.get(k + 1).map(|&j| &file.toks[j]) {
            Some(n) if n.is_punct('{') => "block",
            Some(n) if n.is_ident("fn") => "fn",
            Some(n) if n.is_ident("impl") => "impl",
            Some(n) if n.is_ident("trait") => "trait",
            _ => "other",
        };
        let documented = file.has_safety_comment(t.line, SAFETY_WINDOW);
        report.unsafe_sites.push(UnsafeSite {
            file: file.path.clone(),
            line: t.line,
            kind,
            func: file.fn_of[i].map(|fi| file.fns[fi].name.clone()),
            documented,
            in_test: file.is_test[i],
        });
        if !documented {
            emit(
                file,
                report,
                "L3",
                Severity::Deny,
                t.line,
                format!("`unsafe` {kind} without a `// SAFETY:` comment justifying it"),
            );
        }
    }
}

/// L4: span open/close calls must pair up inside each function — the
/// static twin of `demsort-trace`'s runtime "spans closed exactly
/// once" validation.
fn lint_l4_span_pairing(file: &SourceFile, report: &mut Report) {
    let code = file.code_indices();
    // Per function (None = module level): first line and count of
    // `.begin(` / `.end(` calls.
    let mut spans: std::collections::BTreeMap<Option<usize>, [(u32, usize); 2]> =
        std::collections::BTreeMap::new();
    for (k, &i) in code.iter().enumerate() {
        if file.is_test[i] {
            continue;
        }
        let t = &file.toks[i];
        if !t.is_punct('.') {
            continue;
        }
        let next = code.get(k + 1).map(|&j| &file.toks[j]);
        let next2 = code.get(k + 2).map(|&j| &file.toks[j]);
        if !next2.is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let slot = match next {
            Some(n) if n.is_ident("begin") => 0,
            Some(n) if n.is_ident("end") => 1,
            _ => continue,
        };
        let e = spans.entry(file.fn_of[i]).or_insert([(0, 0); 2]);
        if e[slot].1 == 0 {
            e[slot].0 = t.line;
        }
        e[slot].1 += 1;
    }
    for (f, [(bline, begins), (eline, ends)]) in spans {
        let name = f.map_or("<module scope>".to_string(), |fi| file.fns[fi].name.clone());
        if begins > 0 && ends == 0 {
            emit(
                file,
                report,
                "L4",
                Severity::Deny,
                bline,
                format!("fn `{name}` opens a trace span (`.begin(`) but never closes one"),
            );
        } else if ends > 0 && begins == 0 {
            emit(
                file,
                report,
                "L4",
                Severity::Deny,
                eline,
                format!("fn `{name}` closes a trace span (`.end(`) it never opened"),
            );
        }
    }
}

/// L5: counter fields mutate only in the metering modules.
fn lint_l5_counter_integrity(file: &SourceFile, report: &mut Report) {
    if L5_ALLOWED_FILES.contains(&file.path.as_str()) {
        return;
    }
    let code = file.code_indices();
    for (k, &i) in code.iter().enumerate() {
        if file.is_test[i] {
            continue;
        }
        if !file.toks[i].is_punct('.') {
            continue;
        }
        let Some(&fi) = code.get(k + 1) else { continue };
        let field = &file.toks[fi];
        if field.kind != crate::lexer::TokKind::Ident
            || !COUNTER_FIELDS.contains(&field.text.as_str())
        {
            continue;
        }
        let t2 = code.get(k + 2).map(|&j| &file.toks[j]);
        let t3 = code.get(k + 3).map(|&j| &file.toks[j]);
        let t4 = code.get(k + 4).map(|&j| &file.toks[j]);
        let mutated = match t2 {
            Some(p) if p.is_punct('+') || p.is_punct('-') => t3.is_some_and(|n| n.is_punct('=')),
            Some(p) if p.is_punct('=') => !t3.is_some_and(|n| n.is_punct('=')),
            Some(p) if p.is_punct('.') => {
                t4.is_some_and(|n| n.is_punct('('))
                    && t3.is_some_and(|n| {
                        n.is_ident("set") || n.is_ident("fetch_add") || n.is_ident("store")
                    })
            }
            _ => false,
        };
        if mutated {
            emit(
                file,
                report,
                "L5",
                Severity::Deny,
                field.line,
                format!(
                    "counter field `{}` mutated outside the allowlisted metering modules; identity pins depend on these staying honest",
                    field.text
                ),
            );
        }
    }
}
