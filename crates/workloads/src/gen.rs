//! Input generators for the paper's experiment classes.
//!
//! Every generator is deterministic in `(spec, seed, pe, p, local_n)`
//! and tags each element's payload with its unique global index, so
//! validators can verify the output is a *permutation* of the input,
//! not merely sorted.

use crate::splitmix64;
use demsort_types::Element16;

/// The input classes used across the evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InputSpec {
    /// Uniform random 64-bit keys — Figures 2 and 3 ("random input").
    Uniform,
    /// The redistribution worst case (Figures 4/5/6): each PE's local
    /// data is laid out in *bands* — block `b` of every PE carries keys
    /// from the narrow key band `b`. Without randomization, run `r` is
    /// then formed from same-band blocks on every PE, so the run covers
    /// a narrow key range and nearly all its data must move in the
    /// all-to-all. `block_elems` is the number of elements per band
    /// block (use the machine's `B / Record::BYTES`).
    Banded {
        /// Elements per input block (band granularity).
        block_elems: usize,
    },
    /// Every key falls in the output range of a single PE (PE 0) —
    /// degenerates NOW-Sort-style partitioning to sequential
    /// (Section II).
    SkewedToOne,
    /// Globally sorted ascending (PE 0 holds the smallest keys):
    /// best case for redistribution.
    Sorted,
    /// Globally sorted descending.
    ReverseSorted,
    /// All keys identical — duplicate-handling stress for exact
    /// splitting.
    Constant,
    /// Power-law (Zipf-flavoured) skew: key = `⌊u^alpha · 2^62⌋` for
    /// uniform `u`, concentrating mass near small keys. `alpha_x10` is
    /// the exponent × 10 (e.g. `25` → α = 2.5). Stresses exact
    /// splitting under heavy low-key load without fully degenerating
    /// like [`InputSpec::SkewedToOne`].
    PowerLaw {
        /// Skew exponent × 10 (10 = uniform, larger = more skew).
        alpha_x10: u8,
    },
}

impl InputSpec {
    /// Short label for report rows.
    pub fn label(&self) -> &'static str {
        match self {
            InputSpec::Uniform => "uniform",
            InputSpec::Banded { .. } => "banded-worst-case",
            InputSpec::SkewedToOne => "skewed-to-one",
            InputSpec::Sorted => "sorted",
            InputSpec::ReverseSorted => "reverse-sorted",
            InputSpec::Constant => "constant",
            InputSpec::PowerLaw { .. } => "power-law",
        }
    }
}

/// Generate PE `pe`'s local input of `local_n` elements (out of `p`
/// PEs, each with `local_n`, so `N = p · local_n`).
pub fn generate_pe_input(
    spec: InputSpec,
    seed: u64,
    pe: usize,
    p: usize,
    local_n: usize,
) -> Vec<Element16> {
    assert!(pe < p, "pe out of range");
    let n_total = (p as u64) * (local_n as u64);
    let base = (pe as u64) * (local_n as u64);
    (0..local_n as u64)
        .map(|i| {
            let gid = base + i;
            let h = splitmix64(seed ^ splitmix64(gid));
            let key = match spec {
                InputSpec::Uniform => h,
                InputSpec::Banded { block_elems } => {
                    // Band index from the element's position within the
                    // PE's local block sequence; identical across PEs.
                    let band = i / block_elems as u64;
                    // 24 bits of band, 40 bits of in-band randomness:
                    // bands are disjoint, globally ordered key ranges.
                    (band << 40) | (h & ((1 << 40) - 1))
                }
                InputSpec::SkewedToOne => {
                    // Keys in the lowest 1/(4p) fraction of key space —
                    // all inside PE 0's output range.
                    h / (4 * p as u64).max(1)
                }
                InputSpec::Sorted => gid,
                InputSpec::ReverseSorted => n_total - 1 - gid,
                InputSpec::Constant => 42,
                InputSpec::PowerLaw { alpha_x10 } => {
                    let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0, 1)
                    let alpha = alpha_x10 as f64 / 10.0;
                    (u.powf(alpha) * (1u64 << 62) as f64) as u64
                }
            };
            Element16::new(key, gid)
        })
        .collect()
}

/// Flatten all PEs' inputs in PE order (for sequential reference sorts
/// in tests).
pub fn generate_all(spec: InputSpec, seed: u64, p: usize, local_n: usize) -> Vec<Element16> {
    (0..p).flat_map(|pe| generate_pe_input(spec, seed, pe, p, local_n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_distinct_payloads() {
        let a = generate_pe_input(InputSpec::Uniform, 7, 1, 4, 100);
        let b = generate_pe_input(InputSpec::Uniform, 7, 1, 4, 100);
        assert_eq!(a, b);
        let all = generate_all(InputSpec::Uniform, 7, 4, 100);
        let payloads: HashSet<u64> = all.iter().map(|e| e.payload).collect();
        assert_eq!(payloads.len(), 400, "payloads are unique global ids");
    }

    #[test]
    fn seed_changes_keys() {
        let a = generate_pe_input(InputSpec::Uniform, 1, 0, 2, 50);
        let b = generate_pe_input(InputSpec::Uniform, 2, 0, 2, 50);
        assert_ne!(a, b);
    }

    #[test]
    fn banded_blocks_are_narrow_and_ordered() {
        let block = 32;
        let input = generate_pe_input(InputSpec::Banded { block_elems: block }, 3, 0, 2, 4 * block);
        for (b, chunk) in input.chunks(block).enumerate() {
            for e in chunk {
                assert_eq!((e.key >> 40) as usize, b, "key in band {b}");
            }
        }
        // Bands are identical across PEs: same band index layout.
        let other = generate_pe_input(InputSpec::Banded { block_elems: block }, 3, 1, 2, 4 * block);
        for (b, chunk) in other.chunks(block).enumerate() {
            for e in chunk {
                assert_eq!((e.key >> 40) as usize, b);
            }
        }
    }

    #[test]
    fn skewed_keys_fit_in_first_pe_range() {
        let p = 8;
        let input = generate_all(InputSpec::SkewedToOne, 11, p, 200);
        let limit = u64::MAX / (4 * p as u64);
        assert!(input.iter().all(|e| e.key <= limit));
    }

    #[test]
    fn sorted_and_reverse_are_monotone() {
        let s = generate_all(InputSpec::Sorted, 0, 3, 40);
        assert!(s.windows(2).all(|w| w[0].key < w[1].key));
        let r = generate_all(InputSpec::ReverseSorted, 0, 3, 40);
        assert!(r.windows(2).all(|w| w[0].key > w[1].key));
    }

    #[test]
    fn constant_keys_all_equal() {
        let c = generate_all(InputSpec::Constant, 5, 2, 30);
        assert!(c.iter().all(|e| e.key == 42));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(InputSpec::Uniform.label(), "uniform");
        assert_eq!(InputSpec::Banded { block_elems: 4 }.label(), "banded-worst-case");
        assert_eq!(InputSpec::PowerLaw { alpha_x10: 25 }.label(), "power-law");
    }

    #[test]
    fn power_law_concentrates_low_keys() {
        let alpha10 = generate_all(InputSpec::PowerLaw { alpha_x10: 10 }, 3, 2, 4000);
        let alpha40 = generate_all(InputSpec::PowerLaw { alpha_x10: 40 }, 3, 2, 4000);
        let below_median = |v: &[Element16]| {
            v.iter().filter(|e| e.key < (1u64 << 61)).count() as f64 / v.len() as f64
        };
        let flat = below_median(&alpha10);
        let skewed = below_median(&alpha40);
        assert!((0.45..0.55).contains(&flat), "α=1.0 is uniform-ish: {flat}");
        // P(u^4 < 1/2) = (1/2)^(1/4) ≈ 0.841.
        assert!((0.80..0.88).contains(&skewed), "α=4.0 concentrates below the median: {skewed}");
        // Keys stay in range.
        assert!(alpha40.iter().all(|e| e.key < (1 << 62)));
    }
}
