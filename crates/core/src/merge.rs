//! K-way merging with a loser tree.
//!
//! The loser tree (tournament tree of losers, Knuth 5.4.1) finds the
//! next-smallest of `k` sorted sources with `⌈log2 k⌉` comparisons per
//! element, independent of which source won last. It is the workhorse
//! of every merge in this suite: batch merging during run formation,
//! the final local merge of CANONICALMERGESORT, and the striped
//! algorithm's global merge.
//!
//! Ties are broken by source index, making every merge deterministic
//! and *stable across sources* (equal keys come out in source order).

/// A tournament tree of losers over `k` sources.
///
/// The caller owns the sources; the tree holds only the *current head*
/// of each source. After reading the winner, the caller replaces it via
/// [`LoserTree::replace_winner`] with the source's next item (or `None`
/// when the source is exhausted), which re-plays one leaf-to-root path.
pub struct LoserTree<T> {
    /// Number of leaves (next power of two ≥ number of sources).
    k: usize,
    /// `tree[1..k]`: internal nodes, each holding the *loser* source
    /// index of the match played there; `tree[0]` holds the winner.
    tree: Vec<u32>,
    /// Current head item per source; `None` = exhausted (acts as +∞).
    heads: Vec<Option<T>>,
}

impl<T: Ord> LoserTree<T> {
    /// Build a tree from the initial head of every source.
    ///
    /// `heads[i] = None` marks source `i` as exhausted from the start.
    pub fn new(heads: Vec<Option<T>>) -> Self {
        let sources = heads.len().max(1);
        let k = sources.next_power_of_two();
        let mut heads = heads;
        heads.resize_with(k, || None); // pad with exhausted sources
        let mut lt = Self { k, tree: vec![0; k], heads };
        lt.rebuild();
        lt
    }

    /// `source a` beats `source b` if its head is smaller (exhausted
    /// sources always lose; ties go to the lower index for stability).
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.heads[a], &self.heads[b]) {
            (Some(x), Some(y)) => match x.cmp(y) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Play all matches bottom-up (used at construction).
    fn rebuild(&mut self) {
        // winners[j] for internal node j; leaves are sources.
        let mut winners = vec![0u32; 2 * self.k];
        for i in 0..self.k {
            winners[self.k + i] = i as u32;
        }
        for j in (1..self.k).rev() {
            let (a, b) = (winners[2 * j] as usize, winners[2 * j + 1] as usize);
            let (w, l) = if self.beats(a, b) { (a, b) } else { (b, a) };
            winners[j] = w as u32;
            self.tree[j] = l as u32;
        }
        self.tree[0] = winners[1];
    }

    /// Source index of the overall winner (smallest head), or `None` if
    /// every source is exhausted.
    #[inline]
    pub fn winner(&self) -> Option<usize> {
        let w = self.tree[0] as usize;
        self.heads[w].as_ref().map(|_| w)
    }

    /// The smallest head item, if any source still has one.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.heads[self.tree[0] as usize].as_ref()
    }

    /// Pop the winner's item and replace it with `next` (the winning
    /// source's next item, or `None` if it is exhausted), re-playing the
    /// leaf-to-root path in `⌈log2 k⌉` comparisons.
    ///
    /// # Panics
    /// Panics if all sources are exhausted (check [`LoserTree::winner`]).
    pub fn replace_winner(&mut self, next: Option<T>) -> T {
        let w = self.tree[0] as usize;
        let item = self.heads[w].take().expect("replace_winner on exhausted tree");
        self.heads[w] = next;
        // Re-play matches from leaf w to the root.
        let mut winner = w;
        let mut node = (self.k + w) >> 1;
        while node >= 1 {
            let loser = self.tree[node] as usize;
            if self.beats(loser, winner) {
                self.tree[node] = winner as u32;
                winner = loser;
            }
            node >>= 1;
        }
        self.tree[0] = winner as u32;
        item
    }

    /// Number of leaf slots (≥ number of sources, power of two).
    pub fn capacity(&self) -> usize {
        self.k
    }
}

/// Merge `k` sorted slices into one sorted `Vec`.
///
/// Comparison cost is `n ⌈log2 k⌉`; the returned vector has length
/// `Σ |seqs[i]|`. Equal keys come out in slice order (stable).
pub fn merge_k<T: Ord + Copy>(seqs: &[&[T]]) -> Vec<T> {
    let total: usize = seqs.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    merge_k_into(seqs, &mut out);
    out
}

/// Merge `k` sorted slices, appending to `out` (reuses its capacity).
pub fn merge_k_into<T: Ord + Copy>(seqs: &[&[T]], out: &mut Vec<T>) {
    match seqs.len() {
        0 => return,
        1 => {
            out.extend_from_slice(seqs[0]);
            return;
        }
        2 => return merge_2_into(seqs[0], seqs[1], out),
        _ => {}
    }
    let mut pos = vec![0usize; seqs.len()];
    let heads: Vec<Option<T>> = seqs.iter().map(|s| s.first().copied()).collect();
    let mut lt = LoserTree::new(heads);
    while let Some(w) = lt.winner() {
        pos[w] += 1;
        let next = seqs[w].get(pos[w]).copied();
        out.push(lt.replace_winner(next));
    }
}

/// Merge the leading run of each sorted slice that satisfies `below`
/// (a monotone "still under the bound" predicate — true for a prefix
/// of every slice, false after) into `out`, returning the per-source
/// cut positions. The suffixes at and beyond the bound are untouched:
/// this is the batch step of the striped merge, where everything
/// smaller than the next unmerged block's first key can be emitted
/// and the rest stays buffered per run.
///
/// Comparison cost is `prefix_total · ⌈log2 k⌉` plus one binary search
/// per source for the cuts.
pub fn merge_k_below_into<T: Ord + Copy>(
    seqs: &[&[T]],
    below: impl Fn(&T) -> bool,
    out: &mut Vec<T>,
) -> Vec<usize> {
    let cuts: Vec<usize> = seqs.iter().map(|s| s.partition_point(|x| below(x))).collect();
    let prefixes: Vec<&[T]> = seqs.iter().zip(&cuts).map(|(s, &c)| &s[..c]).collect();
    merge_k_into(&prefixes, out);
    cuts
}

/// Outcome of an in-node parallel k-way merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParMerge {
    /// Per-source consumed positions (the prefix cut of each source,
    /// same meaning as the return of [`merge_k_below_into`]).
    pub cuts: Vec<usize>,
    /// Selection probes spent splitting the sources into per-thread
    /// ranges (0 when the merge collapsed to one thread).
    pub split_probes: u64,
    /// Emitted-range length per merge thread; the ranges partition the
    /// output in order, so the lengths sum to the emitted total.
    pub range_lens: Vec<usize>,
}

/// [`merge_k_into`] on up to `cores` threads: split the sources into
/// `cores` balanced disjoint output ranges with exact multisequence
/// selection ([`crate::selection::multiway_split_counted`] — the same
/// machinery the in-node sort uses) and merge each range concurrently,
/// directly into a disjoint slice of `out`'s spare capacity.
///
/// The output is byte-identical to the sequential merge for every
/// `cores`: the selection partitions by the (key, source) total order,
/// which is exactly the order the loser tree emits. Comparison work is
/// linear in elements, so per-thread merge comparisons sum to the same
/// `n · ⌈log2 k⌉` a single thread would spend; only the split probes
/// are new, and they are reported separately.
pub fn par_merge_k_into<T: Ord + Copy + Send + Sync>(
    seqs: &[&[T]],
    cores: usize,
    out: &mut Vec<T>,
) -> ParMerge {
    par_merge_k_traced(seqs, cores, out, |_, _, _, _| 0, |_, _, _, _, _| {})
}

/// [`par_merge_k_into`] with an explicit per-thread minimum (see
/// [`PAR_MERGE_MIN_PER_THREAD`]; 0 selects the auto policy, tests pass
/// 1 to force parallelism on small inputs).
pub fn par_merge_k_into_with_min<T: Ord + Copy + Send + Sync>(
    seqs: &[&[T]],
    cores: usize,
    min_per_thread: usize,
    out: &mut Vec<T>,
) -> ParMerge {
    par_merge_k_traced_with_min(
        seqs,
        cores,
        min_per_thread,
        out,
        |_, _, _, _| 0,
        |_, _, _, _, _| {},
    )
}

/// [`merge_k_below_into`] on up to `cores` threads (see
/// [`par_merge_k_into`]); returns the per-source cuts in
/// [`ParMerge::cuts`].
pub fn par_merge_k_below_into<T: Ord + Copy + Send + Sync>(
    seqs: &[&[T]],
    below: impl Fn(&T) -> bool,
    cores: usize,
    out: &mut Vec<T>,
) -> ParMerge {
    par_merge_k_below_traced(seqs, below, cores, out, |_, _, _, _| 0, |_, _, _, _, _| {})
}

/// [`par_merge_k_below_into`] with an explicit per-thread minimum.
pub fn par_merge_k_below_into_with_min<T: Ord + Copy + Send + Sync>(
    seqs: &[&[T]],
    below: impl Fn(&T) -> bool,
    cores: usize,
    min_per_thread: usize,
    out: &mut Vec<T>,
) -> ParMerge {
    let cuts: Vec<usize> = seqs.iter().map(|s| s.partition_point(|x| below(x))).collect();
    let prefixes: Vec<&[T]> = seqs.iter().zip(&cuts).map(|(s, &c)| &s[..c]).collect();
    let mut pm = par_merge_k_traced_with_min(
        &prefixes,
        cores,
        min_per_thread,
        out,
        |_, _, _, _| 0,
        |_, _, _, _, _| {},
    );
    pm.cuts = cuts;
    pm
}

/// [`par_merge_k_below_into`] with per-thread span hooks (the striped
/// merge journals each range as a `merge_par` trace span): `begin` runs
/// on the merging thread right before its range merge as
/// `begin(thread, threads, len, total)` and returns an id; `end` runs
/// right after with the same arguments plus that id. The single-thread
/// collapse still fires one `(0, 1, total, total)` pair, so a traced
/// merge always journals a complete thread set.
pub fn par_merge_k_below_traced<T: Ord + Copy + Send + Sync>(
    seqs: &[&[T]],
    below: impl Fn(&T) -> bool,
    cores: usize,
    out: &mut Vec<T>,
    begin: impl Fn(usize, usize, usize, usize) -> u64 + Sync,
    end: impl Fn(u64, usize, usize, usize, usize) + Sync,
) -> ParMerge {
    let cuts: Vec<usize> = seqs.iter().map(|s| s.partition_point(|x| below(x))).collect();
    let prefixes: Vec<&[T]> = seqs.iter().zip(&cuts).map(|(s, &c)| &s[..c]).collect();
    let mut pm = par_merge_k_traced(&prefixes, cores, out, begin, end);
    pm.cuts = cuts;
    pm
}

/// [`par_merge_k_below_traced`] with an explicit per-thread minimum.
pub fn par_merge_k_below_traced_with_min<T: Ord + Copy + Send + Sync>(
    seqs: &[&[T]],
    below: impl Fn(&T) -> bool,
    cores: usize,
    min_per_thread: usize,
    out: &mut Vec<T>,
    begin: impl Fn(usize, usize, usize, usize) -> u64 + Sync,
    end: impl Fn(u64, usize, usize, usize, usize) + Sync,
) -> ParMerge {
    let cuts: Vec<usize> = seqs.iter().map(|s| s.partition_point(|x| below(x))).collect();
    let prefixes: Vec<&[T]> = seqs.iter().zip(&cuts).map(|(s, &c)| &s[..c]).collect();
    let mut pm = par_merge_k_traced_with_min(&prefixes, cores, min_per_thread, out, begin, end);
    pm.cuts = cuts;
    pm
}

/// Minimum records per merge thread before the parallel merge engages.
///
/// Splitting a batch costs `O(k · cores · log²)` selection probes plus
/// thread spawns — pure overhead the sequential merge does not pay. On
/// small batches (a memory-bounded striped merge at smoke scale) that
/// overhead dwarfs the merge itself and made `cores=8` slower than
/// `cores=1`; below this floor per thread, the extra threads cannot win.
/// The auto policy (`min_per_thread == 0` on the `_with_min` variants,
/// and every default entry point) scales the thread count down to
/// `total / PAR_MERGE_MIN_PER_THREAD` (collapsing to the sequential
/// path, with zero split probes, when that is 1) and additionally caps
/// it at the host's available parallelism — a configured `cores` above
/// what the machine can actually run in parallel only time-slices the
/// same comparisons and can never win. An explicit `min_per_thread ≥ 1`
/// is manual scheduling: the floor is taken literally and the host cap
/// does not apply (tests pass 1 to force fan-out on any host).
pub const PAR_MERGE_MIN_PER_THREAD: usize = 8192;

/// [`par_merge_k_into`] with per-thread span hooks.
pub fn par_merge_k_traced<T: Ord + Copy + Send + Sync>(
    seqs: &[&[T]],
    cores: usize,
    out: &mut Vec<T>,
    begin: impl Fn(usize, usize, usize, usize) -> u64 + Sync,
    end: impl Fn(u64, usize, usize, usize, usize) + Sync,
) -> ParMerge {
    par_merge_k_traced_with_min(seqs, cores, 0, out, begin, end)
}

/// [`par_merge_k_traced`] with an explicit per-thread minimum: at most
/// `total / min_per_thread` threads are used (at least one), so a
/// too-small batch takes the sequential path with zero split probes.
/// `min_per_thread == 0` selects the auto policy
/// ([`PAR_MERGE_MIN_PER_THREAD`] plus the host-parallelism cap); an
/// explicit minimum is taken literally with no host cap.
pub fn par_merge_k_traced_with_min<T: Ord + Copy + Send + Sync>(
    seqs: &[&[T]],
    cores: usize,
    min_per_thread: usize,
    out: &mut Vec<T>,
    begin: impl Fn(usize, usize, usize, usize) -> u64 + Sync,
    end: impl Fn(u64, usize, usize, usize, usize) + Sync,
) -> ParMerge {
    let total: usize = seqs.iter().map(|s| s.len()).sum();
    let full: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    let host_cap = match min_per_thread {
        0 => std::thread::available_parallelism().map_or(usize::MAX, |n| n.get()),
        _ => usize::MAX,
    };
    let min = match min_per_thread {
        0 => PAR_MERGE_MIN_PER_THREAD,
        m => m,
    };
    let cores = (total / min).clamp(1, cores.max(1).min(host_cap)).min(total.max(1));
    if cores == 1 || total < 2 * cores {
        let id = begin(0, 1, total, total);
        merge_k_into(seqs, out);
        end(id, 0, 1, total, total);
        return ParMerge { cuts: full, split_probes: 0, range_lens: vec![total] };
    }

    // Exact splitters at the cores − 1 balanced global ranks. In-memory
    // sequences never fail a probe, so the Result is vacuous here.
    let mut views: Vec<&[T]> = seqs.to_vec();
    let (ranges, split_probes) = crate::selection::multiway_split_counted(&mut views, cores)
        .expect("in-memory selection is infallible");
    let range_lens: Vec<usize> =
        ranges.windows(2).map(|w| w[1].iter().zip(&w[0]).map(|(b, a)| b - a).sum()).collect();

    out.reserve(total);
    let base = out.len();
    {
        let spare = &mut out.spare_capacity_mut()[..total];
        let (begin, end) = (&begin, &end);
        std::thread::scope(|s| {
            let mut spare_rest = spare;
            for (t, w) in ranges.windows(2).enumerate() {
                let len = range_lens[t];
                let (slot, tail) = spare_rest.split_at_mut(len);
                spare_rest = tail;
                let pieces: Vec<&[T]> =
                    seqs.iter().enumerate().map(|(i, sq)| &sq[w[0][i]..w[1][i]]).collect();
                s.spawn(move || {
                    let id = begin(t, cores, len, total);
                    merge_k_into_uninit(&pieces, slot);
                    end(id, t, cores, len, total);
                });
            }
        });
        // SAFETY: every slot of the spare capacity was initialized by
        // exactly one merge task (the range lengths sum to `total` and
        // each task fills its slot completely).
        unsafe { out.set_len(base + total) };
    }
    ParMerge { cuts: full, split_probes, range_lens }
}

/// [`merge_k_into`] writing into an uninitialized output slice (one
/// thread's disjoint range of the shared emit buffer). Initializes
/// every slot; `slot.len()` must equal the sources' total length.
fn merge_k_into_uninit<T: Ord + Copy>(seqs: &[&[T]], slot: &mut [std::mem::MaybeUninit<T>]) {
    debug_assert_eq!(seqs.iter().map(|s| s.len()).sum::<usize>(), slot.len());
    match seqs.len() {
        0 => {}
        1 => {
            for (dst, src) in slot.iter_mut().zip(seqs[0]) {
                dst.write(*src);
            }
        }
        _ => {
            let mut pos = vec![0usize; seqs.len()];
            let heads: Vec<Option<T>> = seqs.iter().map(|s| s.first().copied()).collect();
            let mut lt = LoserTree::new(heads);
            let mut filled = 0;
            while let Some(w) = lt.winner() {
                pos[w] += 1;
                let next = seqs[w].get(pos[w]).copied();
                slot[filled].write(lt.replace_winner(next));
                filled += 1;
            }
            debug_assert_eq!(filled, slot.len());
        }
    }
}

/// Two-way merge fast path (no tree overhead).
fn merge_2_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        // `<=` keeps source order on ties (source 0 first), matching
        // the loser tree's tie-break.
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// An iterator that merges `k` sorted iterators (streaming — used when
/// sources are decoded lazily from disk blocks).
pub struct MergeIter<T, I> {
    sources: Vec<I>,
    tree: LoserTree<T>,
}

impl<T: Ord, I: Iterator<Item = T>> MergeIter<T, I> {
    /// Build from sorted sources.
    pub fn new(mut sources: Vec<I>) -> Self {
        let heads: Vec<Option<T>> = sources.iter_mut().map(|s| s.next()).collect();
        Self { sources, tree: LoserTree::new(heads) }
    }
}

impl<T: Ord, I: Iterator<Item = T>> Iterator for MergeIter<T, I> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let w = self.tree.winner()?;
        let next = self.sources[w].next();
        Some(self.tree.replace_winner(next))
    }
}

/// Comparison-work proxy for merging `elements` items `k` ways
/// (`elements · ⌈log2 k⌉`, with `k < 2` costing nothing).
pub fn merge_work(elements: u64, k: usize) -> u64 {
    if k < 2 {
        0
    } else {
        elements * (usize::BITS - (k - 1).leading_zeros()) as u64
    }
}

/// CPU counters of one `k`-way merge over `elements` items — the one
/// way every merge in the suite (final local merge, the exchange merge
/// of the parallel sort, striped batch merging) charges its work, so
/// merge comparisons always land in `merge_work`, never `sort_work`.
pub fn merge_cpu(elements: u64, k: usize) -> demsort_types::CpuCounters {
    demsort_types::CpuCounters {
        elements_merged: elements,
        merge_work: merge_work(elements, k),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn merges_simple_case() {
        let a = [1u32, 4, 7];
        let b = [2u32, 5, 8];
        let c = [3u32, 6, 9];
        assert_eq!(merge_k(&[&a, &b, &c]), (1..=9).collect::<Vec<u32>>());
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        assert_eq!(merge_k::<u32>(&[]), Vec::<u32>::new());
        assert_eq!(merge_k::<u32>(&[&[]]), Vec::<u32>::new());
        assert_eq!(merge_k(&[&[5u32][..]]), vec![5]);
        assert_eq!(merge_k(&[&[][..], &[1u32, 2][..], &[][..]]), vec![1, 2]);
    }

    #[test]
    fn two_way_fast_path_matches() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 3, 6];
        assert_eq!(merge_k(&[&a, &b]), vec![1, 2, 3, 3, 5, 6, 7]);
    }

    #[test]
    fn ties_come_out_in_source_order() {
        // Elements are (key, source) pairs ordered by key only — detect
        // source order on equal keys.
        #[derive(Copy, Clone, Debug, PartialEq, Eq)]
        struct E(u32, u32);
        impl PartialOrd for E {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for E {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0)
            }
        }
        let a = [E(1, 0), E(2, 0)];
        let b = [E(1, 1), E(2, 1)];
        let c = [E(1, 2)];
        let m = merge_k(&[&a, &b, &c]);
        assert_eq!(m, vec![E(1, 0), E(1, 1), E(1, 2), E(2, 0), E(2, 1)]);
    }

    #[test]
    fn merge_iter_streams() {
        let sources =
            vec![vec![1u32, 5, 9].into_iter(), vec![2, 6].into_iter(), vec![3].into_iter()];
        let merged: Vec<u32> = MergeIter::new(sources).collect();
        assert_eq!(merged, vec![1, 2, 3, 5, 6, 9]);
    }

    #[test]
    fn loser_tree_single_source() {
        let mut lt = LoserTree::new(vec![Some(3u32)]);
        assert_eq!(lt.peek(), Some(&3));
        assert_eq!(lt.replace_winner(Some(7)), 3);
        assert_eq!(lt.replace_winner(None), 7);
        assert!(lt.winner().is_none());
    }

    #[test]
    fn loser_tree_all_exhausted_from_start() {
        let lt = LoserTree::<u32>::new(vec![None, None, None]);
        assert!(lt.winner().is_none());
        assert!(lt.peek().is_none());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn replace_winner_on_empty_panics() {
        let mut lt = LoserTree::<u32>::new(vec![None]);
        lt.replace_winner(None);
    }

    #[test]
    fn merge_work_formula() {
        assert_eq!(merge_work(100, 0), 0);
        assert_eq!(merge_work(100, 1), 0);
        assert_eq!(merge_work(100, 2), 100);
        assert_eq!(merge_work(100, 3), 200);
        assert_eq!(merge_work(100, 4), 200);
        assert_eq!(merge_work(100, 5), 300);
    }

    #[test]
    fn merge_cpu_charges_merge_work_only() {
        let c = merge_cpu(100, 3);
        assert_eq!(c.elements_merged, 100);
        assert_eq!(c.merge_work, 200);
        assert_eq!(c.sort_work, 0, "merging must never be charged as sorting");
        assert_eq!(c.elements_sorted, 0);
    }

    #[test]
    fn merge_below_emits_prefixes_and_reports_cuts() {
        let a = [1u32, 3, 8, 9];
        let b = [2u32, 8];
        let c = [10u32, 11];
        let mut out = Vec::new();
        let cuts = merge_k_below_into(&[&a, &b, &c], |x| *x < 8, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(cuts, vec![2, 1, 0]);
        // No bound: everything merges, cuts are the lengths.
        let mut all = Vec::new();
        let cuts = merge_k_below_into(&[&a, &b, &c], |_| true, &mut all);
        assert_eq!(all, merge_k(&[&a, &b, &c]));
        assert_eq!(cuts, vec![4, 2, 2]);
    }

    proptest! {
        /// Splitting a merge at any bound and concatenating the two
        /// halves equals the unsplit merge.
        #[test]
        fn merge_below_plus_suffixes_equals_full_merge(
            seqs in prop::collection::vec(prop::collection::vec(0u32..100, 0..30), 1..6),
            bound in 0u32..100,
        ) {
            let sorted_seqs: Vec<Vec<u32>> = seqs.iter().cloned().map(sorted).collect();
            let refs: Vec<&[u32]> = sorted_seqs.iter().map(|s| s.as_slice()).collect();
            let mut head = Vec::new();
            let cuts = merge_k_below_into(&refs, |x| *x < bound, &mut head);
            prop_assert!(head.iter().all(|x| *x < bound));
            let tails: Vec<&[u32]> =
                refs.iter().zip(&cuts).map(|(s, &c)| &s[c..]).collect();
            prop_assert!(tails.iter().all(|t| t.iter().all(|x| *x >= bound)));
            let mut recombined = head;
            merge_k_into(&tails, &mut recombined);
            prop_assert_eq!(recombined, merge_k(&refs));
        }
    }

    #[test]
    fn par_merge_collapses_to_one_span_on_tiny_input() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spans = AtomicUsize::new(0);
        let mut out = Vec::new();
        let pm = par_merge_k_traced(
            &[&[1u32, 3][..], &[2u32][..]],
            8,
            &mut out,
            |t, n, len, total| {
                assert_eq!((t, n, len, total), (0, 1, 3, 3));
                spans.fetch_add(1, Ordering::Relaxed);
                7
            },
            |id, t, n, len, total| {
                assert_eq!((id, t, n, len, total), (7, 0, 1, 3, 3));
                spans.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(pm.range_lens, vec![3]);
        assert_eq!(pm.split_probes, 0, "single-thread collapse must not probe");
        assert_eq!(spans.load(Ordering::Relaxed), 2, "collapse still journals thread 0");
    }

    #[test]
    fn par_merge_spans_partition_the_batch() {
        use std::sync::Mutex;
        let seqs: Vec<Vec<u32>> = (0..5).map(|i| (0..200).map(|j| j * 5 + i).collect()).collect();
        let refs: Vec<&[u32]> = seqs.iter().map(|s| s.as_slice()).collect();
        let opened = Mutex::new(Vec::new());
        let mut out = Vec::new();
        let pm = par_merge_k_traced_with_min(
            &refs,
            4,
            1,
            &mut out,
            |t, n, len, total| {
                opened.lock().unwrap().push((t, n, len, total));
                t as u64 + 1
            },
            |id, t, _, _, _| assert_eq!(id, t as u64 + 1),
        );
        assert_eq!(out, (0..1000).collect::<Vec<u32>>());
        let mut opened = opened.into_inner().unwrap();
        opened.sort_unstable();
        assert_eq!(opened.len(), 4);
        for (t, (thread, threads, len, total)) in opened.iter().enumerate() {
            assert_eq!((*thread, *threads, *total), (t, 4, 1000));
            assert_eq!(*len, pm.range_lens[t]);
        }
        assert_eq!(pm.range_lens.iter().sum::<usize>(), 1000);
        assert!(pm.split_probes > 0, "a real split must account its probes");
    }

    proptest! {
        /// The parallel merge is byte-identical to the sequential one
        /// for any thread count, and its cuts match too.
        #[test]
        fn par_merge_below_matches_sequential(
            seqs in prop::collection::vec(prop::collection::vec(0u32..60, 0..40), 1..7),
            bound in prop::option::of(0u32..60),
            cores in 1usize..7,
        ) {
            let sorted_seqs: Vec<Vec<u32>> = seqs.iter().cloned().map(sorted).collect();
            let refs: Vec<&[u32]> = sorted_seqs.iter().map(|s| s.as_slice()).collect();
            let below = |x: &u32| bound.is_none_or(|b| *x < b);
            let mut seq_out = Vec::new();
            let seq_cuts = merge_k_below_into(&refs, below, &mut seq_out);
            let mut par_out = Vec::new();
            let pm = par_merge_k_below_into_with_min(&refs, below, cores, 1, &mut par_out);
            prop_assert_eq!(&par_out, &seq_out);
            prop_assert_eq!(&pm.cuts, &seq_cuts);
            prop_assert_eq!(pm.range_lens.iter().sum::<usize>(), seq_out.len());
        }

        /// The multisequence split behind the parallel merge yields
        /// disjoint, exhaustive, balanced ranges on arbitrary run
        /// shapes — duplicates, empty runs, carry tails and all.
        #[test]
        fn multiway_split_ranges_are_disjoint_exhaustive_balanced(
            seqs in prop::collection::vec(prop::collection::vec(0u32..25, 0..50), 1..8),
            parts in 1usize..7,
        ) {
            let sorted_seqs: Vec<Vec<u32>> = seqs.iter().cloned().map(sorted).collect();
            let mut views: Vec<&[u32]> =
                sorted_seqs.iter().map(|s| s.as_slice()).collect();
            let total: usize = views.iter().map(|v| v.len()).sum();
            let (cuts, probes) =
                crate::selection::multiway_split_counted(&mut views, parts).unwrap();
            prop_assert_eq!(cuts.len(), parts + 1);
            prop_assert!(cuts[0].iter().all(|&c| c == 0), "first cut must open every run");
            for (i, v) in views.iter().enumerate() {
                prop_assert_eq!(cuts[parts][i], v.len(), "last cut must close every run");
                for w in cuts.windows(2) {
                    prop_assert!(w[0][i] <= w[1][i], "cuts must be monotone per run");
                }
            }
            // Disjoint + exhaustive: per-part sizes sum to the total;
            // balanced: each part holds an exact ⌊·⌋/⌈·⌉ share.
            let mut seen = 0usize;
            for (p, w) in cuts.windows(2).enumerate() {
                let size: usize = w[1].iter().zip(&w[0]).map(|(b, a)| b - a).sum();
                let lo = (p + 1) * total / parts - p * total / parts;
                prop_assert_eq!(size, lo, "part {} is unbalanced", p);
                seen += size;
            }
            prop_assert_eq!(seen, total);
            if parts == 1 {
                prop_assert_eq!(probes, 0);
            }
            // Exactness: part boundaries split the (key, run) total
            // order, so merging parts independently and concatenating
            // equals the global merge.
            let mut cat = Vec::new();
            for w in cuts.windows(2) {
                let pieces: Vec<&[u32]> = views
                    .iter()
                    .enumerate()
                    .map(|(i, v)| &v[w[0][i]..w[1][i]])
                    .collect();
                merge_k_into(&pieces, &mut cat);
            }
            prop_assert_eq!(cat, merge_k(&views));
        }
    }

    #[test]
    fn below_threshold_batches_merge_sequentially() {
        // 1000 records < PAR_MERGE_MIN_PER_THREAD: the default entry
        // points must not pay for a split, whatever the core count.
        let seqs: Vec<Vec<u32>> = (0..4).map(|i| (0..250).map(|j| j * 4 + i).collect()).collect();
        let refs: Vec<&[u32]> = seqs.iter().map(|s| s.as_slice()).collect();
        for cores in [1, 2, 8] {
            let mut out = Vec::new();
            let pm = par_merge_k_into(&refs, cores, &mut out);
            assert_eq!(out, (0..1000).collect::<Vec<u32>>());
            assert_eq!(pm.split_probes, 0, "below-threshold batch must not probe (cores {cores})");
            assert_eq!(pm.range_lens, vec![1000]);
        }
    }

    #[test]
    fn many_sources_large_merge() {
        let k = 37;
        let seqs: Vec<Vec<u32>> =
            (0..k).map(|i| (0..50).map(|j| (j * k + i) as u32).collect()).collect();
        let refs: Vec<&[u32]> = seqs.iter().map(|s| s.as_slice()).collect();
        let merged = merge_k(&refs);
        assert_eq!(merged, (0..(50 * k) as u32).collect::<Vec<u32>>());
    }

    proptest! {
        #[test]
        fn merge_equals_sort(seqs in prop::collection::vec(
            prop::collection::vec(0u32..1000, 0..50), 0..12)) {
            let sorted_seqs: Vec<Vec<u32>> = seqs.iter().cloned().map(sorted).collect();
            let refs: Vec<&[u32]> = sorted_seqs.iter().map(|s| s.as_slice()).collect();
            let merged = merge_k(&refs);
            let expected = sorted(seqs.concat());
            prop_assert_eq!(merged, expected);
        }

        #[test]
        fn merge_iter_equals_merge_k(seqs in prop::collection::vec(
            prop::collection::vec(0u32..100, 0..30), 1..8)) {
            let sorted_seqs: Vec<Vec<u32>> = seqs.iter().cloned().map(sorted).collect();
            let refs: Vec<&[u32]> = sorted_seqs.iter().map(|s| s.as_slice()).collect();
            let a = merge_k(&refs);
            let b: Vec<u32> =
                MergeIter::new(sorted_seqs.into_iter().map(|s| s.into_iter()).collect()).collect();
            prop_assert_eq!(a, b);
        }

        /// The loser tree agrees with a binary heap under arbitrary
        /// interleavings of pops and refills (not just sorted streams).
        #[test]
        fn loser_tree_matches_heap_reference(
            initial in prop::collection::vec(prop::option::of(0u32..1000), 1..12),
            refills in prop::collection::vec(prop::option::of(0u32..1000), 0..40),
        ) {
            use std::collections::BinaryHeap;
            use std::cmp::Reverse;

            let mut tree = LoserTree::new(initial.clone());
            // Reference: min-heap of (value, source); tie-break by the
            // lowest source index like the tree.
            let mut heap: BinaryHeap<Reverse<(u32, usize)>> = initial
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.map(|v| Reverse((v, i))))
                .collect();

            for refill in refills {
                match (tree.winner(), heap.pop()) {
                    (Some(w), Some(Reverse((hv, hi)))) => {
                        let got = tree.replace_winner(refill);
                        prop_assert_eq!((got, w), (hv, hi), "winner mismatch");
                        if let Some(r) = refill {
                            heap.push(Reverse((r, w)));
                        }
                    }
                    (None, None) => break,
                    (t, h) => prop_assert!(false, "emptiness disagrees: {:?} vs {:?}", t, h),
                }
            }
        }
    }

    #[test]
    fn loser_tree_zero_sources() {
        let lt = LoserTree::<u32>::new(Vec::new());
        assert!(lt.winner().is_none());
        assert!(lt.peek().is_none());
        assert_eq!(lt.capacity(), 1, "padded to one exhausted leaf");
    }

    #[test]
    fn merge_single_long_run_is_identity() {
        let run: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(merge_k(&[run.as_slice()]), run);
        let streamed: Vec<u32> = MergeIter::new(vec![run.clone().into_iter()]).collect();
        assert_eq!(streamed, run);
    }

    #[test]
    fn empty_runs_interleaved_with_nonempty() {
        // Leading, trailing, and consecutive empty runs around real
        // ones, at a non-power-of-two fan-in that exercises leaf
        // padding next to genuinely empty sources.
        let a = [1u32, 4, 9];
        let b = [2u32, 4];
        let c = [4u32, 5, 6];
        let seqs: Vec<&[u32]> = vec![&[], &a, &[], &[], &b, &c, &[]];
        assert_eq!(merge_k(&seqs), vec![1, 2, 4, 4, 4, 5, 6, 9]);

        let streamed: Vec<u32> =
            MergeIter::new(seqs.iter().map(|s| s.iter().copied()).collect()).collect();
        assert_eq!(streamed, merge_k(&seqs));
    }

    #[test]
    fn merge_iter_zero_and_all_empty_sources() {
        assert_eq!(MergeIter::<u32, std::vec::IntoIter<u32>>::new(Vec::new()).count(), 0);
        let empties: Vec<std::vec::IntoIter<u32>> =
            (0..5).map(|_| Vec::new().into_iter()).collect();
        assert_eq!(MergeIter::new(empties).count(), 0);
    }

    #[test]
    fn all_duplicate_keys_stable_against_reference_sort() {
        // (key, source) pairs ordered by key only: the merge must equal
        // a *stable* sort of the concatenation, i.e. equal keys stay in
        // source order even when every key collides.
        #[derive(Copy, Clone, Debug, PartialEq, Eq)]
        struct E(u32, usize);
        impl PartialOrd for E {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for E {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0)
            }
        }
        let k = 6;
        let runs: Vec<Vec<E>> = (0..k).map(|s| vec![E(7, s); 5 + s]).collect();
        let refs: Vec<&[E]> = runs.iter().map(|r| r.as_slice()).collect();
        let merged = merge_k(&refs);

        let mut reference: Vec<E> = runs.concat();
        reference.sort_by_key(|e| e.0); // stable: preserves source order
        assert_eq!(merged, reference);
        // Explicit shape: all of source 0, then all of source 1, ...
        let mut expect_sources = Vec::new();
        for (s, run) in runs.iter().enumerate() {
            expect_sources.extend(std::iter::repeat_n(s, run.len()));
        }
        assert_eq!(merged.iter().map(|e| e.1).collect::<Vec<_>>(), expect_sources);
    }

    #[test]
    fn duplicates_across_some_sources_keep_distinct_keys_sorted() {
        let seqs: Vec<&[u32]> = vec![&[1, 1, 3, 3], &[1, 2, 3], &[], &[1, 3, 3]];
        let merged = merge_k(&seqs);
        let mut reference = seqs.concat();
        reference.sort_unstable();
        assert_eq!(merged, reference);
    }
}
