//! `demsort-trace` — merge per-rank trace journals into one timeline.
//!
//! ```text
//! demsort-trace DIR [--chrome FILE] [--quiet]
//! ```
//!
//! Reads every `rank<K>.jsonl` journal a traced run (`demsort-launch
//! --trace DIR`) left under `DIR`, validates each rank's invariants
//! (monotone timestamps, every span closed exactly once, phases in
//! algorithm order — see `validate_rank_journal`), and prints the
//! merged chronological cluster timeline to stdout. `--chrome FILE`
//! additionally writes a Chrome trace-format JSON array for
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev); `--quiet`
//! suppresses the timeline (validate + export only).
//!
//! Exits non-zero — naming the offending rank — if any journal is
//! unreadable or violates an invariant, so CI can gate on it.

use demsort_types::trace::{
    chrome_trace, merge_journals, read_journal, validate_rank_journal, TraceOp,
};
use std::path::PathBuf;

fn main() {
    let mut dir: Option<PathBuf> = None;
    let mut chrome_out: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome" => {
                chrome_out =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| die("--chrome FILE"))))
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("demsort-trace DIR [--chrome FILE] [--quiet]");
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other if dir.is_none() => dir = Some(PathBuf::from(other)),
            other => die(&format!("unexpected argument {other}")),
        }
    }
    let dir = dir.unwrap_or_else(|| die("missing trace directory (see --help)"));

    // Collect rank journals in rank order; holes are fine (a rank may
    // have died before writing), absence of any journal is not.
    let mut names: Vec<String> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok()))
            .filter(|n| n.starts_with("rank") && n.ends_with(".jsonl"))
            .collect(),
        Err(e) => die(&format!("read {}: {e}", dir.display())),
    };
    names.sort_by_key(|n| rank_of(n));
    if names.is_empty() {
        die(&format!("no rank*.jsonl journals under {}", dir.display()));
    }

    let mut per_rank = Vec::with_capacity(names.len());
    for name in &names {
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("read {}: {e}", path.display())));
        let records =
            read_journal(&text).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
        validate_rank_journal(&records)
            .unwrap_or_else(|e| die(&format!("{}: invariant violated: {e}", path.display())));
        eprintln!("{}: {} records, invariants ok", path.display(), records.len());
        per_rank.push(records);
    }

    let merged = merge_journals(per_rank);
    if let Some(out) = chrome_out {
        std::fs::write(&out, chrome_trace(&merged))
            .unwrap_or_else(|e| die(&format!("write {}: {e}", out.display())));
        eprintln!("wrote Chrome trace ({} events) to {}", merged.len(), out.display());
    }
    if quiet {
        return;
    }

    // The timeline: one line per record, cluster-chronological. The
    // per-rank clocks share no epoch, so cross-rank order is only as
    // meaningful as the ranks' start skew — within a rank it is exact.
    for r in &merged {
        let (op, span) = match r.op {
            TraceOp::Begin(id) => ("begin", format!(" [span {id}]")),
            TraceOp::End(id) => ("end  ", format!(" [span {id}]")),
            TraceOp::Instant => ("event", String::new()),
        };
        println!("{:>14.6}ms rank {:>2} {op} {}{span}", r.ts_ns as f64 / 1e6, r.rank, r.ev.label());
    }
}

/// Sort key for `rank<K>.jsonl` names (lexicographic would put
/// `rank10` before `rank2`).
fn rank_of(name: &str) -> usize {
    name.trim_start_matches("rank").trim_end_matches(".jsonl").parse().unwrap_or(usize::MAX)
}

fn die(msg: &str) -> ! {
    demsort_bench::procs::cli_die("demsort-trace", msg)
}
