//! Property-based integration tests: the paper's invariants hold for
//! arbitrary cluster shapes, input sizes, and key distributions.

use demsort::core::canonical::sort_cluster;
use demsort::core::recio::read_records;
use demsort::prelude::*;
use demsort::types::ranks;
use demsort::workloads::splitmix64;
use proptest::prelude::*;

/// Generate an arbitrary per-PE input from a (seed, distribution
/// exponent) pair: keys are `splitmix64(gid) % key_range`, so small
/// ranges force heavy duplication.
fn arbitrary_input(seed: u64, key_range: u64, pe: usize, _p: usize, n: usize) -> Vec<Element16> {
    (0..n as u64)
        .map(|i| {
            let gid = pe as u64 * n as u64 + i;
            Element16::new(splitmix64(seed ^ gid) % key_range.max(1), gid)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The canonical sort equals a reference sort for any shape —
    /// key-wise — and the output sizes match ⌊i·N/P⌋ boundaries.
    #[test]
    fn canonical_sort_equals_reference(
        p in 1usize..5,
        local_n in 0usize..600,
        key_range in 1u64..10_000,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).unwrap();
        let outcome = sort_cluster::<Element16, _>(&cfg, move |pe, p| {
            arbitrary_input(seed, key_range, pe, p, local_n)
        }).expect("sort");

        let mut reference: Vec<u64> = (0..p)
            .flat_map(|pe| arbitrary_input(seed, key_range, pe, p, local_n))
            .map(|e| e.key)
            .collect();
        reference.sort_unstable();

        let n = reference.len() as u64;
        let mut got: Vec<u64> = Vec::with_capacity(reference.len());
        for (pe, o) in outcome.per_pe.iter().enumerate() {
            prop_assert_eq!(o.output.elems, ranks::owned_len(pe, p, n));
            let recs = read_records::<Element16>(
                outcome.storage.pe(pe), &o.output.run, o.output.elems).expect("read");
            got.extend(recs.iter().map(|e| e.key));
        }
        prop_assert_eq!(got, reference);
    }

    /// Randomization never hurts: all-to-all I/O with randomization is
    /// at most that without, plus slack for sampling noise, on banded
    /// worst-case inputs.
    #[test]
    fn randomization_never_hurts_much(
        p in 2usize..5,
        blocks_per_pe in 8usize..40,
        seed in 0u64..1000,
    ) {
        let machine = MachineConfig::tiny(p);
        let band = machine.block_bytes / 16;
        let local_n = blocks_per_pe * band;
        let volume = |randomize: bool| {
            let algo = AlgoConfig { randomize, seed, ..AlgoConfig::default() };
            let cfg = SortConfig::new(machine.clone(), algo).unwrap();
            let outcome = sort_cluster::<Element16, _>(&cfg, move |pe, p| {
                demsort::workloads::generate_pe_input(
                    InputSpec::Banded { block_elems: band }, 5, pe, p, local_n)
            }).expect("sort");
            outcome.report.phase_total(Phase::AllToAll, |s| s.io.bytes_total())
        };
        let with = volume(true);
        let without = volume(false);
        // Slack: one block per (run, PE) pair of fragmentation noise.
        let slack = (machine.block_bytes * p * 8) as u64;
        prop_assert!(
            with <= without + slack,
            "randomized {} vs deterministic {} (+slack {})", with, without, slack
        );
    }

    /// The external I/O bound: any input sorts in at most ~3 passes of
    /// traffic (4N for two passes + redistribution ≤ 2N more), and the
    /// internal case in exactly one pass. Inputs must span several
    /// blocks — below that, block padding dominates the ratio (one
    /// 16-byte element still moves a 256-byte block each way).
    #[test]
    fn io_volume_bounds(
        p in 1usize..4,
        local_n in 64usize..900,
        seed in 0u64..1000,
    ) {
        let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).unwrap();
        let outcome = sort_cluster::<Element16, _>(&cfg, move |pe, p| {
            arbitrary_input(seed, u64::MAX, pe, p, local_n)
        }).expect("sort");
        let io = outcome.report.io_volume_over_n();
        if outcome.per_pe[0].runs == 1 {
            prop_assert!((1.9..=2.6).contains(&io), "internal: {}", io);
        } else {
            // 4N + redistribution (≤ 2N) + fragmentation slack.
            prop_assert!((3.9..=7.5).contains(&io), "external: {}", io);
        }
    }
}

/// The in-place claim: peak disk usage during the sort stays within a
/// small factor of the input size (the algorithm recycles aggressively).
#[test]
fn in_place_peak_usage_bound() {
    let p = 4;
    let local_n = 2000usize;
    let cfg = SortConfig::new(MachineConfig::tiny(p), AlgoConfig::default()).unwrap();
    let outcome = sort_cluster::<Element16, _>(&cfg, move |pe, p| {
        demsort::workloads::generate_pe_input(InputSpec::Uniform, 9, pe, p, local_n)
    })
    .expect("sort");
    for pe in 0..p {
        let alloc = outcome.storage.pe(pe).alloc();
        let input_blocks = (local_n * 16).div_ceil(256);
        assert!(
            alloc.high_water() <= input_blocks * 2,
            "PE {pe}: peak {} blocks vs input {} — not in-place",
            alloc.high_water(),
            input_blocks
        );
    }
}
