//! Striped-mergesort multi-process acceptance test: `sortfile --algo
//! striped --transport tcp`'s code path (4 real `demsort-worker`
//! processes over a loopback TCP mesh, each writing its own globally
//! striped blocks into the shared output) must produce
//! **byte-identical** output and **identical per-rank, per-phase comm
//! and I/O counters** to the in-process striped run of the same
//! gensort input.
//!
//! Unlike the canonical algorithm, the striped sort has no selection
//! probes, so even the per-phase I/O attribution is deterministic —
//! the comparison is exact on every counter.

use demsort_bench::procs::launch;
use demsort_core::merge::merge_work;
use demsort_core::striped::{read_striped, striped_sort_cluster};
use demsort_core::validate::hash_record;
use demsort_types::{
    AlgoConfig, JobConfig, MachineConfig, Phase, Record as _, Record100, SortAlgo, SortConfig,
    SortReport,
};
use demsort_workloads::gensort_records;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const RECORDS: usize = 3_000;
const RANKS: usize = 4;

fn test_machine() -> MachineConfig {
    // Tiny blocks and memory force several runs per rank, so the merge
    // phase (batch fetches + re-striping) really runs.
    MachineConfig {
        pes: RANKS,
        disks_per_pe: 2,
        block_bytes: 1 << 10,
        mem_bytes_per_pe: 16 << 10,
        cores_per_pe: 1,
    }
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demsort-striped-tcp-{}-{name}", std::process::id()))
}

fn write_gensort_input(path: &Path) {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create input"));
    let mut buf = vec![0u8; Record100::BYTES];
    for rec in gensort_records(7, 0, RECORDS) {
        rec.encode(&mut buf);
        f.write_all(&buf).expect("write record");
    }
    f.flush().expect("flush");
}

/// The in-process reference: `sortfile --algo striped` in miniature.
fn striped_in_process(input: &Path, output: &Path) -> SortReport {
    striped_in_process_on(input, output, test_machine(), AlgoConfig::default())
}

fn striped_in_process_on(
    input: &Path,
    output: &Path,
    machine: MachineConfig,
    algo: AlgoConfig,
) -> SortReport {
    let cfg = SortConfig::new(machine, algo).expect("valid");
    let input_path = input.to_path_buf();
    let outcome = striped_sort_cluster::<Record100, _>(
        &cfg,
        move |pe, p| {
            let shard = demsort_types::ranks::owned_range(pe, p, RECORDS as u64);
            let mut f = std::fs::File::open(&input_path).expect("open input");
            f.seek(SeekFrom::Start(shard.start * Record100::BYTES as u64)).expect("seek");
            let mut bytes = vec![0u8; (shard.end - shard.start) as usize * Record100::BYTES];
            f.read_exact(&mut bytes).expect("read shard");
            let mut recs = Vec::new();
            Record100::decode_slice(&bytes, &mut recs);
            recs
        },
        None,
    )
    .expect("in-process striped sort");

    // Output through the block service in global block order — the
    // same byte sequence the workers assemble from disjoint ranges.
    let recs = read_striped::<Record100>(&outcome.storage, &outcome.per_pe[0].output)
        .expect("read striped output");
    let mut out = std::io::BufWriter::new(std::fs::File::create(output).expect("create output"));
    let mut buf = vec![0u8; Record100::BYTES];
    for rec in &recs {
        rec.encode(&mut buf);
        out.write_all(&buf).expect("write");
    }
    out.flush().expect("flush");
    outcome.report
}

#[test]
fn four_rank_striped_tcp_launch_matches_in_process_run() {
    let input = tmp_path("input.dat");
    let out_tcp = tmp_path("out-tcp.dat");
    let out_local = tmp_path("out-local.dat");
    write_gensort_input(&input);

    // --- multi-process run: real worker processes over loopback TCP ---
    let job = JobConfig {
        input: input.to_string_lossy().into_owned(),
        output: out_tcp.to_string_lossy().into_owned(),
        machine: test_machine(),
        algo: AlgoConfig::default(),
        algorithm: SortAlgo::Striped,
        read_timeout_ms: 60_000,
        trace_dir: String::new(),
    };
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_demsort-worker"));
    let tcp = launch(&job, &worker).expect("striped tcp launch");
    assert_eq!(tcp.per_rank.len(), RANKS);
    assert!(tcp.report.runs > 1, "test must exercise the merge phase (R > 1)");
    let rank_sum: u64 = tcp.per_rank.iter().map(|r| r.elems).sum();
    assert_eq!(rank_sum, RECORDS as u64, "ranks own disjoint striped blocks covering N");

    // --- in-process reference run ---
    let local_report = striped_in_process(&input, &out_local);

    // Byte-identical striped output.
    let tcp_bytes = std::fs::read(&out_tcp).expect("read tcp output");
    let local_bytes = std::fs::read(&out_local).expect("read local output");
    assert_eq!(tcp_bytes.len(), RECORDS * Record100::BYTES);
    assert_eq!(tcp_bytes, local_bytes, "outputs must be byte-identical across transports");

    // valsort-clean: globally sorted, a permutation of the input.
    let mut recs = Vec::new();
    Record100::decode_slice(&tcp_bytes, &mut recs);
    assert!(recs.windows(2).all(|w| w[0].key <= w[1].key), "output must be globally sorted");
    let out_fp = recs.iter().fold(0u64, |acc, r| acc.wrapping_add(hash_record(r)));
    let input_bytes = std::fs::read(&input).expect("read input");
    let mut input_recs = Vec::new();
    Record100::decode_slice(&input_bytes, &mut input_recs);
    let in_fp = input_recs.iter().fold(0u64, |acc, r| acc.wrapping_add(hash_record(r)));
    assert_eq!(out_fp, in_fp, "output must be a permutation of the input");

    // gensort keys are 10 random bytes — unique at this scale — so
    // the totally ordered reference sort is exactly what the canonical
    // algorithm would produce: the striped output must match it byte
    // for byte (merging batches instead of sorting them must not
    // change a single record position).
    let mut reference = input_recs.clone();
    reference.sort_unstable();
    let mut ref_bytes = vec![0u8; reference.len() * Record100::BYTES];
    Record100::encode_slice(&reference, &mut ref_bytes);
    assert_eq!(tcp_bytes, ref_bytes, "striped output must equal the canonical sorted order");

    // Identical counters, per rank, per phase — comm, I/O, AND the
    // deterministic CPU work counters (host wall time is excluded).
    // The striped algorithm issues no cross-rank probes during the
    // sort, so every counter's phase attribution is deterministic and
    // the transport must be completely invisible.
    for pe in 0..RANKS {
        for phase in Phase::ALL {
            let t = tcp.report.get(pe, phase);
            let l = local_report.get(pe, phase);
            assert_eq!(t.comm, l.comm, "comm counters (pe {pe}, {phase})");
            assert_eq!(t.io, l.io, "io counters (pe {pe}, {phase})");
            for (name, f) in [
                (
                    "elements_sorted",
                    (|c| c.elements_sorted) as fn(&demsort_types::CpuCounters) -> u64,
                ),
                ("sort_work", |c| c.sort_work),
                ("elements_merged", |c| c.elements_merged),
                ("merge_work", |c| c.merge_work),
                ("split_probes", |c| c.split_probes),
            ] {
                assert_eq!(f(&t.cpu), f(&l.cpu), "cpu {name} (pe {pe}, {phase})");
            }
        }
    }
    // The striped phases really were recorded.
    for pe in 0..RANKS {
        assert!(tcp.report.get(pe, Phase::RunFormation).io.bytes_written > 0, "pe {pe} phase 1");
        assert!(tcp.report.get(pe, Phase::FinalMerge).io.bytes_read > 0, "pe {pe} merge phase");
    }

    // Merge-phase CPU regression (on both transports): batches are
    // *merged*, never re-sorted — zero sort comparisons, and the merge
    // comparisons are exactly n·(⌈log2 R⌉ + ⌈log2 P⌉): each element
    // goes through one R-way batch loser tree and one P-way exchange
    // merge, strictly below the seed's ~n·log2(batch) sort cost per
    // batch.
    let n = RECORDS as u64;
    for (name, report) in [("tcp", &tcp.report), ("local", &local_report)] {
        let sort_work = report.phase_total(Phase::FinalMerge, |s| s.cpu.sort_work);
        let merge_total = report.phase_total(Phase::FinalMerge, |s| s.cpu.merge_work);
        assert_eq!(sort_work, 0, "{name}: merge phase must not sort");
        assert_eq!(
            merge_total,
            merge_work(n, report.runs) + merge_work(n, RANKS),
            "{name}: merge comparisons must be n·(⌈log2 R⌉ + ⌈log2 P⌉), R = {}",
            report.runs
        );
    }

    for p in [&input, &out_tcp, &out_local] {
        let _ = std::fs::remove_file(p);
    }
}

/// The in-node parallel batch merge must be invisible in the output
/// and in every deterministic counter: running the striped sort with
/// `cores_per_pe = 4` — on both transports — produces the exact bytes
/// of the `cores = 1` run, charges the same merge-phase comparison
/// bound, and books its split-selection probes in their own counter,
/// identically across transports.
#[test]
fn parallel_merge_cores_4_is_byte_identical_to_cores_1_on_both_transports() {
    let input = tmp_path("par-input.dat");
    let out_seq = tmp_path("par-out-seq.dat");
    let out_tcp = tmp_path("par-out-tcp.dat");
    let out_local = tmp_path("par-out-local.dat");
    write_gensort_input(&input);

    // cores = 1 in-process run: the sequential baseline.
    let seq_report = striped_in_process(&input, &out_seq);

    // cores = 4 on both transports. Batches at this scale sit below
    // the engine's per-thread minimum, so the run pins
    // `par_merge_min_per_thread: 1` (on both transports — the knob is
    // wire-encoded) to keep the multi-thread fan-out under test.
    let machine4 = MachineConfig { cores_per_pe: 4, ..test_machine() };
    let algo4 = AlgoConfig { par_merge_min_per_thread: 1, ..AlgoConfig::default() };
    let job = JobConfig {
        input: input.to_string_lossy().into_owned(),
        output: out_tcp.to_string_lossy().into_owned(),
        machine: machine4.clone(),
        algo: algo4.clone(),
        algorithm: SortAlgo::Striped,
        read_timeout_ms: 60_000,
        trace_dir: String::new(),
    };
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_demsort-worker"));
    let tcp = launch(&job, &worker).expect("striped tcp launch (cores = 4)");
    let local_report = striped_in_process_on(&input, &out_local, machine4, algo4);

    let seq_bytes = std::fs::read(&out_seq).expect("read cores=1 output");
    assert_eq!(seq_bytes.len(), RECORDS * Record100::BYTES);
    let tcp_bytes = std::fs::read(&out_tcp).expect("read tcp output");
    let local_bytes = std::fs::read(&out_local).expect("read local output");
    assert_eq!(tcp_bytes, seq_bytes, "cores=4 tcp output must equal the cores=1 output");
    assert_eq!(local_bytes, seq_bytes, "cores=4 local output must equal the cores=1 output");

    // Splitting the batch across threads must not change the total
    // comparison charge: per-thread merges sum to the sequential
    // n·(⌈log2 R⌉ + ⌈log2 P⌉) bound, and batches are still never
    // re-sorted.
    let n = RECORDS as u64;
    assert!(tcp.report.runs > 1, "test must exercise the merge phase (R > 1)");
    for (name, report) in [("seq", &seq_report), ("tcp", &tcp.report), ("local", &local_report)] {
        assert_eq!(
            report.phase_total(Phase::FinalMerge, |s| s.cpu.sort_work),
            0,
            "{name}: merge phase must not sort"
        );
        assert_eq!(
            report.phase_total(Phase::FinalMerge, |s| s.cpu.merge_work),
            merge_work(n, report.runs) + merge_work(n, RANKS),
            "{name}: parallel merge comparisons must sum to the sequential bound, R = {}",
            report.runs
        );
    }

    // Split-selection work is accounted separately and is a pure
    // function of the batch shapes, so it is transport-invariant.
    let probes = |r: &SortReport| r.phase_total(Phase::FinalMerge, |s| s.cpu.split_probes);
    assert_eq!(probes(&seq_report), 0, "cores=1 performs no split selection");
    assert!(probes(&tcp.report) > 0, "cores=4 must split batches across threads");
    assert_eq!(
        probes(&tcp.report),
        probes(&local_report),
        "split selection must be deterministic across transports"
    );

    for p in [&input, &out_seq, &out_tcp, &out_local] {
        let _ = std::fs::remove_file(p);
    }
}

/// Buffer-pool steady state: the data plane warms its pool up and then
/// recycles. With a pool sized to the working set (`--pool-blocks 64`),
/// doubling the sorted volume must roughly double the hit count (more
/// blocks through the same buffers) while misses — which track peak
/// in-flight buffers, not data volume — grow sublinearly and the miss
/// *rate* falls: allocation pressure does not scale with N.
#[test]
fn buffer_pool_misses_plateau_after_warmup() {
    let totals = |records: usize| {
        let algo = AlgoConfig { pool_blocks: 64, ..AlgoConfig::default() };
        let cfg = SortConfig::new(test_machine(), algo).expect("valid");
        let outcome = striped_sort_cluster::<Record100, _>(
            &cfg,
            move |pe, p| {
                let shard = demsort_types::ranks::owned_range(pe, p, records as u64);
                gensort_records(7, shard.start, (shard.end - shard.start) as usize)
            },
            None,
        )
        .expect("in-process striped sort");
        outcome
            .per_pe
            .iter()
            .fold(demsort_types::PoolCounters::default(), |acc, o| acc.merge(&o.pool))
    };
    let warm = totals(RECORDS);
    let big = totals(2 * RECORDS);
    assert!(warm.hits > 0, "a striped sort must recycle buffers through the pool: {warm:?}");
    assert!(
        warm.hits > 5 * warm.misses,
        "steady-state gets must be recycled, not allocated: {warm:?}"
    );
    assert_eq!(warm.discarded, 0, "a pool sized to the working set never overflows: {warm:?}");
    assert_eq!(big.discarded, 0, "a pool sized to the working set never overflows: {big:?}");
    assert!(big.hits > warm.hits, "pool traffic must grow with the data volume: {big:?}");
    assert!(
        big.misses < 2 * warm.misses,
        "misses track peak in-flight buffers — doubling N must not double them: \
         {warm:?} vs {big:?}"
    );
    // The miss rate itself falls as the sort grows: warmup amortises.
    let rate = |c: &demsort_types::PoolCounters| c.misses as f64 / (c.hits + c.misses) as f64;
    assert!(
        rate(&big) < rate(&warm),
        "the miss rate must fall as warmup amortises: {warm:?} vs {big:?}"
    );
}
