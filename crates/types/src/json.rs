//! Minimal dependency-free JSON: escape-correct emission and a small
//! reader.
//!
//! The suite emits machine-readable output in two places — the
//! `BENCH_striped.json` benchmark summary and the per-rank trace
//! journals of [`crate::trace`] — and `demsort-trace` reads the
//! journals back. Both sides go through this module so a string that
//! was emitted always parses back to the same value (escaping is
//! centralized and round-trip tested), without pulling a serde stack
//! into a workspace that is otherwise dependency-free.
//!
//! Numbers keep their integer-ness: a `u64` nanosecond timestamp is
//! emitted as a decimal integer and parses back to [`Json::Uint`]
//! exactly — it never transits through an `f64` and loses precision.

use crate::error::{Error, Result};

/// Maximum nesting depth the parser accepts (arrays + objects). Deep
/// enough for any demsort output, shallow enough that malicious input
/// cannot overflow the parse stack.
const MAX_DEPTH: usize = 128;

/// A parsed or to-be-emitted JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats are emitted as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer literal (no sign, fraction, or exponent).
    Uint(u64),
    /// Negative integer literal.
    Int(i64),
    /// Any other number (fraction, exponent, or out of integer range).
    Num(f64),
    /// String (stored unescaped).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered key/value list (insertion order preserved;
    /// lookup is linear — demsort objects are small).
    Obj(Vec<(String, Json)>),
}

/// Append `s` to `out` as a JSON string literal, quotes included, with
/// every character that JSON requires escaped (`"`, `\`, and control
/// characters).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    /// Convenience: build a [`Json::Str`].
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialize into `out` (compact: no added whitespace).
    pub fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(u) => {
                out.push_str(itoa_buf(&mut [0u8; 20], *u));
            }
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // Rust's `Display` for f64 is the shortest decimal
                    // expansion that round-trips, and it never uses
                    // exponent notation — both valid JSON and stable
                    // under emit → parse → emit.
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document (rejects trailing garbage).
    ///
    /// # Errors
    /// [`Error::Validation`] naming the byte offset of the first
    /// syntax problem.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Uint(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write_into(&mut s);
        f.write_str(&s)
    }
}

/// Format a `u64` into a stack buffer (avoids a `String` per number on
/// the journal hot path).
fn itoa_buf(buf: &mut [u8; 20], mut x: u64) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (x % 10) as u8;
        x /= 10;
        if x == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("ASCII digits")
}

/// Parse newline-delimited JSON: one value per non-empty line.
///
/// # Errors
/// [`Error::Validation`] naming the first malformed line (1-based).
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line)
            .map_err(|e| Error::validation(format!("JSONL line {}: {e}", i + 1)))?;
        out.push(v);
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::validation(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b':') {
                        return Err(self.err("expected ':' after object key"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        let neg = self.bytes.get(self.pos) == Some(&b'-');
        if neg {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits"));
        }
        let mut integral = true;
        if self.bytes.get(self.pos) == Some(&b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if integral {
            if neg {
                // "-0" stays a float so it re-emits as "-0", not "0".
                if let Ok(i) = text.parse::<i64>() {
                    if i != 0 {
                        return Ok(Json::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: a second \uXXXX must follow
                                if !self.eat("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Uint(0)),
            ("18446744073709551615", Json::Uint(u64::MAX)),
            ("-42", Json::Int(-42)),
            ("1.5", Json::Num(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).expect(text), v);
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn exponents_parse_as_floats() {
        assert_eq!(Json::parse("1e3").expect("1e3"), Json::Num(1000.0));
        assert_eq!(Json::parse("-2.5E-1").expect("exp"), Json::Num(-0.25));
    }

    #[test]
    fn escapes_roundtrip() {
        let nasty = "quote\" slash\\ newline\n tab\t nul\u{0} high\u{1F600} bmp\u{00e9}";
        let v = Json::Str(nasty.into());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).expect("parse"), v);
    }

    #[test]
    fn unicode_escapes_and_surrogates_parse() {
        assert_eq!(Json::parse("\"\\u00e9\"").expect("bmp"), Json::Str("é".into()));
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").expect("pair"), Json::Str("\u{1F600}".into()));
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone surrogate");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Uint(1), Json::Null, Json::Str("x".into())])),
            ("b".into(), Json::Obj(vec![("c".into(), Json::Bool(false))])),
        ]);
        let text = v.to_string();
        assert_eq!(text, "{\"a\":[1,null,\"x\"],\"b\":{\"c\":false}}");
        assert_eq!(Json::parse(&text).expect("parse"), v);
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse("{\"n\": 7, \"s\": \"x\", \"f\": 0.5, \"a\": [1], \"t\": true}")
            .expect("parse");
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("t").and_then(Json::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panics() {
        for text in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "[1 2]",
            "nul",
            "tru",
            "01x",
            "1.",
            "1e",
            "-",
            "\"\\q\"",
            "\"\\u12\"",
            "{\"a\":1,}",
            "[]extra",
            "\"raw\u{1}ctl\"",
        ] {
            assert!(
                matches!(Json::parse(text), Err(Error::Validation(_))),
                "{text:?} should fail cleanly"
            );
        }
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(16).to_string() + &"]".repeat(16);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn jsonl_parses_line_per_value_and_names_bad_lines() {
        let text = "{\"a\":1}\n\n{\"b\":2}\n";
        let vs = parse_jsonl(text).expect("jsonl");
        assert_eq!(vs.len(), 2);
        let err = parse_jsonl("{\"a\":1}\nnot json\n").expect_err("bad line");
        assert!(matches!(err, Error::Validation(ref m) if m.contains("line 2")), "{err}");
    }

    /// Random `Json` trees, leaves included: every scalar shape, nasty
    /// strings (quotes, backslashes, control chars, non-ASCII), nested
    /// arrays and objects up to a bounded depth.
    struct ArbJson {
        depth: usize,
    }

    fn arb_string(rng: &mut proptest::test_runner::TestRng) -> String {
        const ALPHABET: &[char] =
            &['a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1f}', 'é', '😀'];
        let len = rng.below(9) as usize;
        (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize]).collect()
    }

    fn arb_value(rng: &mut proptest::test_runner::TestRng, depth: usize) -> Json {
        let branches = if depth == 0 { 6 } else { 8 };
        match rng.below(branches) {
            0 => Json::Null,
            1 => Json::Bool(rng.below(2) == 0),
            2 => Json::Uint(rng.next_u64()),
            3 => Json::Int(-((rng.next_u64() >> 1) as i64) - 1),
            4 => {
                // Finite floats across magnitudes, negatives and -0.0
                // included.
                let mag = [0.0, -0.0, 0.5, 1.0, 1e-6, 1e12, f64::MAX, f64::MIN_POSITIVE];
                let base = mag[rng.below(mag.len() as u64) as usize];
                if rng.below(2) == 0 {
                    Json::Num(base)
                } else {
                    Json::Num(base + rng.unit_f64())
                }
            }
            5 => Json::Str(arb_string(rng)),
            6 => {
                let n = rng.below(5) as usize;
                Json::Arr((0..n).map(|_| arb_value(rng, depth - 1)).collect())
            }
            _ => {
                let n = rng.below(5) as usize;
                Json::Obj((0..n).map(|_| (arb_string(rng), arb_value(rng, depth - 1))).collect())
            }
        }
    }

    impl Strategy for ArbJson {
        type Value = Json;
        fn new_value(&self, rng: &mut proptest::test_runner::TestRng) -> Json {
            arb_value(rng, self.depth)
        }
    }

    fn arb_json() -> ArbJson {
        ArbJson { depth: 3 }
    }

    proptest! {
        /// Emit → parse → emit is the identity on the emitted text, for
        /// any value tree: what this module writes, it reads back.
        #[test]
        fn emitted_json_reparses_to_the_same_text(v in arb_json()) {
            let text = v.to_string();
            let parsed = Json::parse(&text).expect("own output must parse");
            prop_assert_eq!(parsed.to_string(), text);
        }
    }
}
