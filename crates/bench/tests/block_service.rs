//! Regression tests for the unified [`ClusterStorage`] block service
//! across transports.
//!
//! The selection probe counters (sample hits, cache hits, local and
//! remote block fetches) are algorithm-level quantities — Section
//! IV-A's bottleneck analysis and the Appendix B ablation depend on
//! them — so they must be **identical** whether the cluster is the
//! in-process shared-memory view or real single-rank views probing
//! each other over TCP sockets. Likewise, `read_striped` must
//! reconstruct a striped run from any single rank, fetching peers'
//! blocks through the wire.

use demsort_bench::procs::TcpBlockService;
use demsort_core::ctx::ClusterStorage;
use demsort_core::extselect::{select_rank_external, SelectionStats};
use demsort_core::rundir::build_directory;
use demsort_core::runform::{form_runs, ingest_input};
use demsort_core::striped::{read_striped, striped_mergesort};
use demsort_net::tcp::{loopback_mesh, TcpOptions, TcpTransport};
use demsort_net::{run_cluster, Communicator};
use demsort_storage::{BlockId, DiskModel, MemBackend, PeStorage};
use demsort_types::{ranks, AlgoConfig, Element16, MachineConfig, SortConfig};
use demsort_workloads::{generate_all, generate_pe_input, InputSpec};
use std::sync::Arc;

const P: usize = 3;
const LOCAL_N: usize = 700;
const SEED: u64 = 11;

fn single_rank_storage(rank: usize, cfg: &SortConfig, tcp: &TcpTransport) -> Arc<ClusterStorage> {
    let st = PeStorage::with_backend(
        cfg.machine.disks_per_pe,
        cfg.machine.block_bytes,
        DiskModel::paper(),
        Arc::new(MemBackend::new(cfg.machine.disks_per_pe)),
    );
    let storage = ClusterStorage::single(rank, P, st, Box::new(TcpBlockService(tcp.clone())));
    let serve = Arc::clone(&storage);
    tcp.set_block_handler(Arc::new(move |disk, slot| {
        serve
            .pe(rank)
            .engine()
            .read_sync(BlockId::new(disk, slot))
            .map(|b| b.into_vec())
            .map_err(|e| e.to_string())
    }));
    storage
}

#[test]
fn probe_counters_identical_across_local_and_tcp_transports() {
    let cfg = SortConfig::new(MachineConfig::tiny(P), AlgoConfig::default()).expect("valid");

    // --- in-process reference: shared storage, direct-memory probes ---
    let storage = ClusterStorage::new_mem(&cfg.machine);
    let st_ref = &storage;
    let cfg2 = cfg.clone();
    let local_stats: Vec<SelectionStats> = run_cluster(P, move |c| {
        let st = st_ref.pe(c.rank());
        let recs = generate_pe_input(InputSpec::Uniform, SEED, c.rank(), P, LOCAL_N);
        let input = ingest_input(st, &recs).expect("ingest");
        let out = form_runs::<Element16>(&c, st, &cfg2, input, 1).expect("form");
        let dir = build_directory(&c, out.local).expect("directory");
        let r = ranks::owned_range(c.rank(), P, dir.total_elems()).start;
        let (_, stats) =
            select_rank_external(st_ref, c.rank(), &dir, r, &cfg2.algo).expect("select");
        stats
    });
    assert!(
        local_stats.iter().any(|s| s.blocks_remote > 0),
        "the reference must include cross-PE probes"
    );

    // --- TCP: single-rank views, probes cross real sockets ---
    let mesh = loopback_mesh(P, TcpOptions::default()).expect("mesh");
    let cfg3 = &cfg;
    let tcp_stats: Vec<SelectionStats> = std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .enumerate()
            .map(|(rank, tcp)| {
                s.spawn(move || {
                    let storage = single_rank_storage(rank, cfg3, &tcp);
                    let comm = Communicator::new(Box::new(tcp.clone()));
                    let st = storage.pe(rank);
                    let recs = generate_pe_input(InputSpec::Uniform, SEED, rank, P, LOCAL_N);
                    let input = ingest_input(st, &recs).expect("ingest");
                    let out = form_runs::<Element16>(&comm, st, cfg3, input, 1).expect("form");
                    let dir = build_directory(&comm, out.local).expect("directory");
                    let r = ranks::owned_range(rank, P, dir.total_elems()).start;
                    let (_, stats) =
                        select_rank_external(&storage, rank, &dir, r, &cfg3.algo).expect("select");
                    // Peers may still be probing this rank's blocks —
                    // keep serving until everyone is done.
                    comm.barrier().expect("barrier");
                    tcp.clear_block_handler();
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread")).collect()
    });

    assert_eq!(local_stats, tcp_stats, "probe counters must not depend on the transport");
}

#[test]
fn read_striped_reconstructs_from_one_rank_over_tcp() {
    let cfg = SortConfig::new(MachineConfig::tiny(P), AlgoConfig::default()).expect("valid");
    let mesh = loopback_mesh(P, TcpOptions::default()).expect("mesh");
    let cfg_ref = &cfg;
    let got: Vec<Option<Vec<Element16>>> = std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .enumerate()
            .map(|(rank, tcp)| {
                s.spawn(move || {
                    let storage = single_rank_storage(rank, cfg_ref, &tcp);
                    let comm = Communicator::new(Box::new(tcp.clone()));
                    let st = storage.pe(rank);
                    let recs = generate_pe_input(InputSpec::Uniform, SEED, rank, P, LOCAL_N);
                    let input = ingest_input(st, &recs).expect("ingest");
                    let outcome =
                        striped_mergesort::<Element16>(&comm, &storage, cfg_ref, input, 1, None)
                            .expect("striped sort");
                    // Rank 0 alone reconstructs the whole striped run:
                    // ~2/3 of the blocks live on peers and arrive
                    // through the block service while those peers sit
                    // at the barrier (their reader threads serve).
                    let full = (rank == 0).then(|| {
                        read_striped::<Element16>(&storage, &outcome.output)
                            .expect("single-rank striped read over TCP")
                    });
                    comm.barrier().expect("barrier");
                    tcp.clear_block_handler();
                    full
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread")).collect()
    });

    let mut reference = generate_all(InputSpec::Uniform, SEED, P, LOCAL_N);
    reference.sort_unstable();
    let got = got[0].as_ref().expect("rank 0 read the run");
    let keys: Vec<u64> = got.iter().map(|e| e.key).collect();
    let ref_keys: Vec<u64> = reference.iter().map(|e| e.key).collect();
    assert_eq!(keys, ref_keys, "single-rank remote read must yield the sorted sequence");
}
