//! Repo-native static analysis for the demsort workspace.
//!
//! The paper's guarantees — I/O-optimal striped merging, exact
//! comparison bounds, fault-tolerant collectives — survive in this
//! codebase as conventions: collectives are fallible, `net`/`storage`
//! never panic, counter-identity surfaces are transport-independent,
//! the uninit-spare-capacity merge is documented safe. This crate
//! machine-checks those conventions. It is a **token-level** analyzer
//! — its own small lexer ([`lexer`]) handles strings, raw strings,
//! nested block comments, and `#[cfg(test)]` scoping ([`scan`]); no
//! `syn`, consistent with the workspace's offline `vendor/` policy.
//!
//! The `demsort-verify` binary drives it:
//!
//! ```text
//! demsort-verify [--root DIR] [--json FILE] [--unsafe-inventory FILE]
//!                [--warnings] [--list-lints]
//! ```
//!
//! Exit code 0 means no deny-severity finding; 1 means at least one;
//! 2 is a usage or I/O error. See [`lints`] for the lint catalog
//! (L1–L5) and the `// verify: allow(<lint>, <reason>)` escape hatch.

pub mod lexer;
pub mod lints;
pub mod report;
pub mod scan;
pub mod walk;

use demsort_types::Result;
use report::Report;
use scan::SourceFile;
use std::path::Path;

/// Analyze in-memory sources: `(repo-relative path, contents)` pairs.
/// Path-scoped lints (L1's crate list, L5's allowlist) key on the
/// given paths, so fixtures can impersonate any location.
pub fn analyze_sources<P: AsRef<str>, S: AsRef<str>>(files: &[(P, S)]) -> Report {
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    for (path, src) in files {
        let parsed = SourceFile::parse(path.as_ref(), src.as_ref());
        lints::run_lints(&parsed, &mut report);
    }
    report.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Analyze the workspace rooted at `root` (the directory holding
/// `Cargo.toml` and `crates/`).
///
/// # Errors
/// [`Error::Io`](demsort_types::Error) if the tree cannot be read.
pub fn analyze_root(root: &Path) -> Result<Report> {
    let paths = walk::workspace_sources(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let text = std::fs::read_to_string(root.join(&p))
            .map_err(|e| demsort_types::Error::io(format!("reading {p}: {e}")))?;
        files.push((p, text));
    }
    Ok(analyze_sources(&files))
}
