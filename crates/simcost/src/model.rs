//! The cost model: measured volumes × hardware profile → phase times.
//!
//! Experiments execute the algorithms *fully* at laptop scale (real
//! data through real block engines and channels) and collect exact
//! per-PE, per-phase counters. This module converts those volumes to
//! the paper's cluster with two ingredients:
//!
//! * a **volume scale** `s`: the simulated run keeps every structural
//!   ratio of the paper's machine (`m/B` blocks of memory per PE, `R`
//!   runs, block-op counts) but moves `s×` fewer bytes. Byte volumes
//!   scale by `s`, block-op counts are already paper-equal, and sort
//!   work scales as `s·(W + n·log2 s)` (sorting `s·n` elements).
//! * the **hardware profile** (disk/network/core rates).
//!
//! Phase wall time per PE is `max(io, cpu + comm)` when overlap is on
//! (Section IV-E) and the plain sum otherwise; cluster phase time is
//! the maximum over PEs (bulk-synchronous phases).

use crate::profile::HardwareProfile;
use demsort_types::{Phase, PhaseStats, SortReport};
use std::collections::BTreeMap;

/// Time breakdown of one phase (seconds).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PhaseTime {
    /// Disk time (busiest local disk).
    pub io_s: f64,
    /// Compute time (sort + merge work over the PE's cores).
    pub cpu_s: f64,
    /// Network time (bytes / effective bandwidth + message latency).
    pub comm_s: f64,
    /// Modeled wall time.
    pub wall_s: f64,
}

impl PhaseTime {
    fn max(self, other: Self) -> Self {
        Self {
            io_s: self.io_s.max(other.io_s),
            cpu_s: self.cpu_s.max(other.cpu_s),
            comm_s: self.comm_s.max(other.comm_s),
            wall_s: self.wall_s.max(other.wall_s),
        }
    }
}

/// Converts measured [`SortReport`]s into modeled cluster times.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Hardware constants.
    pub profile: HardwareProfile,
    /// Volume scale: simulated bytes × `scale` = modeled bytes.
    pub scale: f64,
    /// Whether I/O overlaps computation+communication (Section IV-E).
    pub overlap: bool,
}

impl CostModel {
    /// Model at 1:1 scale with the paper's cluster.
    pub fn paper() -> Self {
        Self { profile: HardwareProfile::paper_cluster(), scale: 1.0, overlap: true }
    }

    /// Model where each simulated byte stands for `scale` bytes on the
    /// paper's cluster (e.g. 32 MiB/PE simulating 100 GiB/PE →
    /// `scale = 3200`).
    pub fn paper_scaled(scale: f64) -> Self {
        Self { profile: HardwareProfile::paper_cluster(), scale, overlap: true }
    }

    /// Time breakdown for one PE's stats in one phase, for a cluster of
    /// `pes` PEs.
    pub fn phase_time(&self, stats: &PhaseStats, pes: usize) -> PhaseTime {
        let p = &self.profile;
        let d = p.disks_per_pe.max(1) as f64;

        // Disk: ops pay positioning, bytes pay transfer; local disks
        // work in parallel (striping keeps them balanced).
        let ops = (stats.io.blocks_read + stats.io.blocks_written) as f64;
        let bytes = stats.io.bytes_total() as f64 * self.scale;
        let io_s = (ops / d) * (p.disk_seek_ns as f64 / 1e9) + bytes / d / p.disk_bytes_per_sec;

        // CPU: comparison-count proxies over the PE's cores. Sorting
        // s·n elements costs s·(W + n·log2 s) comparisons.
        let log_s = if self.scale > 1.0 { self.scale.log2() } else { 0.0 };
        let sort_ops =
            self.scale * (stats.cpu.sort_work as f64 + stats.cpu.elements_sorted as f64 * log_s);
        let merge_ops = self.scale * stats.cpu.merge_work as f64;
        let cores = p.cores_per_pe.max(1) as f64;
        let cpu_s = (sort_ops * p.sort_ns_per_op + merge_ops * p.merge_ns_per_op) / 1e9 / cores;

        // Network: the larger direction bounds the PE's time on a
        // full-duplex fabric; latency per message.
        let wire = stats.comm.bytes_sent.max(stats.comm.bytes_recv) as f64 * self.scale;
        let comm_s = wire / p.net_bytes_per_sec(pes)
            + stats.comm.messages as f64 * p.net_latency_ns as f64 / 1e9;

        let wall_s = if self.overlap { io_s.max(cpu_s + comm_s) } else { io_s + cpu_s + comm_s };
        PhaseTime { io_s, cpu_s, comm_s, wall_s }
    }

    /// Per-phase cluster times: the slowest PE bounds each phase
    /// (phases are bulk-synchronous).
    pub fn cluster_phases(&self, report: &SortReport) -> BTreeMap<Phase, PhaseTime> {
        let mut out = BTreeMap::new();
        for phase in Phase::ALL {
            let mut worst = PhaseTime::default();
            let mut seen = false;
            for pe in 0..report.pes {
                if let Some(stats) = report.stats[pe].get(&phase) {
                    worst = worst.max(self.phase_time(stats, report.pes));
                    seen = true;
                }
            }
            if seen {
                out.insert(phase, worst);
            }
        }
        out
    }

    /// Per-PE wall times of one phase (Figure 3's bars).
    pub fn per_pe_times(&self, report: &SortReport, phase: Phase) -> Vec<PhaseTime> {
        (0..report.pes)
            .map(|pe| {
                report.stats[pe]
                    .get(&phase)
                    .map(|s| self.phase_time(s, report.pes))
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Total modeled wall time (sum of bulk-synchronous phases).
    pub fn total_wall_s(&self, report: &SortReport) -> f64 {
        self.cluster_phases(report).values().map(|t| t.wall_s).sum()
    }

    /// Modeled sort throughput in bytes/second over the whole cluster
    /// (SortBenchmark's metric, using decimal GB).
    pub fn throughput_bytes_per_sec(&self, report: &SortReport) -> f64 {
        let wall = self.total_wall_s(report);
        if wall == 0.0 {
            return 0.0;
        }
        report.total_bytes() as f64 * self.scale / wall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_types::{CommCounters, CpuCounters, IoCounters};

    fn stats(bytes_io: u64, blocks: u64, sort_work: u64, bytes_net: u64) -> PhaseStats {
        PhaseStats {
            io: IoCounters {
                bytes_read: bytes_io / 2,
                bytes_written: bytes_io / 2,
                blocks_read: blocks / 2,
                blocks_written: blocks / 2,
                max_disk_busy_ns: 0,
            },
            comm: CommCounters { bytes_sent: bytes_net, bytes_recv: bytes_net, messages: 10 },
            cpu: CpuCounters { elements_sorted: sort_work / 30, sort_work, ..Default::default() },
        }
    }

    #[test]
    fn io_time_matches_hand_computation() {
        let m = CostModel::paper();
        // 8 GiB through 4 disks at the sustained 52 MiB/s + 1024 block
        // ops at 6 ms positioning each.
        let s = stats(8 << 30, 1024, 0, 0);
        let t = m.phase_time(&s, 4);
        let expect = (1024.0 / 4.0) * 0.006 + (8u64 << 30) as f64 / 4.0 / (52.0 * 1024.0 * 1024.0);
        assert!((t.io_s - expect).abs() < 1e-9, "{} vs {}", t.io_s, expect);
    }

    #[test]
    fn overlap_takes_max_sum_otherwise() {
        let mut m = CostModel::paper();
        let s = stats(1 << 30, 128, 2_000_000_000, 1 << 28);
        let with = m.phase_time(&s, 8);
        assert!((with.wall_s - with.io_s.max(with.cpu_s + with.comm_s)).abs() < 1e-12);
        m.overlap = false;
        let without = m.phase_time(&s, 8);
        assert!((without.wall_s - (without.io_s + without.cpu_s + without.comm_s)).abs() < 1e-12);
        assert!(without.wall_s >= with.wall_s);
    }

    #[test]
    fn scaling_preserves_block_ops_and_scales_bytes() {
        let base = CostModel::paper();
        let scaled = CostModel::paper_scaled(1000.0);
        let s = stats(1 << 20, 256, 0, 0);
        let t1 = base.phase_time(&s, 4);
        let t1000 = scaled.phase_time(&s, 4);
        // Seek part identical, transfer part ×1000.
        let seek = (256.0 / 4.0) * 0.006;
        assert!(t1000.io_s - seek > 990.0 * (t1.io_s - seek));
    }

    #[test]
    fn congestion_slows_large_clusters() {
        let m = CostModel::paper();
        let s = stats(0, 0, 0, 1 << 30);
        let t2 = m.phase_time(&s, 2);
        let t200 = m.phase_time(&s, 200);
        assert!(t200.comm_s > 2.5 * t2.comm_s, "fabric congestion: {t2:?} vs {t200:?}");
    }

    #[test]
    fn sort_work_scale_correction() {
        // Sorting s·n elements costs s·(n log n) + s·n·log s.
        let m = CostModel::paper_scaled(1024.0);
        let n = 1u64 << 20;
        let w = n * 20; // n log2 n
        let s = stats(0, 0, w, 0);
        let t = m.phase_time(&s, 1);
        let elements = w / 30; // stats() helper derives n this way
        let expect_ops = 1024.0 * (w as f64 + elements as f64 * 10.0);
        let expect_s = expect_ops * 6.0 / 1e9 / 8.0;
        assert!((t.cpu_s - expect_s).abs() < 1e-9, "{} vs {}", t.cpu_s, expect_s);
    }

    #[test]
    fn cluster_phase_is_slowest_pe() {
        let m = CostModel::paper();
        let mut report = SortReport::new(2, 1000, 16, 2);
        report.record(0, Phase::FinalMerge, stats(1 << 30, 128, 0, 0));
        report.record(1, Phase::FinalMerge, stats(4 << 30, 512, 0, 0));
        let phases = m.cluster_phases(&report);
        let t = phases[&Phase::FinalMerge];
        let t1 = m.phase_time(&report.get(1, Phase::FinalMerge), 2);
        assert_eq!(t.wall_s, t1.wall_s, "PE 1 is slower and bounds the phase");
        assert_eq!(m.per_pe_times(&report, Phase::FinalMerge).len(), 2);
        assert!(m.total_wall_s(&report) > 0.0);
        assert!(m.throughput_bytes_per_sec(&report) > 0.0);
    }
}
