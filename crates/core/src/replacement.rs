//! Replacement-selection run formation (Knuth 5.4.1) — the paper's
//! future-work item: "Run formation could perhaps be improved to allow
//! longer runs [14, Section 5.4.1]. The main effect is that by
//! decreasing the number of runs, we can further increase the block
//! size."
//!
//! Classic replacement selection keeps a tournament of `m` records.
//! Each step emits the winner and replaces its leaf with the next
//! input record, tagged for the *next* run if it is smaller than what
//! was just emitted (it can no longer join the current run). Ordering
//! leaves by `(run, key)` makes the tournament emit whole runs in
//! sequence — `O(log m)` per record.
//!
//! On random input the expected run length is `2m` (twice the memory),
//! halving `R`; ascending input becomes a single run; descending input
//! degrades to runs of exactly `m`. All three behaviours are tested.
//!
//! This module provides the streaming core ([`ReplacementRuns`]) and a
//! local external-sort pipeline ([`form_runs_replacement`]) that
//! writes the longer runs to disk, for the `ablate-runlength`
//! experiment. (Plugging it into the *distributed* run formation would
//! make run sizes data-dependent, which conflicts with the fixed-`M`
//! analysis of CANONICALMERGESORT — the paper leaves that open, and so
//! do we.)

use crate::merge::LoserTree;
use crate::recio::{FinishedRun, RecordRunWriter};
use demsort_storage::PeStorage;
use demsort_types::{Record, Result};

/// One emission: a record and the run it extends.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Emitted<R> {
    /// Run index (consecutive, starting at 0).
    pub run: u64,
    /// The record.
    pub rec: R,
}

/// Streaming replacement selection over an input iterator, with a
/// memory budget of `capacity` records. Yields records in run order;
/// within each run, keys are non-decreasing.
pub struct ReplacementRuns<R: Record + Ord, I: Iterator<Item = R>> {
    tree: LoserTree<(u64, R)>,
    input: I,
}

impl<R: Record + Ord, I: Iterator<Item = R>> ReplacementRuns<R, I> {
    /// Fill the tournament with up to `capacity` records of `input`.
    pub fn new(mut input: I, capacity: usize) -> Self {
        assert!(capacity > 0, "replacement selection needs memory");
        let heads: Vec<Option<(u64, R)>> =
            (0..capacity).map(|_| input.next().map(|r| (0, r))).collect();
        Self { tree: LoserTree::new(heads), input }
    }
}

impl<R: Record + Ord, I: Iterator<Item = R>> Iterator for ReplacementRuns<R, I> {
    type Item = Emitted<R>;

    fn next(&mut self) -> Option<Emitted<R>> {
        self.tree.winner()?;
        // Peek the winner to tag the replacement, then swap in place.
        let &(run, rec) = self.tree.peek().expect("winner exists");
        let replacement = self.input.next().map(|x| {
            // A record smaller than the one leaving can only join the
            // *next* run.
            if x.key() < rec.key() {
                (run + 1, x)
            } else {
                (run, x)
            }
        });
        let (run, rec) = self.tree.replace_winner(replacement);
        Some(Emitted { run, rec })
    }
}

/// Group an in-memory input into replacement-selection runs (for tests
/// and the ablation bench).
pub fn runs_by_replacement<R: Record + Ord>(input: &[R], capacity: usize) -> Vec<Vec<R>> {
    let mut out: Vec<Vec<R>> = Vec::new();
    for e in ReplacementRuns::new(input.iter().copied(), capacity) {
        if out.len() <= e.run as usize {
            out.resize_with(e.run as usize + 1, Vec::new);
        }
        out[e.run as usize].push(e.rec);
    }
    out
}

/// Local external run formation via replacement selection: stream
/// `input` through a `capacity`-record selector, writing each run to
/// `st`. Returns the finished runs (each sorted, jointly a permutation
/// of the input).
pub fn form_runs_replacement<R: Record + Ord>(
    st: &PeStorage,
    input: &[R],
    capacity: usize,
    sample_every: usize,
) -> Result<Vec<FinishedRun<R>>> {
    let mut writers: Vec<FinishedRun<R>> = Vec::new();
    let mut current: Option<(u64, RecordRunWriter<'_, R>)> = None;
    for e in ReplacementRuns::new(input.iter().copied(), capacity) {
        let need_new = current.as_ref().is_none_or(|(run, _)| *run != e.run);
        if need_new {
            if let Some((_, w)) = current.take() {
                writers.push(w.finish()?);
            }
            current = Some((e.run, RecordRunWriter::new(st, sample_every)));
        }
        current.as_mut().expect("writer open").1.push(e.rec)?;
    }
    if let Some((_, w)) = current.take() {
        writers.push(w.finish()?);
    }
    Ok(writers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recio::read_records;
    use demsort_storage::{DiskModel, MemBackend, PeStorage};
    use demsort_types::Element16;
    use demsort_workloads::splitmix64;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn random_input(n: usize, seed: u64) -> Vec<Element16> {
        (0..n as u64).map(|i| Element16::new(splitmix64(seed ^ i), i)).collect()
    }

    fn check_runs(runs: &[Vec<Element16>], input: &[Element16]) {
        for (i, run) in runs.iter().enumerate() {
            assert!(run.windows(2).all(|w| w[0].key <= w[1].key), "run {i} sorted");
            assert!(!run.is_empty(), "run {i} must not be empty");
        }
        let mut all: Vec<Element16> = runs.concat();
        let mut expect = input.to_vec();
        all.sort_unstable();
        expect.sort_unstable();
        assert_eq!(all, expect, "runs are a permutation of the input");
    }

    #[test]
    fn random_input_doubles_run_length() {
        let m = 64;
        let input = random_input(64 * 40, 7);
        let runs = runs_by_replacement(&input, m);
        check_runs(&runs, &input);
        let avg = input.len() as f64 / runs.len() as f64;
        // Knuth: expected run length 2m on random input. Allow slack.
        assert!(avg > 1.6 * m as f64, "average run length {avg:.0} should approach 2m = {}", 2 * m);
    }

    #[test]
    fn sorted_input_gives_one_run() {
        let input: Vec<Element16> = (0..500).map(|i| Element16::new(i, i)).collect();
        let runs = runs_by_replacement(&input, 16);
        assert_eq!(runs.len(), 1, "ascending input never freezes anything");
        check_runs(&runs, &input);
    }

    #[test]
    fn reverse_sorted_degrades_to_m_sized_runs() {
        let n = 320u64;
        let m = 16u64;
        let input: Vec<Element16> = (0..n).map(|i| Element16::new(n - i, i)).collect();
        let runs = runs_by_replacement(&input, m as usize);
        check_runs(&runs, &input);
        assert_eq!(runs.len(), (n / m) as usize, "worst case: every replacement freezes");
        assert!(runs.iter().all(|r| r.len() == m as usize));
    }

    #[test]
    fn duplicates_and_tiny_capacity() {
        let input: Vec<Element16> = (0..100).map(|i| Element16::new(i % 3, i)).collect();
        let runs = runs_by_replacement(&input, 1);
        check_runs(&runs, &input);
        let input2: Vec<Element16> = (0..50).map(|i| Element16::new(7, i)).collect();
        let runs2 = runs_by_replacement(&input2, 4);
        assert_eq!(runs2.len(), 1, "all-equal keys form one run");
    }

    #[test]
    fn empty_input_and_capacity_exceeding_input() {
        assert!(runs_by_replacement::<Element16>(&[], 8).is_empty());
        let input = random_input(10, 1);
        let runs = runs_by_replacement(&input, 100);
        assert_eq!(runs.len(), 1, "everything fits in memory → one run");
        check_runs(&runs, &input);
    }

    #[test]
    fn on_disk_runs_round_trip() {
        let st = PeStorage::with_backend(2, 256, DiskModel::paper(), Arc::new(MemBackend::new(2)));
        let input = random_input(1000, 3);
        let finished = form_runs_replacement(&st, &input, 64, 16).expect("form");
        let in_memory = runs_by_replacement(&input, 64);
        assert_eq!(finished.len(), in_memory.len(), "same run structure");
        for (fr, expect) in finished.iter().zip(&in_memory) {
            let recs = read_records::<Element16>(&st, &fr.run, fr.elems).expect("read");
            assert_eq!(&recs, expect);
            if !fr.samples.is_empty() {
                assert_eq!(fr.samples[0].pos, 0, "sampling starts at the run head");
            }
        }
    }

    #[test]
    fn fewer_runs_than_load_sort_store() {
        // The paper's motivation: replacement selection forms fewer
        // runs than the load-sort-store baseline (which yields ⌈n/m⌉).
        let m = 64;
        let input = random_input(m * 32, 11);
        let runs = runs_by_replacement(&input, m);
        let baseline = input.len().div_ceil(m);
        assert!(
            runs.len() * 3 < baseline * 2,
            "replacement {} runs vs load-sort-store {baseline}",
            runs.len()
        );
    }

    proptest! {
        #[test]
        fn always_sorted_runs_and_permutation(
            n in 0usize..400,
            m in 1usize..64,
            key_range in 1u64..500,
            seed in 0u64..1000,
        ) {
            let input: Vec<Element16> = (0..n as u64)
                .map(|i| Element16::new(splitmix64(seed ^ i) % key_range, i))
                .collect();
            let runs = runs_by_replacement(&input, m);
            for run in &runs {
                prop_assert!(run.windows(2).all(|w| w[0].key <= w[1].key));
            }
            let mut all: Vec<Element16> = runs.concat();
            let mut expect = input.clone();
            all.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(all, expect);
        }
    }
}
