//! A small token-level lexer for Rust source.
//!
//! The lints in this crate need exactly one guarantee from the lexer:
//! **code tokens never come out of non-code bytes**. A `panic!` inside
//! a string literal, a `.unwrap()` quoted in a doc comment, or an
//! `unsafe` spelled inside a nested block comment must not produce the
//! identifier tokens the lints match on. Everything else stays
//! deliberately simple — no spans beyond line numbers, no keyword
//! table, no expression grammar. That keeps the analyzer dependency-
//! free (no `syn`), consistent with the workspace's offline `vendor/`
//! policy.
//!
//! Handled forms:
//!
//! * line comments `// …` (including `///` and `//!`), kept as tokens
//!   because escape hatches and `SAFETY:` audits read them;
//! * block comments `/* … */` with arbitrary nesting, kept likewise;
//! * string literals with escapes (`"…\"…"`), byte strings `b"…"`;
//! * raw strings `r"…"`, `r#"…"#`, … with any hash count, and their
//!   byte variants `br#"…"#`;
//! * char literals (`'a'`, `'\n'`, `b'x'`) vs. lifetimes (`'a`);
//! * identifiers (keywords are just identifiers here), numbers, and
//!   single-character punctuation.

/// What a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `unwrap`, …).
    Ident,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// Single punctuation character (`.`, `!`, `{`, …).
    Punct,
    /// Any string literal (escaped, raw, or byte); text is the raw
    /// source slice including quotes.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal (integer or float prefix; suffixes included).
    Num,
    /// `// …` comment, text without the trailing newline.
    LineComment,
    /// `/* … */` comment (possibly nested), delimiters included.
    BlockComment,
}

/// One lexed token: kind, verbatim text, and 1-based source line of
/// its first character.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

impl Tok {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for a comment token (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lex `src` into tokens. Never fails: unterminated literals or
/// comments simply extend to end of input (the lints run on code that
/// `rustc` already accepted, so malformed input only has to be safe,
/// not diagnosed).
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines in b[start..end) into `line`.
    fn bump_lines(b: &[u8], start: usize, end: usize, line: &mut u32) {
        *line += b[start..end].iter().filter(|&&c| c == b'\n').count() as u32;
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let start = i;
                let start_line = line;
                i = scan_escaped_string(b, i + 1);
                bump_lines(b, start, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'r' | b'b' if starts_string_prefix(b, i) => {
                let start = i;
                let start_line = line;
                i = scan_prefixed_string(b, i);
                bump_lines(b, start, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => {
                let start = i;
                i = scan_char_literal(b, i + 2);
                toks.push(Tok { kind: TokKind::Char, text: src[start..i].to_string(), line });
            }
            b'\'' => {
                // Lifetime or char literal. `'` + ident-run + `'` is a
                // char (e.g. 'a'); `'` + ident-run without a closing
                // quote is a lifetime (e.g. 'a, 'static); anything else
                // after the quote (escape, punctuation, digit) is a
                // char literal.
                let start = i;
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                if j > i + 1 && b.get(j) != Some(&b'\'') {
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    i = scan_char_literal(b, i + 1);
                    toks.push(Tok { kind: TokKind::Char, text: src[start..i].to_string(), line });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Ident, text: src[start..i].to_string(), line });
            }
            c if c.is_ascii_digit() => {
                // Numbers never matter to the lints; consume the
                // alphanumeric run (covers hex, suffixes) without dots
                // so ranges like `0..n` lex as Num, `.`, `.`, Ident.
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Num, text: src[start..i].to_string(), line });
            }
            _ => {
                let ch_len = src[i..].chars().next().map_or(1, |ch| ch.len_utf8());
                toks.push(Tok { kind: TokKind::Punct, text: src[i..i + ch_len].to_string(), line });
                i += ch_len;
            }
        }
    }
    toks
}

/// True if `b[i..]` starts a raw/byte string prefix: `r"`, `r#`, `b"`,
/// `br"`, `br#`, `rb…` is not valid Rust and not matched.
fn starts_string_prefix(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match b.get(i + 1) {
            Some(b'"') => true,
            Some(b'r') => matches!(b.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scan past a `"…"` body with backslash escapes; `i` is just after
/// the opening quote. Returns the index just after the closing quote
/// (or end of input).
fn scan_escaped_string(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2, // may step one past end on a trailing backslash; clamped below
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i.min(b.len())
}

/// Scan a string starting with its `r`/`b`/`br` prefix at `i`.
fn scan_prefixed_string(b: &[u8], mut i: usize) -> usize {
    let mut raw = false;
    if b[i] == b'b' {
        i += 1;
    }
    if i < b.len() && b[i] == b'r' {
        raw = true;
        i += 1;
    }
    if !raw {
        // b"…" — escaped body.
        return scan_escaped_string(b, i + 1);
    }
    // r, r#…#, br#…#: count hashes, then scan for `"` + that many `#`.
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        // Not actually a raw string (e.g. `r#ident`); treat the prefix
        // as consumed so lexing proceeds safely.
        return i;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Scan past a char-literal body; `i` is just after the opening quote
/// (and after `b` for byte chars). Returns the index after the closing
/// quote.
fn scan_char_literal(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            // A char literal never spans a line; bail so an actually
            // stray quote cannot swallow the rest of the file.
            b'\n' => return i,
            _ => i += 1,
        }
    }
    i.min(b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn idents_do_not_leak_from_strings_or_comments() {
        let src = r##"
            // panic! in a line comment
            /* .unwrap() in /* a nested */ block comment */
            let s = "panic!(\"quoted\")";
            let r = r#"unsafe { .unwrap() }"#;
            let b = b"panic!";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Char).map(|t| &t.text).collect();
        assert_eq!(chars, ["'x'", "'\\n'"]);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n/* one\ntwo */\nb\nr#\"raw\nlines\"#\nc";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).expect(name).line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 7);
    }

    #[test]
    fn raw_string_hash_counts() {
        let toks = lex(r####"let x = r###"has "# and "## inside"###; after"####);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        let s = toks.iter().find(|t| t.kind == TokKind::Str).expect("raw string");
        assert!(s.text.contains("inside"));
    }

    #[test]
    fn unterminated_forms_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"open", "'x", "b\"half \\"] {
            let _ = lex(src);
        }
    }
}
