//! Output validation, in the spirit of the SortBenchmark's `valsort`.
//!
//! Three independent properties establish a correct sort:
//!
//! 1. **local sortedness** — each PE's output is non-decreasing;
//! 2. **boundary order** — the last key of PE `i` ≤ first key of
//!    PE `i+1` (canonical output format);
//! 3. **permutation** — the multiset of records is unchanged, checked
//!    with an order-independent checksum (sum of per-record hashes
//!    modulo 2^64) plus exact counts.

use crate::splitmix64;
use demsort_types::{Element16, Key, Record, Record100};

/// Order-independent checksum + count over a stream of element hashes.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Fingerprint {
    /// Number of records hashed.
    pub count: u64,
    /// Wrapping sum of record hashes (order independent).
    pub sum: u64,
}

impl Fingerprint {
    /// Absorb a record hash.
    #[inline]
    pub fn add(&mut self, h: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(h);
    }

    /// Combine two fingerprints (disjoint streams).
    pub fn merge(&self, other: &Self) -> Self {
        Self { count: self.count + other.count, sum: self.sum.wrapping_add(other.sum) }
    }
}

fn hash_element(e: &Element16) -> u64 {
    splitmix64(e.key ^ splitmix64(e.payload))
}

fn hash_record100(r: &Record100) -> u64 {
    let mut h = splitmix64(r.key.prefix64());
    for chunk in r.payload.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(b));
    }
    h
}

/// Fingerprint of a slice of 16-byte elements.
pub fn checksum_elements(elems: &[Element16]) -> Fingerprint {
    let mut f = Fingerprint::default();
    for e in elems {
        f.add(hash_element(e));
    }
    f
}

/// Fingerprint of a slice of 100-byte records.
pub fn checksum_records(recs: &[Record100]) -> Fingerprint {
    let mut f = Fingerprint::default();
    for r in recs {
        f.add(hash_record100(r));
    }
    f
}

/// Streaming sortedness checker for one PE's output.
#[derive(Debug)]
pub struct SortednessCheck<R: Record> {
    last: Option<R>,
    violations: u64,
    count: u64,
}

impl<R: Record + Ord> Default for SortednessCheck<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Record + Ord> SortednessCheck<R> {
    /// Fresh checker.
    pub fn new() -> Self {
        Self { last: None, violations: 0, count: 0 }
    }

    /// Feed the next record in output order.
    pub fn push(&mut self, r: R) {
        if let Some(prev) = &self.last {
            if prev.key() > r.key() {
                self.violations += 1;
            }
        }
        self.last = Some(r);
        self.count += 1;
    }

    /// Feed a whole slice.
    pub fn push_all(&mut self, rs: &[R]) {
        for r in rs {
            self.push(*r);
        }
    }

    /// Records seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Key-order violations seen.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// First key (for cross-PE boundary checks), if any records seen.
    pub fn last_key(&self) -> Option<R::Key> {
        self.last.as_ref().map(|r| r.key())
    }

    /// `true` iff no violations.
    pub fn is_sorted(&self) -> bool {
        self.violations == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_independent() {
        let a: Vec<Element16> = (0..100).map(|i| Element16::new(i * 7, i)).collect();
        let mut b = a.clone();
        b.reverse();
        assert_eq!(checksum_elements(&a), checksum_elements(&b));
    }

    #[test]
    fn checksum_detects_mutation_duplication_loss() {
        let a: Vec<Element16> = (0..50).map(|i| Element16::new(i, i)).collect();
        let base = checksum_elements(&a);

        let mut changed = a.clone();
        changed[3].key ^= 1;
        assert_ne!(checksum_elements(&changed), base, "mutation");

        let mut duped = a.clone();
        duped[10] = duped[11];
        assert_ne!(checksum_elements(&duped), base, "duplication");

        let dropped = &a[..49];
        assert_ne!(checksum_elements(dropped), base, "loss");
    }

    #[test]
    fn fingerprints_merge_like_concatenation() {
        let a: Vec<Element16> = (0..30).map(|i| Element16::new(i, 0)).collect();
        let whole = checksum_elements(&a);
        let merged = checksum_elements(&a[..13]).merge(&checksum_elements(&a[13..]));
        assert_eq!(whole, merged);
    }

    #[test]
    fn sortedness_checker_counts_violations() {
        let mut c = SortednessCheck::new();
        c.push_all(&[
            Element16::new(1, 0),
            Element16::new(2, 0),
            Element16::new(2, 1), // equal keys fine
            Element16::new(1, 2), // violation
            Element16::new(5, 3),
        ]);
        assert_eq!(c.violations(), 1);
        assert_eq!(c.count(), 5);
        assert!(!c.is_sorted());
        assert_eq!(c.last_key(), Some(5));
    }

    #[test]
    fn record100_checksum_sensitive_to_payload() {
        let a = gensort_like(1);
        let mut b = a;
        b.payload[50] ^= 0xFF;
        assert_ne!(checksum_records(&[a]), checksum_records(&[b]));
    }

    fn gensort_like(i: u64) -> Record100 {
        crate::gensort::gensort_record(0, i)
    }
}
