//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides the rand-0.8-shaped subset the suite uses: a seedable
//! [`rngs::StdRng`], [`Rng::gen`] / [`Rng::gen_range`], and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not
//! cryptographic, but high-quality enough for test data and the
//! paper's randomized block placement, and deterministic per seed,
//! which is what the suite actually relies on.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed. Identical seeds give identical
    /// streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is < width/2^64 — irrelevant at test scale.
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (Steele, Lea, Flood 2014).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (the `rand::seq::SliceRandom` subset used).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0..3u32);
            assert!(y < 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "100 elements should move");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn f64_sampling_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
