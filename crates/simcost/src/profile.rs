//! Hardware profiles: the constants that turn measured volumes into
//! seconds.
//!
//! The default profile is the paper's cluster (Section VI): 200 Intel
//! Xeon X5355 nodes (2×4 cores, 2.667 GHz, 16 GiB RAM), 4 Seagate
//! 7200.10 disks per node ("peak I/O rates between 60 and 71 MiB/s, in
//! average 67 MiB/s"), InfiniBand 4xDDR with "point-to-point peak
//! bandwidth between two nodes \[of\] more than 1300 MB/s. However, this
//! value decreases when most nodes are used because the fabric gets
//! overloaded (we have measured bandwidths as low as 400 MB/s)."

/// Hardware constants for the cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct HardwareProfile {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Average positioning time per block access (ns).
    pub disk_seek_ns: u64,
    /// Sustained per-disk transfer rate (bytes/s).
    pub disk_bytes_per_sec: f64,
    /// Disks per PE (local disks run in parallel).
    pub disks_per_pe: usize,
    /// Point-to-point bandwidth with an idle fabric (bytes/s).
    pub net_peak_bytes_per_sec: f64,
    /// Per-node bandwidth when the whole fabric is loaded (bytes/s).
    pub net_congested_bytes_per_sec: f64,
    /// Cluster size at which congestion bottoms out.
    pub congestion_knee_pes: usize,
    /// Per-message latency (ns).
    pub net_latency_ns: u64,
    /// Cores per PE sharing the sort/merge work.
    pub cores_per_pe: usize,
    /// Cost of one sort comparison-move (ns, single core).
    pub sort_ns_per_op: f64,
    /// Cost of one merge comparison-move (ns, single core).
    pub merge_ns_per_op: f64,
}

impl HardwareProfile {
    /// The paper's 200-node Xeon/InfiniBand cluster.
    pub fn paper_cluster() -> Self {
        Self {
            name: "ICDE'09 200-node Xeon cluster",
            disk_seek_ns: 6_000_000, // ~6 ms average positioning
            // Sustained rate *during sorting*: the drives peak at
            // 60–71 MiB/s, but "the average I/O bandwidth per disk is
            // about 50 MiB/s, which is more than 2/3 of the maximum"
            // (inner tracks, fs overhead, startup/finalization) — the
            // sustained number is what determines phase times.
            disk_bytes_per_sec: 52.0 * 1024.0 * 1024.0,
            disks_per_pe: 4,
            net_peak_bytes_per_sec: 1.3e9,
            net_congested_bytes_per_sec: 0.4e9,
            congestion_knee_pes: 200,
            net_latency_ns: 5_000,
            cores_per_pe: 8,
            sort_ns_per_op: 6.0,
            merge_ns_per_op: 8.0,
        }
    }

    /// A generic modern-ish single machine (for laptop-scale sanity
    /// reports): NVMe-class storage, loopback "network".
    pub fn workstation() -> Self {
        Self {
            name: "generic workstation",
            disk_seek_ns: 50_000,
            disk_bytes_per_sec: 2.0e9,
            disks_per_pe: 1,
            net_peak_bytes_per_sec: 10.0e9,
            net_congested_bytes_per_sec: 8.0e9,
            congestion_knee_pes: 64,
            net_latency_ns: 1_000,
            cores_per_pe: 8,
            sort_ns_per_op: 4.0,
            merge_ns_per_op: 5.0,
        }
    }

    /// Effective per-node network bandwidth at cluster size `pes`
    /// (linear degradation from peak to congested, saturating at the
    /// knee).
    pub fn net_bytes_per_sec(&self, pes: usize) -> f64 {
        if pes <= 2 {
            return self.net_peak_bytes_per_sec;
        }
        let knee = self.congestion_knee_pes.max(3) as f64;
        let frac = ((pes as f64 - 2.0) / (knee - 2.0)).min(1.0);
        self.net_peak_bytes_per_sec
            - frac * (self.net_peak_bytes_per_sec - self.net_congested_bytes_per_sec)
    }

    /// Effective disk throughput (bytes/s) for `block_bytes`-sized
    /// accesses on one disk, including positioning.
    pub fn disk_effective_bytes_per_sec(&self, block_bytes: usize) -> f64 {
        let per_block_s =
            self.disk_seek_ns as f64 / 1e9 + block_bytes as f64 / self.disk_bytes_per_sec;
        block_bytes as f64 / per_block_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_disk_matches_measured_sustained_rate() {
        let p = HardwareProfile::paper_cluster();
        let eff = p.disk_effective_bytes_per_sec(8 << 20) / (1024.0 * 1024.0);
        assert!(
            (45.0..=55.0).contains(&eff),
            "8 MiB blocks must land near the paper's sustained ~50 MiB/s: {eff:.1}"
        );
    }

    #[test]
    fn graysort_back_of_envelope_matches_paper() {
        // Sanity-check the calibration against the paper's headline:
        // 10^14 bytes on 195 nodes in "slightly less than three hours"
        // (564 GB/min). Two passes = 4 × per-PE volume through 4 disks.
        let p = HardwareProfile::paper_cluster();
        let per_pe = 1e14 / 195.0;
        let secs = 4.0 * per_pe / 4.0 / p.disk_effective_bytes_per_sec(8 << 20);
        let hours = secs / 3600.0;
        assert!(
            (2.3..=3.0).contains(&hours),
            "GraySort estimate must be slightly under three hours: {hours:.2}"
        );
    }

    #[test]
    fn small_blocks_pay_seeks() {
        let p = HardwareProfile::paper_cluster();
        let eff_small = p.disk_effective_bytes_per_sec(2 << 20);
        let eff_big = p.disk_effective_bytes_per_sec(8 << 20);
        assert!(eff_small < eff_big, "2 MiB blocks are slower ({eff_small} vs {eff_big})");
    }

    #[test]
    fn bandwidth_degrades_with_cluster_size() {
        let p = HardwareProfile::paper_cluster();
        assert_eq!(p.net_bytes_per_sec(1), 1.3e9);
        assert_eq!(p.net_bytes_per_sec(2), 1.3e9);
        let b64 = p.net_bytes_per_sec(64);
        let b200 = p.net_bytes_per_sec(200);
        assert!(b64 < 1.3e9 && b64 > b200);
        assert_eq!(b200, 0.4e9);
        assert_eq!(p.net_bytes_per_sec(1000), 0.4e9, "saturates past the knee");
    }
}
