//! Phase 1: randomized, overlapped run formation (Sections IV, IV-E).
//!
//! `R = ⌈N/M⌉` *global* runs are formed. For each run, every PE
//! contributes `m = M/P` bytes of its local input, the run is sorted
//! across all PEs with the distributed internal sort
//! ([`crate::psort`]), and each PE writes its canonical slice of the
//! run back to *local* disk (no striping — this is what saves
//! communication over the Section III algorithm).
//!
//! * **Randomization** — "each PE chooses its participating blocks for
//!   the run randomly. This is implemented by randomly shuffling the
//!   IDs of the local input blocks in a preprocessing step." With
//!   similar per-run input distributions, most elements land on their
//!   final PE already during run formation (Appendix C analyzes how
//!   much data the all-to-all still has to move).
//! * **Sampling** — every `K`-th element of each written slice is kept
//!   as a sample to warm-start multiway selection (Section IV-A).
//! * **Overlapping** — "While run `i` is globally sorted internally, we
//!   first write the (already sorted) run `i−1` before fetching the
//!   data for run `i+1`." The async engine makes this real: writes of
//!   slice `i−1` and reads of run `i+1` are queued (in that order, so
//!   writes get disk priority) before the sort of run `i` starts.
//! * **Single-run special case** — if everything fits in memory
//!   (`R = 1`), each block is sorted immediately after it arrives while
//!   the disk fetches the rest, and the sorted blocks are merged at the
//!   end instead of sorting from scratch.
//! * **In-place** — input blocks are freed as they are read; slice
//!   writes reuse them.

use crate::merge::{merge_work, par_merge_k_into};
use crate::psort::{parallel_sort, parallel_sort_presorted};
use crate::recio::{records_per_block, FinishedRun, RecordRunWriter};
use crate::seqsort::sort_in_node;
use demsort_net::Communicator;
use demsort_storage::{PeStorage, Run};
use demsort_types::{CpuCounters, Record, Result, SortConfig};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

/// This PE's on-disk input: a run of `elems` records.
#[derive(Clone, Debug)]
pub struct LocalInput {
    /// Input blocks (record-aligned layout).
    pub run: Run,
    /// Number of records.
    pub elems: u64,
}

/// Result of run formation on one PE.
pub struct RunFormOutcome<R: Record> {
    /// This PE's sorted slice of each run (with samples and prediction
    /// keys).
    pub local: Vec<FinishedRun<R>>,
    /// CPU work done in this phase.
    pub cpu: CpuCounters,
}

/// Form all runs. Collective; returns this PE's slices.
pub fn form_runs<R: Record + Ord>(
    comm: &Communicator,
    st: &PeStorage,
    cfg: &SortConfig,
    input: LocalInput,
    cores: usize,
) -> Result<RunFormOutcome<R>> {
    let rpb = records_per_block::<R>(st.block_bytes());
    let full_blocks = (input.elems / rpb as u64) as usize;
    let tail_elems = (input.elems % rpb as u64) as usize;
    debug_assert_eq!(
        input.run.blocks.len(),
        full_blocks + usize::from(tail_elems > 0),
        "input run must be record-aligned"
    );

    // Randomized (or identity) assignment of local blocks to runs.
    let mut order: Vec<usize> = (0..full_blocks).collect();
    if cfg.algo.randomize {
        let mut rng =
            StdRng::seed_from_u64(cfg.algo.seed ^ (comm.rank() as u64).wrapping_mul(0x9E37_79B9));
        order.shuffle(&mut rng);
    }

    // Group into runs of `m/B` blocks; the partial tail block (if any)
    // joins the last group.
    let bpr = cfg.machine.mem_blocks_per_pe().max(1);
    let local_groups = full_blocks.div_ceil(bpr).max(usize::from(tail_elems > 0));
    let num_runs = comm.allreduce_max(local_groups as u64)?.max(1) as usize;

    let mut cpu_total = CpuCounters::default();
    let mut finished: Vec<FinishedRun<R>> = Vec::with_capacity(num_runs);
    // Slice of the previous run, not yet written (overlap mode defers
    // it so its writes can be queued ahead of the next run's reads).
    let mut to_write: Option<Vec<R>> = None;
    // Writer whose async writes are in flight under the current sort.
    let mut writing: Option<RecordRunWriter<'_, R>> = None;

    // Prefetch the first run's blocks.
    let mut pending = issue_group_reads(st, &input, &order, 0, bpr, rpb, full_blocks, tail_elems);

    for j in 0..num_runs {
        // Fetch + decode (or sort-on-arrival) run j's local data.
        let single_run = num_runs == 1 && cfg.algo.overlap;
        let (data, arrive_cpu) = collect_group::<R>(pending, single_run, cores)?;
        cpu_total = cpu_total.merge(&arrive_cpu);

        // The paper's overlap schedule: while run j is globally sorted,
        // "we first write the (already sorted) run j−1 before fetching
        // the data for run j+1" — queue slice j−1's writes, then run
        // j+1's reads (FIFO disk queues give the writes priority), and
        // only then start the sort, which overlaps both.
        if let Some(recs) = to_write.take() {
            let mut w = RecordRunWriter::with_window(st, cfg.algo.sample_every, recs.len());
            w.push_all(&recs)?;
            writing = Some(w);
        }
        pending = issue_group_reads(st, &input, &order, j + 1, bpr, rpb, full_blocks, tail_elems);

        // Globally sort run j (CPU + communication, overlapping disk).
        let (slice, sort_cpu) = if single_run {
            parallel_sort_presorted(comm, data, cores, CpuCounters::default())?
        } else {
            parallel_sort(comm, data, cores)?
        };
        cpu_total = cpu_total.merge(&sort_cpu);

        // Slice j−1's writes had the whole sort to retire; collect them.
        if let Some(w) = writing.take() {
            finished.push(w.finish()?);
        }

        if cfg.algo.overlap {
            to_write = Some(slice); // defer writing slice j to overlap run j+1
        } else {
            let mut w = RecordRunWriter::new(st, cfg.algo.sample_every);
            w.push_all(&slice)?;
            finished.push(w.finish()?);
            st.engine().drain()?;
        }
    }
    if let Some(recs) = to_write.take() {
        let mut w = RecordRunWriter::with_window(st, cfg.algo.sample_every, recs.len());
        w.push_all(&recs)?;
        finished.push(w.finish()?);
    }
    debug_assert!(pending.is_empty(), "no reads may remain after the last run");

    Ok(RunFormOutcome { local: finished, cpu: cpu_total })
}

/// One in-flight block read: handle plus the number of valid records.
type PendingBlock = (demsort_storage::IoHandle, usize);

/// Issue async reads (freeing blocks — in-place) for group `j`.
#[allow(clippy::too_many_arguments)]
fn issue_group_reads(
    st: &PeStorage,
    input: &LocalInput,
    order: &[usize],
    j: usize,
    bpr: usize,
    rpb: usize,
    full_blocks: usize,
    tail_elems: usize,
) -> Vec<PendingBlock> {
    let lo = (j * bpr).min(full_blocks);
    let hi = ((j + 1) * bpr).min(full_blocks);
    let mut pending = Vec::with_capacity(hi - lo + 1);
    for &b in &order[lo..hi] {
        let id = input.run.blocks[b];
        pending.push((st.engine().read(id), rpb));
        st.alloc().free(id); // block slot reusable once the read retires
    }
    // The partial tail block joins the last group that has room — i.e.
    // the group covering the final full blocks (or group 0 if none).
    let is_last_group = hi == full_blocks && (lo < hi || full_blocks == 0);
    if tail_elems > 0 && is_last_group && j * bpr <= full_blocks {
        let id = *input.run.blocks.last().expect("tail block exists");
        pending.push((st.engine().read(id), tail_elems));
        st.alloc().free(id);
    }
    pending
}

/// Wait for a group's blocks and decode them; in the single-run special
/// case, sort each block as it arrives and merge at the end.
fn collect_group<R: Record + Ord>(
    pending: Vec<PendingBlock>,
    sort_on_arrival: bool,
    cores: usize,
) -> Result<(Vec<R>, CpuCounters)> {
    let mut cpu = CpuCounters::default();
    if !sort_on_arrival {
        let mut data = Vec::new();
        for (h, valid) in pending {
            let buf = h.wait()?;
            R::decode_slice(&buf[..valid * R::BYTES], &mut data);
        }
        return Ok((data, cpu));
    }
    // Single-run case: each block is sorted the moment it arrives
    // ("immediately after a block is read from disk, it is sorted,
    // while the disk is busy with subsequent blocks").
    let mut sorted_blocks: Vec<Vec<R>> = Vec::with_capacity(pending.len());
    for (h, valid) in pending {
        let buf = h.wait()?;
        let mut recs = Vec::with_capacity(valid);
        R::decode_slice(&buf[..valid * R::BYTES], &mut recs);
        cpu = cpu.merge(&sort_in_node(&mut recs, cores));
        sorted_blocks.push(recs);
    }
    let views: Vec<&[R]> = sorted_blocks.iter().map(|b| b.as_slice()).collect();
    let total: usize = views.iter().map(|v| v.len()).sum();
    let mut data = Vec::with_capacity(total);
    let pm = par_merge_k_into(&views, cores, &mut data);
    cpu.elements_merged += total as u64;
    cpu.merge_work += merge_work(total as u64, views.len());
    cpu.split_probes += pm.split_probes;
    Ok((data, cpu))
}

/// Write a PE's input records to its local disks (experiment setup;
/// not part of the measured sort).
pub fn ingest_input<R: Record>(st: &PeStorage, recs: &[R]) -> Result<LocalInput> {
    let fr = crate::recio::write_records(st, recs)?;
    Ok(LocalInput { run: fr.run, elems: fr.elems })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ClusterStorage;
    use crate::recio::read_records;
    use demsort_net::run_cluster;
    use demsort_types::{AlgoConfig, Element16, MachineConfig};
    use demsort_workloads::{checksum_elements, generate_all, generate_pe_input, InputSpec};

    fn config(pes: usize, randomize: bool, overlap: bool) -> SortConfig {
        let machine = MachineConfig::tiny(pes);
        let algo = AlgoConfig { randomize, overlap, sample_every: 8, ..AlgoConfig::default() };
        SortConfig::new(machine, algo).expect("valid config")
    }

    /// Form runs on a cluster and return each PE's slices (decoded).
    fn run_form(
        spec: InputSpec,
        cfg: &SortConfig,
        local_n: usize,
    ) -> Vec<Vec<(Vec<Element16>, FinishedRun<Element16>)>> {
        let p = cfg.machine.pes;
        let storage = ClusterStorage::new_mem(&cfg.machine);
        let storage = &storage;
        let cfg2 = cfg.clone();
        run_cluster(p, move |c| {
            let st = storage.pe(c.rank());
            let recs = generate_pe_input(spec, 7, c.rank(), p, local_n);
            let input = ingest_input(st, &recs).expect("ingest");
            let out = form_runs::<Element16>(&c, st, &cfg2, input, 1).expect("form runs");
            out.local
                .into_iter()
                .map(|fr| {
                    let recs = read_records::<Element16>(st, &fr.run, fr.elems).expect("read");
                    (recs, fr)
                })
                .collect::<Vec<_>>()
        })
    }

    /// Each run must be globally sorted (slice i < slice i+1, each slice
    /// sorted) and the union of all runs a permutation of the input.
    fn check_runs(spec: InputSpec, cfg: &SortConfig, local_n: usize) {
        let p = cfg.machine.pes;
        let per_pe = run_form(spec, cfg, local_n);
        let num_runs = per_pe[0].len();
        assert!(per_pe.iter().all(|s| s.len() == num_runs), "same run count everywhere");

        let mut all: Vec<Element16> = Vec::new();
        for j in 0..num_runs {
            let mut run_concat: Vec<Element16> = Vec::new();
            for pe in per_pe.iter() {
                let (recs, _) = &pe[j];
                run_concat.extend_from_slice(recs);
            }
            assert!(
                run_concat.windows(2).all(|w| w[0].key <= w[1].key),
                "run {j} must be globally key-sorted ({spec:?})"
            );
            all.extend_from_slice(&run_concat);
        }
        let input = generate_all(spec, 7, p, local_n);
        assert_eq!(all.len(), input.len());
        assert_eq!(checksum_elements(&all), checksum_elements(&input), "permutation");
    }

    #[test]
    fn forms_sorted_runs_uniform() {
        // tiny(): 256-byte blocks, 16 elems/block, 16 blocks of memory
        // → runs of 256 elements per PE.
        let cfg = config(3, true, true);
        check_runs(InputSpec::Uniform, &cfg, 700); // ⌈700/256⌉ = 3 runs
    }

    #[test]
    fn forms_runs_without_randomization_or_overlap() {
        for (rand, ovl) in [(false, false), (false, true), (true, false)] {
            let cfg = config(2, rand, ovl);
            check_runs(InputSpec::Banded { block_elems: 16 }, &cfg, 600);
        }
    }

    #[test]
    fn single_run_fits_in_memory() {
        let cfg = config(2, true, true);
        check_runs(InputSpec::Uniform, &cfg, 200); // 200 < 256 → R = 1
    }

    #[test]
    fn ragged_input_with_partial_tail_block() {
        let cfg = config(2, true, true);
        check_runs(InputSpec::Uniform, &cfg, 300 + 7); // tail of 7 elems
    }

    #[test]
    fn empty_input() {
        let cfg = config(2, true, true);
        check_runs(InputSpec::Uniform, &cfg, 0);
    }

    #[test]
    fn slices_carry_samples_and_prediction_keys() {
        let cfg = config(2, true, true);
        let per_pe = run_form(InputSpec::Uniform, &cfg, 512);
        for slices in &per_pe {
            for (recs, fr) in slices {
                if recs.is_empty() {
                    continue;
                }
                assert!(!fr.samples.is_empty(), "samples collected");
                for s in &fr.samples {
                    assert_eq!(s.rec, recs[s.pos as usize], "sample matches slice");
                }
                assert_eq!(
                    fr.block_first_keys.len(),
                    fr.run.blocks.len(),
                    "one prediction key per block"
                );
            }
        }
    }

    #[test]
    fn in_place_operation_reuses_input_blocks() {
        // After run formation the input blocks must have been recycled:
        // allocator usage equals the written slices only.
        let cfg = config(2, true, true);
        let p = 2;
        let storage = ClusterStorage::new_mem(&cfg.machine);
        let storage = &storage;
        let cfg2 = cfg.clone();
        let high_waters = run_cluster(p, move |c| {
            let st = storage.pe(c.rank());
            let recs = generate_pe_input(InputSpec::Uniform, 3, c.rank(), p, 640);
            let input = ingest_input(st, &recs).expect("ingest");
            let blocks_input = st.alloc().in_use();
            form_runs::<Element16>(&c, st, &cfg2, input, 1).expect("form");
            (blocks_input, st.alloc().in_use(), st.alloc().high_water())
        });
        for (input_blocks, in_use, high) in high_waters {
            // Slices hold the same data volume as the input (±1 block
            // per run for partial tails).
            assert!(in_use <= input_blocks + 3, "in-place: {in_use} vs input {input_blocks}");
            // Peak usage stays well below 2× input (read-then-write
            // without recycling would need 2×).
            assert!(
                high <= input_blocks + input_blocks / 2 + 4,
                "high water {high} vs input {input_blocks}"
            );
        }
    }

    #[test]
    fn randomization_mixes_bands_within_runs() {
        // Banded worst case: without randomization, run j holds only
        // band j; with randomization, each run spans many bands.
        let cfg_rand = config(2, true, true);
        let cfg_det = config(2, false, true);
        let bands_of = |per_pe: Vec<Vec<(Vec<Element16>, FinishedRun<Element16>)>>| -> Vec<usize> {
            let num_runs = per_pe[0].len();
            (0..num_runs)
                .map(|j| {
                    let mut bands: Vec<u64> =
                        per_pe.iter().flat_map(|s| s[j].0.iter().map(|e| e.key >> 40)).collect();
                    bands.sort_unstable();
                    bands.dedup();
                    bands.len()
                })
                .collect()
        };
        let spec = InputSpec::Banded { block_elems: 16 };
        let det = bands_of(run_form(spec, &cfg_det, 1024));
        let rand = bands_of(run_form(spec, &cfg_rand, 1024));
        let det_max = det.iter().max().copied().unwrap_or(0);
        let rand_min = rand.iter().min().copied().unwrap_or(0);
        assert!(
            rand_min > det_max,
            "randomized runs must span more bands: det {det:?} vs rand {rand:?}"
        );
    }
}
