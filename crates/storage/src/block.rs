//! Block identifiers and buffers.
//!
//! The storage layer is byte-oriented: a *block* is a fixed-size byte
//! buffer (`B` bytes, [`MachineConfig::block_bytes`]), identified by a
//! [`BlockId`] naming a disk and a slot on that disk. This mirrors the
//! external-memory model of the paper (Table I) and STXXL's BID concept.
//!
//! [`MachineConfig::block_bytes`]: demsort_types::MachineConfig

/// Identifies one block: `(disk, slot)` within a single PE's local
/// storage. BlockIds are PE-local — remote blocks are never addressed
//  directly (all remote data moves through the communicator).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    /// Local disk index (`0..disks_per_pe`).
    pub disk: u32,
    /// Slot index on that disk (block-granular offset).
    pub slot: u32,
}

impl BlockId {
    /// Construct a block id.
    #[inline]
    pub const fn new(disk: u32, slot: u32) -> Self {
        Self { disk, slot }
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}:{}", self.disk, self.slot)
    }
}

/// Allocate a zeroed block buffer of `block_bytes`.
pub fn alloc_buf(block_bytes: usize) -> Box<[u8]> {
    vec![0u8; block_bytes].into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_display_and_order() {
        let a = BlockId::new(0, 5);
        let b = BlockId::new(1, 0);
        assert!(a < b);
        assert_eq!(a.to_string(), "d0:5");
    }

    #[test]
    fn buffers_are_zeroed() {
        let buf = alloc_buf(128);
        assert_eq!(buf.len(), 128);
        assert!(buf.iter().all(|&b| b == 0));
    }
}
