//! Phase 3: the final local multiway merge.
//!
//! "In the third phase, the data is merged locally. Each element is
//! read and written once, no communication is involved in this phase.
//! The internal computation amounts to `O(N/P · log R)`."
//!
//! Each run contributes one sorted stream (the concatenation of its
//! redistribution fragments, [`crate::alltoall::MergeInput`]); an
//! `R`-way loser tree merges the streams into the PE's final output
//! run. Input blocks are recycled the moment their last record has
//! been read ("blocks that are read to internal buffers are
//! deallocated from disk immediately, so there are always blocks
//! available for writing the output") — peak extra space is the
//! read-ahead plus write-behind windows.

use crate::alltoall::{MergeFragment, MergeInput};
use crate::merge::{merge_cpu, par_merge_k_below_into, par_merge_k_into, LoserTree};
use crate::recio::{ChainedReader, FinishedRun, RecordRunReader, RecordRunWriter};
use demsort_storage::PeStorage;
use demsort_types::{CpuCounters, Record, Result};

/// Merge the per-run fragment chains into the final output run, using
/// up to `cores` threads for the batch merges.
///
/// Returns the output run (with prediction keys, no samples) and the
/// CPU counters of the merge.
pub fn final_merge<R: Record + Ord>(
    st: &PeStorage,
    inputs: Vec<MergeInput>,
    cores: usize,
) -> Result<(FinishedRun<R>, CpuCounters)> {
    let mut writer = RecordRunWriter::<R>::new(st, 0);
    let (total, cpu) = merge_into::<R>(st, inputs, cores, |rec| writer.push(rec))?;
    let out = writer.finish()?;
    debug_assert_eq!(out.elems, total, "merge must preserve the element count");
    Ok((out, cpu))
}

/// Merge the fragment chains, delivering each record in sorted order to
/// `deliver` instead of writing a run — the pipelined-sorting hook
/// (Section VII: "the output is not written to disk but fed into a
/// postprocessor that requires its input in sorted order").
///
/// With `cores = 1` the merge streams record-at-a-time through a loser
/// tree; with more cores it buffers a few blocks per chain and merges
/// each batch with the in-node parallel merge (strictly below the
/// smallest unread key, like the striped batch merge), delivering the
/// same records in the same order either way.
pub fn merge_into<R: Record + Ord>(
    st: &PeStorage,
    inputs: Vec<MergeInput>,
    cores: usize,
    mut deliver: impl FnMut(R) -> Result<()>,
) -> Result<(u64, CpuCounters)> {
    let total: u64 = inputs.iter().map(MergeInput::elems).sum();
    let k = inputs.len();

    // One chained reader per run; fragments are consumed in order and
    // recycled as they drain.
    let mut chains: Vec<ChainedReader<'_, R>> = inputs
        .iter()
        .map(|mi| {
            let parts = mi
                .fragments
                .iter()
                .map(|f| match f {
                    MergeFragment::Received { run, elems } => {
                        RecordRunReader::<R>::with_range(st, run.clone(), *elems, 0, *elems, true)
                    }
                    MergeFragment::Retained { run, slice_elems, start, end } => {
                        RecordRunReader::<R>::with_range(
                            st,
                            run.clone(),
                            *slice_elems,
                            *start,
                            *end,
                            true,
                        )
                    }
                })
                .collect();
            ChainedReader::new(parts)
        })
        .collect();

    if cores <= 1 {
        let mut heads = Vec::with_capacity(k);
        for c in chains.iter_mut() {
            heads.push(c.next_rec()?);
        }
        let mut tree = LoserTree::new(heads);
        while let Some(w) = tree.winner() {
            let next = chains[w].next_rec()?;
            deliver(tree.replace_winner(next))?;
        }
        return Ok((total, merge_cpu(total, k)));
    }

    // Batched parallel path: keep a few blocks per chain buffered plus
    // one lookahead record, merge everything strictly below the
    // smallest lookahead key with the in-node parallel merge, repeat.
    // Ties with the threshold stay buffered until the threshold moves
    // past them (same carry rule as the striped batch merge), which
    // keeps the emitted order identical to the streaming tree's.
    let rpb = (st.block_bytes() / R::BYTES).max(1);
    let mut target = rpb * 4;
    let mut bufs: Vec<Vec<R>> = (0..k).map(|_| Vec::new()).collect();
    let mut ahead: Vec<Option<R>> = Vec::with_capacity(k);
    for c in chains.iter_mut() {
        ahead.push(c.next_rec()?);
    }
    let mut split_probes = 0u64;
    loop {
        for i in 0..k {
            while bufs[i].len() < target {
                match ahead[i].take() {
                    Some(r) => {
                        bufs[i].push(r);
                        ahead[i] = chains[i].next_rec()?;
                    }
                    None => break,
                }
            }
        }
        let threshold: Option<R::Key> = ahead.iter().flatten().map(Record::key).min();
        let views: Vec<&[R]> = bufs.iter().map(|b| b.as_slice()).collect();
        let mut emit: Vec<R> = Vec::new();
        let pm = match &threshold {
            Some(t) => par_merge_k_below_into(&views, |x| x.key() < *t, cores, &mut emit),
            None => par_merge_k_into(&views, cores, &mut emit),
        };
        drop(views);
        split_probes += pm.split_probes;
        for (buf, cut) in bufs.iter_mut().zip(pm.cuts) {
            // verify: allow(L2, Vec::drain removing the merged prefix — not the fallible IoEngine::drain)
            buf.drain(..cut);
        }
        let emitted = emit.len();
        for rec in emit.drain(..) {
            deliver(rec)?;
        }
        if threshold.is_none() {
            break;
        }
        // A run of threshold ties can fill every live buffer without
        // any record strictly below it; widen the window until the
        // tying chains drain and the threshold moves on.
        if emitted == 0 {
            target *= 2;
        }
    }

    let mut cpu = merge_cpu(total, k);
    cpu.split_probes = split_probes;
    Ok((total, cpu))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recio::write_records;
    use demsort_storage::{DiskModel, MemBackend, PeStorage};
    use demsort_types::Element16;
    use std::sync::Arc;

    fn storage(block: usize) -> PeStorage {
        PeStorage::with_backend(2, block, DiskModel::paper(), Arc::new(MemBackend::new(2)))
    }

    fn elems(range: std::ops::Range<u64>, stride: u64) -> Vec<Element16> {
        range.map(|i| Element16::new(i * stride, i)).collect()
    }

    #[test]
    fn merges_fragmented_runs() {
        let st = storage(64);
        // Run 0: two received fragments + a retained middle range.
        let f0a = write_records(&st, &elems(0..10, 3)).expect("write");
        let retained_store = write_records(&st, &elems(10..30, 3)).expect("write");
        let f0c = write_records(&st, &elems(30..40, 3)).expect("write");
        // Run 1: a single received fragment interleaving with run 0.
        let f1 = write_records(
            &st,
            &(0..40).map(|i| Element16::new(i * 3 + 1, 100 + i)).collect::<Vec<_>>(),
        )
        .expect("write");

        let inputs = vec![
            MergeInput {
                fragments: vec![
                    MergeFragment::Received { run: f0a.run, elems: f0a.elems },
                    MergeFragment::Retained {
                        run: retained_store.run,
                        slice_elems: retained_store.elems,
                        start: 0,
                        end: retained_store.elems,
                    },
                    MergeFragment::Received { run: f0c.run, elems: f0c.elems },
                ],
            },
            MergeInput {
                fragments: vec![MergeFragment::Received { run: f1.run, elems: f1.elems }],
            },
        ];
        let (out, cpu) = final_merge::<Element16>(&st, inputs, 1).expect("merge");
        assert_eq!(out.elems, 80);
        assert_eq!(cpu.elements_merged, 80);
        assert_eq!(cpu.merge_work, 80, "2-way merge: 1 comparison per element");
        let got = crate::recio::read_records::<Element16>(&st, &out.run, out.elems).expect("read");
        assert!(got.windows(2).all(|w| w[0] <= w[1]), "output sorted");
        let keys: Vec<u64> = got.iter().map(|e| e.key).collect();
        let mut expect: Vec<u64> =
            (0..40).map(|i| i * 3).chain((0..40).map(|i| i * 3 + 1)).collect();
        expect.sort_unstable();
        assert_eq!(keys, expect);
    }

    #[test]
    fn recycles_input_blocks_in_place() {
        let st = storage(64);
        let a = write_records(&st, &elems(0..64, 2)).expect("write");
        let b = write_records(&st, &elems(0..64, 3)).expect("write");
        let before = st.alloc().in_use();
        let inputs = vec![
            MergeInput { fragments: vec![MergeFragment::Received { run: a.run, elems: a.elems }] },
            MergeInput { fragments: vec![MergeFragment::Received { run: b.run, elems: b.elems }] },
        ];
        let (out, _) = final_merge::<Element16>(&st, inputs, 1).expect("merge");
        // Inputs freed, output allocated: net usage unchanged.
        assert_eq!(st.alloc().in_use(), before, "inputs recycled into output");
        // Peak stays within input + windows (not input + full output).
        assert!(
            st.alloc().high_water() < before + before / 2 + 8,
            "high water {} vs inputs {}",
            st.alloc().high_water(),
            before
        );
        assert_eq!(out.elems, 128);
    }

    #[test]
    fn empty_and_single_inputs() {
        let st = storage(64);
        let (out, _) = final_merge::<Element16>(&st, Vec::new(), 1).expect("merge");
        assert_eq!(out.elems, 0);

        let a = write_records(&st, &elems(0..5, 1)).expect("write");
        let inputs =
            vec![MergeInput { fragments: vec![MergeFragment::Received { run: a.run, elems: 5 }] }];
        let (out, _) = final_merge::<Element16>(&st, inputs, 1).expect("merge");
        assert_eq!(out.elems, 5);
        let got = crate::recio::read_records::<Element16>(&st, &out.run, 5).expect("read");
        assert_eq!(got, elems(0..5, 1));
    }

    #[test]
    fn parallel_merge_matches_streaming_merge() {
        // Small blocks force many refill rounds; heavy duplicates (key
        // mod 7) exercise the threshold-tie carry of the batched path.
        let run = |cores: usize| {
            let st = storage(64);
            let runs: Vec<_> = (0..3)
                .map(|r| {
                    let mut recs: Vec<Element16> = (0..500u64)
                        .map(|i| Element16::new((i * 3 + r) % 7, r * 1000 + i))
                        .collect();
                    recs.sort_unstable();
                    write_records(&st, &recs).expect("write")
                })
                .collect();
            let inputs: Vec<MergeInput> = runs
                .into_iter()
                .map(|f| MergeInput {
                    fragments: vec![MergeFragment::Received { run: f.run, elems: f.elems }],
                })
                .collect();
            let mut got = Vec::new();
            let (total, cpu) = merge_into::<Element16>(&st, inputs, cores, |rec| {
                got.push(rec);
                Ok(())
            })
            .expect("merge");
            assert_eq!(total, 1500);
            (got, cpu)
        };
        let (seq, seq_cpu) = run(1);
        let (par, par_cpu) = run(4);
        assert_eq!(par, seq, "parallel local merge must be byte-identical");
        assert_eq!(par_cpu.merge_work, seq_cpu.merge_work, "same n · ⌈log2 R⌉ charge");
        assert_eq!(seq_cpu.split_probes, 0, "streaming path never splits");
        assert_eq!(
            par_cpu.split_probes, 0,
            "batches this small sit below PAR_MERGE_MIN_PER_THREAD — the \
             parallel path must fall back to the sequential merge, probe-free"
        );
    }
}
