//! The multi-process cluster runtime: coordinator, launcher, worker.
//!
//! `demsort-launch` plays the role of `mpirun` on the paper's cluster:
//! it binds a coordinator port, spawns one `demsort-worker` process
//! per rank, rendezvouses them (each worker reports its mesh listener
//! address, the coordinator assigns ranks and broadcasts the address
//! table plus the [`JobConfig`]), and collects per-rank
//! [`RankReport`]s when the sort finishes. The workers build the full
//! `P × P` TCP mesh among themselves and run the *identical* SPMD code
//! path as the in-process cluster — same `canonical_mergesort`, same
//! collectives, same counters.
//!
//! ## Failure model
//!
//! Collectives are fallible end-to-end: a peer dying mid-sort surfaces
//! as `Error::Comm` from the sort on every surviving rank (within the
//! transport's read timeout — no hang, no abort). A worker whose sort
//! fails ships a **structured failed [`RankReport`]** (the `error`
//! field set) back over its coordinator connection instead of
//! unwinding; a SIGKILLed worker simply closes its connection. The
//! launcher classifies every rank into a [`RankOutcome`] — reported,
//! failed, or vanished — and its error names the dead rank(s) first,
//! so `demsort-launch` exits non-zero identifying exactly who died.
//!
//! ## Coordinator protocol
//!
//! Length-prefixed messages (`[len: u32 LE][tag: u8][body]`) over the
//! worker's coordinator connection:
//!
//! | tag | direction | body |
//! |---|---|---|
//! | `JOIN`     | worker → launcher | mesh listener address, worker pid |
//! | `ASSIGN`   | launcher → worker | rank, address table, job config |
//! | `REPORT`   | worker → launcher | [`RankReport`] (success *or* structured failure) |
//! | `PROGRESS` | worker → launcher | [`ProgressFrame`] (tracing runs only) |
//!
//! With tracing on ([`JobConfig::trace_dir`] non-empty), each worker
//! appends a JSONL event journal to `<trace_dir>/rank<K>.jsonl` and
//! streams coarse [`ProgressFrame`]s (phase, batch `b`/`of`, bytes
//! moved) over its coordinator connection, which the launcher renders
//! as live per-rank status lines while it polls for reports. Progress
//! rides the unmetered control socket, so the sort's communication
//! counters are untouched.
//!
//! Workers can alternatively rendezvous without a coordinator from a
//! host file (`demsort-worker --hostfile`), each binding its listed
//! address — the multi-host path, where the job config comes from
//! flags instead of the wire.

use demsort_core::canonical::canonical_mergesort;
use demsort_core::ctx::{
    assemble_report, BlockFetch, BlockStore, ClusterStorage, PendingBlock, PendingStore,
    RemoteBlockService,
};
use demsort_core::recio::read_records;
use demsort_core::runform::{ingest_input, LocalInput};
use demsort_core::striped::{striped_mergesort_resilient, ResilientHooks};
use demsort_net::tcp::{bind_loopback, TcpOptions, TcpTransport, WireFetch, WireStore};
use demsort_net::{Communicator, SubTransport, Transport as _};
use demsort_storage::{BlockId, DiskModel, MemBackend, PeStorage};
use demsort_types::wire::{
    decode_job, decode_progress, decode_rank_report, encode_job, encode_progress,
    encode_rank_report, RankReport, WireReader, WireWriter,
};
use demsort_types::{
    ranks, AlgoConfig, Error, JobConfig, MachineConfig, ProgressFrame, Record as _, Record100,
    Result, SortAlgo, SortConfig, SortReport, Tracer,
};
use std::io::{Read, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TAG_JOIN: u8 = 1;
const TAG_ASSIGN: u8 = 2;
const TAG_REPORT: u8 = 3;
const TAG_PROGRESS: u8 = 4;

/// Upper bound on a coordinator message (reports are tiny).
const MAX_CTRL_MSG: usize = 64 << 20;

fn write_msg(s: &mut TcpStream, tag: u8, body: &[u8]) -> Result<()> {
    let len = (body.len() + 1) as u32;
    s.write_all(&len.to_le_bytes())
        .and_then(|()| s.write_all(&[tag]))
        .and_then(|()| s.write_all(body))
        .and_then(|()| s.flush())
        .map_err(|e| Error::comm(format!("coordinator write: {e}")))
}

/// Read one `[len][tag][body]` control message, bounded by `deadline`
/// (the socket must carry a read timeout so blocked reads tick). The
/// framing itself lives in [`MsgProgress`] — the same state machine
/// the launcher's poll loop drives nonblockingly — so the two paths
/// cannot drift.
fn read_msg_deadline(s: &mut TcpStream, deadline: Instant) -> Result<(u8, Vec<u8>)> {
    let mut progress = MsgProgress::new();
    loop {
        match progress.pump(s) {
            Pump::Done(tag, body) => return Ok((tag, body)),
            Pump::Closed(msg) => return Err(Error::comm(msg)),
            Pump::Pending => {
                // Partial progress survives across read-timeout ticks,
                // so a tick can never corrupt message framing.
                if Instant::now() >= deadline {
                    return Err(Error::comm("timed out"));
                }
            }
        }
    }
}

// -------------------------------------------------------------------
// Worker
// -------------------------------------------------------------------

/// The remote half of a worker's cluster block service: batched reads
/// and writes of peers' blocks ride the transport's out-of-band block
/// channel ([`TcpTransport::fetch_blocks`] /
/// [`TcpTransport::store_blocks`] — pipelined requests, responses
/// matched by id). Public so tests can assemble single-rank
/// [`ClusterStorage`] views over a real TCP mesh.
pub struct TcpBlockService(pub TcpTransport);

/// One in-flight wire read adapted to the core block-service contract.
struct WirePending(WireFetch);

impl PendingBlock for WirePending {
    fn wait(self: Box<Self>) -> Result<Box<[u8]>> {
        self.0.wait().map(Vec::into_boxed_slice)
    }

    fn is_done(&self) -> bool {
        self.0.is_done()
    }
}

/// One in-flight wire write adapted to the core block-service
/// contract: the owner's acknowledgement carries the assigned address.
struct WirePendingStore(WireStore);

impl PendingStore for WirePendingStore {
    fn wait(self: Box<Self>) -> Result<BlockId> {
        self.0.wait().map(|(disk, slot)| BlockId::new(disk, slot))
    }

    fn is_done(&self) -> bool {
        self.0.is_done()
    }
}

impl RemoteBlockService for TcpBlockService {
    fn fetch_blocks(&self, pe: usize, ids: &[BlockId]) -> Result<Vec<BlockFetch>> {
        let addrs: Vec<(u32, u32)> = ids.iter().map(|id| (id.disk, id.slot)).collect();
        Ok(self
            .0
            .fetch_blocks(pe, &addrs)?
            .into_iter()
            .map(|f| BlockFetch::remote(Box::new(WirePending(f))))
            .collect())
    }

    fn store_blocks(&self, pe: usize, blocks: &[(u32, &[u8])]) -> Result<Vec<BlockStore>> {
        Ok(self
            .0
            .store_blocks(pe, blocks)?
            .into_iter()
            .map(|s| BlockStore::remote(Box::new(WirePendingStore(s))))
            .collect())
    }
}

/// Join a cluster through the coordinator at `coordinator`, run the
/// assigned rank's share of the job, and report back. The normal body
/// of `demsort-worker`.
///
/// Collectives are fallible, so a dead peer mid-sort comes back as a
/// plain `Err` from [`run_rank`] — no unwinding and no panic
/// translation: the error is shipped to the launcher as a structured
/// failed [`RankReport`] and also returned (so the worker process
/// exits non-zero).
pub fn run_worker(coordinator: &str) -> Result<RankReport> {
    let mut ctrl = TcpStream::connect(coordinator)
        .map_err(|e| Error::comm(format!("connect coordinator {coordinator}: {e}")))?;
    ctrl.set_read_timeout(Some(Duration::from_millis(250)))
        .map_err(|e| Error::comm(e.to_string()))?;
    let (listener, mesh_addr) = bind_loopback()?;

    let mut w = WireWriter::new();
    w.string(&mesh_addr.to_string());
    w.u32(std::process::id());
    write_msg(&mut ctrl, TAG_JOIN, &w.finish())?;

    // The rendezvous is quick (the launcher itself gives up after
    // 30 s); a wedged launcher must not hang the worker forever.
    let (tag, body) = read_msg_deadline(&mut ctrl, Instant::now() + Duration::from_secs(60))
        .map_err(|e| Error::comm(format!("waiting for rank assignment: {e}")))?;
    if tag != TAG_ASSIGN {
        return Err(Error::comm(format!("expected ASSIGN, got tag {tag}")));
    }
    let mut r = WireReader::new(&body);
    let rank = r.u32()? as usize;
    let p = r.u32()? as usize;
    let mut addrs = Vec::with_capacity(p);
    for _ in 0..p {
        let a = r.string()?;
        addrs.push(
            a.parse::<SocketAddr>()
                .map_err(|e| Error::comm(format!("bad mesh address {a}: {e}")))?,
        );
    }
    let job = decode_job(&r.bytes()?)?;

    // With tracing on, the journal goes to the shared trace directory
    // and coarse progress frames ride this control connection back to
    // the launcher. Progress is best-effort: a write error must not
    // fail the sort, so the callback swallows it.
    let tracer = if job.trace_dir.is_empty() {
        Tracer::off()
    } else {
        let dir = std::path::PathBuf::from(&job.trace_dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("create trace dir {}: {e}", job.trace_dir)))?;
        let t = Tracer::to_path(rank, &dir.join(format!("rank{rank}.jsonl")))?;
        match ctrl.try_clone() {
            Ok(stream) => {
                let stream = std::sync::Mutex::new(stream);
                t.with_progress(Box::new(move |f: &ProgressFrame| {
                    let mut s = stream.lock().expect("progress stream lock");
                    let _ = write_msg(&mut s, TAG_PROGRESS, &encode_progress(f));
                }))
            }
            Err(_) => t,
        }
    };

    // Run the rank. Errors (a dead peer surfacing as Error::Comm from
    // a collective, storage faults, bad input) come back as plain
    // Results — the panic-translating unwind shim is gone.
    match run_rank(rank, &addrs, listener, &job, tracer) {
        Ok(report) => {
            write_msg(&mut ctrl, TAG_REPORT, &encode_rank_report(&report))?;
            Ok(report)
        }
        Err(e) => {
            let failed = RankReport::failed(rank, e.to_string());
            let _ = write_msg(&mut ctrl, TAG_REPORT, &encode_rank_report(&failed));
            Err(e)
        }
    }
}

/// Run one rank of `job` over an established rendezvous: build the TCP
/// mesh, sort this rank's shard, write the canonical output slice.
/// Shared by the coordinator and hostfile bootstrap paths.
///
/// `tracer` is threaded through the transport, the block service and
/// the communicator so a traced run journals every layer under one
/// rank/clock; pass [`Tracer::off`] for an untraced run.
pub fn run_rank(
    rank: usize,
    addrs: &[SocketAddr],
    listener: TcpListener,
    job: &JobConfig,
    tracer: Tracer,
) -> Result<RankReport> {
    job.validate()?;
    let p = job.machine.pes;
    if addrs.len() != p {
        return Err(Error::config(format!(
            "address table has {} entries for {} ranks",
            addrs.len(),
            p
        )));
    }

    let opts = TcpOptions {
        read_timeout: Duration::from_millis(job.read_timeout_ms),
        ..TcpOptions::default()
    };
    let tcp = TcpTransport::connect_mesh(rank, addrs, listener, opts)?;
    tcp.set_tracer(tracer.clone());

    // One rank's storage: same in-memory multi-disk engine as the
    // in-process cluster, so counters are comparable run-for-run. The
    // block-buffer pool is shared with the transport so wire frames
    // recycle the same buffers the disk path uses.
    let pool = demsort_types::BufferPool::new(
        job.machine.block_bytes,
        job.algo.effective_pool_blocks(&job.machine),
    );
    tcp.set_buffer_pool(pool.clone());
    let st = PeStorage::with_backend_pool(
        job.machine.disks_per_pe,
        job.machine.block_bytes,
        DiskModel::paper(),
        Arc::new(MemBackend::new(job.machine.disks_per_pe)),
        pool,
    );
    let storage = ClusterStorage::single_traced(
        rank,
        p,
        st,
        Box::new(TcpBlockService(tcp.clone())),
        tracer.clone(),
    );

    // Serve peers' block-service reads (selection probes, striped
    // remote reads) and writes (run replication) out of this rank's
    // storage. The handler closures hold the storage, which holds the
    // transport, whose endpoint holds the handlers — a cycle only
    // clearing the handlers breaks, so guard it against every exit
    // path (errors included), or a failed job leaks the reader
    // threads, sockets, and storage for the process lifetime.
    struct HandlerGuard(TcpTransport);
    impl Drop for HandlerGuard {
        fn drop(&mut self) {
            self.0.clear_block_handler();
            self.0.clear_store_handler();
        }
    }
    let serve_storage = Arc::clone(&storage);
    tcp.set_block_handler(Arc::new(move |disk, slot| {
        serve_storage
            .pe(rank)
            .engine()
            .read_sync(BlockId::new(disk, slot))
            .map(|b| b.into_vec())
            .map_err(|e| e.to_string())
    }));
    // Stores allocate on the serving rank — its allocator stays the
    // authority for its disks; the requester only supplies a disk
    // hint (spread stores like the originals were spread).
    let store_storage = Arc::clone(&storage);
    tcp.set_store_handler(Arc::new(move |disk_hint, data| {
        let st = store_storage.pe(rank);
        let id = st.alloc().alloc_on(disk_hint as usize % st.disks());
        st.engine()
            .write_sync(id, data.to_vec().into_boxed_slice())
            .map(|()| (id.disk, id.slot))
            .map_err(|e| e.to_string())
    }));
    let _handler_guard = HandlerGuard(tcp.clone());

    // Load this rank's contiguous shard of the input.
    let meta =
        std::fs::metadata(&job.input).map_err(|e| Error::io(format!("stat {}: {e}", job.input)))?;
    if meta.len() % Record100::BYTES as u64 != 0 {
        return Err(Error::config(format!("input {} is not whole 100-byte records", job.input)));
    }
    let total_records = meta.len() / Record100::BYTES as u64;
    let shard = ranks::owned_range(rank, p, total_records);
    let mut f = std::fs::File::open(&job.input)
        .map_err(|e| Error::io(format!("open {}: {e}", job.input)))?;
    f.seek(SeekFrom::Start(shard.start * Record100::BYTES as u64))?;
    let mut bytes = vec![0u8; (shard.end - shard.start) as usize * Record100::BYTES];
    f.read_exact(&mut bytes)?;
    let mut recs = Vec::with_capacity((shard.end - shard.start) as usize);
    Record100::decode_slice(&bytes, &mut recs);
    drop(bytes);

    // The SPMD sort — identical code path to the in-process cluster.
    let mut comm = Communicator::new(Box::new(tcp.clone()));
    comm.set_tracer(tracer.clone());
    let cfg = SortConfig::new(job.machine.clone(), job.algo.clone())?;
    let input = ingest_input(storage.pe(rank), &recs)?;
    drop(recs);
    let report = match job.algorithm {
        SortAlgo::Canonical => {
            run_canonical_rank(rank, total_records, &comm, &storage, &cfg, input, job)?
        }
        SortAlgo::Striped => run_striped_rank(rank, &tcp, &comm, &storage, &cfg, input, job)?,
    };

    // Ranks must not tear the mesh down while a slower peer still
    // depends on it (remote reads are done, but the final phases
    // interleave); the handlers clear on return. After a degraded
    // striped completion a global barrier would wait on the dead rank
    // forever, so synchronize over the live group only.
    let dead = tcp.dead_peers();
    if dead.iter().any(|&d| d) {
        let members: Vec<usize> = (0..p).filter(|&r| !dead[r]).collect();
        let sub = SubTransport::new(tcp.clone(), members)?;
        Communicator::new(Box::new(sub)).barrier()?;
    } else {
        comm.barrier()?;
    }

    // The job is done: detach the tracer before teardown so the mesh
    // closing under the reader threads isn't journalled as a wave of
    // peer deaths, then flush what the rank actually recorded.
    tcp.set_tracer(Tracer::off());
    // verify: allow(L2, Tracer::flush is infallible and returns unit — journal write errors are swallowed by design)
    tracer.flush();
    Ok(report)
}

/// Open the shared output file for this rank's writes and size it to
/// the job's record count. Hostfile mode has no launcher to pre-size
/// the file, so every rank sizes it on open; the call is idempotent —
/// all ranks set the same length, `set_len` to the current length is a
/// no-op, and every rank's write range lies inside it, so no ordering
/// (and no barrier) between sizing and the disjoint-range writes is
/// needed. In coordinator mode the launcher has already pre-sized the
/// file and this is a no-op.
fn open_sized_output(path: &str, total_records: u64) -> Result<std::fs::File> {
    let out = std::fs::OpenOptions::new()
        .create(true)
        .truncate(false) // peers' already-written ranges must survive
        .write(true)
        .open(path)
        .map_err(|e| Error::io(format!("open {path}: {e}")))?;
    out.set_len(total_records * Record100::BYTES as u64)
        .map_err(|e| Error::io(format!("size {path}: {e}")))?;
    Ok(out)
}

/// The canonical-mergesort body of a rank: sort, then write this
/// rank's canonical slice into the shared output file — ranks own
/// disjoint contiguous byte ranges, so the file assembles in place.
#[allow(clippy::too_many_arguments)]
fn run_canonical_rank(
    rank: usize,
    total_records: u64,
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    input: LocalInput,
    job: &JobConfig,
) -> Result<RankReport> {
    let outcome =
        canonical_mergesort::<Record100>(comm, storage, cfg, input, job.machine.cores_per_pe)?;

    let out_recs =
        read_records::<Record100>(storage.pe(rank), &outcome.output.run, outcome.output.elems)?;
    let own = ranks::owned_range(rank, comm.size(), total_records);
    debug_assert_eq!(out_recs.len() as u64, own.end - own.start);
    let mut out = open_sized_output(&job.output, total_records)?;
    out.seek(SeekFrom::Start(own.start * Record100::BYTES as u64))?;
    let mut writer = std::io::BufWriter::new(&mut out);
    let mut buf = vec![0u8; Record100::BYTES];
    for rec in &out_recs {
        rec.encode(&mut buf);
        writer.write_all(&buf)?;
    }
    writer.flush()?;
    drop(writer);

    Ok(RankReport {
        rank,
        elems: outcome.output.elems,
        runs: outcome.runs,
        phases: outcome.phases,
        error: None,
    })
}

/// The striped-mergesort body of a rank: sort, then write the blocks
/// this rank owns of the globally striped output into the shared
/// output file. Block `g` starts at the record offset given by the
/// prefix sum of the directory's block counts (interior blocks of
/// stitched merge output can be partial), and the directory is global,
/// so ranks write disjoint ranges without further communication.
///
/// The sort runs with failure-recovery hooks wired to the transport:
/// with `--replication f` (f > 0), a rank dying mid-merge is detected
/// by the survivors' failure detector ([`TcpTransport`]'s reader
/// threads), the survivors cut stale traffic with an epoch marker,
/// regroup over a renumbered [`SubTransport`], re-route the dead
/// rank's blocks to their replicas, and finish the sort degraded.
///
/// Failure-injection harness (read at merge start, used by the
/// cluster tests): if `DEMSORT_MERGE_START_MARKER_DIR` is set, each
/// rank drops a `merge-start-<rank>` file there when its merge phase
/// begins (so a launcher can SIGKILL a specific rank at that exact
/// point); if `DEMSORT_MERGE_START_STALL_MS` is set, each rank then
/// stalls that long before merging (so the kill lands before any
/// survivor enters the merge).
fn run_striped_rank(
    rank: usize,
    tcp: &TcpTransport,
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    input: LocalInput,
    job: &JobConfig,
) -> Result<RankReport> {
    let marker_dir = std::env::var_os("DEMSORT_MERGE_START_MARKER_DIR");
    let stall_ms =
        std::env::var("DEMSORT_MERGE_START_STALL_MS").ok().and_then(|s| s.parse::<u64>().ok());
    let hooks = ResilientHooks {
        dead_set: Box::new(|| tcp.dead_peers()),
        subgroup: Box::new(move |members: &[usize]| {
            // Epoch cut: discard every frame the doomed attempt left
            // in flight, from every surviving member (self included —
            // the self-channel FIFO got a marker too), then renumber.
            tcp.advance_epoch(1)?;
            for &m in members {
                tcp.drain_to_epoch(m, 1)?;
            }
            let sub = SubTransport::new(tcp.clone(), members.to_vec())?;
            Ok(Communicator::new(Box::new(sub)))
        }),
        on_merge_start: Some(Box::new(move |r| {
            if let Some(dir) = &marker_dir {
                let _ = std::fs::write(
                    std::path::Path::new(dir).join(format!("merge-start-{r}")),
                    b"1",
                );
            }
            if let Some(ms) = stall_ms {
                std::thread::sleep(Duration::from_millis(ms));
            }
            true
        })),
    };
    let outcome = striped_mergesort_resilient::<Record100>(
        comm,
        storage,
        cfg,
        input,
        job.machine.cores_per_pe,
        None,
        Some(hooks),
    )?;

    let run = &outcome.output;
    let mut offsets = Vec::with_capacity(run.counts.len());
    let mut at = 0u64;
    for &c in &run.counts {
        offsets.push(at);
        at += c as u64;
    }
    let st = storage.pe(rank);
    let mut out = open_sized_output(&job.output, run.elems)?;
    let mut elems = 0u64;
    for (g, &id) in run.blocks.iter().enumerate() {
        if run.owners[g] as usize != rank {
            continue;
        }
        let data = st.engine().read_sync(id)?;
        let bytes = run.counts[g] as usize * Record100::BYTES;
        out.seek(SeekFrom::Start(offsets[g] * Record100::BYTES as u64))?;
        out.write_all(&data[..bytes])?;
        elems += run.counts[g] as u64;
    }
    drop(out);

    Ok(RankReport { rank, elems, runs: outcome.runs, phases: outcome.phases, error: None })
}

// -------------------------------------------------------------------
// Launcher
// -------------------------------------------------------------------

/// Result of a multi-process launch.
#[derive(Debug)]
pub struct LaunchOutcome {
    /// Aggregated per-rank, per-phase counters (same shape as the
    /// in-process [`sort_cluster`](demsort_core::canonical::sort_cluster)
    /// report).
    pub report: SortReport,
    /// The raw per-rank reports, in rank order.
    pub per_rank: Vec<RankReport>,
}

/// What became of one rank of a launch (indexed by rank).
#[derive(Debug)]
pub enum RankOutcome {
    /// The rank completed and reported counters.
    Report(RankReport),
    /// The rank reported a structured failure (e.g. `Error::Comm` after
    /// a peer died) and exited cleanly.
    Failed(String),
    /// The rank's coordinator connection closed or timed out before any
    /// report arrived — the process died (crash, SIGKILL, node loss).
    Vanished(String),
}

/// Exit with a usage error (shared by the CLI bins).
pub fn cli_die(bin: &str, msg: &str) -> ! {
    eprintln!("{bin}: {msg}");
    std::process::exit(2);
}

/// Parse a CLI flag value or exit with a usage error.
pub fn cli_parse<T: std::str::FromStr>(bin: &str, s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| cli_die(bin, &format!("invalid {what}: {s}")))
}

/// `true` if the two paths name the same existing file (same
/// device+inode on unix; path equality elsewhere or when either does
/// not exist yet).
fn same_file(a: &str, b: &str) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        if let (Ok(ma), Ok(mb)) = (std::fs::metadata(a), std::fs::metadata(b)) {
            return ma.dev() == mb.dev() && ma.ino() == mb.ino();
        }
    }
    a == b
}

/// Locate the `demsort-worker` binary next to the running executable.
pub fn sibling_worker_bin() -> Result<PathBuf> {
    let exe = std::env::current_exe().map_err(|e| Error::io(e.to_string()))?;
    let dir = exe.parent().ok_or_else(|| Error::io("executable has no parent dir"))?;
    let candidate = dir.join("demsort-worker");
    if candidate.exists() {
        return Ok(candidate);
    }
    Err(Error::config(format!(
        "demsort-worker not found next to {} — build it (cargo build -p demsort-bench) or pass \
         --worker-bin",
        exe.display()
    )))
}

/// Incremental framing state of one polled coordinator connection:
/// partial reads across poll rounds preserve message boundaries (a
/// `WouldBlock` mid-header can never corrupt the frame).
struct MsgProgress {
    /// Length prefix (4 bytes) + tag.
    head: [u8; 5],
    head_filled: usize,
    body: Vec<u8>,
    body_filled: usize,
}

/// One poll round's outcome for a connection.
enum Pump {
    /// No complete message yet; the connection is still live.
    Pending,
    /// A complete `(tag, body)` control message arrived.
    Done(u8, Vec<u8>),
    /// The connection is unusable (closed, garbage framing, error).
    Closed(String),
}

impl MsgProgress {
    fn new() -> Self {
        Self { head: [0u8; 5], head_filled: 0, body: Vec::new(), body_filled: 0 }
    }

    /// Drive the read as far as currently possible without blocking.
    fn pump(&mut self, s: &mut TcpStream) -> Pump {
        loop {
            let (buf, filled) = if self.head_filled < self.head.len() {
                (&mut self.head[..], &mut self.head_filled)
            } else if self.body_filled < self.body.len() {
                (&mut self.body[..], &mut self.body_filled)
            } else {
                return Pump::Done(self.head[4], std::mem::take(&mut self.body));
            };
            match s.read(&mut buf[*filled..]) {
                Ok(0) => return Pump::Closed("connection closed".to_string()),
                Ok(n) => {
                    *filled += n;
                    if self.head_filled == self.head.len() && self.body.is_empty() {
                        let len = u32::from_le_bytes(self.head[..4].try_into().expect("4 bytes"))
                            as usize;
                        if len == 0 || len > MAX_CTRL_MSG {
                            return Pump::Closed(format!("bad coordinator message length {len}"));
                        }
                        self.body = vec![0u8; len - 1];
                        self.body_filled = 0;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    return Pump::Pending;
                }
                Err(e) => return Pump::Closed(format!("coordinator read: {e}")),
            }
        }
    }
}

/// Classify one complete REPORT message from `rank`'s connection.
fn classify_report(rank: usize, body: &[u8]) -> RankOutcome {
    match decode_rank_report(body) {
        Ok(rep) if rep.rank != rank => {
            RankOutcome::Vanished(format!("rank {rank}'s connection reported rank {}", rep.rank))
        }
        Ok(rep) => match &rep.error {
            Some(msg) => RankOutcome::Failed(msg.clone()),
            None => RankOutcome::Report(rep),
        },
        Err(e) => RankOutcome::Vanished(format!("undecodable report: {e}")),
    }
}

/// A launched-but-not-yet-collected cluster job: the worker processes
/// are running the sort, ranks are assigned, the job config has been
/// shipped. Used directly by failure-injection tests (which kill a
/// worker mid-sort) and by [`launch`] (which immediately collects).
///
/// Dropping the control kills and reaps any children not yet reaped.
pub struct LaunchControl {
    children: Vec<std::process::Child>,
    conns: Vec<TcpStream>,
    /// OS pid per rank (reported in each worker's JOIN).
    pids: Vec<u32>,
    collect_deadline: Instant,
}

impl LaunchControl {
    /// The OS pid of the worker that holds `rank`.
    pub fn pid_of_rank(&self, rank: usize) -> u32 {
        self.pids[rank]
    }

    /// SIGKILL the worker holding `rank` (failure injection).
    pub fn kill_rank(&mut self, rank: usize) -> Result<()> {
        let pid = self.pids[rank];
        let child = self
            .children
            .iter_mut()
            .find(|c| c.id() == pid)
            .ok_or_else(|| Error::config(format!("no child process with pid {pid}")))?;
        child.kill().map_err(|e| Error::io(format!("kill rank {rank} (pid {pid}): {e}")))
    }

    /// Collect every rank's outcome: a report, a structured failure, or
    /// a vanished connection. All connections are **polled
    /// concurrently** — a slow rank never delays classifying the ranks
    /// that already reported (at cluster scale, waiting on connections
    /// one at a time would serialize the collection behind the slowest
    /// rank encountered first). Never fails as a whole and never hangs:
    /// the loop is bounded by the collect deadline (scaled from the
    /// job's comm timeout), and a dead worker's closed socket
    /// classifies immediately.
    pub fn collect_outcomes(&mut self) -> Vec<RankOutcome> {
        let deadline = self.collect_deadline;
        let n = self.conns.len();
        let mut outcomes: Vec<Option<RankOutcome>> = (0..n).map(|_| None).collect();
        let mut progress: Vec<MsgProgress> = (0..n).map(|_| MsgProgress::new()).collect();
        for c in &self.conns {
            // Poll nonblockingly; a connection that cannot switch
            // classifies through its first read error.
            let _ = c.set_nonblocking(true);
        }
        loop {
            let mut open = 0usize;
            for (rank, conn) in self.conns.iter_mut().enumerate() {
                if outcomes[rank].is_some() {
                    continue;
                }
                // Inner loop: several progress frames may be queued
                // ahead of the report; drain them all this round.
                loop {
                    match progress[rank].pump(conn) {
                        Pump::Pending => {
                            open += 1;
                            break;
                        }
                        Pump::Done(TAG_PROGRESS, body) => {
                            // Live status from a traced worker. Frames
                            // are cosmetic: a malformed one is dropped,
                            // never fatal.
                            if let Ok(f) = decode_progress(&body) {
                                print_progress(&f);
                            }
                            progress[rank] = MsgProgress::new();
                        }
                        Pump::Done(TAG_REPORT, body) => {
                            outcomes[rank] = Some(classify_report(rank, &body));
                            break;
                        }
                        Pump::Done(tag, _) => {
                            outcomes[rank] =
                                Some(RankOutcome::Vanished(format!("unexpected tag {tag}")));
                            break;
                        }
                        Pump::Closed(msg) => {
                            outcomes[rank] = Some(RankOutcome::Vanished(msg));
                            break;
                        }
                    }
                }
            }
            if open == 0 {
                break;
            }
            if Instant::now() >= deadline {
                for o in outcomes.iter_mut().filter(|o| o.is_none()) {
                    *o = Some(RankOutcome::Vanished("timed out".to_string()));
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        outcomes.into_iter().map(|o| o.expect("every rank classified")).collect()
    }

    /// Collect outcomes, reap the workers, and aggregate — the tail of
    /// [`launch`].
    pub fn finish(mut self, job: &JobConfig) -> Result<LaunchOutcome> {
        let outcomes = self.collect_outcomes();
        let all_ok = outcomes.iter().all(|o| matches!(o, RankOutcome::Report(_)));
        let mut child_failure = None;
        for (i, mut c) in self.children.drain(..).enumerate() {
            let status = if all_ok {
                c.wait().ok()
            } else {
                let _ = c.kill();
                c.wait().ok()
            };
            if let Some(st) = status {
                if !st.success() && child_failure.is_none() {
                    child_failure = Some(format!("worker process {i} exited with {st}"));
                }
            }
        }
        let outcome = summarize_outcomes(job, outcomes)?;
        if let Some(msg) = child_failure {
            return Err(Error::comm(msg));
        }
        Ok(outcome)
    }
}

/// Render one live worker progress frame on the launcher's stderr,
/// e.g. `[rank 2] final merge 3/12 (24.0 MiB moved)`. Stderr keeps the
/// machine-readable report on stdout clean.
fn print_progress(f: &ProgressFrame) {
    let mib = f.bytes as f64 / (1024.0 * 1024.0);
    eprintln!(
        "[rank {}] {} {}/{} ({mib:.1} MiB moved)",
        f.rank,
        f.phase.name(),
        f.batch,
        f.batches
    );
}

impl Drop for LaunchControl {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
            // verify: allow(L2, reaping an already-killed child in Drop — the exit status is meaningless here)
            let _ = c.wait();
        }
    }
}

/// Aggregate per-rank outcomes into a [`LaunchOutcome`], or an error
/// that **names the failed ranks** — vanished (dead) ranks first, then
/// ranks that reported structured failures.
pub fn summarize_outcomes(job: &JobConfig, outcomes: Vec<RankOutcome>) -> Result<LaunchOutcome> {
    let mut per_rank = Vec::with_capacity(outcomes.len());
    let mut vanished: Vec<String> = Vec::new();
    let mut failed: Vec<String> = Vec::new();
    for (rank, o) in outcomes.into_iter().enumerate() {
        match o {
            RankOutcome::Report(rep) => per_rank.push(rep),
            RankOutcome::Failed(msg) => failed.push(format!("rank {rank} failed: {msg}")),
            RankOutcome::Vanished(msg) => {
                vanished.push(format!("rank {rank} died without reporting ({msg})"));
            }
        }
    }
    if !vanished.is_empty() || !failed.is_empty() {
        let mut parts = vanished;
        parts.extend(failed);
        return Err(Error::comm(parts.join("; ")));
    }

    // Aggregate exactly like the in-process driver.
    let elements: u64 = per_rank.iter().map(|r| r.elems).sum();
    let runs = per_rank.first().map_or(0, |r| r.runs);
    let cfg = SortConfig::new(job.machine.clone(), job.algo.clone())?;
    let report = assemble_report(
        &cfg,
        elements,
        Record100::BYTES,
        runs,
        per_rank.iter().map(|r| r.phases.clone()).collect(),
    );
    Ok(LaunchOutcome { report, per_rank })
}

/// Spawn `job.machine.pes` local worker processes (running
/// `worker_bin`), rendezvous them over a loopback coordinator port,
/// ship the job, and return the running cluster for collection (or
/// failure injection).
pub fn launch_workers(job: &JobConfig, worker_bin: &std::path::Path) -> Result<LaunchControl> {
    launch_workers_env(job, worker_bin, &[])
}

/// [`launch_workers`] with extra environment variables set on every
/// worker process — the failure-injection tests use this to arm the
/// merge-start marker/stall harness (see [`run_rank`]'s striped path)
/// without mutating the test process's own environment.
pub fn launch_workers_env(
    job: &JobConfig,
    worker_bin: &std::path::Path,
    envs: &[(&str, String)],
) -> Result<LaunchControl> {
    job.validate()?;
    let p = job.machine.pes;

    // The output is truncated before the workers read the input, so
    // sorting a file onto itself would destroy the data silently —
    // reject it (the in-process driver tolerates in-place use only
    // because it creates the output after the sort).
    if same_file(&job.input, &job.output) {
        return Err(Error::config(format!(
            "output {} is the input file; TCP mode pre-sizes (truncates) the output before \
             the sort reads the input — pick a different output path",
            job.output
        )));
    }

    // Pre-size the output so workers can write disjoint ranges.
    let in_len = std::fs::metadata(&job.input)
        .map_err(|e| Error::io(format!("stat {}: {e}", job.input)))?
        .len();
    let out = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&job.output)
        .map_err(|e| Error::io(format!("create {}: {e}", job.output)))?;
    out.set_len(in_len).map_err(|e| Error::io(format!("size {}: {e}", job.output)))?;
    drop(out);

    let coordinator = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| Error::comm(format!("bind coordinator: {e}")))?;
    let coord_addr = coordinator.local_addr().map_err(|e| Error::comm(e.to_string()))?;
    coordinator.set_nonblocking(true).map_err(|e| Error::comm(e.to_string()))?;

    // Spawn all workers; children are killed and reaped by the
    // LaunchControl's Drop on any later failure, so none leak.
    let mut ctl = LaunchControl {
        children: Vec::with_capacity(p),
        conns: Vec::new(),
        pids: Vec::new(),
        // A dying worker closes its socket (read error, not a hang); a
        // wedged-but-alive worker is cut off by a deadline scaled from
        // the job's transport timeout — a legitimately long sort
        // should raise `read_timeout_ms` (it bounds both).
        collect_deadline: Instant::now()
            + Duration::from_millis(job.read_timeout_ms)
                .saturating_mul(20)
                .max(Duration::from_secs(300)),
    };
    for _ in 0..p {
        let child = std::process::Command::new(worker_bin)
            .arg("--coordinator")
            .arg(coord_addr.to_string())
            .envs(envs.iter().map(|(k, v)| (k, v)))
            .spawn()
            .map_err(|e| Error::io(format!("spawn {}: {e}", worker_bin.display())))?;
        ctl.children.push(child);
    }

    rendezvous(job, &coordinator, p, &mut ctl)?;
    Ok(ctl)
}

/// Spawn, rendezvous, sort, collect: the whole multi-process launch
/// (what `demsort-launch` and `sortfile --transport tcp` run).
///
/// # Errors
/// Besides setup failures, the launch fails with an [`Error::Comm`]
/// naming every rank that died without reporting and every rank that
/// reported a structured failure.
pub fn launch(job: &JobConfig, worker_bin: &std::path::Path) -> Result<LaunchOutcome> {
    launch_workers(job, worker_bin)?.finish(job)
}

/// Accept `p` JOINs, assign ranks in arrival order, and ship the job.
fn rendezvous(
    job: &JobConfig,
    coordinator: &TcpListener,
    p: usize,
    ctl: &mut LaunchControl,
) -> Result<()> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut mesh_addrs: Vec<String> = Vec::with_capacity(p);
    while ctl.conns.len() < p {
        match coordinator.accept() {
            Ok((mut stream, _)) => {
                // A connection that is not a prompt, well-formed JOIN
                // (e.g. a stray prober) is dropped; only the overall
                // deadline fails the rendezvous.
                let join = stream
                    .set_nonblocking(false)
                    .and_then(|()| stream.set_read_timeout(Some(Duration::from_millis(250))))
                    .map_err(|e| Error::comm(e.to_string()))
                    .and_then(|()| {
                        read_msg_deadline(&mut stream, Instant::now() + Duration::from_secs(5))
                    });
                match join {
                    Ok((TAG_JOIN, body)) => {
                        let mut r = WireReader::new(&body);
                        match (r.string(), r.u32()) {
                            (Ok(addr), Ok(pid)) => {
                                mesh_addrs.push(addr);
                                ctl.pids.push(pid);
                                ctl.conns.push(stream);
                            }
                            _ => continue, // garbage JOIN body: drop it too
                        }
                    }
                    Ok(_) | Err(_) => continue,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(Error::comm(format!(
                        "only {} of {p} workers joined within 30s",
                        ctl.conns.len()
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(Error::comm(format!("coordinator accept: {e}"))),
        }
    }

    let encoded_job = encode_job(job);
    for (rank, conn) in ctl.conns.iter_mut().enumerate() {
        let mut w = WireWriter::new();
        w.u32(rank as u32).u32(p as u32);
        for a in &mesh_addrs {
            w.string(a);
        }
        w.bytes(&encoded_job);
        write_msg(conn, TAG_ASSIGN, &w.finish())?;
    }
    Ok(())
}

// -------------------------------------------------------------------
// Shared CLI glue of the TCP job-building bins
// -------------------------------------------------------------------

/// The job-building flags shared by `demsort-launch` and
/// `sortfile --transport tcp` (hoisted here so the two bins cannot
/// drift): cluster shape, seed, comm timeout, worker binary.
#[derive(Clone, Debug)]
pub struct TcpJobCli {
    /// Number of worker processes / PEs (`--ranks` / `--pes`).
    pub ranks: usize,
    /// Memory per PE in MiB (`--mem-mib`).
    pub mem_mib: usize,
    /// Block size in KiB (`--block-kib`).
    pub block_kib: usize,
    /// Disks per PE (`--disks`).
    pub disks: usize,
    /// Algorithm seed (`--seed`), default config seed if unset.
    pub seed: Option<u64>,
    /// Comm read timeout in milliseconds (`--comm-timeout`, legacy
    /// alias `--timeout-ms`): how long a rank waits on a silent peer
    /// before declaring it dead ([`JobConfig::read_timeout_ms`]).
    pub comm_timeout_ms: u64,
    /// Which sorting algorithm the job runs (`--algo
    /// canonical|striped`).
    pub algorithm: SortAlgo,
    /// Run-replication factor (`--replication`, striped only): how
    /// many buddy-rank copies of every formed run block are stored,
    /// i.e. how many rank deaths the merge phase can survive.
    pub replication: usize,
    /// Intra-rank merge/sort threads (`--cores`). Defaults to the
    /// host's parallelism split evenly across the local ranks.
    pub cores: Option<usize>,
    /// Block-buffer pool capacity in blocks (`--pool-blocks`): how many
    /// recycled block buffers each rank's data plane keeps. `0` (the
    /// default) derives the capacity from the memory budget
    /// ([`MachineConfig::mem_blocks_per_pe`]); explicit values below
    /// the prefetch+carry minimum are rejected at job validation.
    pub pool_blocks: usize,
    /// Explicit worker binary path (`--worker-bin`).
    pub worker_bin: Option<String>,
    /// Trace directory (`--trace DIR`): when set, every rank appends a
    /// JSONL event journal `rank<K>.jsonl` under it and streams live
    /// progress frames to the launcher. Empty/`None` disables tracing.
    pub trace_dir: Option<String>,
}

impl Default for TcpJobCli {
    fn default() -> Self {
        Self {
            ranks: 4,
            mem_mib: 8,
            block_kib: 64,
            disks: 4,
            seed: None,
            comm_timeout_ms: 30_000,
            algorithm: SortAlgo::Canonical,
            replication: 0,
            cores: None,
            pool_blocks: 0,
            worker_bin: None,
            trace_dir: None,
        }
    }
}

impl TcpJobCli {
    /// Help text for the shared flags (one line per flag).
    pub const FLAG_HELP: &'static str =
        "  --ranks P         worker processes / PEs (default 4; alias --pes)\n  \
         --mem-mib M       memory per PE in MiB (default 8)\n  \
         --block-kib K     block size in KiB (default 64)\n  \
         --disks D         disks per PE (default 4)\n  \
         --seed S          algorithm seed\n  \
         --comm-timeout MS comm read timeout in ms (default 30000; alias --timeout-ms)\n  \
         --algo A          sorting algorithm: canonical (default) or striped\n  \
         --replication F   store F buddy-rank replicas of every run block (striped only; \
         default 0)\n  \
         --cores C         merge/sort threads per rank (default: host parallelism / local \
         ranks)\n  \
         --pool-blocks N   block-buffer pool capacity per rank in blocks (default: derived \
         from --mem-mib)\n  \
         --worker-bin PATH explicit demsort-worker binary\n  \
         --trace DIR       write per-rank JSONL event journals under DIR and stream live \
         progress";

    /// Consume `flag` if it is one of the shared job flags (pulling its
    /// value from `args`); returns `false` for flags the bin must
    /// handle itself.
    pub fn try_flag(
        &mut self,
        bin: &str,
        flag: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> bool {
        let mut next =
            |flag: &str| args.next().unwrap_or_else(|| cli_die(bin, &format!("{flag} VALUE")));
        match flag {
            "--ranks" | "--pes" => self.ranks = cli_parse(bin, &next(flag), "ranks"),
            "--mem-mib" => self.mem_mib = cli_parse(bin, &next(flag), "mem-mib"),
            "--block-kib" => self.block_kib = cli_parse(bin, &next(flag), "block-kib"),
            "--disks" => self.disks = cli_parse(bin, &next(flag), "disks"),
            "--seed" => self.seed = Some(cli_parse(bin, &next(flag), "seed")),
            "--comm-timeout" | "--timeout-ms" => {
                self.comm_timeout_ms = cli_parse(bin, &next(flag), "comm-timeout")
            }
            "--algo" => {
                self.algorithm =
                    SortAlgo::parse(&next(flag)).unwrap_or_else(|e| cli_die(bin, &e.to_string()))
            }
            "--replication" => self.replication = cli_parse(bin, &next(flag), "replication"),
            "--cores" => self.cores = Some(cli_parse(bin, &next(flag), "cores")),
            "--pool-blocks" => self.pool_blocks = cli_parse(bin, &next(flag), "pool-blocks"),
            "--worker-bin" => self.worker_bin = Some(next(flag)),
            "--trace" => self.trace_dir = Some(next(flag)),
            _ => return false,
        }
        true
    }

    /// The cluster shape these flags describe (cores split the host's
    /// parallelism across the ranks).
    pub fn machine(&self) -> MachineConfig {
        MachineConfig {
            pes: self.ranks,
            disks_per_pe: self.disks,
            block_bytes: self.block_kib << 10,
            mem_bytes_per_pe: self.mem_mib << 20,
            cores_per_pe: self
                .cores
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, |c| c.get() / self.ranks.max(1))
                })
                .max(1),
        }
    }

    /// Assemble the [`JobConfig`] for `input` → `output`.
    pub fn job(&self, input: &str, output: &str) -> JobConfig {
        let mut algo = AlgoConfig::default();
        if let Some(s) = self.seed {
            algo.seed = s;
        }
        algo.replication = self.replication;
        algo.pool_blocks = self.pool_blocks;
        JobConfig {
            input: input.to_string(),
            output: output.to_string(),
            machine: self.machine(),
            algo,
            algorithm: self.algorithm,
            read_timeout_ms: self.comm_timeout_ms,
            trace_dir: self.trace_dir.clone().unwrap_or_default(),
        }
    }

    /// Resolve the worker binary: the explicit `--worker-bin` path or
    /// the `demsort-worker` sibling of the running executable.
    pub fn worker(&self, bin: &str) -> PathBuf {
        match &self.worker_bin {
            Some(p) => PathBuf::from(p),
            None => sibling_worker_bin().unwrap_or_else(|e| cli_die(bin, &e.to_string())),
        }
    }
}

/// Launch `job` with `worker`, print the per-rank and summary lines,
/// and exit — non-zero (naming the failed rank) on any failure. The
/// shared tail of `demsort-launch` and `sortfile --transport tcp`.
pub fn launch_and_report(bin: &str, job: &JobConfig, worker: &std::path::Path) -> ! {
    eprintln!(
        "launching {} worker processes ({} each) via {}",
        job.machine.pes,
        demsort_types::fmtsize::fmt_bytes(job.machine.mem_bytes_per_pe as u64),
        worker.display()
    );
    match launch(job, worker) {
        Ok(outcome) => {
            for rep in &outcome.per_rank {
                eprintln!("  rank {}: {} records, {} runs", rep.rank, rep.elems, rep.runs);
            }
            eprintln!(
                "done: {} records on {} ranks, {} runs, I/O volume {:.2} N, \
                 communication {:.2} N",
                outcome.report.elements,
                job.machine.pes,
                outcome.report.runs,
                outcome.report.io_volume_over_n(),
                outcome.report.comm_volume_over_n(),
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{bin}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctrl_messages_roundtrip_over_a_socketpair() {
        let deadline = || Instant::now() + Duration::from_secs(5);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            s.set_read_timeout(Some(Duration::from_millis(50))).expect("timeout");
            let (tag, body) = read_msg_deadline(&mut s, deadline()).expect("read");
            write_msg(&mut s, tag + 1, &body).expect("write");
        });
        let mut c = TcpStream::connect(addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_millis(50))).expect("timeout");
        write_msg(&mut c, TAG_JOIN, b"hello").expect("write");
        let (tag, body) = read_msg_deadline(&mut c, deadline()).expect("read");
        assert_eq!(tag, TAG_JOIN + 1);
        assert_eq!(body, b"hello");
        t.join().expect("echo thread");
        // A silent peer times out instead of hanging.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _silent = TcpStream::connect(addr).expect("connect");
        let (mut s, _) = listener.accept().expect("accept");
        s.set_read_timeout(Some(Duration::from_millis(20))).expect("timeout");
        let err = read_msg_deadline(&mut s, Instant::now() + Duration::from_millis(100))
            .expect_err("silence");
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn poll_collection_classifies_when_rank_zero_reports_last() {
        // Four synthetic "workers": ranks 1 and 3 report immediately,
        // rank 2 dies without reporting, and rank 0 reports LAST —
        // split across two writes with a pause in between, so the poll
        // loop must carry partial framing across rounds. The
        // collection must classify every rank correctly and finish
        // about when rank 0's report lands, not at any per-connection
        // deadline.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let n = 4;
        let mut worker_ends = Vec::with_capacity(n);
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            worker_ends.push(TcpStream::connect(addr).expect("connect"));
            conns.push(listener.accept().expect("accept").0);
        }
        let mut ctl = LaunchControl {
            children: Vec::new(),
            conns,
            pids: vec![0; n],
            collect_deadline: Instant::now() + Duration::from_secs(30),
        };

        let report = |rank: usize| RankReport {
            rank,
            elems: 10 + rank as u64,
            runs: 2,
            phases: Vec::new(),
            error: None,
        };
        let rank0 = worker_ends.remove(0);
        let feeder = std::thread::spawn(move || {
            let mut rank0 = rank0;
            for (i, mut c) in worker_ends.into_iter().enumerate() {
                let rank = i + 1;
                if rank == 2 {
                    drop(c); // vanishes without a report
                    continue;
                }
                write_msg(&mut c, TAG_REPORT, &encode_rank_report(&report(rank)))
                    .expect("fast rank report");
                // Keep the connection open past collection.
                std::mem::forget(c);
            }
            // Rank 0 reports last, in two fragments.
            std::thread::sleep(Duration::from_millis(200));
            let body = encode_rank_report(&report(0));
            let mut msg = ((body.len() + 1) as u32).to_le_bytes().to_vec();
            msg.push(TAG_REPORT);
            msg.extend_from_slice(&body);
            let split = 7; // mid-header of the framed message body
            rank0.write_all(&msg[..split]).expect("first fragment");
            rank0.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(100));
            rank0.write_all(&msg[split..]).expect("second fragment");
            std::mem::forget(rank0);
        });

        let started = Instant::now();
        let outcomes = ctl.collect_outcomes();
        let elapsed = started.elapsed();
        feeder.join().expect("feeder");

        assert!(matches!(&outcomes[0], RankOutcome::Report(r) if r.elems == 10), "{outcomes:?}");
        assert!(matches!(&outcomes[1], RankOutcome::Report(r) if r.elems == 11), "{outcomes:?}");
        assert!(matches!(&outcomes[2], RankOutcome::Vanished(_)), "{outcomes:?}");
        assert!(matches!(&outcomes[3], RankOutcome::Report(r) if r.elems == 13), "{outcomes:?}");
        assert!(
            elapsed < Duration::from_secs(10),
            "collection must finish when the last report lands, took {elapsed:?}"
        );
    }

    #[test]
    fn launch_rejects_in_place_output_before_truncating() {
        let path = std::env::temp_dir().join(format!("demsort-inplace-{}.dat", std::process::id()));
        std::fs::write(&path, vec![1u8; 200]).expect("write input");
        let p = path.to_string_lossy().into_owned();
        let job = JobConfig {
            input: p.clone(),
            output: p,
            machine: demsort_types::MachineConfig::tiny(2),
            algo: demsort_types::AlgoConfig::default(),
            algorithm: SortAlgo::default(),
            read_timeout_ms: 1000,
            trace_dir: String::new(),
        };
        // Rejected before any worker spawns (the bogus worker path is
        // never exercised) and before the output truncate.
        let err =
            launch(&job, std::path::Path::new("/nonexistent-worker")).expect_err("in-place output");
        assert!(err.to_string().contains("output"), "{err}");
        assert_eq!(std::fs::metadata(&path).expect("stat").len(), 200, "input untouched");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_rank_rejects_mismatched_address_table() {
        let (listener, _) = bind_loopback().expect("bind");
        let job = JobConfig {
            input: "/nonexistent".into(),
            output: "/nonexistent".into(),
            machine: demsort_types::MachineConfig::tiny(3),
            algo: demsort_types::AlgoConfig::default(),
            algorithm: SortAlgo::default(),
            read_timeout_ms: 1000,
            trace_dir: String::new(),
        };
        let err = run_rank(0, &[], listener, &job, Tracer::off()).expect_err("empty address table");
        assert!(err.to_string().contains("address table"), "{err}");
    }

    #[test]
    fn summarize_names_dead_ranks_before_survivor_failures() {
        let job = JobConfig {
            input: "in".into(),
            output: "out".into(),
            machine: demsort_types::MachineConfig::tiny(3),
            algo: demsort_types::AlgoConfig::default(),
            algorithm: SortAlgo::default(),
            read_timeout_ms: 1000,
            trace_dir: String::new(),
        };
        let outcomes = vec![
            RankOutcome::Failed("communication error: recv from rank 1: timed out".into()),
            RankOutcome::Vanished("connection closed".into()),
            RankOutcome::Failed("communication error: recv from rank 1: peer disconnected".into()),
        ];
        let err = summarize_outcomes(&job, outcomes).expect_err("failed job");
        let msg = err.to_string();
        let died = msg.find("rank 1 died").expect("dead rank named");
        let survivor = msg.find("rank 0 failed").expect("survivor failure named");
        assert!(died < survivor, "dead rank leads the message: {msg}");
        assert!(msg.contains("rank 2 failed"), "{msg}");
    }

    #[test]
    fn shared_cli_flags_build_the_job() {
        let mut cli = TcpJobCli::default();
        let mut args = [
            "--ranks",
            "3",
            "--mem-mib",
            "2",
            "--block-kib",
            "32",
            "--disks",
            "2",
            "--seed",
            "9",
            "--comm-timeout",
            "1500",
            "--algo",
            "striped",
            "--replication",
            "1",
            "--cores",
            "2",
            "--pool-blocks",
            "12",
        ]
        .iter()
        .map(|s| s.to_string());
        while let Some(flag) = args.next() {
            assert!(cli.try_flag("test", &flag, &mut args), "{flag} must be shared");
        }
        assert!(!cli.try_flag("test", "--transport", &mut std::iter::empty()));
        let job = cli.job("a.dat", "b.dat");
        assert_eq!(job.machine.pes, 3);
        assert_eq!(job.machine.mem_bytes_per_pe, 2 << 20);
        assert_eq!(job.machine.block_bytes, 32 << 10);
        assert_eq!(job.machine.disks_per_pe, 2);
        assert_eq!(job.algo.seed, 9);
        assert_eq!(job.read_timeout_ms, 1500);
        assert_eq!(job.algorithm, SortAlgo::Striped);
        assert_eq!(job.algo.replication, 1);
        assert_eq!(job.machine.cores_per_pe, 2, "--cores overrides the derived default");
        assert_eq!(job.algo.pool_blocks, 12, "--pool-blocks reaches the algo config");
        assert_eq!(job.algo.effective_pool_blocks(&job.machine), 12);
        // Without --cores the default splits the host over the ranks.
        let derived = TcpJobCli { ranks: 3, ..TcpJobCli::default() }.machine().cores_per_pe;
        let host = std::thread::available_parallelism().map_or(1, |c| c.get());
        assert_eq!(derived, (host / 3).max(1));
        // The legacy alias still works.
        let mut args = ["--timeout-ms", "2500"].iter().map(|s| s.to_string());
        let flag = args.next().expect("flag");
        assert!(cli.try_flag("test", &flag, &mut args));
        assert_eq!(cli.job("a", "b").read_timeout_ms, 2500);
    }
}
