//! Fixed-size sortable records.
//!
//! The storage layer moves raw bytes (like a real disk); algorithms work
//! on typed records. [`Record`] bridges the two with cheap bulk
//! encode/decode. Two concrete record types cover the paper's
//! experiments:
//!
//! * [`Element16`] — 16-byte element with a 64-bit key, used in the
//!   scalability experiments (Figures 2–6): "The element size is (only)
//!   16 bytes with 64-bit keys."
//! * [`Record100`] — the SortBenchmark record: 100 bytes, 10-byte key,
//!   used for the GraySort/MinuteSort runs (Section VI).

/// A totally ordered, fixed-size sort key.
///
/// `MIN_KEY`/`MAX_KEY` act as sentinels for loser trees and for the
/// conceptual "fill up with ∞" padding in multiway selection
/// (Section IV-A of the paper).
pub trait Key: Copy + Ord + Send + Sync + std::fmt::Debug + 'static {
    /// Smallest possible key (−∞ sentinel).
    const MIN_KEY: Self;
    /// Largest possible key (+∞ sentinel).
    const MAX_KEY: Self;

    /// A monotone 64-bit summary of the key: `a <= b` implies
    /// `a.prefix64() <= b.prefix64()`. Used for histograms, band
    /// generation, and diagnostics — never for ordering decisions.
    fn prefix64(&self) -> u64;
}

impl Key for u64 {
    const MIN_KEY: Self = 0;
    const MAX_KEY: Self = u64::MAX;

    #[inline]
    fn prefix64(&self) -> u64 {
        *self
    }
}

impl Key for u32 {
    const MIN_KEY: Self = 0;
    const MAX_KEY: Self = u32::MAX;

    #[inline]
    fn prefix64(&self) -> u64 {
        (*self as u64) << 32
    }
}

/// The SortBenchmark 10-byte key, ordered lexicographically.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Key10(pub [u8; 10]);

impl Key for Key10 {
    const MIN_KEY: Self = Key10([0u8; 10]);
    const MAX_KEY: Self = Key10([0xFF; 10]);

    #[inline]
    fn prefix64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8-byte prefix"))
    }
}

impl std::fmt::Debug for Key10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key10(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

/// A fixed-size record that can be sorted by its [`Key`] and moved
/// through the byte-oriented storage and network layers.
///
/// Implementations must guarantee `encode` writes exactly
/// [`Record::BYTES`] bytes and `decode(encode(r)) == r`.
pub trait Record: Copy + Send + Sync + 'static {
    /// The sort key type.
    type Key: Key;

    /// Serialized size in bytes.
    const BYTES: usize;

    /// Extract the sort key.
    fn key(&self) -> Self::Key;

    /// Serialize into `out` (`out.len() == Self::BYTES`).
    fn encode(&self, out: &mut [u8]);

    /// Deserialize from `buf` (`buf.len() == Self::BYTES`).
    fn decode(buf: &[u8]) -> Self;

    /// A record carrying the given key (payload unspecified but
    /// deterministic). Used by tests and splitter exchange.
    fn with_key(key: Self::Key) -> Self;

    /// Bulk-serialize `recs` into `out`
    /// (`out.len() >= recs.len() * Self::BYTES`).
    fn encode_slice(recs: &[Self], out: &mut [u8]) {
        assert!(out.len() >= recs.len() * Self::BYTES, "output buffer too small");
        for (r, chunk) in recs.iter().zip(out.chunks_exact_mut(Self::BYTES)) {
            r.encode(chunk);
        }
    }

    /// Bulk-deserialize `buf` (a whole number of records), appending to
    /// `out`.
    fn decode_slice(buf: &[u8], out: &mut Vec<Self>) {
        debug_assert_eq!(buf.len() % Self::BYTES, 0, "partial record in buffer");
        out.reserve(buf.len() / Self::BYTES);
        for chunk in buf.chunks_exact(Self::BYTES) {
            out.push(Self::decode(chunk));
        }
    }
}

/// The paper's 16-byte element: 64-bit key plus 64-bit payload.
///
/// "The element size is (only) 16 bytes with 64-bit keys. This makes
/// internal computation efficiency as important as high I/O throughput."
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct Element16 {
    /// 64-bit sort key.
    pub key: u64,
    /// Opaque payload; carries provenance in tests (e.g. original index)
    /// so permutation checks can detect duplication or loss.
    pub payload: u64,
}

// The slab codecs below cast &[Element16] to bytes: the struct must
// stay exactly two packed u64s.
const _: () = assert!(std::mem::size_of::<Element16>() == 16);

impl Element16 {
    /// Construct from key and payload.
    #[inline]
    pub const fn new(key: u64, payload: u64) -> Self {
        Self { key, payload }
    }
}

impl PartialOrd for Element16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order by key, tie-broken by payload so tests can demand a
/// unique sorted sequence.
impl Ord for Element16 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.payload).cmp(&(other.key, other.payload))
    }
}

impl Record for Element16 {
    type Key = u64;
    const BYTES: usize = 16;

    #[inline]
    fn key(&self) -> u64 {
        self.key
    }

    #[inline]
    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..16].copy_from_slice(&self.payload.to_le_bytes());
    }

    #[inline]
    fn decode(buf: &[u8]) -> Self {
        Self {
            key: u64::from_le_bytes(buf[..8].try_into().expect("8 bytes")),
            payload: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        }
    }

    #[inline]
    fn with_key(key: u64) -> Self {
        Self { key, payload: 0 }
    }

    /// Block-at-a-time path: on little-endian targets the in-memory
    /// layout (`repr(C)`, two packed LE `u64`s) equals the wire format,
    /// so the whole slab is one memcpy.
    fn encode_slice(recs: &[Self], out: &mut [u8]) {
        assert!(out.len() >= recs.len() * Self::BYTES, "output buffer too small");
        if cfg!(target_endian = "little") {
            let bytes = recs.len() * Self::BYTES;
            // SAFETY: Element16 is repr(C) with two u64 fields and no
            // padding (size asserted at compile time); on little-endian
            // its bytes are exactly the wire encoding.
            let src = unsafe { std::slice::from_raw_parts(recs.as_ptr().cast::<u8>(), bytes) };
            out[..bytes].copy_from_slice(src);
        } else {
            for (r, chunk) in recs.iter().zip(out.chunks_exact_mut(Self::BYTES)) {
                r.encode(chunk);
            }
        }
    }

    /// Block-at-a-time path: one memcpy into the vector's spare
    /// capacity on little-endian targets (every bit pattern is a valid
    /// `Element16`).
    fn decode_slice(buf: &[u8], out: &mut Vec<Self>) {
        debug_assert_eq!(buf.len() % Self::BYTES, 0, "partial record in buffer");
        let n = buf.len() / Self::BYTES;
        if cfg!(target_endian = "little") {
            out.reserve(n);
            let len = out.len();
            // SAFETY: same layout argument as encode_slice; the
            // destination is freshly reserved, fully written before
            // set_len, and any u128 bit pattern is a valid Element16.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    buf.as_ptr(),
                    out.as_mut_ptr().add(len).cast::<u8>(),
                    n * Self::BYTES,
                );
                out.set_len(len + n);
            }
        } else {
            out.reserve(n);
            for chunk in buf.chunks_exact(Self::BYTES) {
                out.push(Self::decode(chunk));
            }
        }
    }
}

/// SortBenchmark record: 10-byte key, 90-byte payload, 100 bytes total
/// ("This setting considers 100-byte elements with a 10-byte key").
#[derive(Copy, Clone)]
#[repr(C)]
pub struct Record100 {
    /// The 10-byte lexicographic key.
    pub key: Key10,
    /// The remaining 90 bytes of the record.
    pub payload: [u8; 90],
}

// The slab codecs below cast &[Record100] to bytes: key and payload
// must stay contiguous with no padding.
const _: () = assert!(std::mem::size_of::<Record100>() == 100);
const _: () = assert!(std::mem::align_of::<Record100>() == 1);

impl Record100 {
    /// Construct from key and payload.
    #[inline]
    pub const fn new(key: Key10, payload: [u8; 90]) -> Self {
        Self { key, payload }
    }
}

impl std::fmt::Debug for Record100 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Record100").field("key", &self.key).finish_non_exhaustive()
    }
}

impl PartialEq for Record100 {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.payload[..] == other.payload[..]
    }
}

impl Eq for Record100 {}

impl PartialOrd for Record100 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Ordered by key, then payload (total order for stable validation).
impl Ord for Record100 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then_with(|| self.payload.cmp(&other.payload))
    }
}

impl Record for Record100 {
    type Key = Key10;
    const BYTES: usize = 100;

    #[inline]
    fn key(&self) -> Key10 {
        self.key
    }

    #[inline]
    fn encode(&self, out: &mut [u8]) {
        out[..10].copy_from_slice(&self.key.0);
        out[10..100].copy_from_slice(&self.payload);
    }

    #[inline]
    fn decode(buf: &[u8]) -> Self {
        let mut key = [0u8; 10];
        key.copy_from_slice(&buf[..10]);
        let mut payload = [0u8; 90];
        payload.copy_from_slice(&buf[10..100]);
        Self { key: Key10(key), payload }
    }

    #[inline]
    fn with_key(key: Key10) -> Self {
        Self { key, payload: [0u8; 90] }
    }

    /// Block-at-a-time path: the record is 100 contiguous bytes
    /// (`repr(C)`, align 1) in wire order on every target, so the slab
    /// is one endian-independent memcpy.
    fn encode_slice(recs: &[Self], out: &mut [u8]) {
        assert!(out.len() >= recs.len() * Self::BYTES, "output buffer too small");
        let bytes = recs.len() * Self::BYTES;
        // SAFETY: Record100 is repr(C) of [u8; 10] + [u8; 90] with no
        // padding (size and alignment asserted at compile time).
        let src = unsafe { std::slice::from_raw_parts(recs.as_ptr().cast::<u8>(), bytes) };
        out[..bytes].copy_from_slice(src);
    }

    /// Block-at-a-time path: one memcpy into the vector's spare
    /// capacity (every byte pattern is a valid `Record100`).
    fn decode_slice(buf: &[u8], out: &mut Vec<Self>) {
        debug_assert_eq!(buf.len() % Self::BYTES, 0, "partial record in buffer");
        let n = buf.len() / Self::BYTES;
        out.reserve(n);
        let len = out.len();
        // SAFETY: same layout argument as encode_slice; the destination
        // is freshly reserved and fully written before set_len.
        unsafe {
            std::ptr::copy_nonoverlapping(
                buf.as_ptr(),
                out.as_mut_ptr().add(len).cast::<u8>(),
                n * Self::BYTES,
            );
            out.set_len(len + n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element16_roundtrip() {
        let e = Element16::new(0xDEAD_BEEF_1234_5678, 42);
        let mut buf = [0u8; 16];
        e.encode(&mut buf);
        assert_eq!(Element16::decode(&buf), e);
    }

    #[test]
    fn element16_order_is_by_key_then_payload() {
        let a = Element16::new(1, 9);
        let b = Element16::new(2, 0);
        let c = Element16::new(2, 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn record100_roundtrip() {
        let mut payload = [0u8; 90];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = i as u8;
        }
        let r = Record100::new(Key10(*b"ABCDEFGHIJ"), payload);
        let mut buf = [0u8; 100];
        r.encode(&mut buf);
        assert_eq!(Record100::decode(&buf), r);
    }

    #[test]
    fn key10_lexicographic_order() {
        let a = Key10(*b"AAAAAAAAA\x00");
        let b = Key10(*b"AAAAAAAAA\x01");
        let c = Key10(*b"B\x00\x00\x00\x00\x00\x00\x00\x00\x00");
        assert!(a < b && b < c);
        assert!(Key10::MIN_KEY <= a && c <= Key10::MAX_KEY);
    }

    #[test]
    fn key_prefix_is_monotone_on_samples() {
        let keys = [0u64, 1, 255, 1 << 20, u64::MAX / 2, u64::MAX];
        for w in keys.windows(2) {
            assert!(w[0].prefix64() <= w[1].prefix64());
        }
        let k10s = [Key10([0; 10]), Key10(*b"ABCDEFGHIJ"), Key10([0xFF; 10])];
        for w in k10s.windows(2) {
            assert!(w[0].prefix64() <= w[1].prefix64());
        }
    }

    #[test]
    fn bulk_encode_decode_roundtrip() {
        let recs: Vec<Element16> = (0..100).map(|i| Element16::new(i * 3, i)).collect();
        let mut buf = vec![0u8; recs.len() * Element16::BYTES];
        Element16::encode_slice(&recs, &mut buf);
        let mut out = Vec::new();
        Element16::decode_slice(&buf, &mut out);
        assert_eq!(recs, out);
    }

    #[test]
    fn with_key_carries_key() {
        assert_eq!(Element16::with_key(7).key(), 7);
        assert_eq!(Record100::with_key(Key10([3; 10])).key(), Key10([3; 10]));
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn bulk_encode_checks_capacity() {
        let recs = [Element16::new(1, 2); 4];
        let mut buf = vec![0u8; 3 * Element16::BYTES];
        Element16::encode_slice(&recs, &mut buf);
    }

    /// The per-record reference paths the slab codecs must match.
    fn encode_each<R: Record>(recs: &[R]) -> Vec<u8> {
        let mut out = vec![0u8; recs.len() * R::BYTES];
        for (r, chunk) in recs.iter().zip(out.chunks_exact_mut(R::BYTES)) {
            r.encode(chunk);
        }
        out
    }

    fn decode_each<R: Record>(buf: &[u8]) -> Vec<R> {
        buf.chunks_exact(R::BYTES).map(R::decode).collect()
    }

    use proptest::prelude::*;

    proptest! {
        /// Slab encode/decode ≡ per-record encode/decode for the
        /// 16-byte element, at every length (including the 0- and
        /// partial-tail-block sizes recio produces) and with slack in
        /// the output buffer (a zero-padded tail block).
        #[test]
        fn element16_slab_matches_per_record(
            raw in prop::collection::vec(0u64..=u64::MAX, 0..200),
            slack in 0usize..48,
        ) {
            let recs: Vec<Element16> =
                raw.into_iter().map(|k| Element16::new(k, k.wrapping_mul(0x9E37_79B9))).collect();
            let reference = encode_each(&recs);
            let mut slab = vec![0u8; reference.len() + slack];
            Element16::encode_slice(&recs, &mut slab);
            prop_assert_eq!(&slab[..reference.len()], &reference[..]);
            prop_assert!(slab[reference.len()..].iter().all(|&b| b == 0));
            // Decode appends after existing elements.
            let mut out = vec![Element16::new(7, 7)];
            Element16::decode_slice(&reference, &mut out);
            prop_assert_eq!(out[0], Element16::new(7, 7));
            prop_assert_eq!(&out[1..], &recs[..]);
            prop_assert_eq!(decode_each::<Element16>(&reference), recs);
        }

        /// Same equivalence for the 100-byte SortBenchmark record.
        #[test]
        fn record100_slab_matches_per_record(
            raw in prop::collection::vec(0u64..=u64::MAX, 0..40),
            slack in 0usize..100,
        ) {
            // Expand each seed into a full 100-byte record so every
            // byte position (key and payload) varies across cases.
            let recs: Vec<Record100> = raw
                .iter()
                .map(|&seed| {
                    let mut bytes = [0u8; 100];
                    for (i, b) in bytes.iter_mut().enumerate() {
                        *b = (seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(i as u64)
                            >> 24) as u8;
                    }
                    Record100::decode(&bytes)
                })
                .collect();
            let reference = encode_each(&recs);
            let mut slab = vec![0u8; reference.len() + slack];
            Record100::encode_slice(&recs, &mut slab);
            prop_assert_eq!(&slab[..reference.len()], &reference[..]);
            let mut out = Vec::new();
            Record100::decode_slice(&reference, &mut out);
            prop_assert_eq!(&out[..], &recs[..]);
            prop_assert_eq!(decode_each::<Record100>(&reference), recs);
        }
    }
}
