//! Findings, the analysis report, and its machine-readable forms.
//!
//! Emission goes through [`demsort_types::json`] — the same escape-
//! correct emitter the trace journals and benchmark JSON use — so the
//! CI artifact parses back exactly.

use demsort_types::json::Json;

/// How a finding affects the exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (exit 1).
    Deny,
    /// Reported and counted, never fails the run. Used for the
    /// `.expect(` inventory (repo policy reserves `.expect` for
    /// process-local invariants no peer can trigger) and for stale
    /// escape hatches.
    Warn,
}

/// One lint hit at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Lint id (`"L1"` … `"L5"`).
    pub lint: &'static str,
    /// Deny or warn.
    pub severity: Severity,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable diagnostic.
    pub message: String,
}

/// A finding that an escape hatch suppressed; kept in the report so
/// every intentional exception stays visible with its reason.
#[derive(Clone, Debug)]
pub struct AllowedFinding {
    /// The suppressed finding.
    pub finding: Finding,
    /// The hatch's justification.
    pub reason: String,
}

/// One `unsafe` occurrence for the unsafe-inventory artifact.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the `unsafe` token.
    pub line: u32,
    /// `"block"`, `"fn"`, `"impl"`, `"trait"`, or `"other"`.
    pub kind: &'static str,
    /// Enclosing named function, if any.
    pub func: Option<String>,
    /// True if a `SAFETY:` comment covers the site.
    pub documented: bool,
    /// True if the site is inside test-scoped code.
    pub in_test: bool,
}

/// Everything one analysis run produced.
#[derive(Default)]
pub struct Report {
    /// Active findings (deny and warn), in file/line order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by escape hatches.
    pub allowed: Vec<AllowedFinding>,
    /// Every `unsafe` site seen (documented or not).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of deny-severity findings (non-zero fails the run).
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Deny).count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn).count()
    }

    /// The full machine-readable report.
    pub fn to_json(&self) -> Json {
        let finding_fields = |f: &Finding| {
            vec![
                ("lint".to_string(), Json::str(f.lint)),
                (
                    "severity".to_string(),
                    Json::str(match f.severity {
                        Severity::Deny => "deny",
                        Severity::Warn => "warn",
                    }),
                ),
                ("file".to_string(), Json::str(f.file.clone())),
                ("line".to_string(), Json::Uint(u64::from(f.line))),
                ("message".to_string(), Json::str(f.message.clone())),
            ]
        };
        Json::Obj(vec![
            ("version".into(), Json::Uint(1)),
            ("files_scanned".into(), Json::Uint(self.files_scanned as u64)),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("deny".into(), Json::Uint(self.deny_count() as u64)),
                    ("warn".into(), Json::Uint(self.warn_count() as u64)),
                    ("allowed".into(), Json::Uint(self.allowed.len() as u64)),
                    ("unsafe_sites".into(), Json::Uint(self.unsafe_sites.len() as u64)),
                ]),
            ),
            (
                "findings".into(),
                Json::Arr(self.findings.iter().map(|f| Json::Obj(finding_fields(f))).collect()),
            ),
            (
                "allowed".into(),
                Json::Arr(
                    self.allowed
                        .iter()
                        .map(|a| {
                            let mut o = finding_fields(&a.finding);
                            o.push(("reason".into(), Json::str(a.reason.clone())));
                            Json::Obj(o)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The unsafe-inventory artifact: every `unsafe` site with its
    /// documentation status.
    pub fn unsafe_inventory_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Uint(1)),
            ("sites".into(), Json::Uint(self.unsafe_sites.len() as u64)),
            (
                "unsafe".into(),
                Json::Arr(
                    self.unsafe_sites
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("file".into(), Json::str(s.file.clone())),
                                ("line".into(), Json::Uint(u64::from(s.line))),
                                ("kind".into(), Json::str(s.kind)),
                                ("fn".into(), s.func.clone().map_or(Json::Null, Json::str)),
                                ("documented".into(), Json::Bool(s.documented)),
                                ("in_test".into(), Json::Bool(s.in_test)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Render human-readable diagnostics: all deny findings, then warn
    /// findings when `warnings` is set, then a one-line summary.
    pub fn render_text(&self, warnings: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.severity == Severity::Deny {
                out.push_str(&format!("{}:{}: {}: {}\n", f.file, f.line, f.lint, f.message));
            }
        }
        if warnings {
            for f in &self.findings {
                if f.severity == Severity::Warn {
                    out.push_str(&format!(
                        "{}:{}: {} (warn): {}\n",
                        f.file, f.line, f.lint, f.message
                    ));
                }
            }
        }
        out.push_str(&format!(
            "demsort-verify: {} files, {} deny, {} warn, {} allowed, {} unsafe sites\n",
            self.files_scanned,
            self.deny_count(),
            self.warn_count(),
            self.allowed.len(),
            self.unsafe_sites.len(),
        ));
        out
    }
}
