//! Per-PE execution context: storage for every PE, phase accounting.
//!
//! A PE owns its communicator endpoint and *operates on* its own
//! storage; peers' storage is reachable read-only through the
//! **location-transparent block service** of [`ClusterStorage`] — the
//! remote probes of external multiway selection (Section IV-A: "they
//! have to request data from remote disks") and the cross-rank block
//! reads of the globally striped algorithm (Section III). In a real
//! deployment those reads are one-block RDMA gets / MPI request-reply
//! pairs. The in-process cluster holds every PE's storage in one
//! [`ClusterStorage`], so a fetch reads the owner's storage engine
//! directly; the multi-process runtime gives each worker a single-rank
//! view ([`ClusterStorage::single`]) whose remote fetches go through a
//! [`RemoteBlockService`] (the TCP transport's out-of-band block
//! channel). Either way the I/O lands on the owning PE's disks
//! (exactly where the paper's bottleneck analysis puts it), fetches
//! are asynchronous [`BlockFetch`] handles mirroring the storage
//! engine's `IoHandle` (so callers overlap remote reads with
//! computation), and the transferred bytes are charged to the
//! requester as communication.

use demsort_storage::{Backend, BlockId, DiskModel, IoHandle, MemBackend, PeStorage};
use demsort_types::trace::TraceEv;
use demsort_types::{
    CommCounters, CpuCounters, Error, IoCounters, MachineConfig, Phase, PhaseStats, Result,
    SortConfig, SortReport, Tracer,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A pending remote block read: the block service's counterpart of the
/// storage engine's `IoHandle`, implemented by the transport (the TCP
/// backend wraps its wire-level future in this).
pub trait PendingBlock: Send {
    /// Block until the response arrives; returns the block bytes.
    fn wait(self: Box<Self>) -> Result<Box<[u8]>>;

    /// `true` once the response has arrived (success or failure).
    fn is_done(&self) -> bool;
}

/// A pending remote block *store*: resolves to the [`BlockId`] the
/// serving rank's allocator assigned to the copy.
pub trait PendingStore: Send {
    /// Block until the serving rank acknowledges the store.
    fn wait(self: Box<Self>) -> Result<BlockId>;

    /// `true` once the acknowledgement has arrived (success or
    /// failure).
    fn is_done(&self) -> bool;
}

/// Issues asynchronous batched reads of blocks owned by a remote PE
/// (multi-process mode: implemented over the transport's block-service
/// channel). Requests are pipelined — all go out before any is waited
/// on — and responses may complete in any order.
pub trait RemoteBlockService: Send + Sync {
    /// Issue reads of `ids` owned by rank `pe`; handles are returned
    /// in request order.
    fn fetch_blocks(&self, pe: usize, ids: &[BlockId]) -> Result<Vec<BlockFetch>>;

    /// Issue stores of `(disk_hint, data)` blocks into rank `pe`'s
    /// storage; handles are returned in request order and resolve to
    /// the address `pe`'s allocator assigned. The default — for
    /// read-only services predating run replication — refuses.
    fn store_blocks(&self, pe: usize, blocks: &[(u32, &[u8])]) -> Result<Vec<BlockStore>> {
        let _ = blocks;
        Err(Error::io(format!(
            "rank {pe}: this block service is read-only (no remote store support)"
        )))
    }
}

enum FetchState {
    /// Served by a local engine (the owner's disk pays the I/O).
    Local(IoHandle),
    /// In flight on the wire.
    Remote(Box<dyn PendingBlock>),
}

/// One pending block read through [`ClusterStorage::fetch_blocks`],
/// local or remote — poll with [`BlockFetch::is_done`], resolve with
/// [`BlockFetch::wait`].
#[must_use = "a BlockFetch must be waited on, or the read is abandoned"]
pub struct BlockFetch(FetchState);

impl BlockFetch {
    /// A fetch served by a local storage engine.
    pub fn local(handle: IoHandle) -> Self {
        Self(FetchState::Local(handle))
    }

    /// A fetch in flight on a transport.
    pub fn remote(pending: Box<dyn PendingBlock>) -> Self {
        Self(FetchState::Remote(pending))
    }

    /// An already-completed fetch (cache hits, tests).
    pub fn ready(data: Box<[u8]>) -> Self {
        Self(FetchState::Local(IoHandle::ready(data)))
    }

    /// Block until the read completes; returns the block bytes.
    pub fn wait(self) -> Result<Box<[u8]>> {
        match self.0 {
            FetchState::Local(h) => h.wait(),
            FetchState::Remote(p) => p.wait(),
        }
    }

    /// `true` once the read has completed (success or failure).
    pub fn is_done(&self) -> bool {
        match &self.0 {
            FetchState::Local(h) => h.is_done(),
            FetchState::Remote(p) => p.is_done(),
        }
    }
}

enum StoreState {
    /// Written through a local engine: the address is already
    /// assigned, the engine write is (possibly) still in flight.
    Local(BlockId, IoHandle),
    /// In flight on the wire; the serving rank assigns the address.
    Remote(Box<dyn PendingStore>),
}

/// One pending block store through [`ClusterStorage::store_blocks`],
/// local or remote — the write-side counterpart of [`BlockFetch`].
/// Resolves to the [`BlockId`] the owning rank's allocator assigned.
#[must_use = "a BlockStore must be waited on, or the write outcome is unknown"]
pub struct BlockStore(StoreState);

impl BlockStore {
    /// A store served by a local storage engine (address `id` already
    /// assigned; `handle` is the engine write).
    pub fn local(id: BlockId, handle: IoHandle) -> Self {
        Self(StoreState::Local(id, handle))
    }

    /// A store in flight on a transport.
    pub fn remote(pending: Box<dyn PendingStore>) -> Self {
        Self(StoreState::Remote(pending))
    }

    /// Block until the write is durable at the owner; returns the
    /// assigned address.
    pub fn wait(self) -> Result<BlockId> {
        match self.0 {
            StoreState::Local(id, h) => h.wait().map(|_| id),
            StoreState::Remote(p) => p.wait(),
        }
    }

    /// `true` once the write has completed (success or failure).
    pub fn is_done(&self) -> bool {
        match &self.0 {
            StoreState::Local(_, h) => h.is_done(),
            StoreState::Remote(p) => p.is_done(),
        }
    }
}

/// Which path a [`ClusterStorage::store_blocks`] write took,
/// classified by *ownership* (`owner != my_rank` is remote), not by
/// deployment shape — in the in-process cluster a buddy's storage
/// happens to share the address space, but the bytes still count as
/// communication, exactly like [`FetchSource`] on the read side.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StoreTarget {
    /// The caller's own disks.
    LocalDisk,
    /// Another PE's disks (communication charged to the caller).
    RemoteDisk,
}

/// The storage view of one participant in the cluster.
///
/// * In-process cluster: every PE's storage, shared between PE
///   threads (`base_rank = 0`, all ranks local).
/// * Multi-process cluster: one worker's own storage plus a remote
///   block service for reading peers' blocks.
pub struct ClusterStorage {
    /// Cluster size (`P`), which may exceed `pes.len()` in single-rank
    /// mode.
    size: usize,
    /// Rank of `pes[0]`.
    base_rank: usize,
    pes: Vec<PeStorage>,
    remote: Option<Box<dyn RemoteBlockService>>,
    /// Journals block-service traffic ([`TraceEv::Fetch`] /
    /// [`TraceEv::Store`]) and feeds the progress byte meter. Off by
    /// default; the single-rank view installs it via
    /// [`ClusterStorage::single_traced`]. Journal writes bypass the
    /// metered storage path, so tracing never perturbs the counters.
    tracer: Tracer,
}

impl ClusterStorage {
    /// In-memory storage for `cfg.pes` PEs (the experiment default).
    pub fn new_mem(cfg: &MachineConfig) -> Arc<Self> {
        Self::with_backends(cfg, |c| Arc::new(MemBackend::new(c.disks_per_pe)))
    }

    /// [`ClusterStorage::new_mem`] with an explicit per-PE block-buffer
    /// pool capacity — what the sort entrypoints use to honor
    /// [`demsort_types::AlgoConfig::pool_blocks`]; `new_mem` itself
    /// always applies the auto policy.
    pub fn new_mem_sized(cfg: &MachineConfig, pool_blocks: usize) -> Arc<Self> {
        Self::build(cfg, pool_blocks, |c| Arc::new(MemBackend::new(c.disks_per_pe)))
    }

    /// Storage with a custom backend per PE (files, fault injection).
    pub fn with_backends(
        cfg: &MachineConfig,
        make: impl FnMut(&MachineConfig) -> Arc<dyn Backend>,
    ) -> Arc<Self> {
        // Each PE gets a buffer pool sized to its memory budget (the
        // auto policy of `AlgoConfig::effective_pool_blocks`), so the
        // steady-state data plane recycles instead of allocating.
        let pool_blocks = cfg.mem_blocks_per_pe().max(cfg.min_pool_blocks());
        Self::build(cfg, pool_blocks, make)
    }

    fn build(
        cfg: &MachineConfig,
        pool_blocks: usize,
        mut make: impl FnMut(&MachineConfig) -> Arc<dyn Backend>,
    ) -> Arc<Self> {
        let pes: Vec<PeStorage> = (0..cfg.pes)
            .map(|_| {
                PeStorage::with_backend_pool(
                    cfg.disks_per_pe,
                    cfg.block_bytes,
                    DiskModel::paper(),
                    make(cfg),
                    demsort_types::BufferPool::new(cfg.block_bytes, pool_blocks),
                )
            })
            .collect();
        Arc::new(Self { size: pes.len(), base_rank: 0, pes, remote: None, tracer: Tracer::off() })
    }

    /// Single-rank view for a worker process: `rank`'s own storage plus
    /// a block service for remote reads. `size` is the cluster size
    /// `P`.
    pub fn single(
        rank: usize,
        size: usize,
        storage: PeStorage,
        remote: Box<dyn RemoteBlockService>,
    ) -> Arc<Self> {
        Self::single_traced(rank, size, storage, remote, Tracer::off())
    }

    /// [`ClusterStorage::single`] with a trace sink: every batch of
    /// fetches and stores issued through this view is journalled as a
    /// [`TraceEv::Fetch`] / [`TraceEv::Store`] instant carrying the
    /// owning rank and locality, and the moved bytes feed the tracer's
    /// progress byte meter.
    pub fn single_traced(
        rank: usize,
        size: usize,
        storage: PeStorage,
        remote: Box<dyn RemoteBlockService>,
        tracer: Tracer,
    ) -> Arc<Self> {
        assert!(rank < size, "rank {rank} out of range for {size} ranks");
        Arc::new(Self { size, base_rank: rank, pes: vec![storage], remote: Some(remote), tracer })
    }

    /// `true` if rank `rank`'s storage lives in this view.
    pub fn is_local(&self, rank: usize) -> bool {
        rank >= self.base_rank && rank - self.base_rank < self.pes.len()
    }

    /// Storage of PE `rank` (panics if the rank is not local to this
    /// view — remote blocks go through [`ClusterStorage::fetch_block`]).
    pub fn pe(&self, rank: usize) -> &PeStorage {
        assert!(
            self.is_local(rank),
            "PE {rank}'s storage is not local to this view (base {}, {} local)",
            self.base_rank,
            self.pes.len()
        );
        &self.pes[rank - self.base_rank]
    }

    /// Read one block of PE `rank`'s storage, local or remote — a
    /// one-element [`ClusterStorage::fetch_blocks`] waited immediately
    /// (the multiway-selection probe path).
    pub fn fetch_block(&self, rank: usize, id: BlockId) -> Result<Box<[u8]>> {
        let mut fetches = self.fetch_blocks(rank, &[id])?;
        fetches.pop().expect("one fetch issued").wait()
    }

    /// Issue asynchronous reads of blocks owned by PE `rank`, local or
    /// remote — the location-transparent block service. Handles come
    /// back in request order; all reads are issued (and, for remote
    /// owners, pipelined on the wire) before any is waited on, so
    /// callers overlap the fetches with computation. Local reads go
    /// through the owner's engine (its disk pays the I/O, and issue
    /// order shapes its per-disk FIFO queues — pass ids in a prefetch
    /// schedule order to realize it); remote reads go through the
    /// registered [`RemoteBlockService`].
    pub fn fetch_blocks(&self, rank: usize, ids: &[BlockId]) -> Result<Vec<BlockFetch>> {
        if rank >= self.size {
            return Err(Error::config(format!("rank {rank} out of range for {} ranks", self.size)));
        }
        if self.tracer.enabled() && !ids.is_empty() {
            self.tracer.instant(TraceEv::Fetch {
                owner: rank,
                blocks: ids.len(),
                remote: !self.is_local(rank),
            });
            self.tracer.add_bytes((ids.len() * self.block_bytes_hint()) as u64);
        }
        if self.is_local(rank) {
            let engine = self.pe(rank).engine();
            return Ok(ids.iter().map(|&id| BlockFetch::local(engine.read(id))).collect());
        }
        match &self.remote {
            Some(r) => r.fetch_blocks(rank, ids),
            None => Err(Error::io(format!(
                "PE {rank}'s storage is remote and no remote block service is registered"
            ))),
        }
    }

    /// Issue asynchronous stores of `(disk_hint, data)` blocks into PE
    /// `owner`'s storage, local or remote — the **write half** of the
    /// location-transparent block service (run replication rides
    /// this). The owner's allocator assigns every address (hints are
    /// folded into its disk range), so replicas land round-robin
    /// across the buddy's disks without two writers ever colliding on
    /// a slot. Handles come back in request order; all stores are
    /// issued (and, for remote owners, pipelined on the wire behind
    /// one flush) before any is waited on.
    ///
    /// The returned [`StoreTarget`] classifies the write by ownership
    /// relative to `my_rank` — a cross-PE store is
    /// [`StoreTarget::RemoteDisk`] even in the in-process cluster,
    /// where the buddy's storage shares the address space: counters
    /// must not depend on the deployment shape.
    ///
    /// # Errors
    /// [`Error::Config`] for an out-of-range owner; [`Error::Io`] if
    /// the owner is remote and the block service is read-only.
    /// Per-block failures surface from each [`BlockStore::wait`].
    pub fn store_blocks(
        &self,
        my_rank: usize,
        owner: usize,
        blocks: &[(u32, &[u8])],
    ) -> Result<(Vec<BlockStore>, StoreTarget)> {
        if owner >= self.size {
            return Err(Error::config(format!(
                "rank {owner} out of range for {} ranks",
                self.size
            )));
        }
        let target =
            if owner == my_rank { StoreTarget::LocalDisk } else { StoreTarget::RemoteDisk };
        if self.tracer.enabled() && !blocks.is_empty() {
            self.tracer.instant(TraceEv::Store {
                owner,
                blocks: blocks.len(),
                remote: target == StoreTarget::RemoteDisk,
            });
            self.tracer.add_bytes(blocks.iter().map(|&(_, d)| d.len() as u64).sum());
        }
        if self.is_local(owner) {
            let pe = self.pe(owner);
            let disks = pe.disks();
            let engine = pe.engine();
            let pool = pe.pool();
            let stores = blocks
                .iter()
                .map(|&(hint, data)| {
                    let id = pe.alloc().alloc_on(hint as usize % disks);
                    // Stage the write in a pooled buffer (recycled when
                    // the write retires) when the payload is exactly one
                    // block; odd-sized payloads fall back to a fresh
                    // allocation.
                    let staged: Box<[u8]> = if data.len() == pool.buf_bytes() {
                        let mut buf = pool.get();
                        buf.copy_from_slice(data);
                        buf
                    } else {
                        data.to_vec().into_boxed_slice()
                    };
                    pool.add_copied(data.len() as u64);
                    BlockStore::local(id, engine.write(id, staged))
                })
                .collect();
            return Ok((stores, target));
        }
        match &self.remote {
            Some(r) => Ok((r.store_blocks(owner, blocks)?, target)),
            None => Err(Error::io(format!(
                "PE {owner}'s storage is remote and no remote block service is registered"
            ))),
        }
    }

    /// [`ClusterStorage::fetch_blocks`], but issue the reads in
    /// `schedule` order (a permutation of indices into `ids`, e.g. a
    /// prefetch schedule from
    /// [`duality_issue_order`](demsort_storage::duality_issue_order))
    /// while returning the handles in `ids` order — the disks service
    /// the schedule, the caller consumes in logical order.
    pub fn fetch_blocks_scheduled(
        &self,
        rank: usize,
        ids: &[BlockId],
        schedule: &[usize],
    ) -> Result<Vec<BlockFetch>> {
        debug_assert_eq!(schedule.len(), ids.len(), "schedule must be a permutation of the ids");
        let ordered: Vec<BlockId> = schedule.iter().map(|&i| ids[i]).collect();
        let issued = self.fetch_blocks(rank, &ordered)?;
        let mut handles: Vec<Option<BlockFetch>> = ids.iter().map(|_| None).collect();
        for (&i, f) in schedule.iter().zip(issued) {
            handles[i] = Some(f);
        }
        Ok(handles.into_iter().map(|h| h.expect("schedule is a permutation")).collect())
    }

    /// Read one block of PE `owner`'s storage through `cache`: a hit
    /// costs nothing, a miss fetches through the block service and
    /// populates the cache. The returned [`FetchSource`] says which
    /// path served the read, classified relative to `my_rank` — a
    /// cross-PE fetch is [`FetchSource::RemoteDisk`] even in the
    /// in-process cluster, where every PE's storage happens to share
    /// the address space (the counters must not depend on the
    /// deployment shape).
    pub fn fetch_block_cached(
        &self,
        my_rank: usize,
        owner: usize,
        id: BlockId,
        cache: &mut BlockCache,
    ) -> Result<(Arc<[u8]>, FetchSource)> {
        if let Some(data) = cache.get(owner, id) {
            return Ok((data, FetchSource::Cache));
        }
        let block = self.fetch_block(owner, id)?;
        // The cache shares blocks by `Arc`, which needs one copy into
        // the refcounted allocation; the fetch buffer itself goes back
        // to the pool.
        let data: Arc<[u8]> = Arc::from(&block[..]);
        if self.is_local(my_rank) {
            let pool = self.pe(my_rank).pool();
            pool.add_copied(block.len() as u64);
            pool.put(block);
        }
        cache.put(owner, id, Arc::clone(&data));
        let source =
            if owner == my_rank { FetchSource::LocalDisk } else { FetchSource::RemoteDisk };
        Ok((data, source))
    }

    /// Block size the byte meter charges per fetched block (uniform
    /// across the cluster by construction — every PE is built from the
    /// same [`MachineConfig`]).
    fn block_bytes_hint(&self) -> usize {
        self.pes.first().map_or(0, PeStorage::block_bytes)
    }

    /// Number of PEs in the cluster (`P`, not the local count).
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` if the cluster has no PEs (never in practice).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

/// Which path served a [`ClusterStorage::fetch_block_cached`] read.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FetchSource {
    /// The block cache — no I/O at all.
    Cache,
    /// The caller's own disks.
    LocalDisk,
    /// Another PE's disks (communication charged to the caller).
    RemoteDisk,
}

/// Cache key: the owning PE and the block's id on its disks.
type CacheKey = (usize, BlockId);
/// Cache value: LRU stamp plus the shared block buffer.
type CacheEntry = (u64, Arc<[u8]>);

/// LRU cache of fetched blocks, shared across the probes of one
/// external selection (capacity 0 disables caching — the paper's
/// ablation). Keyed by `(owning PE, block id)`; values are decoded
/// block buffers shared by `Arc`.
pub struct BlockCache {
    cap: usize,
    clock: u64,
    map: HashMap<CacheKey, CacheEntry>,
}

impl BlockCache {
    /// A cache holding at most `cap` blocks.
    pub fn new(cap: usize) -> Self {
        Self { cap, clock: 0, map: HashMap::with_capacity(cap) }
    }

    fn get(&mut self, owner: usize, id: BlockId) -> Option<Arc<[u8]>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&(owner, id)).map(|(stamp, data)| {
            *stamp = clock;
            Arc::clone(data)
        })
    }

    fn put(&mut self, owner: usize, id: BlockId, data: Arc<[u8]>) {
        if self.cap == 0 {
            return;
        }
        self.clock += 1;
        let key = (owner, id);
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            // Evict the least recently used entry (capacities are small
            // — tens of blocks — so a scan beats bookkeeping).
            if let Some(&old) = self.map.iter().min_by_key(|(_, (s, _))| *s).map(|(k, _)| k) {
                self.map.remove(&old);
            }
        }
        self.map.insert(key, (self.clock, data));
    }
}

/// Phase-by-phase counter recorder for one PE.
///
/// Phases are delimited by [`PhaseRecorder::finish_phase`], which
/// snapshots the cumulative I/O and communication counters and
/// attributes the delta (plus explicitly accumulated CPU work and any
/// extra communication such as remote selection probes) to the phase.
pub struct PhaseRecorder {
    rank: usize,
    stats: Vec<(Phase, PhaseStats)>,
    last_io: IoCounters,
    last_comm: CommCounters,
    pending_cpu: CpuCounters,
    pending_comm_extra: CommCounters,
    phase_started: std::time::Instant,
}

impl PhaseRecorder {
    /// Start recording for PE `rank` from the given counter baselines.
    pub fn new(rank: usize, io_now: IoCounters, comm_now: CommCounters) -> Self {
        Self {
            rank,
            stats: Vec::new(),
            last_io: io_now,
            last_comm: comm_now,
            pending_cpu: CpuCounters::default(),
            pending_comm_extra: CommCounters::default(),
            phase_started: std::time::Instant::now(),
        }
    }

    /// Accumulate CPU work into the current phase.
    pub fn add_cpu(&mut self, cpu: CpuCounters) {
        self.pending_cpu = self.pending_cpu.merge(&cpu);
    }

    /// Accumulate out-of-band communication (remote storage probes).
    pub fn add_comm(&mut self, comm: CommCounters) {
        self.pending_comm_extra = self.pending_comm_extra.merge(&comm);
    }

    /// Close the current phase, attributing counter deltas to `phase`.
    pub fn finish_phase(&mut self, phase: Phase, io_now: IoCounters, comm_now: CommCounters) {
        let mut cpu = std::mem::take(&mut self.pending_cpu);
        cpu.host_wall_ns += self.phase_started.elapsed().as_nanos() as u64;
        let stats = PhaseStats {
            io: io_now.delta_since(&self.last_io),
            comm: comm_now
                .delta_since(&self.last_comm)
                .merge(&std::mem::take(&mut self.pending_comm_extra)),
            cpu,
        };
        self.last_io = io_now;
        self.last_comm = comm_now;
        self.phase_started = std::time::Instant::now();
        self.stats.push((phase, stats));
    }

    /// This PE's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The recorded per-phase stats.
    pub fn into_stats(self) -> Vec<(Phase, PhaseStats)> {
        self.stats
    }
}

/// Assemble per-PE recorder outputs into a [`SortReport`].
pub fn assemble_report(
    cfg: &SortConfig,
    elements: u64,
    element_bytes: usize,
    runs: usize,
    per_pe: Vec<Vec<(Phase, PhaseStats)>>,
) -> SortReport {
    let mut report = SortReport::new(cfg.machine.pes, elements, element_bytes, runs);
    for (pe, phases) in per_pe.into_iter().enumerate() {
        for (phase, stats) in phases {
            report.record(pe, phase, stats);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_types::AlgoConfig;

    #[test]
    fn cluster_storage_shapes_from_config() {
        let cfg = MachineConfig::tiny(3);
        let cs = ClusterStorage::new_mem(&cfg);
        assert_eq!(cs.len(), 3);
        assert!(!cs.is_empty());
        assert_eq!(cs.pe(1).disks(), cfg.disks_per_pe);
        assert_eq!(cs.pe(2).block_bytes(), cfg.block_bytes);
        assert!((0..3).all(|r| cs.is_local(r)));
    }

    /// Echoes the requested address instead of real data.
    struct FakeFetch;

    impl RemoteBlockService for FakeFetch {
        fn fetch_blocks(&self, pe: usize, ids: &[BlockId]) -> Result<Vec<BlockFetch>> {
            Ok(ids
                .iter()
                .map(|id| {
                    BlockFetch::ready(
                        vec![pe as u8, id.disk as u8, id.slot as u8].into_boxed_slice(),
                    )
                })
                .collect())
        }
    }

    fn one_rank_view(rank: usize, size: usize) -> (Arc<ClusterStorage>, BlockId) {
        let cfg = MachineConfig::tiny(size);
        let st = PeStorage::with_backend(
            cfg.disks_per_pe,
            cfg.block_bytes,
            DiskModel::paper(),
            Arc::new(MemBackend::new(cfg.disks_per_pe)),
        );
        let id = st.alloc().alloc_striped();
        st.engine()
            .write_sync(id, vec![7u8; cfg.block_bytes].into_boxed_slice())
            .expect("write local block");
        (ClusterStorage::single(rank, size, st, Box::new(FakeFetch)), id)
    }

    #[test]
    fn single_rank_view_routes_local_and_remote_fetches() {
        let (cs, local_id) = one_rank_view(1, 3);
        assert_eq!(cs.len(), 3, "logical cluster size, not local count");
        assert!(cs.is_local(1));
        assert!(!cs.is_local(0) && !cs.is_local(2));
        // Local fetch reads the real block through the own engine.
        assert_eq!(&cs.fetch_block(1, local_id).expect("local")[..3], &[7, 7, 7]);
        // Remote fetch goes through the registered block service.
        let got = cs.fetch_block(2, BlockId::new(1, 5)).expect("remote");
        assert_eq!(&*got, &[2u8, 1, 5][..]);
        // Batched fetches return handles in request order.
        let ids = [BlockId::new(0, 1), BlockId::new(1, 2)];
        let fetches = cs.fetch_blocks(0, &ids).expect("batch");
        let got: Vec<Box<[u8]>> =
            fetches.into_iter().map(|f| f.wait().expect("remote block")).collect();
        assert_eq!(&*got[0], &[0u8, 0, 1][..]);
        assert_eq!(&*got[1], &[0u8, 1, 2][..]);
        // Out-of-range ranks are clean errors.
        assert!(cs.fetch_blocks(9, &ids).is_err());
    }

    #[test]
    fn traced_view_journals_block_service_traffic() {
        let cfg = MachineConfig::tiny(3);
        let st = PeStorage::with_backend(
            cfg.disks_per_pe,
            cfg.block_bytes,
            DiskModel::paper(),
            Arc::new(MemBackend::new(cfg.disks_per_pe)),
        );
        let id = st.alloc().alloc_striped();
        st.engine()
            .write_sync(id, vec![7u8; cfg.block_bytes].into_boxed_slice())
            .expect("write local block");
        let tracer = Tracer::to_buffer(1);
        let cs = ClusterStorage::single_traced(1, 3, st, Box::new(FakeFetch), tracer.clone());
        cs.fetch_block(1, id).expect("local fetch");
        cs.fetch_block(2, BlockId::new(0, 0)).expect("remote fetch");
        let data = vec![0xC3u8; cs.pe(1).block_bytes()];
        let (stores, _) = cs.store_blocks(1, 1, &[(0, data.as_slice())]).expect("local store");
        for s in stores {
            s.wait().expect("store lands");
        }
        let evs: Vec<TraceEv> = tracer.drain().into_iter().map(|r| r.ev).collect();
        assert_eq!(
            evs,
            vec![
                TraceEv::Fetch { owner: 1, blocks: 1, remote: false },
                TraceEv::Fetch { owner: 2, blocks: 1, remote: true },
                TraceEv::Store { owner: 1, blocks: 1, remote: false },
            ],
            "one instant per block-service batch, locality by ownership"
        );
    }

    #[test]
    fn store_blocks_allocates_locally_and_classifies_by_owner() {
        let (cs, _) = one_rank_view(1, 3);
        let block_bytes = cs.pe(1).block_bytes();
        let disks = cs.pe(1).disks();
        let a = vec![0xA1u8; block_bytes];
        let b = vec![0xB2u8; block_bytes];
        // Store into the own rank: the local allocator assigns
        // addresses on the hinted disks; ownership says LocalDisk.
        let (stores, target) =
            cs.store_blocks(1, 1, &[(0, a.as_slice()), (7, b.as_slice())]).expect("local stores");
        assert_eq!(target, StoreTarget::LocalDisk);
        let ids: Vec<BlockId> =
            stores.into_iter().map(|s| s.wait().expect("local store")).collect();
        assert_eq!(ids[0].disk, 0);
        assert_eq!(ids[1].disk, (7 % disks) as u32);
        assert_eq!(&cs.fetch_block(1, ids[0]).expect("read back")[..], &a[..]);
        assert_eq!(&cs.fetch_block(1, ids[1]).expect("read back")[..], &b[..]);
        // A cross-PE store through a read-only service is a clean
        // error (FakeFetch takes the default), classified RemoteDisk
        // before the refusal.
        let err = match cs.store_blocks(1, 2, &[(0, a.as_slice())]) {
            Ok(_) => panic!("read-only service must refuse"),
            Err(e) => e,
        };
        assert!(matches!(err, Error::Io(ref m) if m.contains("read-only")), "{err}");
        // Out-of-range owners are clean config errors.
        assert!(cs.store_blocks(1, 9, &[(0, a.as_slice())]).is_err());
    }

    /// Write-capable fake: acknowledges every store with a synthetic
    /// address derived from the hint.
    struct FakeStore;

    struct ReadyStore(Result<BlockId>);

    impl PendingStore for ReadyStore {
        fn wait(self: Box<Self>) -> Result<BlockId> {
            self.0
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    impl RemoteBlockService for FakeStore {
        fn fetch_blocks(&self, _pe: usize, _ids: &[BlockId]) -> Result<Vec<BlockFetch>> {
            Err(Error::io("fetch not under test"))
        }
        fn store_blocks(&self, pe: usize, blocks: &[(u32, &[u8])]) -> Result<Vec<BlockStore>> {
            Ok(blocks
                .iter()
                .enumerate()
                .map(|(i, &(hint, _))| {
                    BlockStore::remote(Box::new(ReadyStore(Ok(BlockId::new(
                        hint + pe as u32,
                        i as u32,
                    )))))
                })
                .collect())
        }
    }

    #[test]
    fn store_blocks_routes_remote_owners_through_the_service() {
        let cfg = MachineConfig::tiny(3);
        let st = PeStorage::with_backend(
            cfg.disks_per_pe,
            cfg.block_bytes,
            DiskModel::paper(),
            Arc::new(MemBackend::new(cfg.disks_per_pe)),
        );
        let cs = ClusterStorage::single(1, 3, st, Box::new(FakeStore));
        let data = vec![0u8; cfg.block_bytes];
        let (stores, target) = cs
            .store_blocks(1, 2, &[(4, data.as_slice()), (5, data.as_slice())])
            .expect("remote stores");
        assert_eq!(target, StoreTarget::RemoteDisk);
        let ids: Vec<BlockId> = stores.into_iter().map(|s| s.wait().expect("ack")).collect();
        assert_eq!(ids, vec![BlockId::new(6, 0), BlockId::new(7, 1)]);
    }

    #[test]
    fn scheduled_fetch_returns_handles_in_request_order() {
        let (cs, _) = one_rank_view(1, 3);
        let ids = [BlockId::new(0, 4), BlockId::new(1, 1), BlockId::new(0, 9)];
        // Issue back-to-front; handles must still line up with `ids`.
        let fetches = cs.fetch_blocks_scheduled(2, &ids, &[2, 0, 1]).expect("scheduled");
        let got: Vec<Box<[u8]>> = fetches.into_iter().map(|f| f.wait().expect("block")).collect();
        assert_eq!(&*got[0], &[2u8, 0, 4][..]);
        assert_eq!(&*got[1], &[2u8, 1, 1][..]);
        assert_eq!(&*got[2], &[2u8, 0, 9][..]);
    }

    #[test]
    fn cached_fetch_classifies_sources_by_owner_not_view() {
        let (cs, local_id) = one_rank_view(1, 3);
        let mut cache = BlockCache::new(8);
        let (_, src) = cs.fetch_block_cached(1, 1, local_id, &mut cache).expect("own block");
        assert_eq!(src, FetchSource::LocalDisk);
        let (_, src) = cs.fetch_block_cached(1, 1, local_id, &mut cache).expect("cached");
        assert_eq!(src, FetchSource::Cache);
        let remote_id = BlockId::new(0, 3);
        let (data, src) = cs.fetch_block_cached(1, 2, remote_id, &mut cache).expect("peer block");
        assert_eq!(src, FetchSource::RemoteDisk);
        assert_eq!(&*data, &[2u8, 0, 3][..]);
        let (_, src) = cs.fetch_block_cached(1, 2, remote_id, &mut cache).expect("cached");
        assert_eq!(src, FetchSource::Cache);
        // The in-process view classifies the same way: a cross-PE fetch
        // is remote even though the storage is reachable directly.
        let all = ClusterStorage::new_mem(&MachineConfig::tiny(2));
        let id = all.pe(1).alloc().alloc_striped();
        all.pe(1)
            .engine()
            .write_sync(id, vec![9u8; all.pe(1).block_bytes()].into_boxed_slice())
            .expect("write");
        let mut cache = BlockCache::new(0); // capacity 0: cache disabled
        let (_, src) = all.fetch_block_cached(0, 1, id, &mut cache).expect("cross-PE");
        assert_eq!(src, FetchSource::RemoteDisk);
        let (_, src) = all.fetch_block_cached(0, 1, id, &mut cache).expect("uncached");
        assert_eq!(src, FetchSource::RemoteDisk, "capacity 0 must never hit");
        let (_, src) = all.fetch_block_cached(1, 1, id, &mut cache).expect("own");
        assert_eq!(src, FetchSource::LocalDisk);
    }

    #[test]
    fn lru_cache_evicts_least_recent() {
        let mut c = BlockCache::new(2);
        let data: Arc<[u8]> = Arc::from(vec![0u8; 4].into_boxed_slice());
        c.put(0, BlockId::new(0, 0), Arc::clone(&data));
        c.put(0, BlockId::new(0, 1), Arc::clone(&data));
        assert!(c.get(0, BlockId::new(0, 0)).is_some()); // refresh 0
        c.put(0, BlockId::new(0, 2), Arc::clone(&data)); // evicts (0,1)
        assert!(c.get(0, BlockId::new(0, 1)).is_none());
        assert!(c.get(0, BlockId::new(0, 0)).is_some());
        assert!(c.get(0, BlockId::new(0, 2)).is_some());
    }

    #[test]
    #[should_panic(expected = "not local to this view")]
    fn single_rank_view_rejects_direct_remote_storage_access() {
        let (cs, _) = one_rank_view(1, 3);
        let _ = cs.pe(0);
    }

    #[test]
    fn in_process_view_has_no_remote_fetcher() {
        let cs = ClusterStorage::new_mem(&MachineConfig::tiny(2));
        // An unallocated-but-valid address read through fetch_block
        // routes to the local engine (error or not, it must not demand
        // a remote fetcher).
        let id = cs.pe(1).alloc().alloc_striped();
        cs.pe(1)
            .engine()
            .write_sync(id, vec![3u8; cs.pe(1).block_bytes()].into_boxed_slice())
            .expect("write");
        assert_eq!(&cs.fetch_block(1, id).expect("local fetch")[..2], &[3, 3]);
    }

    #[test]
    fn recorder_attributes_deltas_per_phase() {
        let io0 = IoCounters::default();
        let comm0 = CommCounters::default();
        let mut rec = PhaseRecorder::new(0, io0, comm0);

        rec.add_cpu(CpuCounters { elements_sorted: 10, ..Default::default() });
        let io1 = IoCounters { bytes_read: 100, ..Default::default() };
        rec.finish_phase(Phase::RunFormation, io1, comm0);

        rec.add_comm(CommCounters { bytes_recv: 55, ..Default::default() });
        let io2 = IoCounters { bytes_read: 150, ..Default::default() };
        rec.finish_phase(Phase::MultiwaySelection, io2, comm0);

        let stats = rec.into_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, Phase::RunFormation);
        assert_eq!(stats[0].1.io.bytes_read, 100);
        assert_eq!(stats[0].1.cpu.elements_sorted, 10);
        assert_eq!(stats[1].1.io.bytes_read, 50, "second phase gets only its delta");
        assert_eq!(stats[1].1.comm.bytes_recv, 55, "probe traffic counted");
    }

    #[test]
    fn report_assembly_round_trips() {
        let cfg = SortConfig::new(MachineConfig::tiny(2), AlgoConfig::default()).expect("valid");
        let per_pe = vec![
            vec![(
                Phase::FinalMerge,
                PhaseStats {
                    io: IoCounters { bytes_written: 64, ..Default::default() },
                    ..Default::default()
                },
            )],
            vec![],
        ];
        let report = assemble_report(&cfg, 1000, 16, 2, per_pe);
        assert_eq!(report.pes, 2);
        assert_eq!(report.runs, 2);
        assert_eq!(report.get(0, Phase::FinalMerge).io.bytes_written, 64);
        assert_eq!(report.get(1, Phase::FinalMerge).io.bytes_written, 0);
    }
}
