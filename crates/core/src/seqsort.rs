//! In-node (shared-memory) parallel sorting.
//!
//! The paper's implementation used the GCC parallel mode / MCSTL \[26\]
//! for intra-node sorting and merging across the 8 cores of each node.
//! This module plays that role: *parallel multiway mergesort* —
//!
//! 1. split the input into `cores` chunks and sort them in parallel
//!    (one thread per chunk);
//! 2. split the merged output into `cores` equal ranges with **exact
//!    multiway selection** ([`crate::selection`], the same machinery
//!    \[12\] uses);
//! 3. merge each output range in parallel with a loser tree.
//!
//! For `cores = 1` both steps collapse to a plain sort, so PEs without
//! intra-node parallelism pay nothing.

use crate::merge::{merge_work, par_merge_k_into};
use demsort_types::CpuCounters;

/// Sort `data` in place using up to `cores` threads; returns the CPU
/// work counters (elements sorted, merge comparisons) for the cost
/// model.
///
/// The sort is by `Ord`, i.e. by key with whatever tie-break the record
/// type defines — identical to what a sequential `sort_unstable` would
/// produce (tests assert this).
pub fn sort_in_node<T: Ord + Copy + Send + Sync>(data: &mut [T], cores: usize) -> CpuCounters {
    let started = std::time::Instant::now();
    let n = data.len() as u64;
    let cores = cores.max(1).min(data.len().max(1));
    let log_n = 64 - (n.max(2) - 1).leading_zeros() as u64; // ⌈log2 n⌉
    let mut counters =
        CpuCounters { elements_sorted: n, sort_work: n * log_n, ..Default::default() };

    if cores == 1 || data.len() < 2 * cores {
        data.sort_unstable();
        counters.host_wall_ns = started.elapsed().as_nanos() as u64;
        return counters;
    }

    // Phase 1: sort `cores` chunks in parallel.
    let chunk = data.len().div_ceil(cores);
    {
        let mut rest = &mut *data;
        std::thread::scope(|s| {
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                s.spawn(|| head.sort_unstable());
            }
        });
    }

    // Phases 2 + 3: exact splitters over the sorted chunks, then merge
    // each output range in parallel into a scratch buffer and copy
    // back — the shared in-node parallel merge does both.
    let chunks: Vec<&[T]> = data.chunks(chunk).collect();
    let mut out: Vec<T> = Vec::with_capacity(data.len());
    let pm = par_merge_k_into(&chunks, cores, &mut out);
    drop(chunks);
    data.copy_from_slice(&out);

    counters.elements_merged = n;
    counters.merge_work = merge_work(n, cores);
    counters.split_probes = pm.split_probes;
    counters.host_wall_ns = started.elapsed().as_nanos() as u64;
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_types::Element16;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_elements(n: usize, seed: u64) -> Vec<Element16> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64).map(|i| Element16::new(rng.gen(), i)).collect()
    }

    #[test]
    fn sorts_like_std_for_all_core_counts() {
        for cores in [1, 2, 3, 4, 8] {
            let mut data = random_elements(10_000, 42);
            let mut expected = data.clone();
            expected.sort_unstable();
            let c = sort_in_node(&mut data, cores);
            assert_eq!(data, expected, "cores = {cores}");
            assert_eq!(c.elements_sorted, 10_000);
        }
    }

    #[test]
    fn tiny_inputs() {
        for n in 0..8 {
            let mut data = random_elements(n, n as u64);
            let mut expected = data.clone();
            expected.sort_unstable();
            sort_in_node(&mut data, 4);
            assert_eq!(data, expected, "n = {n}");
        }
    }

    #[test]
    fn already_sorted_and_reverse() {
        let mut asc: Vec<u64> = (0..5000).collect();
        let mut desc: Vec<u64> = (0..5000).rev().collect();
        sort_in_node(&mut asc, 4);
        sort_in_node(&mut desc, 4);
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        assert!(desc.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn heavy_duplicates() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut data: Vec<u64> = (0..8000).map(|_| rng.gen_range(0..10)).collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        sort_in_node(&mut data, 8);
        assert_eq!(data, expected);
    }

    #[test]
    fn sort_work_counter_is_n_log_n() {
        let mut data = random_elements(1 << 12, 9);
        let c = sort_in_node(&mut data, 2);
        assert_eq!(c.sort_work, (1 << 12) * 12, "n · ⌈log2 n⌉");
        let mut tiny: Vec<u64> = vec![3, 1];
        let c2 = sort_in_node(&mut tiny, 1);
        assert_eq!(c2.sort_work, 2, "n = 2 → 2 · log2(2)");
    }

    #[test]
    fn counters_report_merge_work_only_when_parallel() {
        let mut a = random_elements(4000, 1);
        let c1 = sort_in_node(&mut a, 1);
        assert_eq!(c1.merge_work, 0, "single core merges nothing");
        let mut b = random_elements(4000, 1);
        let c4 = sort_in_node(&mut b, 4);
        assert_eq!(c4.merge_work, 4000 * 2, "4-way merge = 2 comparisons/element");
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn equals_std_sort(mut data in prop::collection::vec(0u32..5000, 0..2000),
                           cores in 1usize..9) {
            let mut expected = data.clone();
            expected.sort_unstable();
            sort_in_node(&mut data, cores);
            prop_assert_eq!(data, expected);
        }
    }
}
